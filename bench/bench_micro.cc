/**
 * @file
 * Micro-benchmarks (google-benchmark): throughput of the core components —
 * the trace walker, the predictors, the chain set, the aligners and the
 * materializer. These are engineering benchmarks for the library itself,
 * not paper reproductions.
 */

#include <benchmark/benchmark.h>

#include "bpred/btb.h"
#include "check/differ.h"
#include "sim/batch_replay.h"
#include "support/saturating_counter.h"
#include "bpred/evaluator.h"
#include "bpred/gshare.h"
#include "bpred/pht.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/rng.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

ProgramSpec
mediumSpec()
{
    ProgramSpec spec = suiteSpec("espresso");
    spec.traceInstrs = 200'000;
    return spec;
}

void
BM_WalkTrace(benchmark::State &state)
{
    const Program program = generateProgram(mediumSpec());
    WalkOptions options;
    options.instrBudget = 200'000;
    NullSink sink;
    for (auto _ : state) {
        const WalkResult result = walk(program, options, sink);
        benchmark::DoNotOptimize(result.instrs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 200'000);
}
BENCHMARK(BM_WalkTrace);

void
BM_PhtPredict(benchmark::State &state)
{
    PhtDirect pht(4096);
    Rng rng(7);
    std::uint64_t penalty = 0;
    for (auto _ : state) {
        const Addr site = rng.nextBounded(1 << 20);
        const bool taken = rng.nextBool(0.6);
        penalty += pht.predict(site) != taken;
        pht.update(site, taken);
    }
    benchmark::DoNotOptimize(penalty);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhtPredict);

void
BM_GsharePredict(benchmark::State &state)
{
    Gshare gshare(4096, 12);
    Rng rng(7);
    std::uint64_t penalty = 0;
    for (auto _ : state) {
        const Addr site = rng.nextBounded(1 << 20);
        const bool taken = rng.nextBool(0.6);
        penalty += gshare.predict(site) != taken;
        gshare.update(site, taken);
    }
    benchmark::DoNotOptimize(penalty);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GsharePredict);

void
BM_BtbLookupUpdate(benchmark::State &state)
{
    Btb btb(256, 4);
    Rng rng(7);
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const Addr site = rng.nextBounded(1 << 12);
        hits += btb.lookup(site).has_value();
        btb.update(site, true, site + 16);
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BtbLookupUpdate);

void
BM_AlignGreedy(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    for (auto _ : state) {
        const ProgramLayout layout =
            alignProgram(prepared.program, AlignerKind::Greedy, nullptr);
        benchmark::DoNotOptimize(layout.totalInstrs);
    }
}
BENCHMARK(BM_AlignGreedy);

// Same alignment with the translation-validating post-condition
// switched off: the delta against BM_AlignGreedy is the price of
// proving every emitted layout (DESIGN.md §10.4).
void
BM_AlignGreedyNoVerify(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    AlignOptions options;
    options.verify = false;
    for (auto _ : state) {
        const ProgramLayout layout = alignProgram(
            prepared.program, AlignerKind::Greedy, nullptr, options);
        benchmark::DoNotOptimize(layout.totalInstrs);
    }
}
BENCHMARK(BM_AlignGreedyNoVerify);

void
BM_AlignCost(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    const CostModel model(Arch::Fallthrough);
    for (auto _ : state) {
        const ProgramLayout layout =
            alignProgram(prepared.program, AlignerKind::Cost, &model);
        benchmark::DoNotOptimize(layout.totalInstrs);
    }
}
BENCHMARK(BM_AlignCost);

void
BM_AlignTryN(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    const CostModel model(Arch::Fallthrough);
    AlignOptions options;
    options.groupSize = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const ProgramLayout layout = alignProgram(
            prepared.program, AlignerKind::Try15, &model, options);
        benchmark::DoNotOptimize(layout.totalInstrs);
    }
}
BENCHMARK(BM_AlignTryN)->Arg(5)->Arg(10)->Arg(15);

void
BM_Materialize(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    for (auto _ : state) {
        const ProgramLayout layout = originalLayout(prepared.program);
        benchmark::DoNotOptimize(layout.totalInstrs);
    }
}
BENCHMARK(BM_Materialize);

void
BM_EvaluateTrace(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    const ProgramLayout layout = originalLayout(prepared.program);
    for (auto _ : state) {
        ArchEvaluator eval(prepared.program, layout,
                           EvalParams::forArch(Arch::PhtDirect));
        walk(prepared.program, prepared.walk, eval.sink());
        benchmark::DoNotOptimize(eval.result().instrs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 200'000);
}
BENCHMARK(BM_EvaluateTrace);

// One batched sweep evaluating ALL architectures at once against the
// recorded trace, vs the per-cell reference path doing one full replay
// per architecture. items_processed counts trace instructions times
// lanes, so the items/s ratio is the per-lane replay speedup.
void
BM_ReplayBatched(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    const ProgramLayout layout = originalLayout(prepared.program);
    std::vector<EvalParams> lanes;
    for (const Arch arch : allArchs())
        lanes.push_back(EvalParams::forArch(arch));
    for (auto _ : state) {
        const std::vector<EvalResult> results = runBatchReplay(
            prepared.program, layout, *prepared.batch, lanes);
        benchmark::DoNotOptimize(results[0].instrs);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            200'000 *
                            static_cast<std::int64_t>(lanes.size()));
}
BENCHMARK(BM_ReplayBatched);

void
BM_ReplayPerCell(benchmark::State &state)
{
    const PreparedProgram prepared = prepareProgram(mediumSpec());
    const ProgramLayout layout = originalLayout(prepared.program);
    for (auto _ : state) {
        std::uint64_t instrs = 0;
        for (const Arch arch : allArchs()) {
            ArchEvaluator eval(prepared.program, layout,
                               EvalParams::forArch(arch));
            prepared.trace->replay(prepared.program, eval.sink());
            instrs += eval.result().instrs;
        }
        benchmark::DoNotOptimize(instrs);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            200'000 *
                            static_cast<std::int64_t>(allArchs().size()));
}
BENCHMARK(BM_ReplayPerCell);

// The branchless saturating-counter update (arithmetic clamp) the SoA
// predictor tables use, vs the compare-and-step member function.
void
BM_CounterBranchless(benchmark::State &state)
{
    Rng rng(7);
    std::vector<std::uint8_t> table(4096, 1);
    std::vector<std::uint32_t> sites(8192);
    std::vector<std::uint8_t> outcomes(8192);
    for (std::size_t i = 0; i < sites.size(); ++i) {
        sites[i] = static_cast<std::uint32_t>(rng.nextBounded(4096));
        outcomes[i] = rng.nextBool(0.6) ? 1 : 0;
    }
    std::uint64_t mispredicts = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < sites.size(); ++i) {
            const std::uint8_t value = table[sites[i]];
            mispredicts += saturatingTaken(value, 3) != (outcomes[i] != 0);
            table[sites[i]] = saturatingUpdate(value, 3, outcomes[i] != 0);
        }
    }
    benchmark::DoNotOptimize(mispredicts);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(sites.size()));
}
BENCHMARK(BM_CounterBranchless);

void
BM_CounterBranchy(benchmark::State &state)
{
    Rng rng(7);
    std::vector<SaturatingCounter> table(4096);
    std::vector<std::uint32_t> sites(8192);
    std::vector<std::uint8_t> outcomes(8192);
    for (std::size_t i = 0; i < sites.size(); ++i) {
        sites[i] = static_cast<std::uint32_t>(rng.nextBounded(4096));
        outcomes[i] = rng.nextBool(0.6) ? 1 : 0;
    }
    std::uint64_t mispredicts = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < sites.size(); ++i) {
            SaturatingCounter &counter = table[sites[i]];
            mispredicts += counter.taken() != (outcomes[i] != 0);
            counter.update(outcomes[i] != 0);
        }
    }
    benchmark::DoNotOptimize(mispredicts);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(sites.size()));
}
BENCHMARK(BM_CounterBranchy);

}  // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
