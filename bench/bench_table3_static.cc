/**
 * @file
 * Reproduces paper Table 3: relative cycles per instruction for the three
 * static prediction architectures (FALLTHROUGH, BT/FNT, LIKELY) under the
 * Original, Greedy (Pettis & Hansen) and Try15 layouts, plus the percent
 * of executed conditional branches that fall through after alignment.
 *
 * Cost model (paper Table 1): misfetch = 1 cycle, mispredict = 4 cycles;
 * every configuration includes a 32-entry return stack.
 *
 * Shape targets (paper §6): Try15 beats Greedy, most dramatically on
 * FALLTHROUGH (where it converts up to ~99% of conditionals to
 * fall-throughs); BT/FNT sees solid gains; LIKELY small ones; and after
 * alignment FALLTHROUGH and BT/FNT converge.
 */

#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);

    const Arch archs[] = {Arch::Fallthrough, Arch::BtFnt, Arch::Likely};
    std::vector<ExperimentConfig> configs;
    for (Arch arch : archs) {
        configs.push_back({arch, AlignerKind::Original});
        configs.push_back({arch, AlignerKind::Greedy});
        configs.push_back({arch, AlignerKind::Try15});
    }

    Table table({"Program", "FT/Orig", "FT/Greedy", "FT/Try15", "BF/Orig",
                 "BF/Greedy", "BF/Try15", "LK/Orig", "LK/Greedy",
                 "LK/Try15", "%fall FT", "%fall BF", "%fall LK"});

    bench::GroupAverages avg;
    auto flush_group = [&](const std::string &label) {
        auto values = avg.averages();
        Table &row = table.row().cell(label + " Avg");
        for (double v : values)
            row.cell(v, 3);
        table.separator();
    };

    const bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions runner;
    runner.times = &times;
    const std::vector<ProgramSpec> suite =
        bench::tunedSuite(benchmarkSuite());
    const std::vector<ExperimentRun> runs =
        runSuite(suite, configs, runner);

    std::string group;
    for (const ExperimentRun &run : runs) {
        if (run.group != group) {
            if (!group.empty())
                flush_group(group);
            group = run.group;
            avg.reset(12);
        }
        std::vector<double> values;
        for (Arch arch : archs) {
            values.push_back(run.cell(arch, AlignerKind::Original).relCpi);
            values.push_back(run.cell(arch, AlignerKind::Greedy).relCpi);
            values.push_back(run.cell(arch, AlignerKind::Try15).relCpi);
        }
        for (Arch arch : archs) {
            values.push_back(
                run.cell(arch, AlignerKind::Try15).eval.pctFallThrough());
        }
        Table &row = table.row().cell(run.name);
        for (std::size_t i = 0; i < 9; ++i)
            row.cell(values[i], 3);
        for (std::size_t i = 9; i < 12; ++i)
            row.cell(values[i], 1);
        avg.add(values);
    }
    if (!group.empty())
        flush_group(group);

    std::cout << "Table 3: relative CPI, static prediction architectures\n"
              << "(FT = FALLTHROUGH, BF = BT/FNT, LK = LIKELY;\n"
              << " %fall = executed conditional branches falling through "
                 "after Try15 alignment)\n\n";
    table.print(std::cout);
    std::cerr << bench::timingJson("table3_static", defaultThreads(),
                                   suite.size(), wall.seconds(), times)
              << "\n";
    return 0;
}
