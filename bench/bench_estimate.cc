/**
 * @file
 * Static profile estimation: alignment quality and prediction accuracy.
 *
 * Part 1 — CPI. Every suite program is aligned three ways for a 2x2
 * contender matrix (Cost and Try15 under the Table-1 and ExtTSP
 * objectives): on the true measured profile, on the static estimate
 * (estimate/estimate.h — no trace at all), and on a mid-severity
 * degraded profile (sampling 1/16) as the reference point between the
 * two. Evaluation always replays the true recorded trace (BT/FNT). The
 * headline number is the recovery fraction: how much of the
 * true-profile CPI improvement over the original (fall-through) layout
 * the estimate retains. The bench FAILS (exit 1) if estimated-profile
 * alignment is not strictly better than the original layout on
 * suite-mean CPI for any contender — the minimum bar for a profile-free
 * default.
 *
 * Part 2 — accuracy. For every conditional branch the estimator's
 * predicted direction (combined taken-probability >= 0.5) is scored
 * against the true profile, weighted by the branch's execution count —
 * the classic weighted static-prediction hit rate (Ball-Larus report
 * ~70-80% on real programs).
 *
 * Flags:
 *   --quick   cap the per-program trace at 50k instructions (CI smoke;
 *             BALIGN_TRACE_INSTRS still wins when set)
 *   --json    emit one machine-readable JSON document on stdout instead
 *             of the tables
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "estimate/estimate.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

namespace {

constexpr Arch kArch = Arch::BtFnt;

struct Contender
{
    const char *label;
    AlignerKind kind;
    ObjectiveKind objective;
};

const Contender kContenders[] = {
    {"cost/table-cost", AlignerKind::Cost, ObjectiveKind::TableCost},
    {"cost/exttsp", AlignerKind::Cost, ObjectiveKind::ExtTsp},
    {"try15/table-cost", AlignerKind::Try15, ObjectiveKind::TableCost},
    {"try15/exttsp", AlignerKind::Try15, ObjectiveKind::ExtTsp},
};

constexpr std::size_t kNumContenders =
    sizeof(kContenders) / sizeof(kContenders[0]);

/// The three profile sources each contender is aligned on. The degraded
/// reference point is sampling 1/16 — the middle of bench_robustness's
/// severity ladder.
enum SourcePoint { kTrue = 0, kEstimated = 1, kDegraded = 2, kNumSources };

const char *const kSourceLabels[kNumSources] = {"true", "estimated",
                                                "degraded"};

DegradeSpec
degradedReference()
{
    DegradeSpec spec;
    spec.kind = DegradeKind::Sample;
    spec.n = 16;
    spec.seed = 1;
    return spec;
}

/// Weighted static-prediction hit rate of the estimate against the true
/// profile: for every conditional branch, the execution weight of the
/// direction the estimator favours over the branch's total weight.
struct Accuracy
{
    double hits = 0.0;
    double total = 0.0;

    double
    rate() const
    {
        return total > 0.0 ? hits / total : 1.0;
    }
};

Accuracy
scoreEstimate(const Program &truth, const EstimateReport &report)
{
    Accuracy acc;
    for (ProcId p = 0; p < truth.numProcs(); ++p) {
        const Procedure &proc = truth.proc(p);
        for (BlockId b = 0; b < proc.numBlocks(); ++b) {
            if (proc.block(b).term != Terminator::CondBranch)
                continue;
            const std::int64_t taken = proc.takenEdge(b);
            const std::int64_t fall = proc.fallThroughEdge(b);
            if (taken < 0 || fall < 0)
                continue;
            const double wt = static_cast<double>(
                proc.edge(static_cast<std::uint32_t>(taken)).weight);
            const double wf = static_cast<double>(
                proc.edge(static_cast<std::uint32_t>(fall)).weight);
            const double prob =
                report.edgeProbs[p][static_cast<std::size_t>(taken)];
            acc.hits += prob >= 0.5 ? wt : wf;
            acc.total += wt + wf;
        }
    }
    return acc;
}

}  // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    bool quick = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else
            fatal("bench_estimate: unknown flag '%s'", argv[i]);
    }

    std::vector<ProgramSpec> suite = bench::tunedSuite(benchmarkSuite());
    if (quick && std::getenv("BALIGN_TRACE_INSTRS") == nullptr) {
        for (ProgramSpec &spec : suite)
            spec.traceInstrs = 50'000;
    }

    // Part 1: one run per program; cell order mirrors `configs`.
    std::vector<ExperimentConfig> configs;
    configs.push_back({kArch, AlignerKind::Original});
    for (const Contender &contender : kContenders) {
        ExperimentConfig config{kArch, contender.kind, contender.objective};
        configs.push_back(config);  // true profile
        config.source = ProfileSource::Estimated;
        configs.push_back(config);  // static estimate
        config.source = ProfileSource::Measured;
        config.degrade = degradedReference();
        configs.push_back(config);  // degraded reference
    }

    const bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions runner;
    runner.times = &times;
    const std::vector<ExperimentRun> runs = runSuite(suite, configs, runner);

    double original = 0.0;  // the fall-through baseline every row beats
    double cpi[kNumContenders][kNumSources] = {};
    for (const ExperimentRun &run : runs) {
        original += run.cells[0].relCpi;
        std::size_t cell = 1;
        for (std::size_t c = 0; c < kNumContenders; ++c) {
            for (std::size_t s = 0; s < kNumSources; ++s)
                cpi[c][s] += run.cells[cell++].relCpi;
        }
    }
    original /= static_cast<double>(runs.size());
    for (auto &row : cpi) {
        for (double &value : row)
            value /= static_cast<double>(runs.size());
    }

    // Part 2: weighted prediction accuracy per program.
    std::vector<std::pair<std::string, double>> accuracy;
    Accuracy overall;
    for (const ProgramSpec &spec : suite) {
        const PreparedProgram prepared = prepareProgram(spec);
        Program estimated = prepared.program;
        const EstimateReport report = estimateProfile(estimated);
        const Accuracy acc = scoreEstimate(prepared.program, report);
        accuracy.emplace_back(spec.name, acc.rate());
        overall.hits += acc.hits;
        overall.total += acc.total;
    }

    // The endpoint contract: the estimate must beat doing nothing (the
    // original fall-through layout), and the recovery fraction is how
    // much of the true-profile gain over that baseline it retains.
    bool beats_baseline = true;
    double recovery[kNumContenders];
    for (std::size_t c = 0; c < kNumContenders; ++c) {
        beats_baseline = beats_baseline && cpi[c][kEstimated] < original;
        const double true_gain = original - cpi[c][kTrue];
        recovery[c] = true_gain > 0.0
                          ? (original - cpi[c][kEstimated]) / true_gain
                          : 0.0;
    }

    if (json) {
        std::ostream &os = std::cout;
        os << "{\"bench\":\"estimate\",\"arch\":\"" << archName(kArch)
           << "\",\"programs\":" << runs.size()
           << ",\"rel_cpi_original\":" << original << ",\"contenders\":[";
        for (std::size_t c = 0; c < kNumContenders; ++c) {
            const Contender &contender = kContenders[c];
            os << (c ? "," : "") << "{\"aligner\":\""
               << alignerKindName(contender.kind) << "\",\"objective\":\""
               << objectiveKindName(contender.objective) << "\"";
            for (std::size_t s = 0; s < kNumSources; ++s)
                os << ",\"rel_cpi_" << kSourceLabels[s]
                   << "\":" << cpi[c][s];
            os << ",\"delta_vs_true\":" << cpi[c][kEstimated] - cpi[c][kTrue]
               << ",\"recovery_fraction\":" << recovery[c]
               << ",\"beats_baseline\":"
               << (cpi[c][kEstimated] < original ? "true" : "false") << "}";
        }
        os << "],\"weighted_accuracy\":" << overall.rate()
           << ",\"per_program_accuracy\":[";
        for (std::size_t i = 0; i < accuracy.size(); ++i) {
            os << (i ? "," : "") << "{\"program\":\"" << accuracy[i].first
               << "\",\"accuracy\":" << accuracy[i].second << "}";
        }
        os << "],\"estimate_beats_baseline\":"
           << (beats_baseline ? "true" : "false") << "}\n";
    } else {
        Table table({"Contender", "true CPI", "est CPI", "degraded CPI",
                     "recovery"});
        for (std::size_t c = 0; c < kNumContenders; ++c) {
            table.row()
                .cell(kContenders[c].label)
                .cell(cpi[c][kTrue], 3)
                .cell(cpi[c][kEstimated], 3)
                .cell(cpi[c][kDegraded], 3)
                .cell(recovery[c], 2);
        }
        std::cout << "Static estimation: suite-mean rel CPI, align-on-X / "
                     "measure-on-true (BTFNT); original layout = "
                  << original << "\ndegraded reference = "
                  << degradeSpecLabel(degradedReference()) << "\n\n";
        table.print(std::cout);
        std::cout << "\nweighted static-prediction accuracy vs true "
                     "profile: "
                  << overall.rate() * 100.0 << "%\n";
        std::cout << "estimate beats fall-through baseline: "
                  << (beats_baseline ? "yes" : "NO") << "\n";
    }

    std::cerr << bench::timingJson("estimate", defaultThreads(),
                                   suite.size(), wall.seconds(), times)
              << "\n";
    if (!beats_baseline) {
        std::fprintf(stderr, "FAIL: estimated-profile alignment did not "
                             "beat the fall-through baseline\n");
        return 1;
    }
    return 0;
}
