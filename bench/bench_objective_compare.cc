/**
 * @file
 * Objective comparison: the 1994 Table-1 cost aligners vs. the modern
 * ExtTSP objective (Newell & Pupyrev, arXiv:1809.04676) on the same CFGs,
 * traces and simulator.
 *
 * For every suite program and each of Greedy, Cost, Try15 (guided by the
 * paper's Table-1 objective) and ExtTsp (guided by the ExtTSP objective),
 * the bench reports:
 *
 *   - the ExtTSP score of the layout (higher is better; computed on the
 *     architecture-independent layout, i.e. without the BT/FNT override),
 *   - the dynamic fall-through rate, averaged over all 8 architectures,
 *   - the relative CPI vs. the original layout, averaged over all 8
 *     architectures.
 *
 * The run FAILS (exit 1) if ExtTsp's fall-through rate drops below
 * Greedy's on any program — the regression guard for the chain-merging
 * aligner and its fallback splice.
 *
 * Flags:
 *   --quick   cap the per-program trace at 50k instructions (CI smoke;
 *             BALIGN_TRACE_INSTRS still wins when set)
 *   --json    emit one machine-readable JSON document on stdout instead
 *             of the table (per-architecture detail included)
 */

#include <cstring>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "check/differ.h"
#include "core/align_program.h"
#include "objective/exttsp.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

namespace {

struct Contender
{
    const char *label;
    AlignerKind kind;
    ObjectiveKind objective;
};

const Contender kContenders[] = {
    {"greedy", AlignerKind::Greedy, ObjectiveKind::TableCost},
    {"cost", AlignerKind::Cost, ObjectiveKind::TableCost},
    {"try15", AlignerKind::Try15, ObjectiveKind::TableCost},
    {"exttsp", AlignerKind::ExtTsp, ObjectiveKind::ExtTsp},
};

constexpr std::size_t kNumContenders =
    sizeof(kContenders) / sizeof(kContenders[0]);

/// Per-(program, contender) aggregates.
struct Row
{
    double score = 0.0;              ///< ExtTSP score, arch-independent layout
    double meanFallThrough = 0.0;    ///< % of transfers, mean over archs
    double meanRelCpi = 0.0;         ///< vs original, mean over archs
    std::vector<double> fallThrough; ///< per-arch detail (JSON)
    std::vector<double> relCpi;      ///< per-arch detail (JSON)
};

}  // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    bool quick = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else
            fatal("bench_objective_compare: unknown flag '%s'", argv[i]);
    }

    std::vector<ProgramSpec> suite = bench::tunedSuite(benchmarkSuite());
    if (quick && std::getenv("BALIGN_TRACE_INSTRS") == nullptr) {
        for (ProgramSpec &spec : suite)
            spec.traceInstrs = 50'000;
    }

    std::vector<ExperimentConfig> configs;
    for (const Contender &contender : kContenders) {
        for (const Arch arch : allArchs())
            configs.push_back({arch, contender.kind, contender.objective});
    }

    const bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions runner;
    runner.times = &times;
    const std::vector<ExperimentRun> runs = runSuite(suite, configs, runner);

    // ExtTSP scores come from the architecture-independent layouts (the
    // plain Fallthrough-model alignment, no BT/FNT override) so one score
    // describes each contender's layout per program.
    std::vector<std::vector<Row>> rows(runs.size());
    bool regression = false;
    std::ostringstream failures;
    for (std::size_t r = 0; r < runs.size(); ++r) {
        const ExperimentRun &run = runs[r];
        const ProgramSpec &spec = suite[r];
        // Same generation + profiling walk as runSuite, so the layouts
        // scored here are the ones the experiment evaluated.
        const Program program = prepareProgram(spec).program;
        rows[r].resize(kNumContenders);
        for (std::size_t c = 0; c < kNumContenders; ++c) {
            const Contender &contender = kContenders[c];
            Row &row = rows[r][c];

            const CostModel model(Arch::Fallthrough);
            AlignOptions options;
            options.objective = contender.objective;
            const ProgramLayout layout =
                alignProgram(program, contender.kind, &model, options);
            row.score = extTspScore(program, layout);

            for (const Arch arch : allArchs()) {
                const ExperimentCell &cell =
                    run.cell(arch, contender.kind);
                row.fallThrough.push_back(cell.eval.pctFallThrough());
                row.relCpi.push_back(cell.relCpi);
                row.meanFallThrough += cell.eval.pctFallThrough();
                row.meanRelCpi += cell.relCpi;
            }
            row.meanFallThrough /= static_cast<double>(allArchs().size());
            row.meanRelCpi /= static_cast<double>(allArchs().size());
        }
        // Regression guard: ExtTsp (index 3) must keep at least Greedy's
        // (index 0) fall-through rate on every program.
        if (rows[r][3].meanFallThrough < rows[r][0].meanFallThrough - 1e-9) {
            regression = true;
            failures << "  " << run.name << ": exttsp fall-through "
                     << rows[r][3].meanFallThrough << "% < greedy "
                     << rows[r][0].meanFallThrough << "%\n";
        }
    }

    if (json) {
        std::ostream &os = std::cout;
        os << "{\"bench\":\"objective_compare\",\"archs\":[";
        for (std::size_t a = 0; a < allArchs().size(); ++a)
            os << (a ? "," : "") << "\"" << archName(allArchs()[a]) << "\"";
        os << "],\"programs\":[";
        for (std::size_t r = 0; r < runs.size(); ++r) {
            os << (r ? "," : "") << "{\"name\":\"" << runs[r].name
               << "\",\"group\":\"" << runs[r].group << "\",\"layouts\":{";
            for (std::size_t c = 0; c < kNumContenders; ++c) {
                const Row &row = rows[r][c];
                os << (c ? "," : "") << "\"" << kContenders[c].label
                   << "\":{\"objective\":\""
                   << objectiveKindName(kContenders[c].objective)
                   << "\",\"exttsp_score\":" << row.score
                   << ",\"fall_through_pct\":" << row.meanFallThrough
                   << ",\"rel_cpi\":" << row.meanRelCpi
                   << ",\"fall_through_by_arch\":[";
                for (std::size_t a = 0; a < row.fallThrough.size(); ++a)
                    os << (a ? "," : "") << row.fallThrough[a];
                os << "],\"rel_cpi_by_arch\":[";
                for (std::size_t a = 0; a < row.relCpi.size(); ++a)
                    os << (a ? "," : "") << row.relCpi[a];
                os << "]}";
            }
            os << "}}";
        }
        os << "],\"fall_through_regression\":"
           << (regression ? "true" : "false") << "}\n";
    } else {
        Table table({"Program", "Score/Greedy", "Score/Cost", "Score/Try15",
                     "Score/ExtTsp", "FT%/Greedy", "FT%/Cost", "FT%/Try15",
                     "FT%/ExtTsp", "CPI/Greedy", "CPI/Cost", "CPI/Try15",
                     "CPI/ExtTsp"});
        for (std::size_t r = 0; r < runs.size(); ++r) {
            Table &row = table.row().cell(runs[r].name);
            for (std::size_t c = 0; c < kNumContenders; ++c)
                row.cell(rows[r][c].score, 1);
            for (std::size_t c = 0; c < kNumContenders; ++c)
                row.cell(rows[r][c].meanFallThrough, 1);
            for (std::size_t c = 0; c < kNumContenders; ++c)
                row.cell(rows[r][c].meanRelCpi, 3);
        }
        std::cout << "Objective comparison: Table-1 cost aligners vs "
                     "ExtTSP\n(score = ExtTSP layout score, higher "
                     "better; FT% and rel CPI averaged over all 8 "
                     "architectures)\n\n";
        table.print(std::cout);
    }

    std::cerr << bench::timingJson("objective_compare", defaultThreads(),
                                   suite.size(), wall.seconds(), times)
              << "\n";
    if (regression) {
        std::fprintf(stderr,
                     "FAIL: ExtTsp fall-through rate regressed below "
                     "Greedy:\n%s",
                     failures.str().c_str());
        return 1;
    }
    return 0;
}
