/**
 * @file
 * Ablation (methodology): profile robustness across inputs.
 *
 * The paper aligns each program with the same input used for measurement
 * ("for each architecture, we use the same input to align the program and
 * to measure the improvement") and notes that combining more profiles is
 * possible. This harness quantifies the gap: a program is aligned with a
 * profile from one input (walk seed) and evaluated on a different input,
 * compared against self-trained alignment. Because branch biases are
 * properties of the program model, profile-guided layout should transfer
 * well — the classic argument for profile-guided code layout.
 */

#include <iostream>

#include "bench_util.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/table.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"

using namespace balign;

namespace {

/// Evaluates a layout on a given walk.
EvalResult
evaluate(const Program &program, const ProgramLayout &layout, Arch arch,
         const WalkOptions &walk_options)
{
    ArchEvaluator eval(program, layout, EvalParams::forArch(arch));
    walk(program, walk_options, eval.sink());
    return eval.result();
}

}  // namespace

int
main()
{
    setVerbose(false);
    const Arch arch = Arch::Fallthrough;
    Table table({"Program", "orig", "self-trained", "cross-trained",
                 "transfer %"});

    const char *names[] = {"compress", "eqntott", "espresso", "gcc", "li",
                           "sc", "groff", "tex"};
    for (const char *name : names) {
        ProgramSpec spec = suiteSpec(name);
        if (const char *env = std::getenv("BALIGN_TRACE_INSTRS")) {
            const auto v = std::strtoull(env, nullptr, 10);
            if (v > 0)
                spec.traceInstrs = v;
        }

        WalkOptions train_walk;
        train_walk.seed = traceSeed(spec);
        train_walk.instrBudget = spec.traceInstrs;
        WalkOptions test_walk = train_walk;
        test_walk.seed = traceSeed(spec) ^ 0x5555aaaa5555aaaaull;

        const CostModel model(arch);

        // Train on the TRAINING input.
        Program program = generateProgram(spec);
        {
            Profiler profiler(program);
            walk(program, train_walk, profiler);
        }
        const ProgramLayout cross_layout =
            alignProgram(program, AlignerKind::Try15, &model);

        // Train on the TEST input (self-trained reference).
        program.clearWeights();
        {
            Profiler profiler(program);
            walk(program, test_walk, profiler);
        }
        const ProgramLayout self_layout =
            alignProgram(program, AlignerKind::Try15, &model);
        const ProgramLayout orig = originalLayout(program);

        // All evaluated on the TEST input.
        const EvalResult orig_eval =
            evaluate(program, orig, arch, test_walk);
        const EvalResult self_eval =
            evaluate(program, self_layout, arch, test_walk);
        const EvalResult cross_eval =
            evaluate(program, cross_layout, arch, test_walk);

        const auto base = orig_eval.instrs;
        const double orig_cpi = orig_eval.relativeCpi(base);
        const double self_cpi = self_eval.relativeCpi(base);
        const double cross_cpi = cross_eval.relativeCpi(base);
        // Fraction of the self-trained improvement retained.
        const double transfer =
            orig_cpi - self_cpi > 1e-9
                ? 100.0 * (orig_cpi - cross_cpi) / (orig_cpi - self_cpi)
                : 100.0;

        table.row()
            .cell(name)
            .cell(orig_cpi, 3)
            .cell(self_cpi, 3)
            .cell(cross_cpi, 3)
            .cell(transfer, 1);
    }

    std::cout << "Ablation: cross-input profile robustness (FALLTHROUGH, "
                 "Try15)\n(transfer % = share of the self-trained CPI "
                 "improvement kept when aligning\n with a different "
                 "input's profile)\n\n";
    table.print(std::cout);
    return 0;
}
