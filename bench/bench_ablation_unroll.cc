/**
 * @file
 * Ablation for the paper's §3 proposal: unrolling hot single-block loops
 * by basic-block duplication before alignment. The paper predicts reduced
 * misfetch penalties on all architectures and better FALLTHROUGH
 * prediction; ALVINN (where one such loop is 64% of all branches) is the
 * motivating example.
 *
 * Reports relative CPI of aligned (Try15) code with and without unrolling
 * on the loop-dominated FP models and a couple of integer models, under
 * FALLTHROUGH and BT/FNT, plus the static code growth.
 */

#include <iostream>

#include "bench_util.h"
#include "core/unroll.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "trace/profiler.h"
#include "support/log.h"
#include "support/table.h"
#include "workload/generator.h"

using namespace balign;

int
main()
{
    setVerbose(false);
    Table table({"Program", "FT aligned", "FT unroll+aligned", "BF aligned",
                 "BF unroll+aligned", "loops unrolled", "code growth %"});

    const char *names[] = {"alvinn", "ear",  "swm256",  "tomcatv",
                           "eqntott", "compress"};
    for (const char *name : names) {
        ProgramSpec spec = suiteSpec(name);
        if (const char *env = std::getenv("BALIGN_TRACE_INSTRS")) {
            const auto v = std::strtoull(env, nullptr, 10);
            if (v > 0)
                spec.traceInstrs = v;
        }

        // Baseline: profile + align the generated program.
        const PreparedProgram plain = prepareProgram(spec);

        // Unrolled variant: profile first (to find the hot loops), unroll,
        // re-profile, align.
        Program transformed = generateProgram(spec);
        {
            Profiler profiler(transformed);
            WalkOptions options;
            options.seed = traceSeed(spec);
            options.instrBudget = spec.traceInstrs;
            walk(transformed, options, profiler);
        }
        UnrollOptions unroll;
        unroll.factor = 4;
        unroll.minWeight = spec.traceInstrs / 1000;  // hot loops only
        const unsigned loops = unrollSelfLoops(transformed, unroll);
        WalkOptions walk_options;
        walk_options.seed = traceSeed(spec);
        walk_options.instrBudget = spec.traceInstrs;
        const PreparedProgram prepared_unrolled =
            prepareProgram(std::move(transformed), walk_options);

        const std::vector<ExperimentConfig> configs = {
            {Arch::Fallthrough, AlignerKind::Original},
            {Arch::Fallthrough, AlignerKind::Try15},
            {Arch::BtFnt, AlignerKind::Try15},
        };
        const ExperimentRun base = runConfigs(plain, configs);
        const ExperimentRun unrolled =
            runConfigs(prepared_unrolled, configs);

        // Both walks use the same instruction budget and the duplicated
        // blocks execute the same per-iteration work, so the two models'
        // relative CPIs are directly comparable.
        auto rel = [&](const ExperimentRun &run, Arch arch) {
            return run.cell(arch, AlignerKind::Try15).relCpi;
        };

        const double growth =
            100.0 *
            (static_cast<double>(
                 prepared_unrolled.program.totalInstrs()) /
                 static_cast<double>(plain.program.totalInstrs()) -
             1.0);

        table.row()
            .cell(name)
            .cell(rel(base, Arch::Fallthrough), 3)
            .cell(rel(unrolled, Arch::Fallthrough), 3)
            .cell(rel(base, Arch::BtFnt), 3)
            .cell(rel(unrolled, Arch::BtFnt), 3)
            .cell(static_cast<std::uint64_t>(loops))
            .cell(growth, 1);
    }

    std::cout << "Ablation: single-block loop unrolling (factor 4) before "
                 "Try15 alignment\n(relative CPI against each model's "
                 "original layout; unrolled columns rescaled to the plain "
                 "baseline)\n\n";
    table.print(std::cout);
    return 0;
}
