/**
 * @file
 * Reproduces paper Table 2: "Measured attributes of the traced programs".
 *
 * For each program model the harness reports the number of instructions
 * traced, the percentage that break control flow, the branch-site skew
 * (Q-50/90/99/100: how many of the hottest conditional sites cover that
 * fraction of executed conditional branches), the static conditional site
 * count, the taken percentage, and the break-type mix.
 */

#include <iostream>

#include "bench_util.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);
    Table table({"Program", "Insns Traced", "%Breaks", "Q-50", "Q-90",
                 "Q-99", "Q-100", "Static", "%Taken", "%CBr", "%IJ", "%Br",
                 "%Call", "%Ret"});

    std::string group;
    for (const auto &spec : bench::tunedSuite(benchmarkSuite())) {
        if (spec.group != group) {
            if (!group.empty())
                table.separator();
            group = spec.group;
        }
        const PreparedProgram prepared = prepareProgram(spec);
        const ProgramStats &s = prepared.stats;
        table.row()
            .cell(spec.name)
            .cell(s.instrsTraced, true)
            .cell(s.pctBreaks(), 1)
            .cell(static_cast<std::uint64_t>(s.q50))
            .cell(static_cast<std::uint64_t>(s.q90))
            .cell(static_cast<std::uint64_t>(s.q99))
            .cell(static_cast<std::uint64_t>(s.q100))
            .cell(static_cast<std::uint64_t>(s.staticCondSites))
            .cell(s.pctTaken(), 1)
            .cell(s.pctCondOfBreaks(), 1)
            .cell(s.pctIndirectOfBreaks(), 1)
            .cell(s.pctUncondOfBreaks(), 1)
            .cell(s.pctCallOfBreaks(), 1)
            .cell(s.pctReturnOfBreaks(), 1);
    }

    std::cout << "Table 2: measured attributes of the traced programs\n\n";
    table.print(std::cout);
    return 0;
}
