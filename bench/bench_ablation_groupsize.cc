/**
 * @file
 * Ablation (paper §4): the TryN group size. The paper reports that
 * considering 10 nodes at a time gave slightly worse results than 15 for a
 * few programs but ran much faster, and that both beat Greedy. This
 * harness sweeps N over {1, 5, 10, 15} on the FALLTHROUGH architecture
 * (where the search matters most) and also reports the Cost heuristic,
 * which is effectively the N=1 greedy-with-cost-model point.
 */

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);
    Table table({"Program", "Orig", "Greedy", "Cost", "Try1", "Try5",
                 "Try10", "Try15", "align ms (Try15)"});

    const std::vector<std::size_t> sizes = {1, 5, 10, 15};

    for (const auto &spec : bench::tunedSuite(benchmarkSuite())) {
        const PreparedProgram prepared = prepareProgram(spec);
        const Program &program = prepared.program;
        const CostModel model(Arch::Fallthrough);

        auto evaluate = [&](const ProgramLayout &layout) {
            ArchEvaluator eval(program, layout,
                               EvalParams::forArch(Arch::Fallthrough));
            walk(program, prepared.walk, eval.sink());
            return eval.result();
        };

        const ProgramLayout orig = originalLayout(program);
        const std::uint64_t base = evaluate(orig).instrs;

        Table &row = table.row().cell(spec.name);
        row.cell(evaluate(orig).relativeCpi(base), 3);
        row.cell(evaluate(alignProgram(program, AlignerKind::Greedy,
                                       nullptr))
                     .relativeCpi(base),
                 3);
        row.cell(evaluate(alignProgram(program, AlignerKind::Cost, &model))
                     .relativeCpi(base),
                 3);

        double try15_ms = 0.0;
        for (std::size_t n : sizes) {
            AlignOptions options;
            options.groupSize = n;
            const auto start = std::chrono::steady_clock::now();
            const ProgramLayout layout =
                alignProgram(program, AlignerKind::Try15, &model, options);
            const auto stop = std::chrono::steady_clock::now();
            if (n == 15) {
                try15_ms =
                    std::chrono::duration<double, std::milli>(stop - start)
                        .count();
            }
            row.cell(evaluate(layout).relativeCpi(base), 3);
        }
        row.cell(try15_ms, 1);
    }

    std::cout << "Ablation: TryN group size on the FALLTHROUGH architecture "
                 "(relative CPI)\n\n";
    table.print(std::cout);
    return 0;
}
