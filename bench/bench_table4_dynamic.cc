/**
 * @file
 * Reproduces paper Table 4: relative cycles per instruction for the
 * dynamic prediction architectures — a 4096-entry direct-mapped PHT, a
 * 4096-entry correlation (gshare) PHT, a 64-entry 2-way BTB and a
 * 256-entry 4-way (Pentium-like) BTB — under the Original, Greedy and
 * Try15 layouts.
 *
 * Shape targets (paper §6): alignment offers some improvement to the PHTs
 * (mostly removing unconditional branches and taken-branch misfetches from
 * the hot path), little to the large BTB, and more to the small BTB (fewer
 * taken branches -> fewer BTB entries -> fewer misses).
 */

#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);

    const Arch archs[] = {Arch::PhtDirect, Arch::PhtCorrelated,
                          Arch::BtbSmall, Arch::BtbLarge};
    std::vector<ExperimentConfig> configs;
    for (Arch arch : archs) {
        configs.push_back({arch, AlignerKind::Original});
        configs.push_back({arch, AlignerKind::Greedy});
        configs.push_back({arch, AlignerKind::Try15});
    }

    Table table({"Program", "PHT/Orig", "PHT/Greedy", "PHT/Try15",
                 "COR/Orig", "COR/Greedy", "COR/Try15", "BTB64/Orig",
                 "BTB64/Greedy", "BTB64/Try15", "BTB256/Orig",
                 "BTB256/Greedy", "BTB256/Try15"});

    bench::GroupAverages avg;
    auto flush_group = [&](const std::string &label) {
        auto values = avg.averages();
        Table &row = table.row().cell(label + " Avg");
        for (double v : values)
            row.cell(v, 3);
        table.separator();
    };

    const bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions runner;
    runner.times = &times;
    const std::vector<ProgramSpec> suite =
        bench::tunedSuite(benchmarkSuite());
    const std::vector<ExperimentRun> runs =
        runSuite(suite, configs, runner);

    std::string group;
    for (const ExperimentRun &run : runs) {
        if (run.group != group) {
            if (!group.empty())
                flush_group(group);
            group = run.group;
            avg.reset(12);
        }
        std::vector<double> values;
        for (Arch arch : archs) {
            values.push_back(run.cell(arch, AlignerKind::Original).relCpi);
            values.push_back(run.cell(arch, AlignerKind::Greedy).relCpi);
            values.push_back(run.cell(arch, AlignerKind::Try15).relCpi);
        }
        Table &row = table.row().cell(run.name);
        for (double v : values)
            row.cell(v, 3);
        avg.add(values);
    }
    if (!group.empty())
        flush_group(group);

    std::cout << "Table 4: relative CPI, dynamic prediction architectures\n"
              << "(PHT = 4096-entry direct-mapped, COR = 4096-entry "
                 "correlation/gshare,\n"
              << " BTB64 = 64-entry 2-way, BTB256 = 256-entry 4-way)\n\n";
    table.print(std::cout);
    // Timing on stderr so the table on stdout stays byte-identical across
    // thread counts (serial/parallel diffing and golden comparisons).
    std::cerr << bench::timingJson("table4_dynamic", defaultThreads(),
                                   suite.size(), wall.seconds(), times)
              << "\n";
    return 0;
}
