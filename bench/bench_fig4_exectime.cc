/**
 * @file
 * Reproduces paper Figure 4: total execution time on a dual-issue Alpha
 * AXP 21064 model for the SPEC92 C programs, comparing the original
 * layout, the Pettis & Hansen (Greedy) alignment and the Try15 alignment
 * (built with the BTB cost model, per paper §6.1).
 *
 * Shape targets: the floating-point codes (alvinn, ear) see essentially no
 * benefit; gcc, eqntott and sc benefit the most; the paper measured up to
 * a 16% total-time reduction.
 */

#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);
    Table table({"Program", "Original", "Pettis&Hansen", "Try15",
                 "Try15 speedup%", "Orig mispred", "Try15 mispred",
                 "Orig I$ miss", "Try15 I$ miss", "Orig misfetch", "Try15 misfetch"});

    const bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions runner;
    runner.times = &times;
    const std::vector<ProgramSpec> suite = bench::tunedSuite(figure4Suite());
    const std::vector<ExecTimeResult> results =
        runExecTimeSuite(suite, {}, runner);

    for (const ExecTimeResult &r : results) {
        table.row()
            .cell(r.name)
            .cell(1.0, 3)
            .cell(r.greedyRelative, 3)
            .cell(r.try15Relative, 3)
            .cell(100.0 * (1.0 - r.try15Relative), 1)
            .cell(r.origMispredicts, true)
            .cell(r.try15Mispredicts, true)
            .cell(r.origICacheMisses, true)
            .cell(r.try15ICacheMisses, true)
            .cell(r.origMisfetches, true)
            .cell(r.try15Misfetches, true);
    }

    std::cout << "Figure 4: relative total execution time on the dual-issue "
                 "Alpha 21064 model\n(original = 1.0; lower is better)\n\n";
    table.print(std::cout);
    std::cerr << bench::timingJson("fig4_exectime", defaultThreads(),
                                   suite.size(), wall.seconds(), times)
              << "\n";
    return 0;
}
