/**
 * @file
 * Hardware sensitivity sweep (extension): the paper contrasts a 64-entry
 * 2-way BTB with a 256-entry 4-way one and observes that alignment helps
 * the small one more. This harness extends that observation into curves:
 * BTB size and PHT size versus the benefit of Try15 alignment, averaged
 * over the SPECint92 models.
 *
 * Execution: programs run in parallel on the experiment runner's thread
 * pool, and within each program every (structure size, layout) point is an
 * independent replay of the recorded trace. Per-program results are
 * reduced in program order afterwards, so the printed averages are
 * identical for any BALIGN_THREADS.
 */

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "layout/materialize.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"
#include "support/thread_pool.h"

using namespace balign;

namespace {

struct SweepPoint
{
    double orig = 0.0;
    double aligned = 0.0;
    int programs = 0;
};

}  // namespace

int
main()
{
    setVerbose(false);
    const char *names[] = {"compress", "eqntott", "espresso", "gcc", "li",
                           "sc"};
    const std::size_t num_programs = std::size(names);

    // ---- BTB size sweep (ways fixed at 4, except the tiny points). ----
    struct BtbConfig
    {
        std::size_t entries;
        std::size_t ways;
    };
    const BtbConfig btb_configs[] = {{16, 2}, {32, 2}, {64, 2},
                                     {128, 4}, {256, 4}, {1024, 4}};
    std::vector<SweepPoint> btb_points(std::size(btb_configs));

    // ---- PHT size sweep. ----
    const std::size_t pht_sizes[] = {256, 1024, 4096, 16384};
    std::vector<SweepPoint> pht_points(std::size(pht_sizes));

    const bench::WallClock wall;
    PhaseTimes times;
    ThreadPool pool(defaultThreads());

    // Per-program relative CPIs, written to slot [program][point] so the
    // serial reduction below is schedule-independent.
    const std::size_t points_per_program =
        2 * (std::size(btb_configs) + std::size(pht_sizes));
    std::vector<std::vector<double>> rel_cpis(
        num_programs, std::vector<double>(points_per_program, 0.0));

    pool.parallelFor(num_programs, [&](std::size_t prog_index) {
        ProgramSpec spec = suiteSpec(names[prog_index]);
        spec.traceInstrs = 1'000'000;
        if (const char *env = std::getenv("BALIGN_TRACE_INSTRS")) {
            const auto v = std::strtoull(env, nullptr, 10);
            if (v > 0)
                spec.traceInstrs = v;
        }
        PreparedProgram prepared;
        {
            ScopedPhaseTimer timer(&times, "prepare");
            prepared = prepareProgram(spec);
        }

        // Layouts: original and Try15 for each architecture family. The
        // alignment itself uses the default-size cost model, as a real
        // deployment would — the hardware sweep varies the machine, not
        // the compiler.
        const CostModel btb_model(Arch::BtbLarge);
        const CostModel pht_model(Arch::PhtDirect);
        ProgramLayout orig, btb_aligned, pht_aligned;
        {
            ScopedPhaseTimer timer(&times, "align");
            orig = originalLayout(prepared.program);
            btb_aligned = alignProgram(prepared.program, AlignerKind::Try15,
                                       &btb_model);
            pht_aligned = alignProgram(prepared.program, AlignerKind::Try15,
                                       &pht_model);
        }

        // Evaluation points: (params, layout) pairs in a fixed order.
        std::vector<std::pair<EvalParams, const ProgramLayout *>> points;
        for (const auto &config : btb_configs) {
            EvalParams params = EvalParams::forArch(Arch::BtbLarge);
            params.btbEntries = config.entries;
            params.btbWays = config.ways;
            points.emplace_back(params, &orig);
            points.emplace_back(params, &btb_aligned);
        }
        for (std::size_t size : pht_sizes) {
            EvalParams params = EvalParams::forArch(Arch::PhtDirect);
            params.phtEntries = size;
            points.emplace_back(params, &orig);
            points.emplace_back(params, &pht_aligned);
        }

        // The relative-CPI anchor: the original layout's instruction
        // count, identical at every point, so evaluate it once up front.
        ArchEvaluator base_eval(prepared.program, orig, points[0].first);
        {
            ScopedPhaseTimer timer(&times, "replay");
            prepared.trace->replay(prepared.program, base_eval.sink());
        }
        const std::uint64_t base = base_eval.result().instrs;

        // Each point replays the recorded trace independently; nested
        // parallelFor shares the same pool.
        std::vector<double> &out = rel_cpis[prog_index];
        pool.parallelFor(points.size(), [&](std::size_t p) {
            ScopedPhaseTimer timer(&times, "replay");
            ArchEvaluator eval(prepared.program, *points[p].second,
                               points[p].first);
            prepared.trace->replay(prepared.program, eval.sink());
            out[p] = eval.result().relativeCpi(base);
        });
    });

    // Order-stable reduction: programs in name order, points in sweep order.
    for (std::size_t prog_index = 0; prog_index < num_programs;
         ++prog_index) {
        std::size_t index = 0;
        for (std::size_t c = 0; c < std::size(btb_configs); ++c) {
            btb_points[c].orig += rel_cpis[prog_index][index++];
            btb_points[c].aligned += rel_cpis[prog_index][index++];
            ++btb_points[c].programs;
        }
        for (std::size_t c = 0; c < std::size(pht_sizes); ++c) {
            pht_points[c].orig += rel_cpis[prog_index][index++];
            pht_points[c].aligned += rel_cpis[prog_index][index++];
            ++pht_points[c].programs;
        }
    }

    std::cout << "Hardware sweep: alignment benefit vs predictor size "
                 "(SPECint92 average relative CPI)\n\n";
    Table btb_table({"BTB", "orig", "Try15", "gain"});
    for (std::size_t c = 0; c < std::size(btb_configs); ++c) {
        const auto &point = btb_points[c];
        const double orig = point.orig / point.programs;
        const double aligned = point.aligned / point.programs;
        btb_table.row()
            .cell(std::to_string(btb_configs[c].entries) + "x" +
                  std::to_string(btb_configs[c].ways))
            .cell(orig, 3)
            .cell(aligned, 3)
            .cell(orig - aligned, 3);
    }
    btb_table.print(std::cout);

    std::cout << "\n";
    Table pht_table({"PHT entries", "orig", "Try15", "gain"});
    for (std::size_t c = 0; c < std::size(pht_sizes); ++c) {
        const auto &point = pht_points[c];
        const double orig = point.orig / point.programs;
        const double aligned = point.aligned / point.programs;
        pht_table.row()
            .cell(static_cast<std::uint64_t>(pht_sizes[c]))
            .cell(orig, 3)
            .cell(aligned, 3)
            .cell(orig - aligned, 3);
    }
    pht_table.print(std::cout);
    std::cout << "\n(the smaller the structure, the more alignment helps "
                 "— the paper's small-vs-large BTB point, as a curve)\n";
    std::cerr << bench::timingJson("sweep_hardware", defaultThreads(),
                                   num_programs, wall.seconds(), times)
              << "\n";
    return 0;
}
