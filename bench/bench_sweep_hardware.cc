/**
 * @file
 * Hardware sensitivity sweep (extension): the paper contrasts a 64-entry
 * 2-way BTB with a 256-entry 4-way one and observes that alignment helps
 * the small one more. This harness extends that observation into curves:
 * BTB size and PHT size versus the benefit of Try15 alignment, averaged
 * over the SPECint92 models.
 */

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

namespace {

struct SweepPoint
{
    double orig = 0.0;
    double aligned = 0.0;
    int programs = 0;
};

}  // namespace

int
main()
{
    setVerbose(false);
    const char *names[] = {"compress", "eqntott", "espresso", "gcc", "li",
                           "sc"};

    // ---- BTB size sweep (ways fixed at 4, except the tiny points). ----
    struct BtbConfig
    {
        std::size_t entries;
        std::size_t ways;
    };
    const BtbConfig btb_configs[] = {{16, 2}, {32, 2}, {64, 2},
                                     {128, 4}, {256, 4}, {1024, 4}};
    std::vector<SweepPoint> btb_points(std::size(btb_configs));

    // ---- PHT size sweep. ----
    const std::size_t pht_sizes[] = {256, 1024, 4096, 16384};
    std::vector<SweepPoint> pht_points(std::size(pht_sizes));

    for (const char *name : names) {
        ProgramSpec spec = suiteSpec(name);
        spec.traceInstrs = 1'000'000;
        if (const char *env = std::getenv("BALIGN_TRACE_INSTRS")) {
            const auto v = std::strtoull(env, nullptr, 10);
            if (v > 0)
                spec.traceInstrs = v;
        }
        const PreparedProgram prepared = prepareProgram(spec);

        // Layouts: original and Try15 for each architecture family. The
        // alignment itself uses the default-size cost model, as a real
        // deployment would — the hardware sweep varies the machine, not
        // the compiler.
        const CostModel btb_model(Arch::BtbLarge);
        const CostModel pht_model(Arch::PhtDirect);
        const ProgramLayout orig = originalLayout(prepared.program);
        const ProgramLayout btb_aligned = alignProgram(
            prepared.program, AlignerKind::Try15, &btb_model);
        const ProgramLayout pht_aligned = alignProgram(
            prepared.program, AlignerKind::Try15, &pht_model);

        std::vector<std::unique_ptr<ArchEvaluator>> evaluators;
        MultiSink fanout;
        auto add_eval = [&](const ProgramLayout &layout,
                            const EvalParams &params) {
            evaluators.push_back(std::make_unique<ArchEvaluator>(
                prepared.program, layout, params));
            fanout.add(&evaluators.back()->sink());
        };
        for (const auto &config : btb_configs) {
            EvalParams params = EvalParams::forArch(Arch::BtbLarge);
            params.btbEntries = config.entries;
            params.btbWays = config.ways;
            add_eval(orig, params);
            add_eval(btb_aligned, params);
        }
        for (std::size_t size : pht_sizes) {
            EvalParams params = EvalParams::forArch(Arch::PhtDirect);
            params.phtEntries = size;
            add_eval(orig, params);
            add_eval(pht_aligned, params);
        }
        walk(prepared.program, prepared.walk, fanout);

        const std::uint64_t base = evaluators[0]->result().instrs;
        std::size_t index = 0;
        for (std::size_t c = 0; c < std::size(btb_configs); ++c) {
            btb_points[c].orig +=
                evaluators[index++]->result().relativeCpi(base);
            btb_points[c].aligned +=
                evaluators[index++]->result().relativeCpi(base);
            ++btb_points[c].programs;
        }
        for (std::size_t c = 0; c < std::size(pht_sizes); ++c) {
            pht_points[c].orig +=
                evaluators[index++]->result().relativeCpi(base);
            pht_points[c].aligned +=
                evaluators[index++]->result().relativeCpi(base);
            ++pht_points[c].programs;
        }
    }

    std::cout << "Hardware sweep: alignment benefit vs predictor size "
                 "(SPECint92 average relative CPI)\n\n";
    Table btb_table({"BTB", "orig", "Try15", "gain"});
    for (std::size_t c = 0; c < std::size(btb_configs); ++c) {
        const auto &point = btb_points[c];
        const double orig = point.orig / point.programs;
        const double aligned = point.aligned / point.programs;
        btb_table.row()
            .cell(std::to_string(btb_configs[c].entries) + "x" +
                  std::to_string(btb_configs[c].ways))
            .cell(orig, 3)
            .cell(aligned, 3)
            .cell(orig - aligned, 3);
    }
    btb_table.print(std::cout);

    std::cout << "\n";
    Table pht_table({"PHT entries", "orig", "Try15", "gain"});
    for (std::size_t c = 0; c < std::size(pht_sizes); ++c) {
        const auto &point = pht_points[c];
        const double orig = point.orig / point.programs;
        const double aligned = point.aligned / point.programs;
        pht_table.row()
            .cell(static_cast<std::uint64_t>(pht_sizes[c]))
            .cell(orig, 3)
            .cell(aligned, 3)
            .cell(orig - aligned, 3);
    }
    pht_table.print(std::cout);
    std::cout << "\n(the smaller the structure, the more alignment helps "
                 "— the paper's small-vs-large BTB point, as a curve)\n";
    return 0;
}
