/**
 * @file
 * Reproduces paper Figure 3: the loop where the Greedy algorithm cannot
 * improve the layout (every profitable link is blocked by its own earlier
 * chain) but Try15's group search rotates the loop, removing the
 * loop-closing unconditional branch and cutting branch cost by about a
 * third under the LIKELY/BT-FNT cost model.
 *
 * The harness prints the modelled branch cost (paper Table 1 costs) of the
 * original, Greedy and Try15 layouts from the static profile, plus the
 * measured BEP from a trace replay.
 */

#include <cstdio>

#include "bpred/static_cost.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "trace/walker.h"
#include "workload/paper_figures.h"

using namespace balign;

namespace {

void
printLayout(const char *label, const Program &program,
            const ProgramLayout &layout, double cost)
{
    std::printf("%-8s cost %8.0f cycles | block order:", label, cost);
    for (BlockId id : layout.procs[0].order)
        std::printf(" %u", id);
    std::printf(" | jumps +%u -%u, senses inverted %u\n",
                layout.procs[0].jumpsInserted, layout.procs[0].jumpsRemoved,
                layout.procs[0].sensesInverted);
    (void)program;
}

}  // namespace

int
main()
{
    setVerbose(false);
    const Program program = figure3Loop();
    const CostModel likely(Arch::Likely);

    const ProgramLayout orig = originalLayout(program);
    const ProgramLayout greedy =
        alignProgram(program, AlignerKind::Greedy, nullptr);
    const ProgramLayout try15 =
        alignProgram(program, AlignerKind::Try15, &likely);

    const double cost_orig = modeledBranchCost(program, orig, likely);
    const double cost_greedy = modeledBranchCost(program, greedy, likely);
    const double cost_try15 = modeledBranchCost(program, try15, likely);

    std::printf("Figure 3: loop alignment, LIKELY cost model "
                "(blocks: 0=E 1=A 2=B 3=C 4=D)\n\n");
    printLayout("original", program, orig, cost_orig);
    printLayout("greedy", program, greedy, cost_greedy);
    printLayout("try15", program, try15, cost_try15);

    std::printf("\nbranch-cost reduction vs original: greedy %.1f%%, "
                "try15 %.1f%%\n",
                100.0 * (1.0 - cost_greedy / cost_orig),
                100.0 * (1.0 - cost_try15 / cost_orig));
    std::printf("(paper: 36,002 -> 27,004 cycles, a ~1/3 reduction, with "
                "the Greedy layout unchanged)\n");
    return 0;
}
