/**
 * @file
 * Shared helpers for the table/figure bench harnesses.
 *
 * Environment knobs:
 *   BALIGN_TRACE_INSTRS  override the per-program trace length
 *   BALIGN_PROGRAMS      comma-separated subset of suite program names
 */

#ifndef BALIGN_BENCH_BENCH_UTIL_H
#define BALIGN_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workload/spec.h"
#include "workload/suite.h"

namespace balign::bench {

/// Applies BALIGN_TRACE_INSTRS / BALIGN_PROGRAMS to the suite.
inline std::vector<ProgramSpec>
tunedSuite(std::vector<ProgramSpec> suite)
{
    if (const char *env = std::getenv("BALIGN_TRACE_INSTRS")) {
        const auto budget = std::strtoull(env, nullptr, 10);
        if (budget > 0) {
            for (auto &spec : suite)
                spec.traceInstrs = budget;
        }
    }
    if (const char *env = std::getenv("BALIGN_PROGRAMS")) {
        std::vector<ProgramSpec> filtered;
        const std::string list = env;
        for (const auto &spec : suite) {
            std::size_t pos = 0;
            bool keep = false;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                const std::string name =
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos);
                if (name == spec.name) {
                    keep = true;
                    break;
                }
                pos = comma == std::string::npos ? comma : comma + 1;
            }
            if (keep)
                filtered.push_back(spec);
        }
        if (!filtered.empty())
            return filtered;
    }
    return suite;
}

/// Group-average tracker preserving the paper's grouping rows.
struct GroupAverages
{
    std::string current;
    std::vector<double> sums;
    std::size_t count = 0;

    /// Returns true when a group boundary was crossed (caller prints the
    /// previous group's average first).
    bool
    enter(const std::string &group, std::size_t columns)
    {
        if (group == current)
            return false;
        const bool had = count > 0;
        current = group;
        if (!had) {
            sums.assign(columns, 0.0);
            count = 0;
        }
        return had;
    }

    void
    add(const std::vector<double> &values)
    {
        if (sums.size() < values.size())
            sums.resize(values.size(), 0.0);
        for (std::size_t i = 0; i < values.size(); ++i)
            sums[i] += values[i];
        ++count;
    }

    std::vector<double>
    averages() const
    {
        std::vector<double> result(sums.size(), 0.0);
        if (count == 0)
            return result;
        for (std::size_t i = 0; i < sums.size(); ++i)
            result[i] = sums[i] / static_cast<double>(count);
        return result;
    }

    void
    reset(std::size_t columns)
    {
        sums.assign(columns, 0.0);
        count = 0;
    }
};

}  // namespace balign::bench

#endif  // BALIGN_BENCH_BENCH_UTIL_H
