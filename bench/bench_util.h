/**
 * @file
 * Shared helpers for the table/figure bench harnesses.
 *
 * Environment knobs:
 *   BALIGN_TRACE_INSTRS  override the per-program trace length
 *   BALIGN_PROGRAMS      comma-separated subset of suite program names
 */

#ifndef BALIGN_BENCH_BENCH_UTIL_H
#define BALIGN_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "support/log.h"
#include "support/stats.h"
#include "workload/spec.h"
#include "workload/suite.h"

namespace balign::bench {

/// Applies BALIGN_TRACE_INSTRS / BALIGN_PROGRAMS to the suite. Unknown
/// names in BALIGN_PROGRAMS are a fatal error — a typo must not silently
/// fall back to running the full suite.
inline std::vector<ProgramSpec>
tunedSuite(std::vector<ProgramSpec> suite)
{
    if (const char *env = std::getenv("BALIGN_TRACE_INSTRS")) {
        const auto budget = std::strtoull(env, nullptr, 10);
        if (budget > 0) {
            for (auto &spec : suite)
                spec.traceInstrs = budget;
        }
    }
    if (const char *env = std::getenv("BALIGN_PROGRAMS")) {
        const std::string list = env;
        const char *separators = ", \t";
        std::vector<std::string> names;
        std::size_t pos = 0;
        while (pos <= list.size()) {
            const std::size_t sep = list.find_first_of(separators, pos);
            const std::size_t end =
                sep == std::string::npos ? list.size() : sep;
            if (end > pos)
                names.push_back(list.substr(pos, end - pos));
            pos = end + 1;
        }
        for (const auto &name : names) {
            bool known = false;
            for (const auto &spec : suite)
                known = known || spec.name == name;
            if (!known)
                fatal("BALIGN_PROGRAMS: '%s' is not a suite program",
                      name.c_str());
        }
        std::vector<ProgramSpec> filtered;
        for (const auto &spec : suite) {
            for (const auto &name : names) {
                if (spec.name == name) {
                    filtered.push_back(spec);
                    break;
                }
            }
        }
        if (filtered.empty())
            fatal("BALIGN_PROGRAMS='%s' selected no suite programs", env);
        return filtered;
    }
    return suite;
}

/**
 * One-line machine-readable timing record for the perf trajectory:
 *   {"bench":NAME,"threads":N,"programs":M,"wall_s":W,"phases":{...}}
 * wall_s is elapsed time; the phase values are summed across threads.
 */
inline std::string
timingJson(const char *bench, unsigned threads, std::size_t programs,
           double wall_seconds, const PhaseTimes &times)
{
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"bench\":\"%s\",\"threads\":%u,\"programs\":%zu,"
                  "\"wall_s\":%.6f,\"phases\":",
                  bench, threads, programs, wall_seconds);
    return std::string(head) + times.json() + "}";
}

/// Elapsed-seconds stopwatch for the wall_s field.
class WallClock
{
  public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start_;
        return elapsed.count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/// Group-average tracker preserving the paper's grouping rows.
struct GroupAverages
{
    std::string current;
    std::vector<double> sums;
    std::size_t count = 0;

    /// Returns true when a group boundary was crossed (caller prints the
    /// previous group's average first).
    bool
    enter(const std::string &group, std::size_t columns)
    {
        if (group == current)
            return false;
        const bool had = count > 0;
        current = group;
        if (!had) {
            sums.assign(columns, 0.0);
            count = 0;
        }
        return had;
    }

    void
    add(const std::vector<double> &values)
    {
        if (sums.size() < values.size())
            sums.resize(values.size(), 0.0);
        for (std::size_t i = 0; i < values.size(); ++i)
            sums[i] += values[i];
        ++count;
    }

    std::vector<double>
    averages() const
    {
        std::vector<double> result(sums.size(), 0.0);
        if (count == 0)
            return result;
        for (std::size_t i = 0; i < sums.size(); ++i)
            result[i] = sums[i] / static_cast<double>(count);
        return result;
    }

    void
    reset(std::size_t columns)
    {
        sums.assign(columns, 0.0);
        count = 0;
    }
};

}  // namespace balign::bench

#endif  // BALIGN_BENCH_BENCH_UTIL_H
