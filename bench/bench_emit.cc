/**
 * @file
 * Encoded-size benchmark: the static byte cost of every suite program
 * under both encoding models, and what alignment does to it.
 *
 * For each program the Original and Cost (table-cost, BT/FNT) layouts
 * are relaxed under the FixedWord and Variable models and the final
 * byte totals, branch-form splits and sweep counts reported. Under
 * FixedWord the byte total is layout-invariant (4 bytes per slot, give
 * or take inserted jumps); under Variable the table shows the size the
 * relaxation fixpoint actually settles at — the quantity the
 * size-aware objective prices and CI soft-gates against
 * bench/emit_baseline.json.
 *
 * A second phase measures decode throughput: each program's Cost-layout
 * object is emitted once under the Variable model and the independent
 * disassembler (disasm/disasm.h) re-decodes its .text repeatedly until a
 * fixed byte target is consumed, giving MB/s per program and in
 * aggregate — the cost of the check-obj validation loop, minus the
 * obligation checks themselves. The throughput keys ride along in
 * bench/emit_baseline.json for reference; CI's soft gate compares only
 * the deterministic size keys.
 *
 * Flags:
 *   --quick   cap the per-program trace at 50k instructions
 *             (BALIGN_TRACE_INSTRS still wins when set)
 *   --json    one machine-readable JSON document on stdout
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "disasm/disasm.h"
#include "emit/elf.h"
#include "emit/relax.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

namespace {

constexpr Arch kArch = Arch::BtFnt;

struct SizeRow
{
    std::uint64_t fixedBytes = 0;     ///< FixedWord, any layout
    std::uint64_t origBytes = 0;      ///< Variable, Original layout
    std::uint64_t alignedBytes = 0;   ///< Variable, Cost layout
    std::uint64_t shortBranches = 0;  ///< Variable, Cost layout
    std::uint64_t nearBranches = 0;
    std::uint32_t sweeps = 0;         ///< relaxation sweeps, Cost layout
    double decodeMbps = 0.0;          ///< disassembler throughput
    std::uint64_t decodedBytes = 0;   ///< bytes consumed measuring it
    double decodeSeconds = 0.0;
};

SizeRow
measure(const Program &program, std::uint64_t decode_target)
{
    const CostModel model(kArch);
    AlignOptions options;
    options.chainOrder = ChainOrderPolicy::BtFntPrecedence;
    const ProgramLayout original =
        alignProgram(program, AlignerKind::Original, &model, options);
    const ProgramLayout aligned =
        alignProgram(program, AlignerKind::Cost, &model, options);

    const EncodingModel &fixed = encodingModel(EncodingModelKind::FixedWord);
    const EncodingModel &variable =
        encodingModel(EncodingModelKind::Variable);

    SizeRow row;
    row.fixedBytes = relaxLayout(program, aligned, fixed).totalBytes;
    row.origBytes = relaxLayout(program, original, variable).totalBytes;
    const RelaxedLayout relaxed = relaxLayout(program, aligned, variable);
    if (!relaxed.converged)
        fatal("bench_emit: relaxation failed: %s",
              relaxed.diagnostic.c_str());
    row.alignedBytes = relaxed.totalBytes;
    row.shortBranches = relaxed.shortBranches;
    row.nearBranches = relaxed.nearBranches;
    row.sweeps = relaxed.iterations;

    // Decode-throughput phase: parse once, then re-decode .text until
    // the deterministic byte target is consumed.
    const ParsedElf parsed =
        parseElfObject(buildElfObject(program, relaxed, variable));
    if (!parsed.ok)
        fatal("bench_emit: emitted object does not parse: %s",
              parsed.error.c_str());
    const std::uint64_t iters =
        std::max<std::uint64_t>(8, decode_target / relaxed.totalBytes);
    std::uint64_t decoded_instrs = 0;
    const bench::WallClock clock;
    for (std::uint64_t i = 0; i < iters; ++i) {
        const Disassembly disasm = disassembleObject(parsed);
        for (const DecodedProc &proc : disasm.procs) {
            if (!proc.ok)
                fatal("bench_emit: decode failed: %s", proc.error.c_str());
            decoded_instrs += proc.instrs.size();
        }
    }
    row.decodeSeconds = clock.seconds();
    row.decodedBytes = iters * relaxed.totalBytes;
    if (decoded_instrs == 0)
        fatal("bench_emit: decoded no instructions");
    if (row.decodeSeconds > 0.0) {
        row.decodeMbps = static_cast<double>(row.decodedBytes) / 1e6 /
                         row.decodeSeconds;
    }
    return row;
}

}  // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    bool quick = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else
            fatal("bench_emit: unknown flag '%s'", argv[i]);
    }

    std::vector<ProgramSpec> suite = bench::tunedSuite(benchmarkSuite());
    if (quick && std::getenv("BALIGN_TRACE_INSTRS") == nullptr) {
        for (ProgramSpec &spec : suite)
            spec.traceInstrs = 50'000;
    }

    const bench::WallClock wall;
    PhaseTimes times;

    // ~2 MB of decode work per program in quick/CI runs, ~16 MB for a
    // stable local measurement.
    const std::uint64_t decode_target =
        quick ? 2u << 20 : 16u << 20;

    std::vector<SizeRow> rows;
    std::uint64_t total_fixed = 0;
    std::uint64_t total_variable = 0;
    std::uint64_t total_decoded = 0;
    double total_decode_seconds = 0.0;
    for (const ProgramSpec &spec : suite) {
        const PreparedProgram prepared = prepareProgram(spec);
        rows.push_back(measure(prepared.program, decode_target));
        total_fixed += rows.back().fixedBytes;
        total_variable += rows.back().alignedBytes;
        total_decoded += rows.back().decodedBytes;
        total_decode_seconds += rows.back().decodeSeconds;
    }
    const double total_mbps =
        total_decode_seconds > 0.0
            ? static_cast<double>(total_decoded) / 1e6 /
                  total_decode_seconds
            : 0.0;

    if (json) {
        std::ostream &os = std::cout;
        os << "{\"bench\":\"emit\",\"arch\":\"" << archName(kArch)
           << "\",\"programs\":[";
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const SizeRow &row = rows[i];
            os << (i ? "," : "") << "{\"name\":\"" << suite[i].name
               << "\",\"fixed_bytes\":" << row.fixedBytes
               << ",\"variable_orig_bytes\":" << row.origBytes
               << ",\"variable_aligned_bytes\":" << row.alignedBytes
               << ",\"short_branches\":" << row.shortBranches
               << ",\"near_branches\":" << row.nearBranches
               << ",\"relax_sweeps\":" << row.sweeps
               << ",\"decode_mbps\":" << row.decodeMbps << "}";
        }
        os << "],\"total_fixed_bytes\":" << total_fixed
           << ",\"total_variable_bytes\":" << total_variable
           << ",\"decode_mbps\":" << total_mbps << "}\n";
    } else {
        Table table({"Program", "fixed B", "var orig B", "var cost B",
                     "short", "near", "sweeps", "vs fixed", "dec MB/s"});
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const SizeRow &row = rows[i];
            table.row()
                .cell(suite[i].name)
                .cell(static_cast<double>(row.fixedBytes), 0)
                .cell(static_cast<double>(row.origBytes), 0)
                .cell(static_cast<double>(row.alignedBytes), 0)
                .cell(static_cast<double>(row.shortBranches), 0)
                .cell(static_cast<double>(row.nearBranches), 0)
                .cell(static_cast<double>(row.sweeps), 0)
                .cell(static_cast<double>(row.alignedBytes) /
                          static_cast<double>(row.fixedBytes),
                      3)
                .cell(row.decodeMbps, 1);
        }
        std::cout << "Encoded size: relaxed bytes per encoding model "
                     "(cost layout, "
                  << archName(kArch) << ")\n\n";
        table.print(std::cout);
        std::cout << "\nsuite total: fixed " << total_fixed
                  << " B, variable " << total_variable << " B ("
                  << (100.0 * (1.0 - static_cast<double>(total_variable) /
                                         static_cast<double>(total_fixed)))
                  << "% smaller); decode throughput " << total_mbps
                  << " MB/s\n";
    }

    std::cerr << bench::timingJson("emit", defaultThreads(), suite.size(),
                                   wall.seconds(), times)
              << "\n";
    return 0;
}
