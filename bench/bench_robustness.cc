/**
 * @file
 * Profile robustness: CPI-degradation curves and incremental realignment.
 *
 * Part 1 — curves. Every suite program is aligned on a *degraded* copy of
 * its profile and measured on the true recorded trace (the
 * ExperimentConfig degrade axis), for a 2x2 contender matrix (Cost and
 * Try15 under the Table-1 and ExtTSP objectives) crossed with every
 * degradation family (profile/degrade.h) along a severity ladder:
 * sampling 1/N, stale inputs, multiplicative noise eps, cross-input
 * merges, and adversarial drift t — plus the profile-free endpoint (the
 * static estimate, ProfileSource::Estimated), which is just the far end
 * of the same ladder. The curve value is the suite-mean relative CPI
 * (vs. the original layout, BT/FNT); the true-profile alignment is the
 * zero point every curve is read against.
 *
 * The ExtTSP-vs-Table-1 robustness question is answered per degradation
 * point, not just on suite means: for each ladder point the per-program
 * CPI delta vs. the true-profile alignment is paired across objectives
 * and a two-sided sign test reports whether one objective degrades
 * significantly less than the other under that specific degradation.
 * The sign tests are run per ARCHITECTURE: the full ladder on the
 * headline BT/FNT machine, and a reduced ladder (one representative
 * severity per degradation family plus the static-estimate endpoint) on
 * every other Table-1 architecture, so robustness.json records a
 * p-value per (aligner, arch, degradation) rather than assuming the
 * BT/FNT ordering generalizes. Printed tables stay BT/FNT.
 *
 * Part 2 — incremental realignment. For each program and contender the
 * profile is moved (perturb eps=0.5) and realignProgram sweeps a
 * threshold ladder from 0 (full realignment) to infinity (keep the old
 * layout). Reported per threshold: the fraction of procedures
 * re-laid-out (the cost) and the suite-mean relative CPI of the spliced
 * layout measured on the true recorded trace (the quality), plus
 * byte-identity checks at both endpoints (layout_diff.h).
 *
 * Flags:
 *   --quick   cap the per-program trace at 50k instructions (CI smoke;
 *             BALIGN_TRACE_INSTRS still wins when set)
 *   --json    emit one machine-readable JSON document on stdout instead
 *             of the tables
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "check/differ.h"
#include "core/realign.h"
#include "layout/layout_diff.h"
#include "layout/materialize.h"
#include "profile/degrade.h"
#include "sim/batch_replay.h"
#include "sim/runner.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

namespace {

constexpr Arch kArch = Arch::BtFnt;

struct Contender
{
    const char *label;
    AlignerKind kind;
    ObjectiveKind objective;
};

const Contender kContenders[] = {
    {"cost/table-cost", AlignerKind::Cost, ObjectiveKind::TableCost},
    {"cost/exttsp", AlignerKind::Cost, ObjectiveKind::ExtTsp},
    {"try15/table-cost", AlignerKind::Try15, ObjectiveKind::TableCost},
    {"try15/exttsp", AlignerKind::Try15, ObjectiveKind::ExtTsp},
};

constexpr std::size_t kNumContenders =
    sizeof(kContenders) / sizeof(kContenders[0]);

DegradeSpec
makeSpec(DegradeKind kind, std::uint32_t n, double param,
         std::uint64_t seed)
{
    DegradeSpec spec;
    spec.kind = kind;
    spec.n = n;
    spec.param = param;
    spec.seed = seed;
    return spec;
}

/// The severity ladder for every degradation family; the leading None is
/// the zero point of every curve.
std::vector<DegradeSpec>
severityLadder()
{
    std::vector<DegradeSpec> ladder;
    ladder.push_back(DegradeSpec::none());
    for (const std::uint32_t n : {4u, 16u, 64u, 256u})
        ladder.push_back(makeSpec(DegradeKind::Sample, n, 0.0, 1));
    for (const std::uint64_t seed : {2u, 3u, 4u})
        ladder.push_back(makeSpec(DegradeKind::Stale, 0, 0.0, seed));
    for (const double eps : {0.25, 0.5, 1.0, 2.0})
        ladder.push_back(makeSpec(DegradeKind::Perturb, 0, eps, 1));
    for (const std::uint32_t k : {1u, 3u, 7u})
        ladder.push_back(makeSpec(DegradeKind::Merge, k, 0.0, 1));
    for (const double t : {0.25, 0.5, 0.75, 1.0})
        ladder.push_back(makeSpec(DegradeKind::Drift, 0, t, 1));
    return ladder;
}

/// One representative severity per family — the per-architecture sign
/// tests walk this instead of the full ladder to keep the cell count
/// linear in the number of architectures. The leading None is the
/// delta zero point, as in severityLadder().
std::vector<DegradeSpec>
reducedLadder()
{
    return {DegradeSpec::none(),
            makeSpec(DegradeKind::Sample, 64, 0.0, 1),
            makeSpec(DegradeKind::Stale, 0, 0.0, 2),
            makeSpec(DegradeKind::Perturb, 0, 0.5, 1),
            makeSpec(DegradeKind::Merge, 3, 0.0, 1),
            makeSpec(DegradeKind::Drift, 0, 0.5, 1)};
}

/**
 * Two-sided sign test on @p wins successes out of @p wins + @p losses
 * paired comparisons (ties dropped): the probability under H0 (p = 1/2)
 * of a split at least this lopsided. Exact binomial, small n.
 */
double
signTestPValue(std::size_t wins, std::size_t losses)
{
    const std::size_t n = wins + losses;
    if (n == 0)
        return 1.0;
    const std::size_t extreme = std::max(wins, losses);
    // P(X >= extreme) for X ~ Binomial(n, 1/2), doubled and capped.
    double coeff = 1.0;  // C(n, k) rolling
    double tail = 0.0;
    for (std::size_t k = 0; k <= n; ++k) {
        if (k >= extreme)
            tail += coeff;
        coeff = coeff * static_cast<double>(n - k) /
                static_cast<double>(k + 1);
    }
    const double p = 2.0 * tail * std::pow(0.5, static_cast<double>(n));
    return std::min(p, 1.0);
}

/// Paired per-degradation comparison of the two objectives under one
/// aligner: mean deltas vs. the true-profile zero point and the sign
/// test over the per-program delta pairs.
struct DeltaCompare
{
    double meanDeltaTc = 0.0;  ///< table-cost mean CPI delta vs true
    double meanDeltaXt = 0.0;  ///< exttsp mean CPI delta vs true
    std::size_t winsXt = 0;    ///< programs where exttsp degraded less
    std::size_t winsTc = 0;    ///< programs where table-cost degraded less
    double pValue = 1.0;       ///< two-sided sign test (ties dropped)
};

/// The realignment threshold ladder (labels double as JSON keys).
struct ThresholdStep
{
    const char *label;
    double value;
};

const ThresholdStep kThresholds[] = {
    {"0", 0.0},         {"0.05", 0.05}, {"0.15", 0.15},
    {"0.35", 0.35},     {"0.75", 0.75}, {"inf", kNeverRealign},
};

constexpr std::size_t kNumThresholds =
    sizeof(kThresholds) / sizeof(kThresholds[0]);

/// Per-threshold suite aggregates for one contender.
struct RealignPoint
{
    double realignedFrac = 0.0;  ///< procedures re-laid-out / total
    double relCpi = 0.0;         ///< spliced layout on the moved trace
    bool identicalToFull = true; ///< threshold 0 == full alignProgram
    bool identicalToOld = true;  ///< threshold inf == old layout
};

EvalResult
evalLayout(const PreparedProgram &prepared, const ProgramLayout &layout)
{
    return runBatchReplay(prepared.program, layout, *prepared.batch,
                          {EvalParams::forArch(kArch)})[0];
}

}  // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    bool quick = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else
            fatal("bench_robustness: unknown flag '%s'", argv[i]);
    }

    std::vector<ProgramSpec> suite = bench::tunedSuite(benchmarkSuite());
    if (quick && std::getenv("BALIGN_TRACE_INSTRS") == nullptr) {
        for (ProgramSpec &spec : suite)
            spec.traceInstrs = 50'000;
    }

    const std::vector<DegradeSpec> ladder = severityLadder();
    // Points per contender: the degradation ladder plus the profile-free
    // endpoint (the static estimate) as its final rung.
    const std::size_t num_points = ladder.size() + 1;
    std::vector<ExperimentConfig> configs;
    configs.push_back({kArch, AlignerKind::Original});
    for (const Contender &contender : kContenders) {
        for (const DegradeSpec &spec : ladder) {
            ExperimentConfig config{kArch, contender.kind,
                                    contender.objective};
            config.degrade = spec;
            configs.push_back(config);
        }
        ExperimentConfig estimated{kArch, contender.kind,
                                   contender.objective};
        estimated.source = ProfileSource::Estimated;
        configs.push_back(estimated);
    }

    // The per-architecture sign-test cells: every non-headline Table-1
    // architecture walks the reduced ladder (plus the estimate endpoint)
    // under each contender. The headline arch reuses the full-ladder
    // cells above.
    const std::vector<DegradeSpec> reduced = reducedLadder();
    const std::size_t num_reduced = reduced.size() + 1;
    std::vector<Arch> other_archs;
    for (const Arch arch : allArchs()) {
        if (arch != kArch)
            other_archs.push_back(arch);
    }
    for (const Arch arch : other_archs) {
        for (const Contender &contender : kContenders) {
            for (const DegradeSpec &spec : reduced) {
                ExperimentConfig config{arch, contender.kind,
                                        contender.objective};
                config.degrade = spec;
                configs.push_back(config);
            }
            ExperimentConfig estimated{arch, contender.kind,
                                       contender.objective};
            estimated.source = ProfileSource::Estimated;
            configs.push_back(estimated);
        }
    }

    const bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions runner;
    runner.times = &times;
    const std::vector<ExperimentRun> runs = runSuite(suite, configs, runner);

    // Part 1: per-program relative CPI per (contender, ladder point).
    // Cell order inside each run mirrors `configs`.
    std::vector<std::vector<std::vector<double>>> values(
        kNumContenders,
        std::vector<std::vector<double>>(num_points));
    // archValues[a][c][p][program]: the reduced-ladder cells of the
    // non-headline architectures, in `other_archs` order.
    std::vector<std::vector<std::vector<std::vector<double>>>> archValues(
        other_archs.size(),
        std::vector<std::vector<std::vector<double>>>(
            kNumContenders,
            std::vector<std::vector<double>>(num_reduced)));
    for (const ExperimentRun &run : runs) {
        std::size_t cell = 1;  // skip the Original cell
        for (std::size_t c = 0; c < kNumContenders; ++c) {
            for (std::size_t p = 0; p < num_points; ++p)
                values[c][p].push_back(run.cells[cell++].relCpi);
        }
        for (std::size_t a = 0; a < other_archs.size(); ++a) {
            for (std::size_t c = 0; c < kNumContenders; ++c) {
                for (std::size_t p = 0; p < num_reduced; ++p)
                    archValues[a][c][p].push_back(
                        run.cells[cell++].relCpi);
            }
        }
    }
    std::vector<std::vector<double>> curves(
        kNumContenders, std::vector<double>(num_points, 0.0));
    for (std::size_t c = 0; c < kNumContenders; ++c) {
        for (std::size_t p = 0; p < num_points; ++p) {
            for (const double value : values[c][p])
                curves[c][p] += value;
            curves[c][p] /= static_cast<double>(runs.size());
        }
    }

    // Per-degradation objective comparison: pair the per-program deltas
    // (vs. the true-profile zero point) of table-cost and exttsp under
    // the same aligner and sign-test them. Contender layout: pairs are
    // (0, 1) = cost and (2, 3) = try15.
    const std::size_t kPairs[][2] = {{0, 1}, {2, 3}};
    const char *kPairNames[] = {"cost", "try15"};
    std::vector<std::vector<DeltaCompare>> compares(
        2, std::vector<DeltaCompare>(num_points));
    for (std::size_t pair = 0; pair < 2; ++pair) {
        const std::size_t tc = kPairs[pair][0];
        const std::size_t xt = kPairs[pair][1];
        for (std::size_t p = 0; p < num_points; ++p) {
            DeltaCompare &cmp = compares[pair][p];
            for (std::size_t i = 0; i < runs.size(); ++i) {
                const double delta_tc = values[tc][p][i] - values[tc][0][i];
                const double delta_xt = values[xt][p][i] - values[xt][0][i];
                cmp.meanDeltaTc += delta_tc;
                cmp.meanDeltaXt += delta_xt;
                if (delta_xt < delta_tc)
                    ++cmp.winsXt;
                else if (delta_tc < delta_xt)
                    ++cmp.winsTc;
            }
            cmp.meanDeltaTc /= static_cast<double>(runs.size());
            cmp.meanDeltaXt /= static_cast<double>(runs.size());
            cmp.pValue = signTestPValue(cmp.winsXt, cmp.winsTc);
        }
    }
    // The same pairing per non-headline architecture over the reduced
    // ladder.
    std::vector<std::vector<std::vector<DeltaCompare>>> archCompares(
        other_archs.size(),
        std::vector<std::vector<DeltaCompare>>(
            2, std::vector<DeltaCompare>(num_reduced)));
    for (std::size_t a = 0; a < other_archs.size(); ++a) {
        for (std::size_t pair = 0; pair < 2; ++pair) {
            const std::size_t tc = kPairs[pair][0];
            const std::size_t xt = kPairs[pair][1];
            for (std::size_t p = 0; p < num_reduced; ++p) {
                DeltaCompare &cmp = archCompares[a][pair][p];
                for (std::size_t i = 0; i < runs.size(); ++i) {
                    const double delta_tc =
                        archValues[a][tc][p][i] - archValues[a][tc][0][i];
                    const double delta_xt =
                        archValues[a][xt][p][i] - archValues[a][xt][0][i];
                    cmp.meanDeltaTc += delta_tc;
                    cmp.meanDeltaXt += delta_xt;
                    if (delta_xt < delta_tc)
                        ++cmp.winsXt;
                    else if (delta_tc < delta_xt)
                        ++cmp.winsTc;
                }
                cmp.meanDeltaTc /= static_cast<double>(runs.size());
                cmp.meanDeltaXt /= static_cast<double>(runs.size());
                cmp.pValue = signTestPValue(cmp.winsXt, cmp.winsTc);
            }
        }
    }

    // Part 2: the realignment threshold sweep against a moved profile.
    const DegradeSpec moved_spec =
        makeSpec(DegradeKind::Perturb, 0, 0.5, 99);
    std::vector<std::vector<RealignPoint>> realign(
        kNumContenders, std::vector<RealignPoint>(kNumThresholds));
    for (const ProgramSpec &spec : suite) {
        const PreparedProgram prepared = prepareProgram(spec);
        // The moved profile: degraded weights on the same structure. A
        // layout of `moved` is structurally a layout of the original, so
        // quality is measured on the true recorded trace.
        Program moved = prepared.program;
        degradeProfile(moved, prepared.walk, moved_spec);
        const std::uint64_t base =
            evalLayout(prepared, originalLayout(prepared.program)).instrs;

        for (std::size_t c = 0; c < kNumContenders; ++c) {
            const Contender &contender = kContenders[c];
            const CostModel model(kArch);
            AlignOptions options;
            options.objective = contender.objective;
            options.chainOrder = ChainOrderPolicy::BtFntPrecedence;
            const ProgramLayout old_layout = alignProgram(
                prepared.program, contender.kind, &model, options);
            const ProgramLayout full =
                alignProgram(moved, contender.kind, &model, options);

            for (std::size_t t = 0; t < kNumThresholds; ++t) {
                RealignStats stats;
                const ProgramLayout spliced = realignProgram(
                    prepared.program, old_layout, moved, contender.kind,
                    &model, options, kThresholds[t].value, &stats);
                RealignPoint &point = realign[c][t];
                point.realignedFrac +=
                    static_cast<double>(stats.procsRealigned) /
                    static_cast<double>(stats.procsTotal);
                point.relCpi +=
                    evalLayout(prepared, spliced).relativeCpi(base);
                if (kThresholds[t].value == 0.0)
                    point.identicalToFull = point.identicalToFull &&
                                            layoutsIdentical(full, spliced);
                if (kThresholds[t].value == kNeverRealign)
                    point.identicalToOld =
                        point.identicalToOld &&
                        layoutsIdentical(old_layout, spliced);
            }
        }
    }
    for (auto &points : realign) {
        for (RealignPoint &point : points) {
            point.realignedFrac /= static_cast<double>(suite.size());
            point.relCpi /= static_cast<double>(suite.size());
        }
    }

    bool endpoints_ok = true;
    for (const auto &points : realign) {
        for (const RealignPoint &point : points)
            endpoints_ok =
                endpoints_ok && point.identicalToFull && point.identicalToOld;
    }

    if (json) {
        std::ostream &os = std::cout;
        os << "{\"bench\":\"robustness\",\"arch\":\"" << archName(kArch)
           << "\",\"programs\":" << runs.size() << ",\"curves\":[";
        for (std::size_t c = 0; c < kNumContenders; ++c) {
            const Contender &contender = kContenders[c];
            os << (c ? "," : "") << "{\"aligner\":\""
               << alignerKindName(contender.kind) << "\",\"objective\":\""
               << objectiveKindName(contender.objective)
               << "\",\"points\":[";
            for (std::size_t p = 0; p < num_points; ++p) {
                const bool est = p >= ladder.size();
                os << (p ? "," : "") << "{\"degrade\":\""
                   << (est ? "estimate" : degradeKindName(ladder[p].kind))
                   << "\",\"severity\":\""
                   << (est ? "static" : ladder[p].severityLabel())
                   << "\",\"rel_cpi\":" << curves[c][p]
                   << ",\"delta_vs_true\":" << curves[c][p] - curves[c][0]
                   << "}";
            }
            os << "]}";
        }
        os << "],\"sign_tests\":[";
        const auto emitPoint = [&os](bool first, const char *degrade,
                                     const std::string &severity,
                                     const DeltaCompare &cmp) {
            os << (first ? "" : ",") << "{\"degrade\":\"" << degrade
               << "\",\"severity\":\"" << severity
               << "\",\"mean_delta_table_cost\":" << cmp.meanDeltaTc
               << ",\"mean_delta_exttsp\":" << cmp.meanDeltaXt
               << ",\"wins_exttsp\":" << cmp.winsXt
               << ",\"wins_table_cost\":" << cmp.winsTc
               << ",\"p_value\":" << cmp.pValue << "}";
        };
        bool first_entry = true;
        for (std::size_t pair = 0; pair < 2; ++pair) {
            os << (first_entry ? "" : ",") << "{\"aligner\":\""
               << kPairNames[pair] << "\",\"arch\":\"" << archName(kArch)
               << "\",\"ladder\":\"full\",\"points\":[";
            first_entry = false;
            for (std::size_t p = 0; p < num_points; ++p) {
                const bool est = p >= ladder.size();
                emitPoint(p == 0,
                          est ? "estimate"
                              : degradeKindName(ladder[p].kind),
                          est ? "static" : ladder[p].severityLabel(),
                          compares[pair][p]);
            }
            os << "]}";
        }
        for (std::size_t a = 0; a < other_archs.size(); ++a) {
            for (std::size_t pair = 0; pair < 2; ++pair) {
                os << ",{\"aligner\":\"" << kPairNames[pair]
                   << "\",\"arch\":\"" << archName(other_archs[a])
                   << "\",\"ladder\":\"reduced\",\"points\":[";
                for (std::size_t p = 0; p < num_reduced; ++p) {
                    const bool est = p >= reduced.size();
                    emitPoint(p == 0,
                              est ? "estimate"
                                  : degradeKindName(reduced[p].kind),
                              est ? "static" : reduced[p].severityLabel(),
                              archCompares[a][pair][p]);
                }
                os << "]}";
            }
        }
        os << "],\"realign\":[";
        for (std::size_t c = 0; c < kNumContenders; ++c) {
            const Contender &contender = kContenders[c];
            os << (c ? "," : "") << "{\"aligner\":\""
               << alignerKindName(contender.kind) << "\",\"objective\":\""
               << objectiveKindName(contender.objective)
               << "\",\"moved\":\"" << degradeSpecLabel(moved_spec)
               << "\",\"thresholds\":[";
            for (std::size_t t = 0; t < kNumThresholds; ++t) {
                const RealignPoint &point = realign[c][t];
                os << (t ? "," : "") << "{\"threshold\":\""
                   << kThresholds[t].label
                   << "\",\"realigned_frac\":" << point.realignedFrac
                   << ",\"rel_cpi\":" << point.relCpi;
                if (kThresholds[t].value == 0.0)
                    os << ",\"identical_to_full\":"
                       << (point.identicalToFull ? "true" : "false");
                if (kThresholds[t].value == kNeverRealign)
                    os << ",\"identical_to_old\":"
                       << (point.identicalToOld ? "true" : "false");
                os << "}";
            }
            os << "]}";
        }
        os << "],\"endpoints_byte_identical\":"
           << (endpoints_ok ? "true" : "false") << "}\n";
    } else {
        Table table({"Degradation", "Severity", "cost/tc", "cost/xt",
                     "try15/tc", "try15/xt"});
        for (std::size_t p = 0; p < num_points; ++p) {
            const bool est = p >= ladder.size();
            Table &row =
                table.row()
                    .cell(est ? "estimate" : degradeKindName(ladder[p].kind))
                    .cell(est ? "static" : ladder[p].severityLabel());
            for (std::size_t c = 0; c < kNumContenders; ++c)
                row.cell(curves[c][p], 3);
        }
        std::cout << "Robustness: suite-mean rel CPI, align-on-degraded / "
                     "measure-on-true (BTFNT)\n\n";
        table.print(std::cout);

        Table dtable({"Degradation", "Severity", "cost Dtc", "cost Dxt",
                      "cost p", "try15 Dtc", "try15 Dxt", "try15 p"});
        for (std::size_t p = 1; p < num_points; ++p) {
            const bool est = p >= ladder.size();
            Table &row =
                dtable.row()
                    .cell(est ? "estimate" : degradeKindName(ladder[p].kind))
                    .cell(est ? "static" : ladder[p].severityLabel());
            for (std::size_t pair = 0; pair < 2; ++pair) {
                const DeltaCompare &cmp = compares[pair][p];
                row.cell(cmp.meanDeltaTc, 4)
                    .cell(cmp.meanDeltaXt, 4)
                    .cell(cmp.pValue, 3);
            }
        }
        std::cout << "\nPer-degradation CPI deltas vs the true-profile "
                     "alignment (D = mean delta; p = two-sided sign test, "
                     "exttsp vs table-cost)\n\n";
        dtable.print(std::cout);

        Table rtable({"Threshold", "cost/tc frac", "cost/tc CPI",
                      "try15/tc frac", "try15/tc CPI"});
        for (std::size_t t = 0; t < kNumThresholds; ++t) {
            rtable.row()
                .cell(kThresholds[t].label)
                .cell(realign[0][t].realignedFrac, 2)
                .cell(realign[0][t].relCpi, 3)
                .cell(realign[2][t].realignedFrac, 2)
                .cell(realign[2][t].relCpi, 3);
        }
        std::cout << "\nIncremental realignment after "
                  << degradeSpecLabel(moved_spec)
                  << " (frac = procedures re-laid-out; CPI measured on "
                     "the true trace)\n\n";
        rtable.print(std::cout);
        std::cout << "\nthreshold endpoints byte-identical: "
                  << (endpoints_ok ? "yes" : "NO") << "\n";
    }

    std::cerr << bench::timingJson("robustness", defaultThreads(),
                                   suite.size(), wall.seconds(), times)
              << "\n";
    if (!endpoints_ok) {
        std::fprintf(stderr, "FAIL: a realignment threshold endpoint was "
                             "not byte-identical\n");
        return 1;
    }
    return 0;
}
