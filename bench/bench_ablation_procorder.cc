/**
 * @file
 * Ablation (extension): Pettis–Hansen procedure positioning on top of
 * intra-procedure branch alignment. The paper deliberately only reorders
 * blocks within procedures; this harness measures what the cited
 * procedure-ordering technique adds on the Alpha 21064 pipeline model,
 * where instruction-cache locality matters (biggest footprints: gcc,
 * cfront, tex).
 */

#include <iostream>

#include "bench_util.h"
#include "core/align_program.h"
#include "core/greedy.h"
#include "layout/proc_order.h"
#include "sim/pipeline.h"
#include "support/log.h"
#include "support/table.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"

using namespace balign;

int
main()
{
    setVerbose(false);
    Table table({"Program", "aligned", "aligned+procorder", "I$ miss before",
                 "I$ miss after", "footprint KB"});

    const char *names[] = {"espresso", "gcc", "li", "cfront", "groff",
                           "tex"};
    for (const char *name : names) {
        ProgramSpec spec = suiteSpec(name);
        if (const char *env = std::getenv("BALIGN_TRACE_INSTRS")) {
            const auto v = std::strtoull(env, nullptr, 10);
            if (v > 0)
                spec.traceInstrs = v;
        }
        Program program = generateProgram(spec);

        WalkOptions walk_options;
        walk_options.seed = traceSeed(spec);
        walk_options.instrBudget = spec.traceInstrs;

        Profiler profiler(program);
        walk(program, walk_options, profiler);
        const CallGraph calls = profiler.callCounts();

        // Block orders from the Greedy aligner (shared by both layouts).
        GreedyAligner aligner;
        std::vector<std::vector<BlockId>> orders;
        for (const auto &proc : program.procs()) {
            orders.push_back(orderChains(proc, aligner.alignProc(proc),
                                         ChainOrderPolicy::HotFirst));
        }

        const ProgramLayout by_id =
            materializeProgram(program, orders, MaterializeOptions{});
        const std::vector<ProcId> proc_order =
            orderProcsByCallGraph(program, calls);
        const ProgramLayout by_calls = materializeProgramOrdered(
            program, orders, proc_order, MaterializeOptions{});

        Alpha21064Model base_model(program, by_id);
        Alpha21064Model ordered_model(program, by_calls);
        MultiSink fanout;
        fanout.add(&base_model.sink());
        fanout.add(&ordered_model.sink());
        walk(program, walk_options, fanout);

        table.row()
            .cell(name)
            .cell(1.0, 3)
            .cell(ordered_model.cycles() / base_model.cycles(), 3)
            .cell(base_model.icacheMisses(), true)
            .cell(ordered_model.icacheMisses(), true)
            .cell(static_cast<double>(program.totalInstrs()) * 4.0 /
                      1024.0,
                  1);
    }

    std::cout << "Ablation: procedure positioning (Pettis-Hansen) on the "
                 "Alpha 21064 model\n(cycles relative to greedy-aligned "
                 "code with procedures in id order)\n\n";
    table.print(std::cout);
    return 0;
}
