/**
 * @file
 * Ablation (paper §6.1): chain concatenation order — hottest-first versus
 * the Pettis–Hansen BT/FNT precedence ordering — evaluated on the BT/FNT
 * architecture with the Greedy and Try15 aligners.
 *
 * The paper found hot-first performed slightly better overall on the real
 * machine (it satisfies most BT/FNT precedences anyway while improving
 * locality); on the pure BT/FNT branch model the precedence ordering
 * should be at least as good.
 */

#include <iostream>

#include "bench_util.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);

    const std::vector<ExperimentConfig> configs = {
        {Arch::BtFnt, AlignerKind::Original},
        {Arch::BtFnt, AlignerKind::Greedy},
        {Arch::BtFnt, AlignerKind::Try15},
    };

    Table table({"Program", "Orig", "Greedy/hot", "Greedy/prec", "Try15/hot",
                 "Try15/prec"});

    for (const auto &spec : bench::tunedSuite(benchmarkSuite())) {
        const PreparedProgram prepared = prepareProgram(spec);

        // runConfigs applies BT/FNT precedence ordering for the BT/FNT
        // architecture; to isolate the policy we drive the layouts by hand.
        const CostModel model(Arch::BtFnt);
        auto eval_with = [&](AlignerKind kind, ChainOrderPolicy policy) {
            AlignOptions options;
            options.chainOrder = policy;
            const ProgramLayout layout = alignProgram(
                prepared.program, kind, &model, options);
            ArchEvaluator eval(prepared.program, layout,
                               EvalParams::forArch(Arch::BtFnt));
            walk(prepared.program, prepared.walk, eval.sink());
            return eval.result();
        };

        const ProgramLayout orig = originalLayout(prepared.program);
        ArchEvaluator orig_eval(prepared.program, orig,
                                EvalParams::forArch(Arch::BtFnt));
        walk(prepared.program, prepared.walk, orig_eval.sink());
        const std::uint64_t base = orig_eval.result().instrs;

        const EvalResult greedy_hot =
            eval_with(AlignerKind::Greedy, ChainOrderPolicy::HotFirst);
        const EvalResult greedy_prec = eval_with(
            AlignerKind::Greedy, ChainOrderPolicy::BtFntPrecedence);
        const EvalResult try_hot =
            eval_with(AlignerKind::Try15, ChainOrderPolicy::HotFirst);
        const EvalResult try_prec = eval_with(
            AlignerKind::Try15, ChainOrderPolicy::BtFntPrecedence);

        table.row()
            .cell(spec.name)
            .cell(orig_eval.result().relativeCpi(base), 3)
            .cell(greedy_hot.relativeCpi(base), 3)
            .cell(greedy_prec.relativeCpi(base), 3)
            .cell(try_hot.relativeCpi(base), 3)
            .cell(try_prec.relativeCpi(base), 3);
    }

    std::cout << "Ablation: chain ordering policy on the BT/FNT "
                 "architecture (relative CPI)\n\n";
    table.print(std::cout);
    return 0;
}
