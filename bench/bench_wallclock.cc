/**
 * @file
 * Wall-clock timing bench for the perf trajectory: runs the full paper
 * experiment matrix (the Table 3 + Table 4 configurations over the
 * benchmark suite) on the parallel runner twice — once serial
 * (1 thread) and once at the configured thread count — and prints one
 * line of JSON per run plus a summary line with the speedup.
 *
 * Environment: BALIGN_THREADS, BALIGN_TRACE_INSTRS, BALIGN_PROGRAMS as
 * usual. Set BALIGN_WALLCLOCK_SKIP_SERIAL=1 to skip the serial baseline
 * (the summary line then reports speedup 0).
 */

#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"
#include "support/log.h"

using namespace balign;

namespace {

double
timedRun(const std::vector<ProgramSpec> &suite,
         const std::vector<ExperimentConfig> &configs, unsigned threads,
         const char *label)
{
    bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions options;
    options.threads = threads;
    options.times = &times;
    const std::vector<ExperimentRun> runs = runSuite(suite, configs, options);
    const double seconds = wall.seconds();
    if (runs.size() != suite.size())
        fatal("bench_wallclock: %zu runs for %zu programs", runs.size(),
              suite.size());
    std::cout << bench::timingJson(label, threads, suite.size(), seconds,
                                   times)
              << "\n";
    return seconds;
}

}  // namespace

int
main()
{
    setVerbose(false);

    // The union of the Table 3 and Table 4 experiment matrices.
    const Arch archs[] = {Arch::Fallthrough, Arch::BtFnt,     Arch::Likely,
                          Arch::PhtDirect,   Arch::PhtCorrelated,
                          Arch::BtbSmall,    Arch::BtbLarge};
    std::vector<ExperimentConfig> configs;
    for (Arch arch : archs) {
        configs.push_back({arch, AlignerKind::Original});
        configs.push_back({arch, AlignerKind::Greedy});
        configs.push_back({arch, AlignerKind::Try15});
    }

    const std::vector<ProgramSpec> suite =
        bench::tunedSuite(benchmarkSuite());
    const unsigned threads = defaultThreads();

    double serial_s = 0.0;
    const char *skip = std::getenv("BALIGN_WALLCLOCK_SKIP_SERIAL");
    if (skip == nullptr || skip[0] == '\0' || skip[0] == '0')
        serial_s = timedRun(suite, configs, 1, "wallclock_serial");
    const double parallel_s =
        timedRun(suite, configs, threads, "wallclock_parallel");

    std::printf("{\"bench\":\"wallclock\",\"threads\":%u,\"programs\":%zu,"
                "\"configs\":%zu,\"serial_s\":%.6f,\"parallel_s\":%.6f,"
                "\"speedup\":%.3f}\n",
                threads, suite.size(), configs.size(), serial_s, parallel_s,
                serial_s > 0.0 ? serial_s / parallel_s : 0.0);
    return 0;
}
