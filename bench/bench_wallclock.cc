/**
 * @file
 * Wall-clock timing bench for the perf trajectory: runs the full paper
 * experiment matrix (the Table 3 + Table 4 configurations over the
 * benchmark suite) on the parallel runner three times — per-cell
 * reference engine at 1 thread, batched engine at 1 thread, and batched
 * at the configured thread count — and prints one line of JSON per run
 * plus a summary line with the thread speedup and the single-thread
 * replay-phase speedup of the batched engine over the per-cell one.
 *
 * Environment: BALIGN_THREADS, BALIGN_TRACE_INSTRS, BALIGN_PROGRAMS as
 * usual. Set BALIGN_WALLCLOCK_SKIP_SERIAL=1 to skip both serial baselines
 * (the summary line then reports the speedups as 0).
 */

#include <iostream>

#include "bench_util.h"
#include "sim/runner.h"
#include "support/log.h"

using namespace balign;

namespace {

struct TimedRun
{
    double wall = 0.0;    ///< elapsed seconds
    double replay = 0.0;  ///< "replay" phase seconds, summed over threads
};

TimedRun
timedRun(const std::vector<ProgramSpec> &suite,
         const std::vector<ExperimentConfig> &configs, unsigned threads,
         ReplayEngine engine, const char *label)
{
    bench::WallClock wall;
    PhaseTimes times;
    RunnerOptions options;
    options.threads = threads;
    options.times = &times;
    options.engine = engine;
    const std::vector<ExperimentRun> runs = runSuite(suite, configs, options);
    const double seconds = wall.seconds();
    if (runs.size() != suite.size())
        fatal("bench_wallclock: %zu runs for %zu programs", runs.size(),
              suite.size());
    std::cout << bench::timingJson(label, threads, suite.size(), seconds,
                                   times)
              << "\n";
    return {seconds, times.seconds("replay")};
}

}  // namespace

int
main()
{
    setVerbose(false);

    // The union of the Table 3 and Table 4 experiment matrices.
    const Arch archs[] = {Arch::Fallthrough, Arch::BtFnt,     Arch::Likely,
                          Arch::PhtDirect,   Arch::PhtCorrelated,
                          Arch::BtbSmall,    Arch::BtbLarge};
    std::vector<ExperimentConfig> configs;
    for (Arch arch : archs) {
        configs.push_back({arch, AlignerKind::Original});
        configs.push_back({arch, AlignerKind::Greedy});
        configs.push_back({arch, AlignerKind::Try15});
    }

    const std::vector<ProgramSpec> suite =
        bench::tunedSuite(benchmarkSuite());
    const unsigned threads = defaultThreads();

    TimedRun percell;
    TimedRun serial;
    const char *skip = std::getenv("BALIGN_WALLCLOCK_SKIP_SERIAL");
    if (skip == nullptr || skip[0] == '\0' || skip[0] == '0') {
        percell = timedRun(suite, configs, 1, ReplayEngine::PerCell,
                           "wallclock_serial_percell");
        serial = timedRun(suite, configs, 1, ReplayEngine::Batched,
                          "wallclock_serial");
    }
    const TimedRun parallel = timedRun(
        suite, configs, threads, ReplayEngine::Batched, "wallclock_parallel");

    std::printf(
        "{\"bench\":\"wallclock\",\"threads\":%u,\"programs\":%zu,"
        "\"configs\":%zu,\"serial_s\":%.6f,\"parallel_s\":%.6f,"
        "\"speedup\":%.3f,\"replay_percell_s\":%.6f,"
        "\"replay_batched_s\":%.6f,\"replay_speedup\":%.3f}\n",
        threads, suite.size(), configs.size(), serial.wall, parallel.wall,
        serial.wall > 0.0 ? serial.wall / parallel.wall : 0.0,
        percell.replay, serial.replay,
        serial.replay > 0.0 ? percell.replay / serial.replay : 0.0);
    return 0;
}
