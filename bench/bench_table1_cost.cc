/**
 * @file
 * Reproduces paper Table 1: the branch cost model, in cycles, plus the
 * derived per-architecture expected costs the aligners optimize (paper §4
 * and §6). Purely deterministic — this is the contract the other
 * harnesses build on.
 */

#include <iostream>

#include "bpred/cost_model.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);
    std::cout << "Table 1: cost, in cycles, for different branches\n\n";
    Table base({"branch", "cycles", "composition"});
    base.row().cell("Unconditional branch").cell(2.0, 0).cell(
        "instruction + misfetch");
    base.row()
        .cell("Correctly predicted fall-through")
        .cell(1.0, 0)
        .cell("instruction");
    base.row()
        .cell("Correctly predicted taken")
        .cell(2.0, 0)
        .cell("instruction + misfetch");
    base.row().cell("Mispredicted").cell(5.0, 0).cell(
        "instruction + mispredict");
    base.print(std::cout);

    std::cout << "\nDerived expected per-execution costs by architecture\n"
                 "(taken/fall-through conditional; unconditional):\n\n";
    Table derived({"architecture", "cond taken", "cond fall", "uncond"});
    struct Case
    {
        Arch arch;
        DirHint dir;
        const char *note;
    };
    const Case cases[] = {
        {Arch::Fallthrough, DirHint::Forward, ""},
        {Arch::BtFnt, DirHint::Backward, " (backward)"},
        {Arch::BtFnt, DirHint::Forward, " (forward)"},
        {Arch::PhtDirect, DirHint::Forward, ""},
        {Arch::BtbLarge, DirHint::Forward, ""},
    };
    for (const auto &c : cases) {
        const CostModel model(c.arch);
        derived.row()
            .cell(std::string(archName(c.arch)) + c.note)
            .cell(model.condCost(1, 0, c.dir), 2)
            .cell(model.condCost(0, 1, c.dir), 2)
            .cell(model.uncondCost(), 2);
    }
    derived.print(std::cout);
    std::cout << "\n(LIKELY depends on the per-site profile majority; PHT "
                 "and BTB rows use the paper's §6 assumptions of a 10% "
                 "conditional mispredict rate and a 10% BTB miss rate)\n";
    return 0;
}
