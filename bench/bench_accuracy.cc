/**
 * @file
 * Prediction-accuracy study (paper §4 framing): "static prediction
 * mechanisms, particularly profile-based methods, accurately predict
 * 70-90% of the conditional branches; many current computer architectures
 * use dynamic prediction ... to accurately predict 90-95% of the
 * branches." This harness measures conditional direction accuracy per
 * architecture (original layout) across the suite, including the Yeh-Patt
 * local two-level extension.
 */

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/table.h"

using namespace balign;

int
main()
{
    setVerbose(false);
    const Arch archs[] = {Arch::Fallthrough, Arch::BtFnt,  Arch::Likely,
                          Arch::PhtDirect,   Arch::PhtCorrelated,
                          Arch::PhtLocal,    Arch::BtbLarge};

    Table table({"Program", "FALLTHRU", "BT/FNT", "LIKELY", "PHT", "COR",
                 "LOCAL", "BTB256"});
    std::vector<double> sums(std::size(archs), 0.0);
    std::size_t count = 0;

    for (const auto &spec : bench::tunedSuite(benchmarkSuite())) {
        const PreparedProgram prepared = prepareProgram(spec);
        const ProgramLayout layout = originalLayout(prepared.program);

        std::vector<std::unique_ptr<ArchEvaluator>> evaluators;
        MultiSink fanout;
        for (Arch arch : archs) {
            evaluators.push_back(std::make_unique<ArchEvaluator>(
                prepared.program, layout, EvalParams::forArch(arch)));
            fanout.add(&evaluators.back()->sink());
        }
        walk(prepared.program, prepared.walk, fanout);

        Table &row = table.row().cell(spec.name);
        for (std::size_t a = 0; a < std::size(archs); ++a) {
            const double accuracy = evaluators[a]->result().condAccuracy();
            row.cell(accuracy, 1);
            sums[a] += accuracy;
        }
        ++count;
    }

    Table &avg = table.separator().row().cell("Average");
    for (std::size_t a = 0; a < std::size(archs); ++a)
        avg.cell(sums[a] / static_cast<double>(count), 1);

    std::cout << "Conditional branch prediction accuracy (%), original "
                 "layout\n(paper: profile-based static 70-90%; dynamic "
                 "90-95%)\n\n";
    table.print(std::cout);
    return 0;
}
