/**
 * @file
 * balign — command line driver for the branch alignment library.
 *
 * Subcommands:
 *
 *   balign generate <suite-name> [-o FILE] [--instrs N]
 *       Generate a suite program model (unprofiled CFG).
 *
 *   balign profile <FILE> [-o FILE] [--instrs N] [--seed S]
 *       Walk the program and record edge weights into the CFG.
 *
 *   balign stats <FILE> [--instrs N] [--seed S]
 *       Print Table-2 style attributes for the program.
 *
 *   balign align <FILE> --arch ARCH --algo ALGO [--group N]
 *                [--objective OBJ]
 *       Report the layout an aligner would produce: per-procedure block
 *       orders and transformation counts.
 *
 *   balign evaluate <FILE> --arch ARCH [--instrs N] [--seed S]
 *                   [--objective OBJ]
 *       Evaluate Original/Greedy/Cost/Try15/ExtTsp on one architecture,
 *       all guided by the selected objective.
 *
 *   balign unroll <FILE> [-o FILE] [--factor K] [--min-weight W]
 *       Unroll hot single-block loops by duplication.
 *
 *   balign degrade <FILE> --kind K [-n N] [--param X] [--degrade-seed S]
 *                  [-o FILE] [--instrs N]
 *       Apply one deterministic profile degradation (sample, stale,
 *       perturb, merge, drift) to the program's recorded edge weights and
 *       emit the degraded program. Unprofiled inputs are profiled first;
 *       repro files reuse their embedded walk parameters. The CFG
 *       structure is never modified.
 *
 *   balign dot <FILE> [--proc N]
 *       Emit a Graphviz rendering of one procedure.
 *
 *   balign fuzz [--seeds N] [--instrs N] [--seed S] [-o DIR]
 *       Differentially fuzz the evaluation pipeline against the naive
 *       oracle across all aligners and architectures; shrunk repros for
 *       any divergence are written to DIR (default tests/corpus next to
 *       the current directory is NOT assumed — divergences print and
 *       fail the run either way).
 *
 *   balign repro <FILE> [--instrs N] [--seed S]
 *       Replay one repro (or any serialized program) through the
 *       differential oracle; prints the divergence or "no divergence".
 *
 *   balign estimate <FILE>... [--json] [-o FILE]
 *   balign estimate --suite [--json]
 *       Synthesize a static profile (estimate/estimate.h) for each
 *       program from its CFG alone — no trace — and print the
 *       estimation report: per-heuristic hit counts, per-procedure
 *       propagation summaries (irreducible fallbacks, stranded flow) and
 *       per-branch provenance (which heuristics voted, the combined
 *       probability). --json emits one machine-readable report array
 *       (schema_version included). With a single input, -o FILE writes
 *       the estimated program (provenance tag included) for further
 *       subcommands.
 *
 *   balign lint <FILE>... [--json] [--instrs N] [--seed S]
 *   balign lint --suite [--json] [--instrs N] [--seed S]
 *       Statically verify programs without replaying traces: CFG
 *       well-formedness, profile flow conservation, layout legality for
 *       every aligner x architecture pair, and cost-model monotonicity.
 *       Programs are profiled first (the prof.* rules read recorded edge
 *       weights); repro files reuse their embedded walk parameters.
 *       --suite lints all 24 benchmark models instead of files. --json
 *       emits one machine-readable report array on stdout.
 *
 *   balign verify <FILE>... [--json] [-o DIR] [--instrs N] [--seed S]
 *   balign verify --suite [--json] [-o DIR] [--instrs N] [--seed S]
 *       Translation validation: align each program under every
 *       (objective, architecture, aligner) combination the experiments
 *       run and statically prove every layout semantically equivalent to
 *       its program, emitting one machine-checkable certificate per
 *       layout. -o DIR writes one certificate-bearing JSON report per
 *       program into DIR.
 *
 *   balign emit <FILE> -o FILE.o [--encoding fixed|variable]
 *               [--algo ALGO] [--arch ARCH] [--objective OBJ] [--json]
 *       Align the program (identity layout unless --algo is given), relax
 *       every branch to its final short/near form (emit/relax.h), prove
 *       the relaxed byte layout against the verifier's emission
 *       obligations, and write a relocatable ELF64 object whose .text is
 *       the encoded layout. --json prints a machine-readable summary
 *       (text bytes, short/near branch counts, relaxation sweeps, and a
 *       per-procedure `procs` size array shared with check-obj).
 *
 *   balign check-obj <FILE> <FILE.o> [--json] [--encoding E]
 *                    [--algo ALGO] [--arch ARCH] [--objective OBJ]
 *   balign check-obj --suite [--json] [-o DIR] [--encoding E]
 *                    [--algo ALGO] [--instrs N] [--seed S]
 *       Binary-level translation validation (disasm/checkobj.h): rebuild
 *       the layout `emit` captured (same defaults), decode the object
 *       with the independent disassembler and discharge the byte-level
 *       obligation family — decode totality, branch targets, relocation
 *       correctness, CFG isomorphism, size accounting. The encoding is
 *       inferred from the object's e_machine unless --encoding forces
 *       it. Advisory obj.* lint findings (unreachable decoded blocks,
 *       branches stuck in near form) print after the obligations. --json
 *       emits one certificate per object (schema_version, per-obligation
 *       tallies, the shared `procs` size array); --suite validates
 *       in-memory objects for all 24 benchmark programs and -o DIR
 *       writes one certificate file per program.
 *
 *   Exit-code contract (lint, verify, emit and check-obj): 0 = clean,
 *   1 = findings (lint errors / failed proof obligations / unconverged
 *   relaxation / undischarged byte-level obligations), 2 = usage or IO
 *   error. Other subcommands exit 1 on any error.
 *
 * Architectures: fallthrough btfnt likely pht gshare btb-small btb-large.
 * Algorithms: greedy cost try15 exttsp.
 * Objectives (--objective): table-cost (paper Table 1, the default) and
 * exttsp (distance-aware, architecture-independent). The objective guides
 * the Cost/Try15 decision pricing, materialization, and the greedy
 * fallback splice; fuzz/repro sweep both objectives unless one is forced.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "cfg/dot.h"
#include "cfg/serialize.h"
#include "check/differ.h"
#include "check/fuzz.h"
#include "core/align_program.h"
#include "core/unroll.h"
#include "disasm/checkobj.h"
#include "emit/elf.h"
#include "lint/rules.h"
#include "estimate/estimate.h"
#include "layout/materialize.h"
#include "lint/lint.h"
#include "profile/degrade.h"
#include "sim/runner.h"
#include "verify/driver.h"
#include "support/log.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

struct Args
{
    std::vector<std::string> positional;
    std::string output;
    std::string arch = "btfnt";
    std::string algo = "try15";
    bool algoSet = false;
    std::string objective = "table-cost";
    bool objectiveSet = false;
    std::string encoding = "variable";
    bool encodingSet = false;
    std::uint64_t instrs = 2'000'000;
    bool instrsSet = false;
    std::uint64_t seed = 1;
    std::uint64_t seeds = 100;
    unsigned factor = 4;
    Weight minWeight = 1000;
    std::size_t groupSize = 15;
    ProcId procId = 0;
    bool suite = false;
    bool json = false;
    std::string degradeKind;
    std::uint32_t degradeN = 8;
    double degradeParam = 0.25;
    std::uint64_t degradeSeed = 1;
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "-o" || arg == "--output")
            args.output = next();
        else if (arg == "--arch")
            args.arch = next();
        else if (arg == "--algo") {
            args.algo = next();
            args.algoSet = true;
        }
        else if (arg == "--encoding") {
            args.encoding = next();
            args.encodingSet = true;
        }
        else if (arg == "--objective") {
            args.objective = next();
            args.objectiveSet = true;
        }
        else if (arg == "--instrs") {
            args.instrs = std::strtoull(next().c_str(), nullptr, 10);
            args.instrsSet = true;
        } else if (arg == "--seed")
            args.seed = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--seeds")
            args.seeds = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--factor")
            args.factor =
                static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--min-weight")
            args.minWeight = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--group")
            args.groupSize = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--proc")
            args.procId =
                static_cast<ProcId>(std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--kind")
            args.degradeKind = next();
        else if (arg == "-n")
            args.degradeN =
                static_cast<std::uint32_t>(std::strtoul(next().c_str(),
                                                        nullptr, 10));
        else if (arg == "--param")
            args.degradeParam = std::strtod(next().c_str(), nullptr);
        else if (arg == "--degrade-seed")
            args.degradeSeed = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--suite")
            args.suite = true;
        else if (arg == "--json")
            args.json = true;
        else if (!arg.empty() && arg[0] == '-')
            fatal("unknown option '%s'", arg.c_str());
        else
            args.positional.push_back(arg);
    }
    return args;
}

Arch
parseArch(const std::string &name)
{
    if (name == "fallthrough")
        return Arch::Fallthrough;
    if (name == "btfnt")
        return Arch::BtFnt;
    if (name == "likely")
        return Arch::Likely;
    if (name == "pht")
        return Arch::PhtDirect;
    if (name == "gshare")
        return Arch::PhtCorrelated;
    if (name == "btb-small")
        return Arch::BtbSmall;
    if (name == "btb-large" || name == "btb")
        return Arch::BtbLarge;
    fatal("unknown architecture '%s'", name.c_str());
}

AlignerKind
parseAlgo(const std::string &name)
{
    if (name == "greedy")
        return AlignerKind::Greedy;
    if (name == "cost")
        return AlignerKind::Cost;
    if (name == "try15" || name == "tryn")
        return AlignerKind::Try15;
    if (name == "exttsp" || name == "ext-tsp")
        return AlignerKind::ExtTsp;
    if (name == "original")
        return AlignerKind::Original;
    fatal("unknown algorithm '%s'", name.c_str());
}

ObjectiveKind
parseObjective(const std::string &name)
{
    const std::optional<ObjectiveKind> kind = parseObjectiveKind(name);
    if (!kind.has_value())
        fatal("unknown objective '%s'", name.c_str());
    return *kind;
}

Program
loadOrDie(const std::string &path)
{
    ParseResult parsed = loadProgram(path);
    if (!parsed.ok()) {
        fatal("%s:%zu: %s", path.c_str(), parsed.errorLine,
              parsed.error.c_str());
    }
    return std::move(*parsed.program);
}

void
emit(const Program &program, const std::string &output)
{
    if (output.empty())
        writeProgram(program, std::cout);
    else
        saveProgram(program, output);
}

int
cmdGenerate(const Args &args)
{
    if (args.positional.empty())
        fatal("generate: need a suite program name");
    ProgramSpec spec = suiteSpec(args.positional[0]);
    spec.traceInstrs = args.instrs;
    emit(generateProgram(spec), args.output);
    return 0;
}

int
cmdProfile(const Args &args)
{
    if (args.positional.empty())
        fatal("profile: need an input file");
    Program program = loadOrDie(args.positional[0]);
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = args.seed;
    options.instrBudget = args.instrs;
    walk(program, options, profiler);
    emit(program, args.output);
    return 0;
}

int
cmdStats(const Args &args)
{
    if (args.positional.empty())
        fatal("stats: need an input file");
    Program program = loadOrDie(args.positional[0]);
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = args.seed;
    options.instrBudget = args.instrs;
    walk(program, options, profiler);
    const ProgramStats s = profiler.stats();

    std::printf("program: %s\n", program.name().c_str());
    std::printf("instructions traced: %s\n",
                withCommas(s.instrsTraced).c_str());
    std::printf("breaks: %.1f%% of instructions\n", s.pctBreaks());
    std::printf("conditional sites: %zu static; Q-50/90/99/100 = "
                "%zu/%zu/%zu/%zu\n",
                s.staticCondSites, s.q50, s.q90, s.q99, s.q100);
    std::printf("taken: %.1f%% of executed conditionals\n", s.pctTaken());
    std::printf("break mix: %.1f%% cond, %.1f%% indirect, %.1f%% uncond, "
                "%.1f%% call, %.1f%% return\n",
                s.pctCondOfBreaks(), s.pctIndirectOfBreaks(),
                s.pctUncondOfBreaks(), s.pctCallOfBreaks(),
                s.pctReturnOfBreaks());
    return 0;
}

int
cmdAlign(const Args &args)
{
    if (args.positional.empty())
        fatal("align: need an input file");
    const Program program = loadOrDie(args.positional[0]);
    const Arch arch = parseArch(args.arch);
    const AlignerKind kind = parseAlgo(args.algo);
    const CostModel model(arch);
    AlignOptions options;
    options.groupSize = args.groupSize;
    options.objective = parseObjective(args.objective);
    const ProgramLayout layout =
        alignProgram(program, kind, &model, options);

    std::printf("# %s alignment for %s (objective %s)\n",
                alignerKindName(kind), archName(arch),
                objectiveKindName(options.objective));
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const ProcLayout &pl = layout.procs[p];
        std::printf("proc %u %s: +%u jumps, -%u jumps, %u inverted\n", p,
                    program.proc(p).name().c_str(), pl.jumpsInserted,
                    pl.jumpsRemoved, pl.sensesInverted);
        std::printf("  order:");
        for (BlockId id : pl.order)
            std::printf(" %u", id);
        std::printf("\n");
    }
    return 0;
}

int
cmdEvaluate(const Args &args)
{
    if (args.positional.empty())
        fatal("evaluate: need an input file");
    Program program = loadOrDie(args.positional[0]);
    const Arch arch = parseArch(args.arch);

    WalkOptions walk_options;
    walk_options.seed = args.seed;
    walk_options.instrBudget = args.instrs;
    const PreparedProgram prepared =
        prepareProgram(std::move(program), walk_options);

    const ObjectiveKind objective = parseObjective(args.objective);
    const std::vector<ExperimentConfig> configs = {
        {arch, AlignerKind::Original, objective},
        {arch, AlignerKind::Greedy, objective},
        {arch, AlignerKind::Cost, objective},
        {arch, AlignerKind::Try15, objective},
        {arch, AlignerKind::ExtTsp, objective},
    };
    // Alignments and per-configuration replays run on the thread pool
    // (BALIGN_THREADS; results are identical for any thread count).
    ThreadPool pool(defaultThreads());
    PhaseTimes times;
    const ExperimentRun run =
        runConfigs(prepared, configs, {}, RunContext{&pool, &times});

    Table table({"layout", "rel CPI", "BEP", "fall-through %",
                 "mispredicts", "misfetches"});
    for (const auto &cell : run.cells) {
        table.row()
            .cell(alignerKindName(cell.config.kind))
            .cell(cell.relCpi, 3)
            .cell(cell.eval.bep(), 0)
            .cell(cell.eval.pctFallThrough(), 1)
            .cell(cell.eval.mispredicts, true)
            .cell(cell.eval.misfetches, true);
    }
    std::printf("%s on %s (objective %s), %s instructions\n\n",
                prepared.program.name().c_str(), archName(arch),
                objectiveKindName(objective),
                withCommas(run.origInstrs).c_str());
    table.print(std::cout);
    inform("phase timing (threads=%u): %s", pool.threads(),
           times.json().c_str());
    return 0;
}

int
cmdUnroll(const Args &args)
{
    if (args.positional.empty())
        fatal("unroll: need an input file");
    Program program = loadOrDie(args.positional[0]);
    UnrollOptions options;
    options.factor = args.factor;
    options.minWeight = args.minWeight;
    const unsigned loops = unrollSelfLoops(program, options);
    inform("unrolled %u loops (factor %u)", loops, args.factor);
    emit(program, args.output);
    return 0;
}

int
cmdDegrade(const Args &args)
{
    if (args.positional.empty())
        fatal("degrade: need an input file");
    if (args.degradeKind.empty())
        fatal("degrade: need --kind "
              "(none|sample|stale|perturb|merge|drift)");
    const std::optional<DegradeKind> kind =
        parseDegradeKind(args.degradeKind);
    if (!kind.has_value())
        fatal("degrade: unknown kind '%s'", args.degradeKind.c_str());

    std::optional<Repro> repro = loadRepro(args.positional[0]);
    if (!repro.has_value())
        fatal("degrade: cannot load %s", args.positional[0].c_str());
    Program program = std::move(repro->program);
    WalkOptions walk_options = repro->walk;
    if (args.instrsSet)
        walk_options.instrBudget = args.instrs;

    auto total_weight = [](const Program &p) {
        Weight total = 0;
        for (ProcId id = 0; id < p.numProcs(); ++id)
            total += p.proc(id).totalEdgeWeight();
        return total;
    };

    // The transforms degrade a recorded profile; bare CFGs (e.g. straight
    // from `balign generate`) are profiled first with the walk parameters
    // above so the subcommand composes without a separate `profile` step.
    if (total_weight(program) == 0) {
        Profiler profiler(program);
        walk(program, walk_options, profiler);
    }

    DegradeSpec spec;
    spec.kind = *kind;
    spec.n = args.degradeN;
    spec.param = args.degradeParam;
    spec.seed = args.degradeSeed;

    const Weight before = total_weight(program);
    degradeProfile(program, walk_options, spec);
    inform("degrade %s: total edge weight %s -> %s",
           degradeSpecLabel(spec).c_str(), withCommas(before).c_str(),
           withCommas(total_weight(program)).c_str());
    emit(program, args.output);
    return 0;
}

int
cmdDot(const Args &args)
{
    if (args.positional.empty())
        fatal("dot: need an input file");
    const Program program = loadOrDie(args.positional[0]);
    if (args.procId >= program.numProcs())
        fatal("procedure %u out of range", args.procId);
    writeDot(program.proc(args.procId), std::cout);
    return 0;
}

int
cmdFuzz(const Args &args)
{
    FuzzOptions options;
    options.seeds = args.seeds;
    options.firstSeed = args.seed;
    options.walkInstrs = args.instrsSet ? args.instrs : 20'000;
    options.corpusDir = args.output;
    if (args.objectiveSet)
        options.diff.objectives = {parseObjective(args.objective)};
    ThreadPool pool(defaultThreads());
    options.pool = &pool;

    const FuzzReport report = runFuzz(options);
    std::printf("fuzz: %llu programs, %llu configurations checked, "
                "%zu divergence(s)\n",
                static_cast<unsigned long long>(report.programsRun),
                static_cast<unsigned long long>(report.configsChecked),
                report.divergences.size());
    for (std::size_t i = 0; i < report.divergences.size(); ++i) {
        std::printf("\n%s\n",
                    formatDivergence(report.divergences[i]).c_str());
        if (!report.reproPaths[i].empty())
            std::printf("repro written to %s\n",
                        report.reproPaths[i].c_str());
    }
    return report.divergences.empty() ? 0 : 1;
}

int
cmdRepro(const Args &args)
{
    if (args.positional.empty())
        fatal("repro: need a repro file");
    std::optional<Repro> repro = loadRepro(args.positional[0]);
    if (!repro.has_value())
        fatal("repro: cannot load %s", args.positional[0].c_str());
    if (args.instrsSet)
        repro->walk.instrBudget = args.instrs;

    DiffOptions options;
    options.maxDivergences = 0;  // report every diverging configuration
    // Replay the fuzzer's full sweep: all five aligners, both objectives
    // (or just the forced one).
    options.kinds = allAlignerKindsExtended();
    options.objectives = args.objectiveSet
                             ? std::vector<ObjectiveKind>{parseObjective(
                                   args.objective)}
                             : allObjectiveKinds();
    const std::vector<Divergence> divergences =
        diffProgram(std::move(repro->program), repro->walk, options);
    if (divergences.empty()) {
        std::printf("no divergence: oracle and production agree on "
                    "%s (walk seed %llu, budget %llu)\n",
                    args.positional[0].c_str(),
                    static_cast<unsigned long long>(repro->walk.seed),
                    static_cast<unsigned long long>(
                        repro->walk.instrBudget));
        return 0;
    }
    for (const Divergence &divergence : divergences)
        std::printf("%s\n\n", formatDivergence(divergence).c_str());
    std::printf("%zu diverging configuration(s)\n", divergences.size());
    return 1;
}

/**
 * Collects (display name, profiled program) pairs for the static
 * subcommands (lint / verify / estimate): either the 24-program
 * benchmark suite or the given files, profiled with their embedded walk
 * parameters (estimate passes profile=false — it synthesizes weights
 * from the CFG alone, so the walk would be wasted work). Returns 0, or 2
 * for a usage or IO error (printed to stderr) — the static subcommands
 * reserve exit 1 for findings.
 */
int
collectStaticInputs(const Args &args, const char *command,
                    std::vector<std::pair<std::string, Program>> &inputs,
                    bool profile = true)
{
    auto profile_with = [](Program &program, std::uint64_t seed,
                           std::uint64_t budget) {
        program.clearWeights();
        Profiler profiler(program);
        WalkOptions walk_options;
        walk_options.seed = seed;
        walk_options.instrBudget = budget;
        walk(program, walk_options, profiler);
    };

    if (args.suite) {
        for (const ProgramSpec &spec : benchmarkSuite()) {
            Program program = generateProgram(spec);
            if (profile)
                profile_with(program, args.seed, args.instrs);
            inputs.emplace_back(program.name(), std::move(program));
        }
        return 0;
    }
    if (args.positional.empty()) {
        std::fprintf(stderr, "%s: need input files or --suite\n", command);
        return 2;
    }
    for (const std::string &path : args.positional) {
        std::optional<Repro> repro = loadRepro(path);
        if (!repro.has_value()) {
            std::fprintf(stderr, "%s: cannot load %s\n", command,
                         path.c_str());
            return 2;
        }
        if (args.instrsSet)
            repro->walk.instrBudget = args.instrs;
        // Inputs carrying a degraded or estimated profile (the serialized
        // `profile <tag>` line) are linted as-is: re-walking would clobber
        // the very weights under test and re-tag them Measured.
        if (profile &&
            repro->program.profileProvenance() == ProfileProvenance::Measured)
            profile_with(repro->program, repro->walk.seed,
                         repro->walk.instrBudget);
        inputs.emplace_back(path, std::move(repro->program));
    }
    return 0;
}

int
cmdEstimate(const Args &args)
{
    std::vector<std::pair<std::string, Program>> inputs;
    if (const int status = collectStaticInputs(args, "estimate", inputs,
                                               /*profile=*/false))
        return status;
    if (!args.output.empty() && inputs.size() != 1) {
        std::fprintf(stderr,
                     "estimate: -o needs exactly one input program\n");
        return 2;
    }

    bool first = true;
    if (args.json)
        std::cout << "[\n";
    for (auto &[name, program] : inputs) {
        const EstimateReport report = estimateProfile(program);
        if (args.json) {
            if (!first)
                std::cout << ",\n";
            writeEstimateReportJson(report, program, std::cout);
        } else {
            std::cout << formatEstimateReport(report, program);
        }
        first = false;
    }
    if (args.json)
        std::cout << "\n]\n";
    if (!args.output.empty())
        saveProgram(inputs.front().second, args.output);
    return 0;
}

int
cmdLint(const Args &args)
{
    std::vector<std::pair<std::string, Program>> inputs;
    if (const int status = collectStaticInputs(args, "lint", inputs))
        return status;

    const std::optional<ObjectiveKind> objective =
        parseObjectiveKind(args.objective);
    if (!objective.has_value()) {
        std::fprintf(stderr, "lint: unknown objective '%s'\n",
                     args.objective.c_str());
        return 2;
    }
    LintRunOptions run;
    run.align.objective = *objective;

    std::size_t total_errors = 0;
    std::size_t total_warnings = 0;
    bool first = true;
    if (args.json)
        std::cout << "[\n";
    for (const auto &[name, program] : inputs) {
        const LintReport report = lintProgram(program, run);
        total_errors += report.errors();
        total_warnings += report.warnings();
        if (args.json) {
            if (!first)
                std::cout << ",\n";
            writeLintReportJson(report, name, std::cout);
        } else {
            std::cout << formatLintReport(report, name);
        }
        first = false;
    }
    if (args.json)
        std::cout << "\n]\n";
    else
        std::printf("lint: %zu program(s): %zu error(s), %zu warning(s)\n",
                    inputs.size(), total_errors, total_warnings);
    return total_errors == 0 ? 0 : 1;
}

int
cmdVerify(const Args &args)
{
    std::vector<std::pair<std::string, Program>> inputs;
    if (const int status = collectStaticInputs(args, "verify", inputs))
        return status;

    VerifyRunOptions run;
    if (args.objectiveSet) {
        const std::optional<ObjectiveKind> objective =
            parseObjectiveKind(args.objective);
        if (!objective.has_value()) {
            std::fprintf(stderr, "verify: unknown objective '%s'\n",
                         args.objective.c_str());
            return 2;
        }
        run.objectives = {*objective};
    } else {
        run.objectives = allObjectiveKinds();
    }

    std::size_t total_failed = 0;
    std::size_t total_layouts = 0;
    bool first = true;
    if (args.json)
        std::cout << "[\n";
    for (const auto &[name, program] : inputs) {
        const VerifyRunReport report = verifyProgramLayouts(program, run);
        total_failed += report.failedLayouts;
        total_layouts += report.layoutsVerified;
        if (args.json) {
            if (!first)
                std::cout << ",\n";
            writeVerifyReportJson(report, name, std::cout);
        } else {
            std::cout << formatVerifyReport(report, name);
        }
        first = false;
        if (!args.output.empty()) {
            // One certificate-bearing report file per program.
            std::string file = program.name();
            for (char &c : file) {
                if (c == '/' || c == '\\')
                    c = '_';
            }
            const std::string path =
                args.output + "/" + file + ".verify.json";
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "verify: cannot write %s\n",
                             path.c_str());
                return 2;
            }
            writeVerifyReportJson(report, name, out);
            out << "\n";
        }
    }
    if (args.json)
        std::cout << "\n]\n";
    else
        std::printf("verify: %zu program(s): %zu of %zu layout(s) failed\n",
                    inputs.size(), total_failed, total_layouts);
    return total_failed == 0 ? 0 : 1;
}

/**
 * Rebuilds the layout `emit` captures in an object — the identity layout
 * unless --algo is given, priced under --arch's cost model with the
 * BT/FNT chain-order override. Shared by emit and check-obj so the
 * validator reconstructs exactly what the emitter wrote.
 */
ProgramLayout
emitLayout(const Args &args, const Program &program, AlignerKind &kind)
{
    // The object captures ONE layout; the identity layout is the neutral
    // default so `balign emit prog.balign -o prog.o` round-trips the
    // program as written, and --algo selects an optimized placement.
    kind = args.algoSet ? parseAlgo(args.algo) : AlignerKind::Original;
    const CostModel model(parseArch(args.arch));
    AlignOptions options;
    options.objective = parseObjective(args.objective);
    if (model.arch() == Arch::BtFnt)
        options.chainOrder = ChainOrderPolicy::BtFntPrecedence;
    return alignProgram(program, kind, &model, options);
}

/// One row of the per-procedure size array emit --json and check-obj
/// --json share (the schema satellite: identical key names both sides).
struct ProcSizeRow
{
    std::string name;
    std::uint64_t textBytes = 0;
    std::uint64_t instrs = 0;
    std::uint64_t shortBranches = 0;
    std::uint64_t nearBranches = 0;
};

/// Writes `"procs":[{"name":...,"text_bytes":...,"instrs":...,
/// "short_branches":...,"near_branches":...},...]` (no surrounding
/// braces; the caller owns the enclosing object).
void
writeProcSizesJson(const std::vector<ProcSizeRow> &rows, std::ostream &os)
{
    os << "\"procs\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ProcSizeRow &row = rows[i];
        if (i > 0)
            os << ',';
        os << "{\"name\":\"" << row.name
           << "\",\"text_bytes\":" << row.textBytes
           << ",\"instrs\":" << row.instrs
           << ",\"short_branches\":" << row.shortBranches
           << ",\"near_branches\":" << row.nearBranches << '}';
    }
    os << ']';
}

/// Emit-side rows: byte accounting straight from the relaxation fixpoint.
std::vector<ProcSizeRow>
procSizesFromRelaxed(const Program &program, const RelaxedLayout &relaxed)
{
    std::vector<ProcSizeRow> rows;
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const RelaxedProc &proc = relaxed.procs[p];
        ProcSizeRow row;
        row.name = program.proc(p).name();
        row.textBytes = proc.byteSize;
        row.instrs = proc.numInstrs;
        for (std::uint32_t i = 0; i < proc.numInstrs; ++i) {
            const BranchForm form =
                relaxed.instrs[proc.firstInstr + i].form;
            if (form == BranchForm::Short)
                ++row.shortBranches;
            else if (form == BranchForm::Near)
                ++row.nearBranches;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

int
cmdEmit(const Args &args)
{
    std::vector<std::pair<std::string, Program>> inputs;
    if (const int status = collectStaticInputs(args, "emit", inputs))
        return status;
    if (inputs.size() != 1) {
        std::fprintf(stderr, "emit: need exactly one input program\n");
        return 2;
    }
    if (args.output.empty()) {
        std::fprintf(stderr, "emit: need -o FILE for the object\n");
        return 2;
    }
    const std::optional<EncodingModelKind> encoding =
        parseEncodingModelKind(args.encoding);
    if (!encoding.has_value()) {
        std::fprintf(stderr, "emit: unknown encoding '%s'\n",
                     args.encoding.c_str());
        return 2;
    }
    const Program &program = inputs.front().second;

    AlignerKind kind = AlignerKind::Original;
    const ProgramLayout layout = emitLayout(args, program, kind);

    const EncodingModel &em = encodingModel(*encoding);
    const RelaxedLayout relaxed = relaxLayout(program, layout, em);
    if (!relaxed.converged) {
        std::fprintf(stderr, "emit: relaxation did not converge: %s\n",
                     relaxed.diagnostic.c_str());
        return 1;
    }
    const VerifyResult proof =
        verifyRelaxedLayout(program, layout, relaxed, em);
    if (!proof.verified()) {
        for (const VerifyFailure &failure : proof.failures)
            std::fprintf(stderr, "emit: %s\n",
                         formatVerifyFailure(failure).c_str());
        return 1;
    }
    if (!writeElfObject(args.output, program, relaxed, em))
        return 2;

    if (args.json) {
        std::cout << "{\"schema_version\":1,\"program\":\""
                  << program.name()
                  << "\",\"encoding\":\"" << em.name()
                  << "\",\"algo\":\"" << alignerKindName(kind)
                  << "\",\"arch\":\"" << archName(parseArch(args.arch))
                  << "\",\"objective\":\""
                  << objectiveKindName(parseObjective(args.objective))
                  << "\",\"object\":\"" << args.output
                  << "\",\"text_bytes\":" << relaxed.totalBytes
                  << ",\"short_branches\":" << relaxed.shortBranches
                  << ",\"near_branches\":" << relaxed.nearBranches
                  << ",\"relax_sweeps\":" << relaxed.iterations
                  << ",\"checks\":" << proof.totalChecks() << ',';
        writeProcSizesJson(procSizesFromRelaxed(program, relaxed),
                           std::cout);
        std::cout << "}\n";
    } else {
        std::printf("emit: %s: %llu text byte(s) (%llu short, %llu near "
                    "branch(es), %u sweep(s)) -> %s\n",
                    program.name().c_str(),
                    static_cast<unsigned long long>(relaxed.totalBytes),
                    static_cast<unsigned long long>(relaxed.shortBranches),
                    static_cast<unsigned long long>(relaxed.nearBranches),
                    relaxed.iterations, args.output.c_str());
    }
    return 0;
}

/**
 * Validates one in-memory or on-disk object: relaxes the reconstructed
 * layout under @p encoding, runs the byte-level checker, prints either
 * the text rendering (failures + advisory obj.* lint findings) or one
 * certificate JSON, and optionally writes the certificate to a file.
 * Returns the number of obligation failures.
 */
std::size_t
checkOneObject(const Program &program, const RelaxedLayout &relaxed,
               const std::vector<std::uint8_t> &objectBytes,
               const std::string &objectLabel, AlignerKind kind,
               const Args &args, bool jsonFirst, std::ostream *jsonOut,
               const std::string &certPath)
{
    ObjCertificate certificate;
    certificate.program = program.name();
    certificate.arch = args.arch;
    certificate.aligner = alignerKindName(kind);
    certificate.objective = args.objective;
    certificate.encoding = encodingModelKindName(relaxed.model);
    certificate.object = objectLabel;
    certificate.result = checkObject(program, relaxed, objectBytes);
    const ObjCheckResult &result = certificate.result;

    if (jsonOut != nullptr) {
        if (!jsonFirst)
            *jsonOut << ",\n";
        writeObjCertificateJson(certificate, *jsonOut);
    } else {
        for (const ObjFailure &failure : result.failures)
            std::printf("%s\n", formatObjFailure(failure).c_str());
        std::vector<Diagnostic> advisory;
        lintObject(program, result.disasm, certificate.encoding, advisory);
        for (const Diagnostic &diagnostic : advisory)
            std::printf("%s\n", formatDiagnostic(diagnostic).c_str());
        std::printf("check-obj: %s (%s, %s): %zu check(s), %zu "
                    "failure(s)%s\n",
                    program.name().c_str(), certificate.encoding.c_str(),
                    objectLabel.empty() ? "in-memory"
                                        : objectLabel.c_str(),
                    result.totalChecks(), result.totalFailures(),
                    result.verified() ? "; all obligations discharged"
                                      : "");
    }
    if (!certPath.empty()) {
        std::ofstream out(certPath);
        if (!out) {
            std::fprintf(stderr, "check-obj: cannot write %s\n",
                         certPath.c_str());
        } else {
            writeObjCertificateJson(certificate, out);
            out << "\n";
        }
    }
    return result.totalFailures();
}

int
cmdCheckObj(const Args &args)
{
    const std::optional<EncodingModelKind> forced =
        args.encodingSet ? parseEncodingModelKind(args.encoding)
                         : std::nullopt;
    if (args.encodingSet && !forced.has_value()) {
        std::fprintf(stderr, "check-obj: unknown encoding '%s'\n",
                     args.encoding.c_str());
        return 2;
    }

    if (args.suite) {
        // Suite mode: emit in-memory objects for all 24 programs under
        // the (forced or default) encoding and validate each one.
        std::vector<std::pair<std::string, Program>> inputs;
        if (const int status =
                collectStaticInputs(args, "check-obj", inputs))
            return status;
        const EncodingModelKind encoding =
            forced.value_or(*parseEncodingModelKind(args.encoding));
        const EncodingModel &em = encodingModel(encoding);

        std::size_t failures = 0;
        bool first = true;
        if (args.json)
            std::cout << "[\n";
        for (const auto &[name, program] : inputs) {
            AlignerKind kind = AlignerKind::Original;
            const ProgramLayout layout = emitLayout(args, program, kind);
            const RelaxedLayout relaxed = relaxLayout(program, layout, em);
            if (!relaxed.converged) {
                std::fprintf(stderr,
                             "check-obj: %s: relaxation did not "
                             "converge: %s\n",
                             name.c_str(), relaxed.diagnostic.c_str());
                ++failures;
                continue;
            }
            const std::vector<std::uint8_t> object =
                buildElfObject(program, relaxed, em);
            std::string certPath;
            if (!args.output.empty()) {
                std::string file = program.name();
                for (char &c : file) {
                    if (c == '/' || c == '\\')
                        c = '_';
                }
                certPath = args.output + "/" + file + "." +
                           encodingModelKindName(encoding) +
                           ".checkobj.json";
            }
            failures += checkOneObject(
                program, relaxed, object, /*objectLabel=*/"", kind, args,
                first, args.json ? &std::cout : nullptr, certPath);
            first = false;
        }
        if (args.json)
            std::cout << "\n]\n";
        else
            std::printf("check-obj: %zu program(s) (%s): %zu obligation "
                        "failure(s)\n",
                        inputs.size(), encodingModelKindName(encoding),
                        failures);
        return failures == 0 ? 0 : 1;
    }

    if (args.positional.size() != 2) {
        std::fprintf(stderr,
                     "check-obj: need <program.balign> <program.o> or "
                     "--suite\n");
        return 2;
    }

    Args programOnly = args;
    programOnly.positional = {args.positional[0]};
    std::vector<std::pair<std::string, Program>> inputs;
    if (const int status =
            collectStaticInputs(programOnly, "check-obj", inputs))
        return status;
    const Program &program = inputs.front().second;

    const std::string &objectPath = args.positional[1];
    std::ifstream in(objectPath, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "check-obj: cannot read %s\n",
                     objectPath.c_str());
        return 2;
    }
    const std::vector<std::uint8_t> objectBytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    // The encoding comes from the object itself (e_machine) unless
    // --encoding second-guesses it; an unparseable object falls back to
    // the default so the checker can still report the parse failure as
    // a decode-totality finding.
    EncodingModelKind encoding =
        forced.value_or(*parseEncodingModelKind(args.encoding));
    if (!forced.has_value()) {
        const ParsedElf probe = parseElfObject(objectBytes);
        if (probe.ok && probe.machine == 0)
            encoding = EncodingModelKind::FixedWord;
        else if (probe.ok && probe.machine == 62)
            encoding = EncodingModelKind::Variable;
    }

    AlignerKind kind = AlignerKind::Original;
    const ProgramLayout layout = emitLayout(args, program, kind);
    const RelaxedLayout relaxed =
        relaxLayout(program, layout, encodingModel(encoding));
    if (!relaxed.converged) {
        std::fprintf(stderr,
                     "check-obj: relaxation did not converge: %s\n",
                     relaxed.diagnostic.c_str());
        return 1;
    }

    const std::size_t failures = checkOneObject(
        program, relaxed, objectBytes, objectPath, kind, args,
        /*jsonFirst=*/true, args.json ? &std::cout : nullptr,
        /*certPath=*/"");
    if (args.json)
        std::cout << "\n";
    return failures == 0 ? 0 : 1;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: balign <command> [options]\n"
        "commands:\n"
        "  generate <suite-name> [-o FILE]            create a program model\n"
        "  profile <FILE> [-o FILE] [--instrs N]      record edge profile\n"
        "  stats <FILE>                               Table-2 attributes\n"
        "  align <FILE> --arch A --algo G             show the layout\n"
        "  evaluate <FILE> --arch A                   compare aligners\n"
        "  unroll <FILE> [--factor K] [-o FILE]       duplicate hot loops\n"
        "  degrade <FILE> --kind K [-o FILE]          degrade the profile\n"
        "  dot <FILE> [--proc N]                      Graphviz output\n"
        "  fuzz [--seeds N] [--instrs N] [-o DIR]     differential fuzzing\n"
        "  repro <FILE> [--instrs N]                  replay one repro\n"
        "  estimate <FILE>...|--suite [--json]        synthesize a static\n"
        "                                             profile, no trace\n"
        "  lint <FILE>...|--suite [--json]            static verification\n"
        "  verify <FILE>...|--suite [--json] [-o DIR] prove layouts, emit\n"
        "                                             certificates\n"
        "  emit <FILE> -o FILE.o [--encoding E]       relax branch forms and\n"
        "                                             write a relocatable ELF\n"
        "  check-obj <FILE> <FILE.o> [--json]         decode an emitted object\n"
        "  check-obj --suite [--json] [-o DIR]        and prove it against the\n"
        "                                             layout (byte-level\n"
        "                                             translation validation)\n"
        "options:\n"
        "  --algo greedy|cost|try15|exttsp|original   alignment algorithm\n"
        "  --objective table-cost|exttsp|size-aware   alignment objective\n"
        "    (align/evaluate/lint price under it; fuzz/repro sweep every\n"
        "    objective unless one is forced)\n"
        "  --encoding variable|fixed                  encoding model (emit)\n"
        "  --kind none|sample|stale|perturb|merge|drift\n"
        "    profile degradation; severity: -n N (sample keeps 1/N, merge\n"
        "    adds N walks), --param X (perturb eps / drift t),\n"
        "    --degrade-seed S (transform RNG / alternate input)\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    const Args args = parseArgs(argc, argv);
    if (command == "generate")
        return cmdGenerate(args);
    if (command == "profile")
        return cmdProfile(args);
    if (command == "stats")
        return cmdStats(args);
    if (command == "align")
        return cmdAlign(args);
    if (command == "evaluate")
        return cmdEvaluate(args);
    if (command == "unroll")
        return cmdUnroll(args);
    if (command == "degrade")
        return cmdDegrade(args);
    if (command == "dot")
        return cmdDot(args);
    if (command == "fuzz")
        return cmdFuzz(args);
    if (command == "repro")
        return cmdRepro(args);
    if (command == "estimate")
        return cmdEstimate(args);
    if (command == "lint")
        return cmdLint(args);
    if (command == "verify")
        return cmdVerify(args);
    if (command == "emit")
        return cmdEmit(args);
    if (command == "check-obj")
        return cmdCheckObj(args);
    usage();
    return 2;
}
