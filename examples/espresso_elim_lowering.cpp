/**
 * @file
 * Paper Figure 1 walk-through: the fragment of ESPRESSO's elim_lowering
 * routine. Shows, for each static prediction architecture, which edges are
 * mispredicted or misfetched in the original layout and how the Try15
 * alignment transforms the code (paper §3, Figure 1).
 *
 * Block ids map to the paper's node labels: 0 = entry stub, 1..8 = nodes
 * 25..32.
 */

#include <cstdio>

#include "bpred/evaluator.h"
#include "cfg/dot.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "trace/walker.h"
#include "workload/paper_figures.h"

using namespace balign;

namespace {

const char *
nodeName(BlockId id)
{
    static const char *names[] = {"entry", "25", "26", "27", "28",
                                  "29",    "30", "31", "32"};
    return id < 9 ? names[id] : "?";
}

void
describeLayout(const Program &program, const ProgramLayout &layout)
{
    const Procedure &proc = program.proc(0);
    const ProcLayout &pl = layout.procs[0];
    std::printf("  block order:");
    for (BlockId id : pl.order)
        std::printf(" %s", nodeName(id));
    std::printf("\n  jumps inserted %u, removed %u, senses inverted %u\n",
                pl.jumpsInserted, pl.jumpsRemoved, pl.sensesInverted);

    // Realized taken edges (the "dotted" edges of the paper figure).
    std::printf("  realized taken edges:");
    for (const auto &block : proc.blocks()) {
        if (block.term != Terminator::CondBranch)
            continue;
        const EdgeKind kind = branchTargetKind(pl.blocks[block.id].cond);
        const auto index = static_cast<std::uint32_t>(
            kind == EdgeKind::Taken ? proc.takenEdge(block.id)
                                    : proc.fallThroughEdge(block.id));
        std::printf(" %s->%s", nodeName(block.id),
                    nodeName(proc.edge(index).dst));
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    const Program program = figure1Espresso();
    std::printf("Figure 1: ESPRESSO elim_lowering fragment\n");
    std::printf("(weights are per-mille of procedure transitions x 100; "
                "edge 31->25 is the paper's '16')\n\n");

    const ProgramLayout original = originalLayout(program);
    std::printf("Original layout:\n");
    describeLayout(program, original);

    // Evaluate each static architecture on the same stochastic trace.
    WalkOptions walk_options;
    walk_options.seed = 1994;
    walk_options.instrBudget = 500'000;

    std::printf("\n%-12s %14s %14s %12s %12s\n", "architecture",
                "orig mispred", "orig misfetch", "try15 mis", "try15 mf");
    for (Arch arch : {Arch::Fallthrough, Arch::BtFnt, Arch::Likely}) {
        const CostModel model(arch);
        const ProgramLayout aligned =
            alignProgram(program, AlignerKind::Try15, &model);

        ArchEvaluator orig_eval(program, original,
                                EvalParams::forArch(arch));
        ArchEvaluator aligned_eval(program, aligned,
                                   EvalParams::forArch(arch));
        MultiSink fanout;
        fanout.add(&orig_eval.sink());
        fanout.add(&aligned_eval.sink());
        walk(program, walk_options, fanout);

        std::printf("%-12s %14llu %14llu %12llu %12llu\n", archName(arch),
                    static_cast<unsigned long long>(
                        orig_eval.result().mispredicts),
                    static_cast<unsigned long long>(
                        orig_eval.result().misfetches),
                    static_cast<unsigned long long>(
                        aligned_eval.result().mispredicts),
                    static_cast<unsigned long long>(
                        aligned_eval.result().misfetches));
    }

    const CostModel ft(Arch::Fallthrough);
    const ProgramLayout aligned =
        alignProgram(program, AlignerKind::Try15, &ft);
    std::printf("\nTry15/FALLTHROUGH transformed layout "
                "(node 25 becomes the fall-through of 31, paper Fig 1b):\n");
    describeLayout(program, aligned);

    std::printf("\nGraphviz (render with `dot -Tpng`):\n%s",
                toDot(program.proc(0)).c_str());
    return 0;
}
