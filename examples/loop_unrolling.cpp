/**
 * @file
 * Loop-unrolling walkthrough (the paper's §3 proposal): duplicate a hot
 * single-block loop so that most iterations continue by falling through,
 * then align. Shows the CFG surgery, the profile before/after, and the
 * branch-cost effect on FALLTHROUGH and BT/FNT.
 */

#include <cstdio>

#include "bpred/evaluator.h"
#include "cfg/dot.h"
#include "core/align_program.h"
#include "core/unroll.h"
#include "layout/materialize.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/paper_figures.h"

using namespace balign;

namespace {

/// Profiles and evaluates a program on one architecture with its Try15
/// alignment; returns BEP per thousand instructions.
double
bepPerKiloInstr(Program &program, Arch arch, std::uint64_t seed)
{
    WalkOptions options;
    options.seed = seed;
    options.instrBudget = 500'000;

    program.clearWeights();
    Profiler profiler(program);
    walk(program, options, profiler);

    const CostModel model(arch);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Try15, &model);
    ArchEvaluator eval(program, layout, EvalParams::forArch(arch));
    walk(program, options, eval.sink());
    return 1000.0 * eval.result().bep() /
           static_cast<double>(eval.result().instrs);
}

}  // namespace

int
main()
{
    std::printf("Loop unrolling by block duplication (paper §3)\n\n");

    Program plain = figure2Alvinn();
    Program unrolled = figure2Alvinn();

    UnrollOptions options;
    options.factor = 4;
    const unsigned loops = unrollSelfLoops(unrolled, options);
    std::printf("unrolled %u loop(s), factor %u: %zu blocks -> %zu "
                "blocks, %llu -> %llu instructions\n",
                loops, options.factor, plain.proc(0).numBlocks(),
                unrolled.proc(0).numBlocks(),
                static_cast<unsigned long long>(plain.totalInstrs()),
                static_cast<unsigned long long>(unrolled.totalInstrs()));

    std::printf("\naligned branch penalty (cycles per 1000 instructions):"
                "\n%-14s %10s %10s\n", "", "plain", "unrolled");
    for (Arch arch : {Arch::Fallthrough, Arch::BtFnt, Arch::PhtDirect}) {
        const double before = bepPerKiloInstr(plain, arch, 77);
        const double after = bepPerKiloInstr(unrolled, arch, 77);
        std::printf("%-14s %10.1f %10.1f\n", archName(arch), before,
                    after);
    }

    std::printf("\nunrolled CFG (note the fall-through chain of copies):\n"
                "%s",
                toDot(unrolled.proc(0)).c_str());
    return 0;
}
