/**
 * @file
 * Layout explorer: generates one of the suite program models, aligns it
 * with every algorithm for a chosen architecture, and reports per-procedure
 * transformation statistics plus overall metrics — the kind of report a
 * user of the library would consult before shipping an aligned binary.
 *
 * Usage: layout_explorer [program-name] [arch]
 *   program-name: any suite model (default: espresso)
 *   arch: fallthrough | btfnt | likely | pht | gshare | btb (default: btfnt)
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "layout/materialize.h"
#include "sim/cpi.h"
#include "support/log.h"
#include "support/table.h"
#include "workload/suite.h"

using namespace balign;

namespace {

Arch
parseArch(const char *name)
{
    if (std::strcmp(name, "fallthrough") == 0)
        return Arch::Fallthrough;
    if (std::strcmp(name, "btfnt") == 0)
        return Arch::BtFnt;
    if (std::strcmp(name, "likely") == 0)
        return Arch::Likely;
    if (std::strcmp(name, "pht") == 0)
        return Arch::PhtDirect;
    if (std::strcmp(name, "gshare") == 0)
        return Arch::PhtCorrelated;
    if (std::strcmp(name, "btb") == 0)
        return Arch::BtbLarge;
    fatal("unknown architecture '%s'", name);
}

}  // namespace

int
main(int argc, char **argv)
{
    const char *program_name = argc > 1 ? argv[1] : "espresso";
    const Arch arch = parseArch(argc > 2 ? argv[2] : "btfnt");

    ProgramSpec spec = suiteSpec(program_name);
    spec.traceInstrs = 1'000'000;
    std::printf("program model: %s (%s), arch: %s\n", spec.name.c_str(),
                spec.group.c_str(), archName(arch));

    const PreparedProgram prepared = prepareProgram(spec);
    std::printf("profiled %llu instructions, %.1f%% breaks, "
                "%.1f%% of conditionals taken\n\n",
                static_cast<unsigned long long>(
                    prepared.stats.instrsTraced),
                prepared.stats.pctBreaks(), prepared.stats.pctTaken());

    const std::vector<ExperimentConfig> configs = {
        {arch, AlignerKind::Original},
        {arch, AlignerKind::Greedy},
        {arch, AlignerKind::Cost},
        {arch, AlignerKind::Try15},
    };
    const ExperimentRun run = runConfigs(prepared, configs);

    Table table({"layout", "rel CPI", "BEP cycles", "fall-through %",
                 "cond accuracy %", "instrs"});
    for (const auto &cell : run.cells) {
        table.row()
            .cell(alignerKindName(cell.config.kind))
            .cell(cell.relCpi, 3)
            .cell(cell.eval.bep(), 0)
            .cell(cell.eval.pctFallThrough(), 1)
            .cell(cell.eval.condAccuracy(), 1)
            .cell(cell.eval.instrs, true);
    }
    table.print(std::cout);

    // Per-procedure transformation summary for the Try15 layout.
    const CostModel model(arch);
    const ProgramLayout layout =
        alignProgram(prepared.program, AlignerKind::Try15, &model);
    std::printf("\nTry15 transformations (procedures with any change):\n");
    Table procs({"procedure", "blocks", "jumps +", "jumps -", "inverted",
                 "size before", "size after"});
    for (ProcId p = 0; p < prepared.program.numProcs(); ++p) {
        const ProcLayout &pl = layout.procs[p];
        if (pl.jumpsInserted == 0 && pl.jumpsRemoved == 0 &&
            pl.sensesInverted == 0)
            continue;
        procs.row()
            .cell(prepared.program.proc(p).name())
            .cell(static_cast<std::uint64_t>(
                prepared.program.proc(p).numBlocks()))
            .cell(static_cast<std::uint64_t>(pl.jumpsInserted))
            .cell(static_cast<std::uint64_t>(pl.jumpsRemoved))
            .cell(static_cast<std::uint64_t>(pl.sensesInverted))
            .cell(prepared.program.proc(p).totalInstrs(), false)
            .cell(pl.totalInstrs, false);
    }
    procs.print(std::cout);
    return 0;
}
