/**
 * @file
 * Quickstart: build a small CFG by hand, profile it with a seeded walk,
 * align it with the Greedy and Try15 algorithms, and compare branch costs
 * on the FALLTHROUGH architecture.
 *
 * This walks through the full public API surface:
 *   CfgBuilder -> walk/Profiler -> alignProgram -> ArchEvaluator.
 */

#include <cstdio>

#include "cfg/builder.h"
#include "cfg/dot.h"
#include "core/align_program.h"
#include "sim/cpi.h"
#include "trace/profiler.h"
#include "trace/walker.h"

using namespace balign;

int
main()
{
    // 1. Build a program: a hot loop whose back edge is taken (the layout
    //    a compiler would naturally emit), plus a cold error path.
    Program program("quickstart");
    const ProcId pid = program.addProc("kernel");
    CfgBuilder b(program.proc(pid));

    const BlockId entry = b.block(3, Terminator::FallThrough);
    const BlockId head = b.block(2, Terminator::CondBranch);   // loop test
    const BlockId body = b.block(8, Terminator::CondBranch);   // hot work
    const BlockId error = b.block(4, Terminator::UncondBranch);  // cold
    const BlockId latch = b.block(2, Terminator::UncondBranch);
    const BlockId exit = b.block(5, Terminator::Return);

    b.fallThrough(entry, head, 0, 1.0);
    b.fallThrough(head, body, 0, 0.98);   // stay in the loop
    b.taken(head, exit, 0, 0.02);
    b.fallThrough(body, error, 0, 0.01);  // rare error check
    b.taken(body, latch, 0, 0.99);
    b.taken(error, latch, 0, 1.0);
    b.taken(latch, head, 0, 1.0);         // loop back

    // 2. Profile: one deterministic walk fills the edge weights.
    WalkOptions walk_options;
    walk_options.seed = 42;
    walk_options.instrBudget = 200'000;
    const PreparedProgram prepared =
        prepareProgram(std::move(program), walk_options);

    std::printf("profiled: %llu instrs, %.1f%% of conditional branches "
                "taken in the original layout\n",
                static_cast<unsigned long long>(prepared.stats.instrsTraced),
                prepared.stats.pctTaken());

    // 3. Align for the FALLTHROUGH architecture and evaluate Original,
    //    Greedy and Try15 on the same trace.
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Greedy},
        {Arch::Fallthrough, AlignerKind::Try15},
    };
    const ExperimentRun run = runConfigs(prepared, configs);

    std::printf("\n%-10s %12s %14s %12s\n", "layout", "rel. CPI",
                "fall-through%", "BEP cycles");
    for (const auto &cell : run.cells) {
        std::printf("%-10s %12.3f %14.1f %12.0f\n",
                    alignerKindName(cell.config.kind), cell.relCpi,
                    cell.eval.pctFallThrough(), cell.eval.bep());
    }

    // 4. Export the CFG for inspection (paper-style: fall-through edges
    //    bold, taken edges dashed).
    std::printf("\nGraphviz of the profiled CFG:\n%s",
                toDot(prepared.program.proc(pid)).c_str());
    return 0;
}
