/**
 * @file
 * Paper Figure 2 walk-through: ALVINN's input_hidden routine — a single
 * 11-instruction basic block accounting for nearly all branches. Shows the
 * sense-inversion + inserted-jump loop transformation (paper §3/§4): under
 * the FALLTHROUGH model the original loop costs 5 cycles of branch work
 * per iteration; the transformed loop costs 3.
 */

#include <cstdio>

#include "bpred/evaluator.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "trace/walker.h"
#include "workload/paper_figures.h"

using namespace balign;

int
main()
{
    const Program program = figure2Alvinn();
    std::printf("Figure 2: ALVINN input_hidden — a single-block loop\n\n");

    const CostModel ft_model(Arch::Fallthrough);

    // Per-iteration costs straight from the cost model (paper §4).
    const double per_iter_orig =
        ft_model.condRealizationCost(1, 0, CondRealization::FallAdjacent,
                                     DirHint::Backward, DirHint::Forward);
    const double per_iter_new = ft_model.condRealizationCost(
        1, 0, CondRealization::NeitherJumpToTaken, DirHint::Backward,
        DirHint::Forward);
    std::printf("FALLTHROUGH cost per loop iteration:\n");
    std::printf("  original (taken back edge):        %.0f cycles\n",
                per_iter_orig);
    std::printf("  inverted sense + jump:             %.0f cycles\n",
                per_iter_new);

    // End to end: align and measure.
    const ProgramLayout original = originalLayout(program);
    const ProgramLayout aligned =
        alignProgram(program, AlignerKind::Try15, &ft_model);

    WalkOptions options;
    options.seed = 7;
    options.instrBudget = 1'000'000;

    ArchEvaluator orig_eval(program, original,
                            EvalParams::forArch(Arch::Fallthrough));
    ArchEvaluator aligned_eval(program, aligned,
                               EvalParams::forArch(Arch::Fallthrough));
    MultiSink fanout;
    fanout.add(&orig_eval.sink());
    fanout.add(&aligned_eval.sink());
    walk(program, options, fanout);

    const auto base = orig_eval.result().instrs;
    std::printf("\nmeasured over %llu instructions:\n",
                static_cast<unsigned long long>(base));
    std::printf("  original relative CPI: %.3f (%.1f%% fall-through)\n",
                orig_eval.result().relativeCpi(base),
                orig_eval.result().pctFallThrough());
    std::printf("  aligned  relative CPI: %.3f (%.1f%% fall-through)\n",
                aligned_eval.result().relativeCpi(base),
                aligned_eval.result().pctFallThrough());

    // BT/FNT for contrast: the backward-taken loop is already predicted.
    const CostModel bf_model(Arch::BtFnt);
    const ProgramLayout bf_aligned =
        alignProgram(program, AlignerKind::Try15, &bf_model);
    ArchEvaluator bf_orig(program, original,
                          EvalParams::forArch(Arch::BtFnt));
    ArchEvaluator bf_new(program, bf_aligned,
                         EvalParams::forArch(Arch::BtFnt));
    MultiSink bf_fanout;
    bf_fanout.add(&bf_orig.sink());
    bf_fanout.add(&bf_new.sink());
    walk(program, options, bf_fanout);
    std::printf("\nBT/FNT (no transformation expected):\n");
    std::printf("  original relative CPI: %.3f\n",
                bf_orig.result().relativeCpi(base));
    std::printf("  aligned  relative CPI: %.3f\n",
                bf_new.result().relativeCpi(base));
    return 0;
}
