/**
 * @file
 * Batched replay engine (sim/batch_replay.h) unit tests: the branchless
 * counter helpers are pinned to SaturatingCounter exhaustively, the
 * batched runConfigs path is pinned byte-identical to the per-cell
 * reference engine on a real suite program, and the satellite fixes
 * (indexed cell() lookup, replay-free origInstrs recovery) are covered.
 * The full 24-program x all-configs matrix lives in test_replay_suite.cc
 * (`ctest -L replay`).
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "check/differ.h"
#include "layout/materialize.h"
#include "sim/batch_replay.h"
#include "sim/cpi.h"
#include "support/saturating_counter.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

/// All EvalResult counters, comparable with one EXPECT_EQ.
std::vector<std::uint64_t>
counters(const EvalResult &r)
{
    return {r.instrs,     r.misfetches, r.mispredicts,
            r.condExec,   r.condTaken,  r.condMispredicts,
            r.uncondExec, r.callExec,   r.returnExec,
            r.returnMispredicts, r.indirectExec,
            r.btbHits,    r.btbLookups};
}

PreparedProgram
preparedSuiteProgram(const std::string &name, std::uint64_t budget)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = budget;
    return prepareProgram(spec);
}

std::vector<ExperimentConfig>
fullConfigMatrix()
{
    std::vector<ExperimentConfig> configs;
    for (const Arch arch : allArchs()) {
        for (const AlignerKind kind : allAlignerKindsExtended())
            configs.push_back({arch, kind});
    }
    // ExtTSP-priced guided layouts exercise the arch-independent
    // layout-sharing path of the batched grouping too.
    for (const Arch arch : allArchs()) {
        configs.push_back({arch, AlignerKind::Cost, ObjectiveKind::ExtTsp});
        configs.push_back({arch, AlignerKind::Try15, ObjectiveKind::ExtTsp});
    }
    return configs;
}

}  // namespace

TEST(BatchCounters, BranchlessUpdateMatchesClassExhaustively)
{
    for (unsigned bits = 1; bits <= 8; ++bits) {
        const auto max =
            static_cast<std::uint8_t>((1u << bits) - 1u);
        for (unsigned value = 0; value <= max; ++value) {
            for (const bool taken : {false, true}) {
                SaturatingCounter reference(bits, value);
                EXPECT_EQ(saturatingTaken(static_cast<std::uint8_t>(value),
                                          max),
                          reference.taken())
                    << "bits=" << bits << " value=" << value;
                reference.update(taken);
                EXPECT_EQ(saturatingUpdate(static_cast<std::uint8_t>(value),
                                           max, taken),
                          reference.value())
                    << "bits=" << bits << " value=" << value
                    << " taken=" << taken;
            }
        }
    }
}

TEST(BatchReplay, MatchesPerCellEngineOnSuiteProgram)
{
    const PreparedProgram prepared = preparedSuiteProgram("eqntott", 60'000);
    const std::vector<ExperimentConfig> configs = fullConfigMatrix();

    RunContext batched;
    batched.engine = ReplayEngine::Batched;
    RunContext per_cell;
    per_cell.engine = ReplayEngine::PerCell;
    const ExperimentRun fast = runConfigs(prepared, configs, {}, batched);
    const ExperimentRun slow = runConfigs(prepared, configs, {}, per_cell);

    ASSERT_EQ(fast.cells.size(), slow.cells.size());
    EXPECT_EQ(fast.origInstrs, slow.origInstrs);
    for (std::size_t i = 0; i < fast.cells.size(); ++i) {
        EXPECT_EQ(counters(fast.cells[i].eval),
                  counters(slow.cells[i].eval))
            << archName(configs[i].arch) << "/"
            << alignerKindName(configs[i].kind) << "/"
            << objectiveKindName(configs[i].objective);
        EXPECT_EQ(fast.cells[i].relCpi, slow.cells[i].relCpi);
    }
}

TEST(BatchReplay, OrigInstrsRecoveredWithoutOriginalCell)
{
    const PreparedProgram prepared = preparedSuiteProgram("li", 40'000);
    const std::vector<ExperimentConfig> with_original = {
        {Arch::PhtDirect, AlignerKind::Original},
        {Arch::PhtDirect, AlignerKind::Greedy},
    };
    const std::vector<ExperimentConfig> without_original = {
        {Arch::PhtDirect, AlignerKind::Greedy},
    };
    const ExperimentRun base = runConfigs(prepared, with_original);
    const ExperimentRun derived = runConfigs(prepared, without_original);
    // The layout-level accounting must recover exactly what an Original
    // replay measures, without sweeping the trace again.
    EXPECT_EQ(derived.origInstrs, base.origInstrs);
    EXPECT_EQ(base.origInstrs,
              base.cell(Arch::PhtDirect, AlignerKind::Original).eval.instrs);
}

TEST(BatchReplay, BatchLayoutInstrsMatchesEvaluator)
{
    const PreparedProgram prepared = preparedSuiteProgram("compress", 40'000);
    ASSERT_NE(prepared.batch, nullptr);
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Greedy},
        {Arch::Fallthrough, AlignerKind::Cost},
    };
    // Per-cell replays give the ground-truth per-layout instruction
    // counts; batchLayoutInstrs must reproduce each without a sweep.
    RunContext per_cell;
    per_cell.engine = ReplayEngine::PerCell;
    const ExperimentRun run = runConfigs(prepared, configs, {}, per_cell);
    const CostModel model(Arch::Fallthrough);
    for (const auto &cell : run.cells) {
        const ProgramLayout layout =
            alignProgram(prepared.program, cell.config.kind, &model);
        EXPECT_EQ(batchLayoutInstrs(*prepared.batch, layout),
                  cell.eval.instrs)
            << alignerKindName(cell.config.kind);
    }
}

TEST(BatchReplay, SingleLaneRunMatchesEvaluatorDirectly)
{
    const PreparedProgram prepared = preparedSuiteProgram("sc", 40'000);
    ASSERT_NE(prepared.batch, nullptr);
    const ProgramLayout layout = originalLayout(prepared.program);
    for (const Arch arch : allArchs()) {
        const EvalParams params = EvalParams::forArch(arch);
        ArchEvaluator evaluator(prepared.program, layout, params);
        prepared.trace->replay(prepared.program, evaluator.sink());
        const std::vector<EvalResult> lanes = runBatchReplay(
            prepared.program, layout, *prepared.batch, {params});
        ASSERT_EQ(lanes.size(), 1u);
        EXPECT_EQ(counters(lanes[0]), counters(evaluator.result()))
            << archName(arch);
    }
}

TEST(ExperimentRunIndex, FirstMatchWinsLikeTheScan)
{
    const PreparedProgram prepared = preparedSuiteProgram("espresso", 30'000);
    // Same (arch, kind) under two objectives: cell(arch, kind) must keep
    // returning the FIRST configured cell, exactly like the linear scan.
    const std::vector<ExperimentConfig> configs = {
        {Arch::BtbSmall, AlignerKind::Cost, ObjectiveKind::TableCost},
        {Arch::BtbSmall, AlignerKind::Cost, ObjectiveKind::ExtTsp},
    };
    const ExperimentRun run = runConfigs(prepared, configs);
    EXPECT_EQ(run.cellIndex.size(), 1u);
    const ExperimentCell &found =
        run.cell(Arch::BtbSmall, AlignerKind::Cost);
    EXPECT_EQ(found.config.objective, ObjectiveKind::TableCost);
    EXPECT_EQ(counters(found.eval), counters(run.cells[0].eval));
}

TEST(ExperimentRunIndexDeathTest, MissingCellIsFatal)
{
    const PreparedProgram prepared = preparedSuiteProgram("espresso", 30'000);
    const std::vector<ExperimentConfig> configs = {
        {Arch::PhtDirect, AlignerKind::Original},
    };
    const ExperimentRun run = runConfigs(prepared, configs);
    EXPECT_DEATH(run.cell(Arch::BtbLarge, AlignerKind::Try15),
                 "no cell for");
}

TEST(ExperimentRunIndex, HandAssembledRunFallsBackToScan)
{
    ExperimentRun run;
    run.name = "hand-built";
    ExperimentCell cell;
    cell.config = {Arch::Likely, AlignerKind::Greedy};
    cell.eval.instrs = 123;
    run.cells.push_back(cell);
    // No buildCellIndex(): the scan path must still find the cell.
    EXPECT_EQ(run.cell(Arch::Likely, AlignerKind::Greedy).eval.instrs,
              123u);
}

TEST(BatchReplay, HandBuiltPreparedProgramStillRuns)
{
    // A PreparedProgram assembled by hand (tests do this) has no recorded
    // trace and no batch form; runConfigs must fall back to walking.
    ProgramSpec spec = suiteSpec("espresso");
    spec.traceInstrs = 20'000;
    PreparedProgram prepared;
    prepared.program = generateProgram(spec);
    prepared.walk.seed = traceSeed(spec);
    prepared.walk.instrBudget = spec.traceInstrs;
    const std::vector<ExperimentConfig> configs = {
        {Arch::PhtDirect, AlignerKind::Greedy},
    };
    const ExperimentRun run = runConfigs(prepared, configs);
    EXPECT_GT(run.origInstrs, 0u);
    EXPECT_GT(run.cells[0].eval.instrs, 0u);
}
