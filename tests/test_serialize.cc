/**
 * @file
 * Tests for program serialization: round trips over hand-built and
 * generated programs, and error reporting for malformed input.
 */

#include <gtest/gtest.h>

#include "cfg/serialize.h"
#include "check/fuzz.h"
#include "workload/generator.h"
#include "workload/paper_figures.h"
#include "workload/suite.h"

using namespace balign;

namespace {

/// Structural + profile equality.
void
expectEqualPrograms(const Program &a, const Program &b)
{
    ASSERT_EQ(a.numProcs(), b.numProcs());
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.mainProc(), b.mainProc());
    for (ProcId p = 0; p < a.numProcs(); ++p) {
        const Procedure &pa = a.proc(p);
        const Procedure &pb = b.proc(p);
        EXPECT_EQ(pa.name(), pb.name());
        EXPECT_EQ(pa.entry(), pb.entry());
        ASSERT_EQ(pa.numBlocks(), pb.numBlocks());
        ASSERT_EQ(pa.numEdges(), pb.numEdges());
        for (BlockId blk = 0; blk < pa.numBlocks(); ++blk) {
            const BasicBlock &ba = pa.block(blk);
            const BasicBlock &bb = pb.block(blk);
            EXPECT_EQ(ba.numInstrs, bb.numInstrs);
            EXPECT_EQ(ba.term, bb.term);
            EXPECT_EQ(ba.patternLength, bb.patternLength);
            EXPECT_EQ(ba.patternMask, bb.patternMask);
            EXPECT_EQ(ba.correlatedWith, bb.correlatedWith);
            EXPECT_EQ(ba.correlatedInvert, bb.correlatedInvert);
            ASSERT_EQ(ba.calls.size(), bb.calls.size());
            for (std::size_t c = 0; c < ba.calls.size(); ++c) {
                EXPECT_EQ(ba.calls[c].callee, bb.calls[c].callee);
                EXPECT_EQ(ba.calls[c].offset, bb.calls[c].offset);
            }
        }
        for (std::size_t e = 0; e < pa.numEdges(); ++e) {
            const Edge &ea = pa.edge(e);
            const Edge &eb = pb.edge(e);
            EXPECT_EQ(ea.src, eb.src);
            EXPECT_EQ(ea.dst, eb.dst);
            EXPECT_EQ(ea.kind, eb.kind);
            EXPECT_EQ(ea.weight, eb.weight);
            EXPECT_NEAR(ea.bias, eb.bias, 1e-9);
        }
    }
}

}  // namespace

TEST(Serialize, RoundTripFigure3)
{
    const Program original = figure3Loop();
    const ParseResult parsed =
        programFromString(programToString(original));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    expectEqualPrograms(original, *parsed.program);
}

TEST(Serialize, RoundTripFigure1WithWeights)
{
    const Program original = figure1Espresso();
    const ParseResult parsed =
        programFromString(programToString(original));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    expectEqualPrograms(original, *parsed.program);
}

TEST(Serialize, RoundTripGeneratedSuitePrograms)
{
    for (const char *name : {"compress", "alvinn", "idl"}) {
        const Program original = generateProgram(suiteSpec(name));
        const ParseResult parsed =
            programFromString(programToString(original));
        ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.error;
        expectEqualPrograms(original, *parsed.program);
    }
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
    const std::string text = R"(# a comment
balign-program v1
program tiny

main 0
proc 0 main entry 0   # trailing comment
block 0 3 return
endproc
)";
    const ParseResult parsed = programFromString(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.program->name(), "tiny");
    EXPECT_EQ(parsed.program->proc(0).block(0).numInstrs, 3u);
}

TEST(Serialize, MissingHeaderRejected)
{
    const ParseResult parsed = programFromString("program x\n");
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("header"), std::string::npos);
    EXPECT_EQ(parsed.errorLine, 1u);
}

TEST(Serialize, UnknownKeywordRejectedWithLineNumber)
{
    const std::string text = "balign-program v1\nprogram x\nbogus 1\n";
    const ParseResult parsed = programFromString(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.errorLine, 3u);
}

TEST(Serialize, NonDenseBlockIdsRejected)
{
    const std::string text = R"(balign-program v1
program x
main 0
proc 0 main entry 0
block 1 3 return
endproc
)";
    const ParseResult parsed = programFromString(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("dense"), std::string::npos);
}

TEST(Serialize, EdgeToUnknownBlockRejected)
{
    const std::string text = R"(balign-program v1
program x
main 0
proc 0 main entry 0
block 0 3 uncond
edge 0 7 taken 0 1.0
endproc
)";
    const ParseResult parsed = programFromString(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("unknown block"), std::string::npos);
}

TEST(Serialize, StructurallyInvalidProgramRejected)
{
    // A conditional block with only one out-edge fails validation.
    const std::string text = R"(balign-program v1
program x
main 0
proc 0 main entry 0
block 0 3 cond
block 1 1 return
edge 0 1 taken 0 1.0
endproc
)";
    const ParseResult parsed = programFromString(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("validation"), std::string::npos);
}

TEST(Serialize, MissingEndprocRejected)
{
    const std::string text = R"(balign-program v1
program x
main 0
proc 0 main entry 0
block 0 3 return
)";
    const ParseResult parsed = programFromString(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("endproc"), std::string::npos);
}

TEST(Serialize, FileRoundTrip)
{
    const Program original = figure2Alvinn();
    const std::string path = "/tmp/balign_serialize_test.prog";
    saveProgram(original, path);
    const ParseResult parsed = loadProgram(path);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    expectEqualPrograms(original, *parsed.program);
}

TEST(Serialize, LoadMissingFileReportsError)
{
    const ParseResult parsed = loadProgram("/nonexistent/path/prog");
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("cannot open"), std::string::npos);
}

TEST(Serialize, RoundTripDegenerateShapes)
{
    // The fuzzer's degenerate generators are the nastiest valid programs
    // we know how to build (self-loops, unreachable blocks, dense
    // indirect hubs, call chains past the walker's depth cap, outcome
    // patterns and correlations); all of them must survive the text
    // format unchanged.
    for (std::size_t kind = 0; kind < numDegenerateKinds(); ++kind) {
        const Program program = degenerateProgram(kind, 2);
        const auto parsed = programFromString(programToString(program));
        ASSERT_TRUE(parsed.ok())
            << degenerateKindName(kind) << ": " << parsed.error;
        expectEqualPrograms(program, *parsed.program);
    }
}

TEST(Serialize, TrulyEmptyProcedureRejected)
{
    // A procedure with no blocks at all cannot be walked; the parser must
    // reject it at validation instead of handing it to the pipeline.
    const char *text =
        "balign-program v1\n"
        "program empty\n"
        "main 0\n"
        "proc 0 main entry 0\n"
        "endproc\n";
    const auto parsed = programFromString(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_FALSE(parsed.error.empty());
}
