/**
 * @file
 * Lint-rule tests. A rule that never fires is worthless, so every rule in
 * the catalog gets an injection test: start from a known-good profiled
 * program (or a legal layout of it), corrupt exactly one invariant the
 * way test_differ.cc corrupts materializer bookkeeping, and require a
 * diagnostic with the exact rule id and location. Clean fixtures must
 * lint clean first, so a firing rule is evidence of detection rather
 * than of a noisy fixture.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bpred/static_cost.h"
#include "cfg/builder.h"
#include "cfg/validate.h"
#include "check/fuzz.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "lint/lint.h"
#include "trace/profiler.h"
#include "trace/walker.h"

using namespace balign;

namespace {

/**
 * Two procedures exercising every terminator the rules care about:
 *
 *   main: b0 cond --taken--> b2 uncond --> b3 return
 *            \--fall--> b1 fall (calls leaf) --> b3
 *   leaf: b0 fall --> b1 return
 */
Program
baseProgram()
{
    Program program("lint-base");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId b0 = b.block(3, Terminator::CondBranch);
        const BlockId b1 = b.block(4, Terminator::FallThrough);
        const BlockId b2 = b.block(2, Terminator::UncondBranch);
        const BlockId b3 = b.block(1, Terminator::Return);
        b.taken(b0, b2, 0, 0.7);
        b.fallThrough(b0, b1, 0, 0.3);
        b.fallThrough(b1, b3, 0);
        b.taken(b2, b3, 0);
        b.call(b1, leaf_id, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        const BlockId b0 = b.block(2, Terminator::FallThrough);
        const BlockId b1 = b.block(1, Terminator::Return);
        b.fallThrough(b0, b1, 0);
    }
    validateOrDie(program);
    return program;
}

/// baseProgram() with a recorded edge profile (the prof.* rules read it).
Program
profiledBase()
{
    Program program = baseProgram();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = 7;
    options.instrBudget = 2'000;
    walk(program, options, profiler);
    return program;
}

std::vector<Diagnostic>
cfgDiags(const Program &program)
{
    std::vector<Diagnostic> sink;
    lintCfg(program, sink);
    return sink;
}

std::vector<Diagnostic>
profDiags(const Program &program)
{
    std::vector<Diagnostic> sink;
    lintProfile(program, LintOptions{}, sink);
    return sink;
}

std::vector<Diagnostic>
layoutDiags(const Program &program, const ProgramLayout &layout)
{
    std::vector<Diagnostic> sink;
    lintLayout(program, layout, "test-arch", "test-algo", LintOptions{},
               sink);
    return sink;
}

/// Requires at least one diagnostic with exactly this rule and location.
testing::AssertionResult
hasRule(const std::vector<Diagnostic> &diags, const std::string &rule,
        ProcId proc = kNoProc, BlockId block = kNoBlock)
{
    for (const Diagnostic &diagnostic : diags) {
        if (diagnostic.rule == rule && diagnostic.loc.proc == proc &&
            diagnostic.loc.block == block)
            return testing::AssertionSuccess();
    }
    testing::AssertionResult result = testing::AssertionFailure();
    result << "no [" << rule << "] diagnostic at proc=" << proc
           << " block=" << block << "; got " << diags.size() << ":";
    for (const Diagnostic &diagnostic : diags)
        result << "\n  " << formatDiagnostic(diagnostic);
    return result;
}

}  // namespace

// ---------------------------------------------------------------------
// Catalog and clean fixtures.

TEST(Lint, CatalogHasStableUniqueIds)
{
    const std::vector<RuleInfo> &rules = allLintRules();
    EXPECT_GE(rules.size(), 10u);
    std::set<std::string> ids;
    for (const RuleInfo &rule : rules) {
        EXPECT_TRUE(ids.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
        const RuleInfo *found = findLintRule(rule.id);
        ASSERT_NE(found, nullptr);
        EXPECT_STREQ(found->id, rule.id);
    }
    EXPECT_EQ(findLintRule("cfg.no-such-rule"), nullptr);
}

TEST(Lint, CleanProgramLintsClean)
{
    const Program program = profiledBase();
    EXPECT_TRUE(cfgDiags(program).empty());
    EXPECT_TRUE(profDiags(program).empty());
    EXPECT_TRUE(layoutDiags(program, originalLayout(program)).empty());

    const LintReport report = lintProgram(program);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.warnings(), 0u);
    EXPECT_EQ(report.layoutsChecked, 32u);   // 8 archs x 4 aligners
    EXPECT_EQ(report.costPairsChecked, 16u); // 8 archs x {cost, try15}
}

// ---------------------------------------------------------------------
// cfg.* injections.

TEST(Lint, EntryFiresOnOutOfRangeEntry)
{
    Program program = baseProgram();
    program.proc(0).setEntry(99);
    EXPECT_TRUE(hasRule(cfgDiags(program), "cfg.entry", 0));
}

TEST(Lint, EntryFiresOnEmptyProgram)
{
    const Program program("empty");
    EXPECT_TRUE(hasRule(cfgDiags(program), "cfg.entry"));
}

TEST(Lint, EdgeTargetsFiresOnDanglingEndpoint)
{
    Program program = baseProgram();
    program.proc(0).edge(0).dst = 99;
    std::vector<Diagnostic> diags = cfgDiags(program);
    bool found = false;
    for (const Diagnostic &diagnostic : diags) {
        if (diagnostic.rule == "cfg.edge-targets" &&
            diagnostic.loc.proc == 0 && diagnostic.loc.edge == 0)
            found = true;
    }
    EXPECT_TRUE(found) << "cfg.edge-targets did not pin edge 0";
}

TEST(Lint, TerminatorArityFiresOnKindMismatch)
{
    Program program = baseProgram();
    // An unconditional branch suddenly claiming to be conditional has a
    // taken edge but no fall-through successor.
    program.proc(0).block(2).term = Terminator::CondBranch;
    EXPECT_TRUE(hasRule(cfgDiags(program), "cfg.terminator-arity", 0, 2));
}

TEST(Lint, CallSiteFiresOnUnknownCallee)
{
    Program program = baseProgram();
    program.proc(0).block(1).calls.push_back({99, 0});
    EXPECT_TRUE(hasRule(cfgDiags(program), "cfg.call-site", 0, 1));
}

TEST(Lint, CallSiteFiresOnTerminatorOverlap)
{
    Program program = baseProgram();
    // Block 0 has 3 instructions and a branch terminator: offsets 0-1
    // are legal, the terminator slot at 2 is not.
    program.proc(0).block(0).calls.push_back({1, 2});
    EXPECT_TRUE(hasRule(cfgDiags(program), "cfg.call-site", 0, 0));
}

TEST(Lint, BlockSizeFiresOnZeroInstrs)
{
    Program program = baseProgram();
    program.proc(0).block(3).numInstrs = 0;
    EXPECT_TRUE(hasRule(cfgDiags(program), "cfg.block-size", 0, 3));
}

TEST(Lint, UnreachableBlockWarnsWithoutSpoilingCleanBill)
{
    Program program = baseProgram();
    CfgBuilder b(program.proc(1));
    const BlockId orphan = b.block(2, Terminator::Return);
    const std::vector<Diagnostic> diags = cfgDiags(program);
    EXPECT_TRUE(hasRule(diags, "cfg.unreachable-block", 1, orphan));
    for (const Diagnostic &diagnostic : diags)
        EXPECT_EQ(diagnostic.severity, Severity::Warning)
            << formatDiagnostic(diagnostic);
    EXPECT_TRUE(lintProgram(program).clean());
}

TEST(Lint, DeadEndWarnsOnSuccessorlessFallThrough)
{
    Program program("dead-end");
    const ProcId main_id = program.addProc("main");
    CfgBuilder b(program.proc(main_id));
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId stuck = b.block(3, Terminator::FallThrough);
    const BlockId exit = b.block(1, Terminator::Return);
    b.taken(head, stuck, 0, 0.5);
    b.fallThrough(head, exit, 0, 0.5);
    const std::vector<Diagnostic> diags = cfgDiags(program);
    EXPECT_TRUE(hasRule(diags, "cfg.dead-end", 0, stuck));
    for (const Diagnostic &diagnostic : diags)
        EXPECT_EQ(diagnostic.severity, Severity::Warning)
            << formatDiagnostic(diagnostic);
}

TEST(Lint, IrreducibleFiresOnMultiEntryLoop)
{
    // b1 and b2 cycle through each other and BOTH are entered from the
    // head: neither dominates the other, so no natural loop exists and
    // the retreating edge b2 -> b1 witnesses the irreducible region.
    Program program("irreducible");
    const ProcId main_id = program.addProc("main");
    CfgBuilder b(program.proc(main_id));
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId left = b.block(3, Terminator::UncondBranch);
    const BlockId right = b.block(2, Terminator::CondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.taken(head, left, 0, 0.5);
    b.fallThrough(head, right, 0, 0.5);
    b.taken(left, right, 0);
    b.taken(right, left, 0, 0.5);
    b.fallThrough(right, exit, 0, 0.5);

    const std::vector<Diagnostic> diags = cfgDiags(program);
    EXPECT_TRUE(hasRule(diags, "cfg.irreducible", 0, right));
    // The region is a warning, not an error: the program is executable,
    // it just defeats the header-anchored layout heuristics.
    EXPECT_EQ(findLintRule("cfg.irreducible")->severity,
              Severity::Warning);
}

// ---------------------------------------------------------------------
// prof.* injections.

TEST(Lint, FlowConservationFiresOnOverOutflow)
{
    Program program = profiledBase();
    // Block 1 suddenly emits 1000 activations it never received.
    Procedure &proc = program.proc(0);
    proc.edge(proc.block(1).outEdges.front()).weight += 1'000;
    EXPECT_TRUE(hasRule(profDiags(program), "prof.flow-conservation", 0, 1));
}

TEST(Lint, FlowConservationFiresOnExcessInflow)
{
    Program program = profiledBase();
    // Inflate block 1's inflow past the truncated-walk allowance.
    Procedure &proc = program.proc(0);
    proc.edge(proc.block(1).inEdges.front()).weight += 1'000;
    EXPECT_TRUE(hasRule(profDiags(program), "prof.flow-conservation", 0, 1));
}

TEST(Lint, UnreachableWeightFiresOnPhantomProfile)
{
    Program program = profiledBase();
    // An unreachable two-block cycle carrying weight: flow conserves
    // locally, but no walk can ever have recorded it.
    CfgBuilder b(program.proc(1));
    const BlockId u = b.block(2, Terminator::UncondBranch);
    const BlockId w = b.block(2, Terminator::UncondBranch);
    b.taken(u, w, 5);
    b.taken(w, u, 5);
    const std::vector<Diagnostic> diags = profDiags(program);
    EXPECT_TRUE(hasRule(diags, "prof.unreachable-weight", 1, u));
    EXPECT_TRUE(hasRule(diags, "prof.unreachable-weight", 1, w));
}

TEST(Lint, UncalledProcWeightFiresOnBrokenCallGraph)
{
    Program program = profiledBase();
    ASSERT_GT(program.proc(1).totalEdgeWeight(), 0u)
        << "fixture must execute the leaf procedure";
    // Deleting the only call site leaves the leaf's recorded weight
    // unexplainable by the call graph.
    program.proc(0).block(1).calls.clear();
    EXPECT_TRUE(hasRule(profDiags(program), "prof.uncalled-proc", 1));
}

TEST(Lint, BiasRangeFiresOnNonProbability)
{
    Program program = profiledBase();
    program.proc(0).edge(0).bias = 1.5;
    EXPECT_TRUE(hasRule(profDiags(program), "prof.bias-range", 0,
                        program.proc(0).edge(0).src));
}

TEST(Lint, DegenerateProfileFiresOnAllZeroWeights)
{
    // Edges exist but carry no recorded weight at all (e.g. after heavy
    // sampling): a program-wide Note, located nowhere in particular.
    Program program = profiledBase();
    program.clearWeights();
    const std::vector<Diagnostic> diags = profDiags(program);
    EXPECT_TRUE(hasRule(diags, "prof.degenerate"));
    for (const Diagnostic &diagnostic : diags) {
        if (diagnostic.rule == "prof.degenerate")
            EXPECT_EQ(diagnostic.severity, Severity::Note);
    }
    // A single surviving activation is enough information to clear it.
    program.proc(0).edge(0).weight = 1;
    EXPECT_FALSE(hasRule(profDiags(program), "prof.degenerate"));
}

TEST(Lint, LoopFlowFiresWhenLoopEmitsMoreThanEntered)
{
    // A loop whose recorded exit weight exceeds its entry weight: every
    // path into a reducible loop passes through the header, so such a
    // profile cannot have been recorded by any single walk. The weights
    // are written by hand — this is precisely the inconsistency a real
    // profiler can never produce.
    Program program("loop-flow");
    const ProcId main_id = program.addProc("main");
    CfgBuilder b(program.proc(main_id));
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId body = b.block(3, Terminator::UncondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, head, 0);          // the loop is never entered...
    b.taken(head, body, 10, 0.5);
    b.fallThrough(head, exit, 10, 0.5);     // ...yet emits weight 10
    b.taken(body, head, 10);

    EXPECT_TRUE(hasRule(profDiags(program), "prof.flow", 0, head));
}

TEST(Lint, LoopFlowFiresWhenLoopSwallowsPastTheSlack)
{
    // Entries far exceed exits: more activations are stranded inside the
    // loop than any truncated walk could account for.
    Program program("loop-swallow");
    const ProcId main_id = program.addProc("main");
    CfgBuilder b(program.proc(main_id));
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId body = b.block(3, Terminator::UncondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, head, 1'000);
    b.taken(head, body, 900, 0.5);
    b.fallThrough(head, exit, 2, 0.5);      // 998 activations vanish
    b.taken(body, head, 900);

    EXPECT_TRUE(hasRule(profDiags(program), "prof.flow", 0, head));
}

TEST(Lint, LoopFlowQuietOnTruncatedWalkResidue)
{
    // The same shape with the imbalance inside the allowance (one
    // activation stranded by the budget) must not fire.
    Program program("loop-residue");
    const ProcId main_id = program.addProc("main");
    CfgBuilder b(program.proc(main_id));
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId body = b.block(3, Terminator::UncondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, head, 10);
    b.taken(head, body, 500, 0.5);
    b.fallThrough(head, exit, 9, 0.5);
    b.taken(body, head, 500);

    EXPECT_FALSE(hasRule(profDiags(program), "prof.flow", 0, head));
}

// ---------------------------------------------------------------------
// layout.* injections (each corrupts a legal original layout).

TEST(Lint, EntryFirstFiresOnDisplacedEntry)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    ProcLayout &pl = layout.procs[0];
    std::swap(pl.order[0], pl.order[1]);
    pl.blocks[pl.order[0]].orderIndex = 0;
    pl.blocks[pl.order[1]].orderIndex = 1;
    EXPECT_TRUE(hasRule(layoutDiags(program, layout), "layout.entry-first",
                        0, pl.order[0]));
}

TEST(Lint, PermutationFiresOnDuplicateBlock)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    layout.procs[0].order[2] = layout.procs[0].order[1];
    EXPECT_TRUE(hasRule(layoutDiags(program, layout), "layout.permutation",
                        0, layout.procs[0].order[1]));
}

TEST(Lint, AddressesFiresOnShiftedBlock)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    layout.procs[0].blocks[2].addr += 3;
    EXPECT_TRUE(hasRule(layoutDiags(program, layout), "layout.addresses",
                        0, 2));
}

TEST(Lint, AddressesFiresOnCorruptProcTotal)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    layout.procs[0].totalInstrs += 1;
    EXPECT_TRUE(hasRule(layoutDiags(program, layout), "layout.addresses",
                        0));
}

TEST(Lint, SizesFiresOnCorruptBaseInstrs)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    layout.procs[0].blocks[0].baseInstrs += 1;
    EXPECT_TRUE(hasRule(layoutDiags(program, layout), "layout.sizes", 0, 0));
}

TEST(Lint, BranchPolarityFiresOnBogusRealization)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    // Block 0's taken successor (block 2) is not next in the identity
    // order, so claiming TakenAdjacent lies about the polarity.
    ASSERT_EQ(layout.procs[0].blocks[0].cond,
              CondRealization::FallAdjacent);
    layout.procs[0].blocks[0].cond = CondRealization::TakenAdjacent;
    EXPECT_TRUE(hasRule(layoutDiags(program, layout),
                        "layout.branch-polarity", 0, 0));
}

TEST(Lint, JumpNeededFiresOnKeptAdjacentJump)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    // Block 2's unconditional jump targets the adjacent block 3; the
    // materializer must have removed it, so claiming otherwise is a lie.
    ASSERT_TRUE(layout.procs[0].blocks[2].jumpRemoved);
    layout.procs[0].blocks[2].jumpRemoved = false;
    EXPECT_TRUE(hasRule(layoutDiags(program, layout), "layout.jump-needed",
                        0, 2));
}

TEST(Lint, LoopSplitNotesHotLoopSpreadAcrossSlots)
{
    // A hot two-block loop (header + latch, back-edge weight well past
    // hotLoopWeight) whose latch is exiled to the end of the layout: the
    // two hot blocks span three slots, costing a taken transfer per
    // iteration.
    Program program("loop-split");
    const ProcId main_id = program.addProc("main");
    CfgBuilder b(program.proc(main_id));
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId body = b.block(3, Terminator::UncondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.taken(head, body, 5'000, 0.9);
    b.fallThrough(head, exit, 100, 0.1);
    b.taken(body, head, 5'000);

    ProgramLayout layout = originalLayout(program);
    ProcLayout &pl = layout.procs[0];
    // head, body, exit -> head, exit, body. Addresses are reflowed and
    // the header's realization updated to the new adjacency, so the
    // layout is exactly what a (bad) aligner would legally produce — the
    // split is the only finding.
    pl.order = {head, exit, body};
    pl.blocks[head].cond = CondRealization::FallAdjacent;
    Addr addr = pl.base;
    for (std::uint32_t i = 0; i < pl.order.size(); ++i) {
        const BlockId id = pl.order[i];
        BlockLayout &bl = pl.blocks[id];
        bl.orderIndex = i;
        bl.addr = addr;
        bl.branchAddr =
            addr + program.proc(main_id).block(id).numInstrs - 1;
        addr += bl.finalInstrs;
    }

    const std::vector<Diagnostic> diags = layoutDiags(program, layout);
    EXPECT_TRUE(hasRule(diags, "layout.loop-split", 0, head));
    EXPECT_EQ(diags.size(), 1u);
    EXPECT_EQ(findLintRule("layout.loop-split")->severity, Severity::Note);
    // The pristine original layout keeps the loop contiguous: no note.
    EXPECT_FALSE(hasRule(layoutDiags(program, originalLayout(program)),
                         "layout.loop-split", 0, head));
}

TEST(Lint, LayoutRulesCarryArchAlignerContext)
{
    const Program program = baseProgram();
    ProgramLayout layout = originalLayout(program);
    layout.procs[0].blocks[0].baseInstrs += 1;
    const std::vector<Diagnostic> diags = layoutDiags(program, layout);
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags.front().arch, "test-arch");
    EXPECT_EQ(diags.front().aligner, "test-algo");
}

// ---------------------------------------------------------------------
// cost.* injection.

TEST(Lint, CostMonotoneFiresOnRegression)
{
    Program program("hot-loop");
    const ProcId main_id = program.addProc("main");
    CfgBuilder b(program.proc(main_id));
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId body = b.block(3, Terminator::UncondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.taken(head, body, 900, 0.9);
    b.fallThrough(head, exit, 100, 0.1);
    b.taken(body, head, 900);
    validateOrDie(program);

    const CostModel model(Arch::Fallthrough);
    const ProgramLayout baseline =
        alignProgram(program, AlignerKind::Greedy, &model, {});
    // A deliberately hostile order: the cold exit splits the hot loop.
    const ProgramLayout candidate = materializeProgram(
        program, {{head, exit, body}}, MaterializeOptions{});
    ASSERT_GT(modeledBranchCost(program, candidate, model),
              modeledBranchCost(program, baseline, model))
        << "fixture must actually regress for the rule to be provable";

    std::vector<Diagnostic> sink;
    lintCostMonotone(program, model, baseline, "greedy", candidate,
                     "hostile", LintOptions{}, sink);
    EXPECT_TRUE(hasRule(sink, "cost.monotone"));
    ASSERT_FALSE(sink.empty());
    EXPECT_EQ(sink.front().aligner, "hostile");
}

TEST(Lint, CostMonotoneQuietOnIdenticalLayouts)
{
    const Program program = profiledBase();
    const CostModel model(Arch::BtFnt);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Greedy, &model, {});
    std::vector<Diagnostic> sink;
    lintCostMonotone(program, model, layout, "greedy", layout, "greedy",
                     LintOptions{}, sink);
    EXPECT_TRUE(sink.empty());
}

// ---------------------------------------------------------------------
// The fuzzer's lint pre-gate.

TEST(Lint, GateReportsCorruptionAsLintDivergence)
{
    Program program = profiledBase();
    Procedure &proc = program.proc(0);
    proc.edge(proc.block(1).outEdges.front()).weight += 1'000;
    const std::optional<Divergence> divergence = lintGateCheck(program);
    ASSERT_TRUE(divergence.has_value());
    EXPECT_EQ(divergence->kind, DivergenceKind::Lint);
    EXPECT_NE(divergence->detail.find("prof.flow-conservation"),
              std::string::npos)
        << divergence->detail;
}

TEST(Lint, GatePassesCleanProgram)
{
    EXPECT_FALSE(lintGateCheck(profiledBase()).has_value());
}

TEST(Lint, FuzzCampaignWithGateStaysClean)
{
    FuzzOptions options;
    options.seeds = 5;
    options.firstSeed = 1;
    options.walkInstrs = 2'000;
    ASSERT_TRUE(options.lintGate);
    const FuzzReport report = runFuzz(options);
    EXPECT_EQ(report.lintHits, 0u);
    EXPECT_TRUE(report.divergences.empty());
}
