/**
 * @file
 * The heavyweight half of `ctest -L disasm`: every program in the
 * 24-program benchmark suite is emitted under BOTH encoding models and
 * two aligners, then decoded by the independent disassembler and proven
 * by the byte-level obligation family (disasm/checkobj.h) — the
 * EXPERIMENTS.md "24 programs x both encodings, 0 failures" row.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/align_program.h"
#include "disasm/checkobj.h"
#include "emit/elf.h"
#include "emit/relax.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kSuiteBudget = 50'000;

void
profileWith(Program &program, std::uint64_t seed, std::uint64_t budget)
{
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = seed;
    options.instrBudget = budget;
    walk(program, options, profiler);
}

class DisasmSuite : public testing::TestWithParam<std::string>
{
};

}  // namespace

TEST_P(DisasmSuite, EmittedObjectsValidateUnderEveryModel)
{
    Program program = generateProgram(suiteSpec(GetParam()));
    profileWith(program, 1, kSuiteBudget);
    const CostModel model(Arch::BtFnt);

    for (const AlignerKind kind :
         {AlignerKind::Original, AlignerKind::Cost}) {
        SCOPED_TRACE(alignerKindName(kind));
        const ProgramLayout layout = alignProgram(program, kind, &model);

        for (const EncodingModelKind encoding : allEncodingModelKinds()) {
            SCOPED_TRACE(encodingModelKindName(encoding));
            const EncodingModel &em = encodingModel(encoding);
            const RelaxedLayout relaxed =
                relaxLayout(program, layout, em);
            ASSERT_TRUE(relaxed.converged) << relaxed.diagnostic;

            const ObjCheckResult result = checkObject(
                program, relaxed, buildElfObject(program, relaxed, em));
            EXPECT_TRUE(result.verified())
                << result.totalFailures() << " of " << result.totalChecks()
                << " byte-level checks failed; first: "
                << formatObjFailure(result.failures.front());
            EXPECT_GT(result.totalChecks(), 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite24, DisasmSuite, [] {
    std::vector<std::string> names;
    for (const ProgramSpec &spec : benchmarkSuite())
        names.push_back(spec.name);
    return testing::ValuesIn(names);
}(), [](const testing::TestParamInfo<std::string> &param) {
    std::string name = param.param;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
});
