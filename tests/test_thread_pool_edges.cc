/**
 * @file
 * ThreadPool edge cases: empty ranges, pools wider than the work, nested
 * parallelFor on a serial (1-thread) pool, and exception propagation from
 * nested and oversubscribed runs. Complements the basic coverage in
 * test_runner.cc.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.h"

using namespace balign;

TEST(ThreadPoolEdges, ZeroItemsReturnsImmediately)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.parallelFor(0, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 0);
    // The pool is still usable afterwards.
    pool.parallelFor(3, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolEdges, MoreThreadsThanItems)
{
    ThreadPool pool(8);
    ASSERT_EQ(pool.threads(), 8u);
    std::vector<std::atomic<int>> hits(2);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolEdges, SingleItemOnWidePool)
{
    ThreadPool pool(6);
    std::atomic<int> ran{0};
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolEdges, NestedParallelForOnSerialPool)
{
    // A 1-thread pool runs everything on the caller; nesting must not
    // deadlock and must still visit every (outer, inner) pair.
    ThreadPool pool(1);
    std::atomic<int> total{0};
    pool.parallelFor(3, [&](std::size_t) {
        pool.parallelFor(4, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 12);
}

TEST(ThreadPoolEdges, ExceptionPropagatesFromSerialPool)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(5,
                                  [](std::size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error("item 3");
                                  }),
                 std::runtime_error);
    // The pool survives a throwing run.
    std::atomic<int> ran{0};
    pool.parallelFor(2, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolEdges, ExceptionFromNestedRunPropagatesToOuterItem)
{
    ThreadPool pool(4);
    std::atomic<int> caught{0};
    pool.parallelFor(2, [&](std::size_t) {
        try {
            pool.parallelFor(3, [](std::size_t i) {
                if (i == 1)
                    throw std::runtime_error("inner");
            });
        } catch (const std::runtime_error &) {
            caught.fetch_add(1);
        }
    });
    EXPECT_EQ(caught.load(), 2);
}

TEST(ThreadPoolEdges, ZeroThreadRequestClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    std::atomic<int> ran{0};
    pool.parallelFor(4, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
}
