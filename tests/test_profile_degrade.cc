/**
 * @file
 * Part of the `ctest -L robust` group: property tests for the profile
 * degradation library (profile/degrade.h).
 *
 *  - Seeded determinism: every transform is a pure function of
 *    (program, spec) — same seed, byte-identical weights; a different
 *    seed moves them.
 *  - Flow conservation: sample keeps a lint-clean profile lint-clean
 *    (prof.* rules) across the whole 24-program suite; merge stays clean
 *    under the slack scaled by the number of constituent walks; drift
 *    conserves every block's outflow and the program total, exactly as
 *    documented in degrade.h.
 *  - Severity monotonicity: the suite-mean CPI degradation curve is
 *    monotone along the drift ladder (align-on-degraded /
 *    measure-on-true via the ExperimentConfig degrade axis).
 *  - Degeneracy: an all-zero profile trips the prof.degenerate note, and
 *    every aligner x objective tolerates it — layouts still verify.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/differ.h"
#include "core/align_program.h"
#include "lint/lint.h"
#include "profile/degrade.h"
#include "sim/cpi.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kBudget = 50'000;

WalkOptions
testWalk()
{
    WalkOptions walk;
    walk.seed = 1;
    walk.instrBudget = kBudget;
    return walk;
}

Program
profiledProgram(const std::string &name)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = kBudget;
    Program program = generateProgram(spec);
    program.clearWeights();
    Profiler profiler(program);
    walk(program, testWalk(), profiler);
    return program;
}

std::vector<Weight>
allWeights(const Program &program)
{
    std::vector<Weight> weights;
    for (ProcId id = 0; id < program.numProcs(); ++id) {
        for (const Edge &edge : program.proc(id).edges())
            weights.push_back(edge.weight);
    }
    return weights;
}

Weight
totalWeight(const Program &program)
{
    Weight total = 0;
    for (ProcId id = 0; id < program.numProcs(); ++id)
        total += program.proc(id).totalEdgeWeight();
    return total;
}

/// Profile-rules-only lint run (layout/cost rules are covered by their
/// own labelled groups; here only the prof.* flow invariants matter).
LintReport
lintProfileOnly(const Program &program, Weight slack = 65)
{
    LintRunOptions run;
    run.layoutRules = false;
    run.costRules = false;
    run.lint.flowSlack = slack;
    return lintProgram(program, run);
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const ProgramSpec &spec : benchmarkSuite())
        names.push_back(spec.name);
    return names;
}

DegradeSpec
spec(DegradeKind kind, std::uint32_t n, double param, std::uint64_t seed)
{
    DegradeSpec s;
    s.kind = kind;
    s.n = n;
    s.param = param;
    s.seed = seed;
    return s;
}

}  // namespace

TEST(DegradeDeterminism, SameSeedSameWeightsDifferentSeedMoves)
{
    const Program base = profiledProgram("compress");
    const std::vector<DegradeSpec> specs = {
        spec(DegradeKind::Sample, 8, 0.0, 42),
        spec(DegradeKind::Stale, 0, 0.0, 42),
        spec(DegradeKind::Perturb, 0, 0.5, 42),
        spec(DegradeKind::Merge, 3, 0.0, 42),
        spec(DegradeKind::Drift, 0, 0.5, 42),
    };
    for (const DegradeSpec &s : specs) {
        Program first = base;
        Program second = base;
        degradeProfile(first, testWalk(), s);
        degradeProfile(second, testWalk(), s);
        EXPECT_EQ(allWeights(first), allWeights(second))
            << degradeSpecLabel(s);

        // A different seed must actually change the outcome (drift is
        // seedless by design — the ladder is its param).
        if (s.kind == DegradeKind::Drift)
            continue;
        Program other = base;
        DegradeSpec reseeded = s;
        reseeded.seed = 43;
        degradeProfile(other, testWalk(), reseeded);
        EXPECT_NE(allWeights(first), allWeights(other))
            << degradeSpecLabel(s);
    }
}

TEST(DegradeDeterminism, NoneAndUnitSampleAreIdentity)
{
    const Program base = profiledProgram("eqntott");
    Program none = base;
    degradeProfile(none, testWalk(), DegradeSpec::none());
    EXPECT_EQ(allWeights(none), allWeights(base));

    Program unit = base;
    sampleProfile(unit, 1, 7);
    EXPECT_EQ(allWeights(unit), allWeights(base));
}

TEST(DegradeFlow, SampleKeepsSuiteLintClean)
{
    for (const std::string &name : suiteNames()) {
        Program program = profiledProgram(name);
        sampleProfile(program, 8, 1);
        const LintReport report = lintProfileOnly(program);
        EXPECT_EQ(report.errors(), 0u) << name;
        EXPECT_EQ(report.warnings(), 0u) << name;
    }
}

TEST(DegradeFlow, HeavySampleKeepsSuiteLintClean)
{
    // 1/1024 thins most programs to near-zero weight; flow conservation
    // must survive even when whole procedures go dark.
    for (const std::string &name : suiteNames()) {
        Program program = profiledProgram(name);
        sampleProfile(program, 1024, 1);
        const LintReport report = lintProfileOnly(program);
        EXPECT_EQ(report.errors(), 0u) << name;
    }
}

TEST(DegradeFlow, MergeKeepsSuiteLintCleanUnderScaledSlack)
{
    constexpr std::uint32_t kExtraInputs = 3;
    for (const std::string &name : suiteNames()) {
        Program program = profiledProgram(name);
        mergeProfiles(program, testWalk(), kExtraInputs, 1);
        // Each constituent walk strands up to flowSlack activations.
        const LintReport report =
            lintProfileOnly(program, 65 * (kExtraInputs + 1));
        EXPECT_EQ(report.errors(), 0u) << name;
        EXPECT_EQ(report.warnings(), 0u) << name;
    }
}

TEST(DegradeFlow, DriftPreservesEveryBlockOutflow)
{
    // Drift only trades weight between out-edges of the same block, so
    // per-block outflow (and the program total) is invariant at every t.
    // Successor inflows move — the anti-profile is deliberately an
    // impossible execution — so no lint-clean claim is made here.
    auto outflows = [](const Program &program) {
        std::vector<Weight> flows;
        for (ProcId id = 0; id < program.numProcs(); ++id) {
            const Procedure &proc = program.proc(id);
            std::vector<Weight> per_block(proc.numBlocks(), 0);
            for (const Edge &edge : proc.edges())
                per_block[edge.src] += edge.weight;
            flows.insert(flows.end(), per_block.begin(), per_block.end());
        }
        return flows;
    };
    for (const std::string &name : suiteNames()) {
        Program program = profiledProgram(name);
        const std::vector<Weight> before = outflows(program);
        const Weight total = totalWeight(program);
        driftProfile(program, 1.0);
        EXPECT_EQ(outflows(program), before) << name;
        EXPECT_EQ(totalWeight(program), total) << name;
    }
}

TEST(DegradeDegenerate, ZeroProfileTripsNoteAndAlignersTolerateIt)
{
    Program program = profiledProgram("li");
    program.clearWeights();

    LintRunOptions run;
    run.layoutRules = false;
    run.costRules = false;
    const LintReport report = lintProgram(program, run);
    bool found = false;
    for (const Diagnostic &diag : report.diagnostics) {
        if (diag.rule == "prof.degenerate") {
            EXPECT_EQ(diag.severity, Severity::Note);
            found = true;
        }
    }
    EXPECT_TRUE(found) << "prof.degenerate did not fire on a zero profile";
    EXPECT_EQ(report.errors(), 0u);

    // Every aligner must fall back to a structural order rather than
    // crash, and the result must still pass the translation validator
    // (AlignOptions.verify defaults to on).
    const CostModel model(Arch::BtFnt);
    for (const AlignerKind kind : allAlignerKindsExtended()) {
        for (const ObjectiveKind objective : allObjectiveKinds()) {
            AlignOptions options;
            options.objective = objective;
            const ProgramLayout layout =
                alignProgram(program, kind, &model, options);
            EXPECT_EQ(layout.procs.size(), program.numProcs())
                << alignerKindName(kind) << "/"
                << objectiveKindName(objective);
        }
    }
}

TEST(DegradeCurves, DriftLadderDegradesCpiMonotonically)
{
    // Align-on-degraded / measure-on-true: the further the alignment
    // profile drifts toward the anti-profile, the worse (or at best
    // equal) the measured suite-mean relative CPI must get. Drift is the
    // adversarial direction, so this curve is the one with a guaranteed
    // slope; the tolerance absorbs per-program ties.
    constexpr double kTolerance = 1e-6;
    const std::vector<double> ladder = {0.0, 0.5, 1.0};

    std::vector<double> mean(ladder.size(), 0.0);
    std::size_t programs = 0;
    for (const std::string &name : suiteNames()) {
        ProgramSpec program_spec = suiteSpec(name);
        program_spec.traceInstrs = kBudget;
        const PreparedProgram prepared = prepareProgram(program_spec);

        std::vector<ExperimentConfig> configs;
        configs.push_back({Arch::BtFnt, AlignerKind::Original});
        for (const double t : ladder) {
            ExperimentConfig config{Arch::BtFnt, AlignerKind::Try15};
            config.degrade = spec(DegradeKind::Drift, 0, t, 1);
            configs.push_back(config);
        }
        const ExperimentRun run = runConfigs(prepared, configs);
        ASSERT_EQ(run.cells.size(), configs.size()) << name;
        for (std::size_t i = 0; i < ladder.size(); ++i)
            mean[i] += run.cells[i + 1].relCpi;
        ++programs;
    }
    ASSERT_EQ(programs, 24u);
    for (double &value : mean)
        value /= static_cast<double>(programs);
    for (std::size_t i = 1; i < mean.size(); ++i) {
        EXPECT_GE(mean[i] + kTolerance, mean[i - 1])
            << "suite-mean rel CPI not monotone at drift t="
            << ladder[i];
    }
    // The full adversary must measurably hurt: strictly worse than the
    // true-profile alignment, not merely tied.
    EXPECT_GT(mean.back(), mean.front() + 1e-4);
}
