/**
 * @file
 * The `ctest -L estimate` full-suite group: the static profile estimator
 * run over all 24 benchmark models.
 *
 * Determinism is a documented contract (estimate/estimate.h): the same
 * program must produce byte-identical estimated weights on every run,
 * regardless of BALIGN_THREADS — the estimator never touches the thread
 * pool, and this suite pins that down by serializing the estimated
 * program under different env settings and comparing bytes.
 *
 * Drop-in validity is the other contract: an estimated profile must pass
 * the same prof.* and layout.* lint rules a measured profile does, and the
 * layouts aligned against it must still verify (translation validation),
 * so profile-free alignment can never ship a layout a trace-driven run
 * would reject.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bpred/cost_model.h"
#include "cfg/serialize.h"
#include "core/align_program.h"
#include "estimate/estimate.h"
#include "lint/lint.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "verify/verify.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kSuiteBudget = 100'000;

/// Generates the model and gives it the measured profile the estimator
/// is expected to discard (the realistic starting state).
Program
suiteProgram(const std::string &name)
{
    Program program = generateProgram(suiteSpec(name));
    Profiler profiler(program);
    WalkOptions options;
    options.seed = 1;
    options.instrBudget = kSuiteBudget;
    walk(program, options, profiler);
    return program;
}

/// Runs the estimator with BALIGN_THREADS set to @p threads and returns
/// the serialized estimated program (weights + provenance tag included).
std::string
estimateWithThreads(const Program &original, const char *threads)
{
    const char *saved = std::getenv("BALIGN_THREADS");
    const std::string saved_value = saved != nullptr ? saved : "";
    ::setenv("BALIGN_THREADS", threads, 1);
    Program copy = original;
    estimateProfile(copy);
    if (saved != nullptr)
        ::setenv("BALIGN_THREADS", saved_value.c_str(), 1);
    else
        ::unsetenv("BALIGN_THREADS");
    return programToString(copy);
}

class EstimateSuite : public testing::TestWithParam<std::string>
{
};

}  // namespace

TEST_P(EstimateSuite, ByteIdenticalAcrossThreadsAndRuns)
{
    const Program original = suiteProgram(GetParam());
    const std::string first = estimateWithThreads(original, "1");
    const std::string again = estimateWithThreads(original, "1");
    const std::string wide = estimateWithThreads(original, "13");
    EXPECT_EQ(first, again) << "repeated estimation drifted";
    EXPECT_EQ(first, wide) << "BALIGN_THREADS changed the estimate";
    EXPECT_NE(first.find("profile estimated"), std::string::npos)
        << "serialized estimated program must carry its provenance tag";
}

TEST_P(EstimateSuite, EstimatedProfileLintsClean)
{
    Program program = suiteProgram(GetParam());
    estimateProfile(program);
    ASSERT_EQ(program.profileProvenance(), ProfileProvenance::Estimated);

    // Two architectures keep the layout matrix cheap; prof.* / est.* /
    // cost.* are architecture-independent and run either way.
    LintRunOptions run;
    run.archs = {Arch::BtFnt, Arch::PhtDirect};
    const LintReport report = lintProgram(program, run);
    EXPECT_EQ(report.profileProvenance, "estimated");
    if (report.errors() != 0)
        ADD_FAILURE() << formatLintReport(report, GetParam());
}

TEST_P(EstimateSuite, EstimatedLayoutsVerify)
{
    Program program = suiteProgram(GetParam());
    estimateProfile(program);

    const CostModel model(Arch::BtFnt);
    AlignOptions options;
    options.verify = false;  // verify explicitly below, as findings
    for (const AlignerKind kind : {AlignerKind::Cost, AlignerKind::Try15}) {
        const ProgramLayout layout =
            alignProgram(program, kind, &model, options);
        const VerifyResult result = verifyLayout(program, layout);
        for (const VerifyFailure &failure : result.failures)
            ADD_FAILURE() << GetParam() << " "
                          << alignerKindName(kind) << ": "
                          << formatVerifyFailure(failure);
    }
}

INSTANTIATE_TEST_SUITE_P(Suite24, EstimateSuite, [] {
    std::vector<std::string> names;
    for (const ProgramSpec &spec : benchmarkSuite())
        names.push_back(spec.name);
    return testing::ValuesIn(names);
}(), [](const testing::TestParamInfo<std::string> &param) {
    std::string name = param.param;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
});
