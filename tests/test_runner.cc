/**
 * @file
 * Tests for the thread pool and the parallel experiment runner: full
 * index coverage, nested parallelism, exception propagation, the
 * BALIGN_THREADS knob, and — the load-bearing guarantee — byte-identical
 * results across thread counts and against the serial driver.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "sim/runner.h"
#include "support/thread_pool.h"
#include "workload/suite.h"

using namespace balign;

namespace {

ProgramSpec
shortSpec(const std::string &name, std::uint64_t instrs = 60'000)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = instrs;
    return spec;
}

void
expectEqualRuns(const ExperimentRun &a, const ExperimentRun &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.origInstrs, b.origInstrs);
    EXPECT_EQ(a.stats.instrsTraced, b.stats.instrsTraced);
    EXPECT_EQ(a.stats.condBranches, b.stats.condBranches);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const ExperimentCell &x = a.cells[i];
        const ExperimentCell &y = b.cells[i];
        EXPECT_EQ(x.config.arch, y.config.arch);
        EXPECT_EQ(x.config.kind, y.config.kind);
        EXPECT_EQ(x.eval.instrs, y.eval.instrs);
        EXPECT_EQ(x.eval.misfetches, y.eval.misfetches);
        EXPECT_EQ(x.eval.mispredicts, y.eval.mispredicts);
        EXPECT_EQ(x.eval.condExec, y.eval.condExec);
        EXPECT_EQ(x.eval.condTaken, y.eval.condTaken);
        EXPECT_EQ(x.eval.btbHits, y.eval.btbHits);
        // Exact double equality: both sides must run the identical
        // computation, not merely a close one.
        EXPECT_EQ(x.relCpi, y.relCpi);
    }
}

/// RAII guard saving/restoring one environment variable.
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        const char *value = std::getenv(name);
        had_ = value != nullptr;
        if (had_)
            saved_ = value;
    }

    ~EnvGuard()
    {
        if (had_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string saved_;
};

}  // namespace

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPoolSpawnsNoWorkers)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::size_t ran = 0;
    pool.parallelFor(64, [&](std::size_t) { ++ran; });  // no data race
    EXPECT_EQ(ran, 64u);
}

TEST(ThreadPool, NestedParallelForCompletes)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(16, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(
                     100,
                     [&](std::size_t i) {
                         if (i == 41)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> total{0};
    pool.parallelFor(10, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 10);
}

TEST(Runner, DefaultThreadsHonorsEnvKnob)
{
    EnvGuard guard("BALIGN_THREADS");
    setenv("BALIGN_THREADS", "3", 1);
    EXPECT_EQ(defaultThreads(), 3u);
    setenv("BALIGN_THREADS", "1", 1);
    EXPECT_EQ(defaultThreads(), 1u);

    unsetenv("BALIGN_THREADS");
    const unsigned hw = defaultThreads();
    EXPECT_GE(hw, 1u);
    // Garbage and non-positive values fall back to the hardware default.
    setenv("BALIGN_THREADS", "zero", 1);
    EXPECT_EQ(defaultThreads(), hw);
    setenv("BALIGN_THREADS", "0", 1);
    EXPECT_EQ(defaultThreads(), hw);
    setenv("BALIGN_THREADS", "-4", 1);
    EXPECT_EQ(defaultThreads(), hw);
}

TEST(Runner, SuiteMatchesSerialDriver)
{
    const std::vector<ProgramSpec> suite = {shortSpec("compress"),
                                            shortSpec("alvinn"),
                                            shortSpec("li")};
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::BtFnt, AlignerKind::Greedy},
        {Arch::PhtDirect, AlignerKind::Try15},
        {Arch::BtbSmall, AlignerKind::Try15},
    };

    RunnerOptions options;
    options.threads = 4;
    const std::vector<ExperimentRun> runs = runSuite(suite, configs, options);
    ASSERT_EQ(runs.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const ExperimentRun serial = runExperiment(suite[i], configs);
        expectEqualRuns(runs[i], serial);
    }
}

TEST(Runner, DeterministicAcrossThreadCounts)
{
    const std::vector<ProgramSpec> suite = {shortSpec("eqntott"),
                                            shortSpec("ora"),
                                            shortSpec("sc")};
    const std::vector<ExperimentConfig> configs = {
        {Arch::PhtDirect, AlignerKind::Original},
        {Arch::PhtDirect, AlignerKind::Greedy},
        {Arch::PhtDirect, AlignerKind::Try15},
        {Arch::BtbLarge, AlignerKind::Try15},
    };

    // BALIGN_THREADS must drive the runner when options.threads is 0, and
    // every thread count must produce identical output.
    EnvGuard guard("BALIGN_THREADS");
    std::vector<std::vector<ExperimentRun>> all;
    for (const char *threads : {"1", "2", "8"}) {
        setenv("BALIGN_THREADS", threads, 1);
        PhaseTimes times;
        RunnerOptions options;
        options.times = &times;
        all.push_back(runSuite(suite, configs, options));
        EXPECT_GT(times.seconds("replay"), 0.0);
        EXPECT_GT(times.seconds("align"), 0.0);
    }
    for (std::size_t v = 1; v < all.size(); ++v) {
        ASSERT_EQ(all[v].size(), all[0].size());
        for (std::size_t i = 0; i < all[0].size(); ++i)
            expectEqualRuns(all[v][i], all[0][i]);
    }
}

TEST(Runner, ExecTimeSuiteMatchesSerial)
{
    const std::vector<ProgramSpec> suite = {shortSpec("compress"),
                                            shortSpec("gcc")};
    RunnerOptions options;
    options.threads = 4;
    const std::vector<ExecTimeResult> parallel =
        runExecTimeSuite(suite, {}, options);
    ASSERT_EQ(parallel.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const ExecTimeResult serial = runExecTime(suite[i]);
        EXPECT_EQ(parallel[i].name, serial.name);
        EXPECT_EQ(parallel[i].originalCycles, serial.originalCycles);
        EXPECT_EQ(parallel[i].greedyRelative, serial.greedyRelative);
        EXPECT_EQ(parallel[i].try15Relative, serial.try15Relative);
        EXPECT_EQ(parallel[i].origMispredicts, serial.origMispredicts);
        EXPECT_EQ(parallel[i].try15ICacheMisses, serial.try15ICacheMisses);
    }
}
