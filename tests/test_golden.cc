/**
 * @file
 * Golden regression pins: exact metric values for a fixed program model,
 * seed and configuration. Every count in the pipeline is deterministic
 * (seeded xoshiro PRNG, no platform-dependent arithmetic), so any change
 * to these numbers means the simulation semantics changed — which must be
 * a conscious decision, not an accident.
 *
 * If a deliberate change (new generator knob, changed penalty rule, ...)
 * moves these values, re-pin them and note the reason in the commit.
 */

#include <gtest/gtest.h>

#include "core/align_program.h"
#include "sim/cpi.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

ExperimentRun
goldenRun()
{
    ProgramSpec spec = suiteSpec("compress");
    spec.traceInstrs = 100'000;
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Try15},
        {Arch::BtFnt, AlignerKind::Greedy},
        {Arch::PhtDirect, AlignerKind::Original},
        {Arch::BtbLarge, AlignerKind::Original},
    };
    return runExperiment(spec, configs);
}

}  // namespace

TEST(Golden, ProfileStatistics)
{
    const ExperimentRun run = goldenRun();
    // Pinned from the initial release build.
    EXPECT_EQ(run.stats.instrsTraced, 100005u);
    EXPECT_EQ(run.stats.condBranches, 8345u);
    EXPECT_EQ(run.stats.takenCondBranches, 6590u);
    EXPECT_EQ(run.stats.staticCondSites, 41u);
    EXPECT_EQ(run.origInstrs, 100005u);
}

TEST(Golden, FallthroughOriginalCounts)
{
    const ExperimentRun run = goldenRun();
    const EvalResult &r =
        run.cell(Arch::Fallthrough, AlignerKind::Original).eval;
    EXPECT_EQ(r.instrs, 100005u);
    EXPECT_EQ(r.condExec, 8345u);
    EXPECT_EQ(r.condTaken, 6590u);
    // FALLTHROUGH mispredicts = taken conditionals + mispredicted returns
    // + indirect jumps.
    EXPECT_EQ(r.mispredicts,
              6590u + r.returnMispredicts + r.indirectExec);
    EXPECT_EQ(r.mispredicts, 6664u);
    EXPECT_EQ(r.misfetches, 1307u);
}

TEST(Golden, AlignmentMovesTheExpectedAmount)
{
    const ExperimentRun run = goldenRun();
    const double orig =
        run.cell(Arch::Fallthrough, AlignerKind::Original).relCpi;
    const double aligned =
        run.cell(Arch::Fallthrough, AlignerKind::Try15).relCpi;
    // Pin to a tight window rather than exact doubles.
    EXPECT_NEAR(orig, 1.2796, 0.002);
    EXPECT_NEAR(aligned, 1.1634, 0.002);
    EXPECT_GT(orig - aligned, 0.08);
}

TEST(Golden, RepeatedRunsIdentical)
{
    const ExperimentRun a = goldenRun();
    const ExperimentRun b = goldenRun();
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].eval.instrs, b.cells[i].eval.instrs);
        EXPECT_EQ(a.cells[i].eval.misfetches, b.cells[i].eval.misfetches);
        EXPECT_EQ(a.cells[i].eval.mispredicts,
                  b.cells[i].eval.mispredicts);
    }
}

TEST(Golden, CombinedProfilesAreAdditive)
{
    // Paper §4: "If more profiles are used or combined for a program..."
    // Profiling twice without clearing accumulates edge weights — the
    // supported way to combine inputs.
    ProgramSpec spec = suiteSpec("compress");
    spec.traceInstrs = 20'000;
    Program program = generateProgram(spec);

    WalkOptions first;
    first.seed = 1;
    first.instrBudget = spec.traceInstrs;
    WalkOptions second = first;
    second.seed = 2;

    Profiler profiler(program);
    walk(program, first, profiler);
    const Weight after_first = program.proc(0).totalEdgeWeight();
    walk(program, second, profiler);
    const Weight after_both = program.proc(0).totalEdgeWeight();
    EXPECT_GT(after_first, 0u);
    EXPECT_GT(after_both, after_first);

    // The combined profile drives alignment like any other.
    const CostModel model(Arch::Fallthrough);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Try15, &model);
    EXPECT_EQ(layout.procs.size(), program.numProcs());
}
