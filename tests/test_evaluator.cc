/**
 * @file
 * Tests for the architecture evaluator against hand-computed penalty
 * counts: a deterministic (patterned) loop is walked once and every
 * architecture's misfetch/mispredict tallies are checked exactly.
 */

#include <gtest/gtest.h>

#include "bpred/evaluator.h"
#include "cfg/builder.h"
#include "layout/materialize.h"
#include "trace/walker.h"

using namespace balign;

namespace {

/**
 * entry(2 instrs) -> loop(4 instrs, cond) -> exit(1 instr, return).
 * The loop branch follows the fixed pattern T,T,T,N, so one run executes
 * the loop block four times: instrs = 2 + 16 + 1 = 19.
 */
Program
patternedLoop()
{
    Program program("ploop");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId loop = b.block(4, Terminator::CondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, loop, 1);
    b.taken(loop, loop, 3);
    b.fallThrough(loop, exit, 1);
    proc.block(loop).patternLength = 4;
    proc.block(loop).patternMask = 0b0111;
    return program;
}

EvalResult
runOnce(const Program &program, const ProgramLayout &layout, Arch arch)
{
    ArchEvaluator eval(program, layout, EvalParams::forArch(arch));
    WalkOptions options;
    options.instrBudget = 1000;
    options.restartOnExit = false;
    walk(program, options, eval.sink());
    return eval.result();
}

}  // namespace

TEST(Evaluator, InstructionCountIdentityLayout)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::Fallthrough);
    EXPECT_EQ(result.instrs, 19u);
    EXPECT_EQ(result.condExec, 4u);
    EXPECT_EQ(result.condTaken, 3u);
    EXPECT_EQ(result.returnExec, 1u);  // the run-ending return
}

TEST(Evaluator, FallthroughPenalties)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::Fallthrough);
    // Three taken iterations mispredicted; final not-taken correct.
    EXPECT_EQ(result.mispredicts, 3u);
    EXPECT_EQ(result.misfetches, 0u);
    EXPECT_DOUBLE_EQ(result.bep(), 12.0);
    EXPECT_DOUBLE_EQ(result.relativeCpi(19), (19.0 + 12.0) / 19.0);
    EXPECT_DOUBLE_EQ(result.pctFallThrough(), 25.0);
}

TEST(Evaluator, BtFntPenalties)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::BtFnt);
    // Backward loop branch predicted taken: 3 correct-taken misfetches,
    // the exit mispredicted.
    EXPECT_EQ(result.misfetches, 3u);
    EXPECT_EQ(result.mispredicts, 1u);
    EXPECT_DOUBLE_EQ(result.bep(), 7.0);
}

TEST(Evaluator, LikelyPenalties)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::Likely);
    // Likely bit = taken (3 of 4): same counts as BT/FNT here.
    EXPECT_EQ(result.misfetches, 3u);
    EXPECT_EQ(result.mispredicts, 1u);
}

TEST(Evaluator, PhtDirectPenalties)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::PhtDirect);
    // Counter starts weakly-NT: T(miss), T(hit), T(hit), N(miss).
    EXPECT_EQ(result.mispredicts, 2u);
    EXPECT_EQ(result.misfetches, 2u);
    EXPECT_EQ(result.condMispredicts, 2u);
}

TEST(Evaluator, GsharePenalties)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::PhtCorrelated);
    // Fresh table, shifting history: the three taken executions all index
    // fresh weakly-NT counters (mispredict); the final not-taken one is
    // correct.
    EXPECT_EQ(result.mispredicts, 3u);
    EXPECT_EQ(result.misfetches, 0u);
}

TEST(Evaluator, BtbPenalties)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::BtbLarge);
    // Miss+taken (mispredict), two hits with correct target (free), final
    // not-taken against a taken counter (mispredict).
    EXPECT_EQ(result.mispredicts, 2u);
    EXPECT_EQ(result.misfetches, 0u);
    EXPECT_EQ(result.btbLookups, 4u);
    EXPECT_EQ(result.btbHits, 3u);
}

// ---- calls and returns -----------------------------------------------------

namespace {

Program
callerCallee()
{
    Program program("calls");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId blk = b.block(5, Terminator::Return);
        b.call(blk, leaf_id, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        b.block(3, Terminator::Return);
    }
    return program;
}

}  // namespace

TEST(Evaluator, CallAndReturnPenaltiesStatic)
{
    const Program program = callerCallee();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::BtFnt);
    EXPECT_EQ(result.instrs, 8u);
    EXPECT_EQ(result.callExec, 1u);
    EXPECT_EQ(result.returnExec, 2u);  // leaf's return + main's exit
    // Call: misfetch. Leaf return: RAS correct -> misfetch. Main's exit
    // return: unpenalized (program exit).
    EXPECT_EQ(result.misfetches, 2u);
    EXPECT_EQ(result.mispredicts, 0u);
    EXPECT_EQ(result.returnMispredicts, 0u);
}

TEST(Evaluator, CallAndReturnPenaltiesBtb)
{
    const Program program = callerCallee();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::BtbLarge);
    // Cold BTB: call misses (misfetch), return misses with correct RAS
    // (misfetch).
    EXPECT_EQ(result.misfetches, 2u);
    EXPECT_EQ(result.mispredicts, 0u);
}

// ---- layout-dependent instruction accounting --------------------------------

TEST(Evaluator, InsertedJumpCountsOnlyWhenExecuted)
{
    const Program program = patternedLoop();
    // Displace the exit so the loop's fall-through needs a jump... the
    // loop's successors: itself (taken) and exit (fall). Order the exit
    // away from the loop: entry, loop, exit stays — instead force the
    // "neither adjacent" case by putting exit before loop.
    const ProgramLayout layout = materializeProgram(
        program, {{0, 2, 1}}, MaterializeOptions{});
    ASSERT_EQ(layout.procs[0].blocks[1].cond,
              CondRealization::NeitherJumpToFall);
    // The displaced entry block also needs a jump to reach the loop.
    ASSERT_TRUE(layout.procs[0].blocks[0].jumpInserted);
    const EvalResult result = runOnce(program, layout, Arch::BtFnt);
    // Both inserted jumps execute once each: 19 + 2 instructions.
    EXPECT_EQ(result.instrs, 21u);
    EXPECT_EQ(result.uncondExec, 2u);
}

TEST(Evaluator, RemovedJumpReducesInstructionCount)
{
    Program program("rm");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId a = b.block(3, Terminator::UncondBranch);
    const BlockId pad = b.block(2, Terminator::Return);
    const BlockId target = b.block(1, Terminator::Return);
    (void)pad;
    b.taken(a, target, 1);

    const ProgramLayout orig = originalLayout(program);
    const EvalResult before = runOnce(program, orig, Arch::BtFnt);
    EXPECT_EQ(before.instrs, 4u);  // a(3) + target(1)
    EXPECT_EQ(before.misfetches, 1u);  // the jump

    const ProgramLayout moved = materializeProgram(
        program, {{a, target, pad}}, MaterializeOptions{});
    const EvalResult after = runOnce(program, moved, Arch::BtFnt);
    EXPECT_EQ(after.instrs, 3u);  // jump deleted
    EXPECT_EQ(after.misfetches, 0u);
    EXPECT_EQ(after.uncondExec, 0u);
}

// ---- indirect jumps -----------------------------------------------------------

TEST(Evaluator, IndirectJumpPenalties)
{
    Program program("ind");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId sw = b.block(2, Terminator::IndirectJump);
    const BlockId c0 = b.block(1, Terminator::Return);
    b.other(sw, c0, 1, 1.0);

    const ProgramLayout layout = originalLayout(program);
    // Static architectures: every indirect jump mispredicts.
    const EvalResult stat = runOnce(program, layout, Arch::Likely);
    EXPECT_EQ(stat.indirectExec, 1u);
    EXPECT_EQ(stat.mispredicts, 1u);

    // BTB: first execution misses; repeated executions with a stable
    // target hit for free.
    ArchEvaluator eval(program, layout,
                       EvalParams::forArch(Arch::BtbLarge));
    WalkOptions options;
    options.instrBudget = 30;  // ten runs of 3 instructions
    walk(program, options, eval.sink());
    EXPECT_EQ(eval.result().indirectExec, 10u);
    EXPECT_EQ(eval.result().mispredicts, 1u);
}

TEST(Evaluator, CondAccuracyMetric)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    const EvalResult result = runOnce(program, layout, Arch::Fallthrough);
    EXPECT_DOUBLE_EQ(result.condAccuracy(), 25.0);  // 1 of 4 correct
}
