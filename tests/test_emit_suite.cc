/**
 * @file
 * The heavyweight half of `ctest -L emit`: every program in the
 * 24-program benchmark suite is aligned, relaxed under BOTH encoding
 * models, proven by verifyRelaxedLayout, relaxed a second time to pin
 * the fixpoint's determinism, and round-tripped through the ELF writer
 * and the self-contained reader.
 *
 * Under FixedWord the byte layout must be exactly the PR-8 word layout
 * times kInstrBytes — the invariant that makes the emission backend a
 * pure extension rather than a behaviour change.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/align_program.h"
#include "emit/elf.h"
#include "emit/relax.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "verify/verify.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kSuiteBudget = 50'000;

void
profileWith(Program &program, std::uint64_t seed, std::uint64_t budget)
{
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = seed;
    options.instrBudget = budget;
    walk(program, options, profiler);
}

bool
sameRelaxation(const RelaxedLayout &a, const RelaxedLayout &b)
{
    if (a.totalBytes != b.totalBytes || a.iterations != b.iterations ||
        a.instrs.size() != b.instrs.size())
        return false;
    for (std::size_t i = 0; i < a.instrs.size(); ++i) {
        if (a.instrs[i].byteAddr != b.instrs[i].byteAddr ||
            a.instrs[i].form != b.instrs[i].form ||
            a.instrs[i].size != b.instrs[i].size ||
            a.instrs[i].disp != b.instrs[i].disp)
            return false;
    }
    return true;
}

class EmitSuite : public testing::TestWithParam<std::string>
{
};

}  // namespace

TEST_P(EmitSuite, RelaxesProvesAndRoundTripsUnderEveryModel)
{
    Program program = generateProgram(suiteSpec(GetParam()));
    profileWith(program, 1, kSuiteBudget);
    const CostModel model(Arch::BtFnt);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Cost, &model);

    for (const EncodingModelKind kind : allEncodingModelKinds()) {
        SCOPED_TRACE(encodingModelKindName(kind));
        const EncodingModel &em = encodingModel(kind);
        const RelaxedLayout relaxed = relaxLayout(program, layout, em);
        ASSERT_TRUE(relaxed.converged) << relaxed.diagnostic;

        if (kind == EncodingModelKind::FixedWord) {
            // Byte-identical to the word model: no relaxation, one
            // sweep, every address scaled by kInstrBytes.
            EXPECT_EQ(relaxed.iterations, 1u);
            EXPECT_EQ(relaxed.totalBytes,
                      layout.totalInstrs * kInstrBytes);
            for (const RelaxedInstr &instr : relaxed.instrs) {
                ASSERT_EQ(instr.byteAddr,
                          static_cast<std::uint64_t>(instr.wordAddr) *
                              kInstrBytes);
            }
        } else {
            // Every relaxable slot settled a form, the byte total is the
            // sum of the slot sizes, and each short form saves its
            // near-minus-short delta against the all-near encoding.
            std::uint64_t relaxable = 0;
            std::uint64_t bytes = 0;
            std::uint64_t all_near = 0;
            std::uint64_t saved = 0;
            for (const RelaxedInstr &instr : relaxed.instrs) {
                bytes += instr.size;
                all_near += em.instrBytes(
                    instr.cls, instr.form == BranchForm::None
                                   ? BranchForm::None
                                   : BranchForm::Near);
                relaxable += em.relaxable(instr.cls) ? 1 : 0;
                if (instr.form == BranchForm::Short) {
                    saved += em.instrBytes(instr.cls, BranchForm::Near) -
                             em.instrBytes(instr.cls, BranchForm::Short);
                }
            }
            EXPECT_EQ(relaxed.totalBytes, bytes);
            EXPECT_EQ(relaxed.shortBranches + relaxed.nearBranches,
                      relaxable);
            EXPECT_GT(relaxable, 0u);
            EXPECT_EQ(relaxed.totalBytes, all_near - saved);
        }

        const VerifyResult proof =
            verifyRelaxedLayout(program, layout, relaxed, em);
        EXPECT_TRUE(proof.verified())
            << formatVerifyFailure(proof.failures.front());

        // Determinism: a second relaxation is byte-for-byte identical.
        EXPECT_TRUE(
            sameRelaxation(relaxed, relaxLayout(program, layout, em)));

        const ParsedElf parsed =
            parseElfObject(buildElfObject(program, relaxed, em));
        ASSERT_TRUE(parsed.ok) << parsed.error;
        EXPECT_EQ(parsed.text, encodeText(relaxed, em));
        ASSERT_EQ(parsed.symbols.size(), 2u + program.numProcs());
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            EXPECT_EQ(parsed.symbols[2 + p].value,
                      relaxed.procs[p].byteBase);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite24, EmitSuite, [] {
    std::vector<std::string> names;
    for (const ProgramSpec &spec : benchmarkSuite())
        names.push_back(spec.name);
    return testing::ValuesIn(names);
}(), [](const testing::TestParamInfo<std::string> &param) {
    std::string name = param.param;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
});
