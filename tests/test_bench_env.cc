/**
 * @file
 * Bench-harness environment-knob tests: a typo in BALIGN_PROGRAMS must be
 * a fatal error (never a silent fall-back to the full suite), with both
 * the comma and whitespace separators the parser accepts.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/bench_util.h"
#include "workload/suite.h"

using namespace balign;

namespace {

/// Restores BALIGN_PROGRAMS on scope exit so tests cannot leak state.
class ScopedPrograms
{
  public:
    explicit ScopedPrograms(const char *value)
    {
        const char *old = std::getenv("BALIGN_PROGRAMS");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        setenv("BALIGN_PROGRAMS", value, 1);
    }

    ~ScopedPrograms()
    {
        if (had_)
            setenv("BALIGN_PROGRAMS", old_.c_str(), 1);
        else
            unsetenv("BALIGN_PROGRAMS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

}  // namespace

TEST(BenchEnvDeathTest, UnknownNameInCommaListIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("BALIGN_PROGRAMS", "compress,not-a-program", 1);
            bench::tunedSuite(benchmarkSuite());
        },
        testing::ExitedWithCode(1), "not a suite program");
}

TEST(BenchEnvDeathTest, UnknownNameInSpaceListIsFatal)
{
    EXPECT_EXIT(
        {
            setenv("BALIGN_PROGRAMS", "compress li typo-name", 1);
            bench::tunedSuite(benchmarkSuite());
        },
        testing::ExitedWithCode(1), "not a suite program");
}

TEST(BenchEnv, CommaAndSpaceSeparatorsSelectTheSameSubset)
{
    std::vector<ProgramSpec> by_comma;
    {
        ScopedPrograms env("compress,li");
        by_comma = bench::tunedSuite(benchmarkSuite());
    }
    std::vector<ProgramSpec> by_space;
    {
        ScopedPrograms env("compress li");
        by_space = bench::tunedSuite(benchmarkSuite());
    }
    ASSERT_EQ(by_comma.size(), 2u);
    ASSERT_EQ(by_space.size(), 2u);
    for (std::size_t i = 0; i < by_comma.size(); ++i)
        EXPECT_EQ(by_comma[i].name, by_space[i].name);
}

TEST(BenchEnv, TraceInstrsOverrideApplies)
{
    const char *old = std::getenv("BALIGN_TRACE_INSTRS");
    setenv("BALIGN_TRACE_INSTRS", "12345", 1);
    const auto suite = bench::tunedSuite(benchmarkSuite());
    if (old != nullptr)
        setenv("BALIGN_TRACE_INSTRS", old, 1);
    else
        unsetenv("BALIGN_TRACE_INSTRS");
    ASSERT_FALSE(suite.empty());
    for (const auto &spec : suite)
        EXPECT_EQ(spec.traceInstrs, 12345u);
}
