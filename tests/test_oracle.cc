/**
 * @file
 * Oracle tests: the naive reference implementation (check/oracle.h) must
 * agree bit-exactly with the production evaluation pipeline on the whole
 * benchmark suite, and its independent address derivation must reproduce
 * the materializer's bookkeeping field for field.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "bpred/cost_model.h"
#include "cfg/builder.h"
#include "cfg/validate.h"
#include "check/differ.h"
#include "check/oracle.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "workload/suite.h"

using namespace balign;

namespace {

PreparedProgram
preparedSuiteProgram(const char *name, std::uint64_t instrs)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = instrs;
    return prepareProgram(spec);
}

/// The jump-chain shape: no uncond target is id-adjacent, so the original
/// layout keeps every jump and Greedy removes them all.
Program
jumpChainProgram()
{
    Program program("jump-chain");
    const ProcId main = program.addProc("main");
    CfgBuilder b(program.proc(main));
    const BlockId b0 = b.block(2, Terminator::UncondBranch);
    const BlockId b1 = b.block(3, Terminator::UncondBranch);
    const BlockId b2 = b.block(4, Terminator::UncondBranch);
    const BlockId b3 = b.block(1, Terminator::Return);
    b.taken(b0, b2, 5);
    b.taken(b2, b1, 5);
    b.taken(b1, b3, 5);
    validateOrDie(program);
    return program;
}

}  // namespace

// The issue's acceptance bar: every suite program, every architecture,
// every aligner — oracle and production streams and counters identical.
TEST(Oracle, AgreesWithProductionOnWholeSuite)
{
    DiffOptions options;
    options.maxDivergences = 1;
    for (const auto &suite_spec : benchmarkSuite()) {
        ProgramSpec spec = suite_spec;
        spec.traceInstrs = 40'000;
        const PreparedProgram prepared = prepareProgram(spec);
        const auto divergences = diffPrepared(prepared, options);
        for (const auto &divergence : divergences)
            ADD_FAILURE() << formatDivergence(divergence);
    }
}

// One program at a production-scale budget, to catch divergences that
// only appear once predictor tables wrap and the RAS overflows.
TEST(Oracle, AgreesAtLongerBudget)
{
    const PreparedProgram prepared = preparedSuiteProgram("compress", 300'000);
    DiffOptions options;
    options.maxDivergences = 1;
    const auto divergences = diffPrepared(prepared, options);
    for (const auto &divergence : divergences)
        ADD_FAILURE() << formatDivergence(divergence);
}

TEST(Oracle, CrossCheckAcceptsMaterializedSuiteLayouts)
{
    for (const char *name : {"compress", "eqntott", "doduc"}) {
        const PreparedProgram prepared = preparedSuiteProgram(name, 30'000);
        const Program &program = prepared.program;

        const ProgramLayout original = originalLayout(program);
        EXPECT_TRUE(crossCheckLayout(program, original).empty()) << name;

        for (const Arch arch : {Arch::PhtDirect, Arch::BtbSmall}) {
            const CostModel model(arch);
            const ProgramLayout cost =
                alignProgram(program, AlignerKind::Cost, &model);
            const auto errors = crossCheckLayout(program, cost);
            for (const auto &error : errors)
                ADD_FAILURE() << name << " / " << archName(arch) << ": "
                              << error;
        }
    }
}

TEST(Oracle, DerivesJumpRemovalIndependently)
{
    const Program program = jumpChainProgram();

    // Original layout: id order, nothing adjacent, all jumps kept.
    const ProgramLayout original = originalLayout(program);
    const OracleLayout derived = deriveOracleLayout(program, original);
    ASSERT_TRUE(derived.structuralErrors.empty());
    ASSERT_EQ(derived.procs.size(), 1u);
    const auto &proc = derived.procs[0];
    EXPECT_FALSE(proc.jumpRemoved[0]);
    EXPECT_FALSE(proc.jumpRemoved[1]);
    EXPECT_FALSE(proc.jumpRemoved[2]);
    // Addresses accumulate block sizes in id order: 2, 3, 4, 1.
    EXPECT_EQ(proc.addr[0], 0u);
    EXPECT_EQ(proc.addr[1], 2u);
    EXPECT_EQ(proc.addr[2], 5u);
    EXPECT_EQ(proc.addr[3], 9u);
    EXPECT_EQ(proc.totalInstrs, 10u);
    // The uncond branch is each block's last instruction.
    EXPECT_EQ(proc.branchAddr[0], 1u);
    EXPECT_EQ(proc.baseInstrs[0], 2u);

    // Greedy chains 0,2,1,3: every jump target becomes adjacent, every
    // jump is removed, and each block shrinks by one instruction.
    const ProgramLayout greedy =
        alignProgram(program, AlignerKind::Greedy, nullptr);
    const OracleLayout chained = deriveOracleLayout(program, greedy);
    ASSERT_TRUE(chained.structuralErrors.empty());
    const auto &cproc = chained.procs[0];
    EXPECT_TRUE(cproc.jumpRemoved[0]);
    EXPECT_TRUE(cproc.jumpRemoved[1]);
    EXPECT_TRUE(cproc.jumpRemoved[2]);
    EXPECT_EQ(cproc.baseInstrs[0], 1u);
    EXPECT_EQ(cproc.baseInstrs[1], 2u);
    EXPECT_EQ(cproc.baseInstrs[2], 3u);
    EXPECT_EQ(cproc.branchAddr[0], kNoAddr);
    EXPECT_EQ(cproc.totalInstrs, 7u);

    // And the independent derivation matches the materializer exactly.
    EXPECT_TRUE(crossCheckLayout(program, original).empty());
    EXPECT_TRUE(crossCheckLayout(program, greedy).empty());
}

TEST(Oracle, ExposesDerivedLayoutAndSamples)
{
    const PreparedProgram prepared = preparedSuiteProgram("li", 20'000);
    const ProgramLayout layout = originalLayout(prepared.program);
    OracleEvaluator oracle(prepared.program, layout,
                           EvalParams::forArch(Arch::PhtDirect));
    ASSERT_TRUE(oracle.structuralErrors().empty());
    ASSERT_NE(prepared.trace, nullptr);
    prepared.trace->replay(prepared.program, oracle);

    EXPECT_FALSE(oracle.samples().empty());
    EXPECT_GT(oracle.result().instrs, 0u);
    // Every sample's penalty is at most one bubble of each kind, and
    // instrsBefore is nondecreasing along the stream.
    std::uint64_t last = 0;
    for (const auto &sample : oracle.samples()) {
        EXPECT_LE(sample.misfetches, 1);
        EXPECT_LE(sample.mispredicts, 1);
        EXPECT_GE(sample.instrsBefore, last);
        last = sample.instrsBefore;
    }
}
