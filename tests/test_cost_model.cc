/**
 * @file
 * Tests for the architectural cost model (paper Table 1 and §6): exact
 * per-branch cycle costs for every architecture, the Figure-2 loop
 * transformation arithmetic, and realization selection.
 */

#include <gtest/gtest.h>

#include "bpred/cost_model.h"

using namespace balign;

// ---- Table 1 constants -------------------------------------------------

TEST(CostModel, UncondCostStaticArchitectures)
{
    for (Arch arch : {Arch::Fallthrough, Arch::BtFnt, Arch::Likely,
                      Arch::PhtDirect, Arch::PhtCorrelated}) {
        const CostModel model(arch);
        EXPECT_DOUBLE_EQ(model.uncondCost(), 2.0) << archName(arch);
    }
}

TEST(CostModel, UncondCostBtb)
{
    // 10% miss rate: 1 + 0.1 * 1 = 1.1 cycles.
    const CostModel model(Arch::BtbLarge);
    EXPECT_DOUBLE_EQ(model.uncondCost(), 1.1);
}

TEST(CostModel, FallthroughArchCosts)
{
    const CostModel model(Arch::Fallthrough);
    // Taken conditional: always mispredicted -> 5 cycles each.
    EXPECT_DOUBLE_EQ(model.condCost(1, 0, DirHint::Forward), 5.0);
    EXPECT_DOUBLE_EQ(model.condCost(1, 0, DirHint::Backward), 5.0);
    // Not-taken: correctly predicted fall-through -> 1 cycle.
    EXPECT_DOUBLE_EQ(model.condCost(0, 1, DirHint::Forward), 1.0);
}

TEST(CostModel, BtFntArchCosts)
{
    const CostModel model(Arch::BtFnt);
    // Backward taken: correctly predicted taken -> 2.
    EXPECT_DOUBLE_EQ(model.condCost(1, 0, DirHint::Backward), 2.0);
    // Backward not-taken: mispredicted -> 5.
    EXPECT_DOUBLE_EQ(model.condCost(0, 1, DirHint::Backward), 5.0);
    // Forward taken: mispredicted -> 5.
    EXPECT_DOUBLE_EQ(model.condCost(1, 0, DirHint::Forward), 5.0);
    // Forward not-taken: correct -> 1.
    EXPECT_DOUBLE_EQ(model.condCost(0, 1, DirHint::Forward), 1.0);
    // Unknown direction treated as forward.
    EXPECT_DOUBLE_EQ(model.condCost(1, 0, DirHint::Unknown), 5.0);
}

TEST(CostModel, LikelyUsesMajorityBit)
{
    const CostModel model(Arch::Likely);
    // Majority taken: taken costs 2, minority not-taken costs 5.
    EXPECT_DOUBLE_EQ(model.condCost(900, 100, DirHint::Forward),
                     900 * 2.0 + 100 * 5.0);
    // Majority not-taken: fall costs 1, minority taken costs 5.
    EXPECT_DOUBLE_EQ(model.condCost(100, 900, DirHint::Forward),
                     100 * 5.0 + 900 * 1.0);
}

TEST(CostModel, PhtExpectedCosts)
{
    const CostModel model(Arch::PhtDirect);
    // Taken: 0.9 * 2 + 0.1 * 5 = 2.3 per execution.
    EXPECT_NEAR(model.condCost(1, 0, DirHint::Forward), 2.3, 1e-12);
    // Not-taken: 0.9 * 1 + 0.1 * 5 = 1.4.
    EXPECT_NEAR(model.condCost(0, 1, DirHint::Forward), 1.4, 1e-12);
}

TEST(CostModel, BtbExpectedCosts)
{
    const CostModel model(Arch::BtbSmall);
    // Taken: 0.9 * (1 + 0.1) + 0.1 * 5 = 1.49.
    EXPECT_NEAR(model.condCost(1, 0, DirHint::Forward), 1.49, 1e-12);
    // Not-taken: 0.9 * 1 + 0.1 * 5 = 1.4.
    EXPECT_NEAR(model.condCost(0, 1, DirHint::Forward), 1.4, 1e-12);
}

// ---- Figure 2: the single-block loop transformation ------------------------

TEST(CostModel, Figure2LoopTransformation)
{
    // FALLTHROUGH model, hot self-loop: the original (taken back edge)
    // costs 5 cycles per iteration; inverting the sense and adding a jump
    // costs 1 + 2 = 3 (paper §4).
    const CostModel model(Arch::Fallthrough);
    const Weight iterations = 1000;
    const double original = model.condRealizationCost(
        iterations, 1, CondRealization::FallAdjacent, DirHint::Backward,
        DirHint::Forward);
    const double transformed = model.condRealizationCost(
        iterations, 1, CondRealization::NeitherJumpToTaken,
        DirHint::Backward, DirHint::Forward);
    EXPECT_NEAR(original, 1000 * 5.0 + 1 * 1.0, 1e-9);
    EXPECT_NEAR(transformed, 1000 * (1.0 + 2.0) + 1 * 5.0, 1e-9);
    EXPECT_LT(transformed, original);
}

TEST(CostModel, Figure2NotProfitableOnBtFnt)
{
    // On BT/FNT a backward taken loop branch costs 2; the jump trick
    // costs 3 — the transformation must NOT look profitable.
    const CostModel model(Arch::BtFnt);
    const double original = model.condRealizationCost(
        1000, 1, CondRealization::FallAdjacent, DirHint::Backward,
        DirHint::Forward);
    const double transformed = model.condRealizationCost(
        1000, 1, CondRealization::NeitherJumpToTaken, DirHint::Backward,
        DirHint::Forward);
    EXPECT_LT(original, transformed);
}

// ---- Realization cost mapping ------------------------------------------------

TEST(CostModel, RealizationMapsEdgesCorrectly)
{
    const CostModel model(Arch::Fallthrough);
    // Taken edge weight 10, fall edge weight 90.
    // FallAdjacent: realized taken = 10 -> 10*5 + 90*1 = 140.
    EXPECT_DOUBLE_EQ(
        model.condRealizationCost(10, 90, CondRealization::FallAdjacent,
                                  DirHint::Forward, DirHint::Forward),
        140.0);
    // TakenAdjacent (inverted): realized taken = 90 -> 90*5 + 10*1 = 460.
    EXPECT_DOUBLE_EQ(
        model.condRealizationCost(10, 90, CondRealization::TakenAdjacent,
                                  DirHint::Forward, DirHint::Forward),
        460.0);
    // NeitherJumpToFall: like FallAdjacent plus 90 jumps -> 140 + 180.
    EXPECT_DOUBLE_EQ(
        model.condRealizationCost(10, 90,
                                  CondRealization::NeitherJumpToFall,
                                  DirHint::Forward, DirHint::Forward),
        320.0);
    // NeitherJumpToTaken: like TakenAdjacent plus 10 jumps -> 460 + 20.
    EXPECT_DOUBLE_EQ(
        model.condRealizationCost(10, 90,
                                  CondRealization::NeitherJumpToTaken,
                                  DirHint::Forward, DirHint::Forward),
        480.0);
}

TEST(CostModel, BestNeitherPicksCheaper)
{
    const CostModel ft(Arch::Fallthrough);
    // Hot taken edge: jump-to-taken converts it to fall-through+jump.
    EXPECT_EQ(ft.bestNeitherRealization(1000, 1, DirHint::Backward,
                                        DirHint::Forward),
              CondRealization::NeitherJumpToTaken);
    // Hot fall edge: keep the sense, jump on the cold taken side... the
    // jump executes on the FALL path in NeitherJumpToFall, so the cheap
    // option is jump-to-taken only when the taken edge dominates.
    EXPECT_EQ(ft.bestNeitherRealization(1, 1000, DirHint::Forward,
                                        DirHint::Forward),
              CondRealization::NeitherJumpToFall);
}

TEST(CostModel, SingleExitCosts)
{
    const CostModel model(Arch::Likely);
    EXPECT_DOUBLE_EQ(model.singleExitAdjacentCost(), 0.0);
    EXPECT_DOUBLE_EQ(model.singleExitJumpCost(50), 100.0);
}

TEST(CostModel, CustomPenalties)
{
    CostModel::Params params;
    params.penalties.misfetch = 2.0;
    params.penalties.mispredict = 10.0;
    const CostModel model(Arch::Fallthrough, params);
    EXPECT_DOUBLE_EQ(model.uncondCost(), 3.0);
    EXPECT_DOUBLE_EQ(model.condCost(1, 0, DirHint::Forward), 11.0);
}

TEST(CostModel, ArchNames)
{
    EXPECT_STREQ(archName(Arch::Fallthrough), "FALLTHROUGH");
    EXPECT_STREQ(archName(Arch::BtFnt), "BT/FNT");
    EXPECT_STREQ(archName(Arch::Likely), "LIKELY");
    EXPECT_STREQ(archName(Arch::PhtDirect), "PHT-direct");
    EXPECT_STREQ(archName(Arch::PhtCorrelated), "PHT-correlated");
    EXPECT_STREQ(archName(Arch::BtbSmall), "BTB-64x2");
    EXPECT_STREQ(archName(Arch::BtbLarge), "BTB-256x4");
    EXPECT_TRUE(isStatic(Arch::Likely));
    EXPECT_TRUE(isPht(Arch::PhtCorrelated));
    EXPECT_TRUE(isBtb(Arch::BtbSmall));
    EXPECT_FALSE(isBtb(Arch::PhtDirect));
}

// ---- Figure 3 arithmetic (paper's worked example, our reconstruction) ------

TEST(CostModel, Figure3Arithmetic)
{
    const CostModel model(Arch::Likely);
    // Original: A FallAdjacent (taken->D w=1, fall->B w=9000) = 9005;
    // C's unconditional back branch = 9000 * 2 = 18000. Total 27005.
    const double block_a = model.condRealizationCost(
        1, 9000, CondRealization::FallAdjacent, DirHint::Forward,
        DirHint::Forward);
    EXPECT_DOUBLE_EQ(block_a, 9005.0);
    EXPECT_DOUBLE_EQ(block_a + model.singleExitJumpCost(9000), 27005.0);

    // Transformed: A TakenAdjacent (realized taken = 9000 majority) =
    // 18005; C's jump removed; entry jump 1 * 2. Total 18007.
    const double block_a_rot = model.condRealizationCost(
        1, 9000, CondRealization::TakenAdjacent, DirHint::Forward,
        DirHint::Backward);
    EXPECT_DOUBLE_EQ(block_a_rot, 18005.0);
    EXPECT_DOUBLE_EQ(block_a_rot + model.singleExitJumpCost(1), 18007.0);
}
