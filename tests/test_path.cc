/**
 * @file
 * Tests for path recording and replay: a replayed stream must be
 * indistinguishable from the live walk for every consumer.
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "trace/path.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

TEST(Path, ReplayReproducesRecording)
{
    ProgramSpec spec = suiteSpec("compress");
    spec.traceInstrs = 20'000;
    const Program program = generateProgram(spec);

    WalkOptions options;
    options.seed = traceSeed(spec);
    options.instrBudget = spec.traceInstrs;

    PathRecorder original;
    walk(program, options, original);

    PathRecorder copy;
    original.replay(program, copy);
    EXPECT_EQ(original.events(), copy.events());
}

TEST(Path, ReplayedProfileEqualsLiveProfile)
{
    ProgramSpec spec = suiteSpec("compress");
    spec.traceInstrs = 20'000;
    Program program = generateProgram(spec);

    WalkOptions options;
    options.seed = traceSeed(spec);
    options.instrBudget = spec.traceInstrs;

    PathRecorder recorder;
    walk(program, options, recorder);

    // Live profile.
    program.clearWeights();
    Profiler live(program);
    walk(program, options, live);
    std::vector<Weight> live_weights;
    for (const auto &proc : program.procs())
        for (const auto &edge : proc.edges())
            live_weights.push_back(edge.weight);
    const ProgramStats live_stats = live.stats();

    // Replayed profile.
    program.clearWeights();
    Profiler replayed(program);
    recorder.replay(program, replayed);
    std::vector<Weight> replay_weights;
    for (const auto &proc : program.procs())
        for (const auto &edge : proc.edges())
            replay_weights.push_back(edge.weight);

    EXPECT_EQ(live_weights, replay_weights);
    EXPECT_EQ(live_stats.instrsTraced, replayed.stats().instrsTraced);
    EXPECT_EQ(live_stats.condBranches, replayed.stats().condBranches);
    EXPECT_EQ(live_stats.returns, replayed.stats().returns);
}

TEST(Path, MultiSinkFansOutIdentically)
{
    ProgramSpec spec = suiteSpec("compress");
    spec.traceInstrs = 10'000;
    const Program program = generateProgram(spec);

    WalkOptions options;
    options.instrBudget = spec.traceInstrs;

    PathRecorder a, b;
    MultiSink fanout;
    fanout.add(&a);
    fanout.add(&b);
    walk(program, options, fanout);
    EXPECT_EQ(a.events(), b.events());
    EXPECT_GT(a.size(), 0u);
}

TEST(Path, ClearEmptiesRecorder)
{
    Program program("tiny");
    program.proc(program.addProc("main")).addBlock(1, Terminator::Return);
    WalkOptions options;
    options.instrBudget = 10;
    PathRecorder recorder;
    walk(program, options, recorder);
    EXPECT_GT(recorder.size(), 0u);
    recorder.clear();
    EXPECT_EQ(recorder.size(), 0u);
}
