/**
 * @file
 * Tests for chain ordering policies: entry-first invariant, hot-first
 * ordering, and the BT/FNT precedence ordering.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/builder.h"
#include "layout/chain_order.h"

using namespace balign;

namespace {

/// entry(0) -> A(1) hot -> B(2) cold, C(3) return target.
Procedure
makeProc()
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId entry = b.block(1, Terminator::CondBranch);
    const BlockId a = b.block(2, Terminator::UncondBranch);
    const BlockId bb = b.block(2, Terminator::UncondBranch);
    const BlockId c = b.block(1, Terminator::Return);
    b.fallThrough(entry, a, 900);
    b.taken(entry, bb, 100);
    b.taken(a, c, 900);
    b.taken(bb, c, 100);
    return proc;
}

bool
isPermutation(const std::vector<BlockId> &order, std::size_t n)
{
    if (order.size() != n)
        return false;
    std::vector<bool> seen(n, false);
    for (BlockId b : order) {
        if (b >= n || seen[b])
            return false;
        seen[b] = true;
    }
    return true;
}

}  // namespace

TEST(ChainOrder, HotFirstIsPermutationWithEntryFirst)
{
    const Procedure proc = makeProc();
    ChainSet chains(proc.numBlocks(), proc.entry());
    chains.link(0, 1);  // entry chain [0,1]
    const auto order =
        orderChains(proc, chains, ChainOrderPolicy::HotFirst);
    EXPECT_TRUE(isPermutation(order, proc.numBlocks()));
    EXPECT_EQ(order.front(), proc.entry());
    // Entry chain is contiguous at the front.
    EXPECT_EQ(order[1], 1u);
}

TEST(ChainOrder, HotFirstOrdersByBlockWeight)
{
    const Procedure proc = makeProc();
    ChainSet chains(proc.numBlocks(), proc.entry());
    // Chains: [0], [1], [2], [3]. Weights: b1=900, b2=100, b3=1000.
    const auto order =
        orderChains(proc, chains, ChainOrderPolicy::HotFirst);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0u);  // entry
    EXPECT_EQ(order[1], 3u);  // weight 1000
    EXPECT_EQ(order[2], 1u);  // weight 900
    EXPECT_EQ(order[3], 2u);  // weight 100
}

TEST(ChainOrder, BtFntPrecedencePlacesHotTakenTargetEarlier)
{
    // A conditional whose hot direction is the TAKEN edge: BT/FNT wants
    // the target laid out before the branch (backward = predicted taken).
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId entry = b.block(1, Terminator::FallThrough);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId cold = b.block(2, Terminator::FallThrough);
    const BlockId hot = b.block(3, Terminator::Return);
    const BlockId tail = b.block(1, Terminator::Return);
    b.fallThrough(entry, head, 1000);
    b.taken(head, hot, 900);
    b.fallThrough(head, cold, 100);
    b.fallThrough(cold, tail, 100);

    ChainSet chains(proc.numBlocks(), proc.entry());
    chains.link(0, 1);  // [entry, head]
    chains.link(2, 4);  // [cold, tail]

    const auto order =
        orderChains(proc, chains, ChainOrderPolicy::BtFntPrecedence);
    EXPECT_TRUE(order.front() == proc.entry());
    const auto pos = [&](BlockId blk) {
        return std::find(order.begin(), order.end(), blk) - order.begin();
    };
    // The entry chain must stay first, so the hot taken target cannot be
    // before the branch here; but the constraint should at least place the
    // hot chain before the cold one (hot-first tie-breaking).
    EXPECT_LT(pos(hot), pos(cold));
}

TEST(ChainOrder, BtFntPrecedenceBackwardBranchForLoop)
{
    // A loop rotated so the latch branch targets a separate chain: the
    // precedence ordering should put the target chain first (after entry).
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId entry = b.block(1, Terminator::UncondBranch);
    const BlockId body = b.block(4, Terminator::FallThrough);
    const BlockId latch = b.block(1, Terminator::CondBranch);
    const BlockId exit = b.block(2, Terminator::Return);
    b.taken(entry, body, 10);
    b.fallThrough(body, latch, 1000);
    b.taken(latch, body, 990);  // hot back edge
    b.fallThrough(latch, exit, 10);

    ChainSet chains(proc.numBlocks(), proc.entry());
    chains.link(1, 2);  // [body, latch]

    const auto order =
        orderChains(proc, chains, ChainOrderPolicy::BtFntPrecedence);
    const auto pos = [&](BlockId blk) {
        return std::find(order.begin(), order.end(), blk) - order.begin();
    };
    // latch -> body is intra-chain (the link is body->latch; the taken
    // edge crosses from latch back to body's chain head): target chain ==
    // own chain, so no constraint is generated — but exit should follow
    // the loop chain under hot-first tie-breaking.
    EXPECT_EQ(pos(entry), 0);
    EXPECT_LT(pos(body), pos(exit));
}

TEST(ChainOrder, SingleChainTrivial)
{
    const Procedure proc = makeProc();
    ChainSet chains(proc.numBlocks(), proc.entry());
    chains.link(0, 1);
    chains.link(1, 3);
    chains.link(3, 2);
    for (auto policy : {ChainOrderPolicy::HotFirst,
                        ChainOrderPolicy::BtFntPrecedence}) {
        const auto order = orderChains(proc, chains, policy);
        EXPECT_EQ(order, (std::vector<BlockId>{0, 1, 3, 2}));
    }
}

TEST(ChainOrder, PolicyNames)
{
    EXPECT_STREQ(chainOrderPolicyName(ChainOrderPolicy::HotFirst),
                 "hot-first");
    EXPECT_STREQ(chainOrderPolicyName(ChainOrderPolicy::BtFntPrecedence),
                 "btfnt-precedence");
}
