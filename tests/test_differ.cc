/**
 * @file
 * Differential-harness tests. A differ that never fires is worthless, so
 * besides checking that clean configurations diff clean, these tests
 * corrupt materializer bookkeeping on purpose and require the harness to
 * detect each corruption as a Structural divergence, and they exercise
 * the sample-stream comparator on hand-built streams.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfg/builder.h"
#include "cfg/validate.h"
#include "check/differ.h"
#include "check/oracle.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "workload/suite.h"

using namespace balign;

namespace {

Program
smallProgram()
{
    Program program("differ-small");
    const ProcId main = program.addProc("main");
    CfgBuilder b(program.proc(main));
    const BlockId head = b.block(3, Terminator::CondBranch);
    const BlockId body = b.block(4, Terminator::UncondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.taken(head, body, 0, 0.8);
    b.fallThrough(head, exit, 0, 0.2);
    b.taken(body, head, 0);
    validateOrDie(program);
    return program;
}

PreparedProgram
preparedSmall()
{
    WalkOptions walk;
    walk.seed = 42;
    walk.instrBudget = 5'000;
    return prepareProgram(smallProgram(), walk, "differ-small");
}

/// Diffs one corrupted layout and requires a Structural report whose
/// detail mentions @p expect_substring.
void
expectStructural(const PreparedProgram &prepared, ProgramLayout layout,
                 const std::string &expect_substring)
{
    const auto divergence =
        diffLayout(prepared, layout, Arch::PhtDirect, AlignerKind::Original);
    ASSERT_TRUE(divergence.has_value())
        << "corruption (" << expect_substring << ") went undetected";
    EXPECT_EQ(divergence->kind, DivergenceKind::Structural)
        << formatDivergence(*divergence);
    EXPECT_NE(divergence->detail.find(expect_substring), std::string::npos)
        << "report does not mention '" << expect_substring << "':\n"
        << divergence->detail;
}

}  // namespace

TEST(Differ, CleanLayoutHasNoDivergence)
{
    const PreparedProgram prepared = preparedSmall();
    const ProgramLayout layout = originalLayout(prepared.program);
    const auto divergence =
        diffLayout(prepared, layout, Arch::BtbLarge, AlignerKind::Original);
    EXPECT_FALSE(divergence.has_value())
        << formatDivergence(*divergence);
}

TEST(Differ, CleanProgramDiffsCleanEverywhere)
{
    const auto divergences = diffPrepared(preparedSmall());
    for (const auto &divergence : divergences)
        ADD_FAILURE() << formatDivergence(divergence);
}

TEST(Differ, DetectsCorruptedBlockAddress)
{
    const PreparedProgram prepared = preparedSmall();
    ProgramLayout layout = originalLayout(prepared.program);
    layout.procs[0].blocks[1].addr += 1;
    expectStructural(prepared, layout, "addr");
}

TEST(Differ, DetectsCorruptedBaseInstrs)
{
    const PreparedProgram prepared = preparedSmall();
    ProgramLayout layout = originalLayout(prepared.program);
    layout.procs[0].blocks[0].baseInstrs += 1;
    expectStructural(prepared, layout, "baseInstrs");
}

TEST(Differ, DetectsBogusJumpRemoval)
{
    // Claiming block 1's back jump was removed is a lie: its target
    // (block 0) is not layout-adjacent in the identity order.
    const PreparedProgram prepared = preparedSmall();
    ProgramLayout layout = originalLayout(prepared.program);
    layout.procs[0].blocks[1].jumpRemoved = true;
    const auto divergence =
        diffLayout(prepared, layout, Arch::PhtDirect, AlignerKind::Original);
    ASSERT_TRUE(divergence.has_value());
    EXPECT_EQ(divergence->kind, DivergenceKind::Structural)
        << formatDivergence(*divergence);
}

TEST(Differ, DetectsCorruptedTotalInstrs)
{
    const PreparedProgram prepared = preparedSmall();
    ProgramLayout layout = originalLayout(prepared.program);
    layout.procs[0].totalInstrs += 2;
    expectStructural(prepared, layout, "totalInstrs");
}

TEST(Differ, DetectsCorruptedBranchAddr)
{
    const PreparedProgram prepared = preparedSmall();
    ProgramLayout layout = originalLayout(prepared.program);
    layout.procs[0].blocks[0].branchAddr += 1;
    expectStructural(prepared, layout, "branchAddr");
}

TEST(Differ, CompareSamplesAcceptsIdenticalStreams)
{
    std::vector<BranchSample> stream(3);
    stream[0].site = 10;
    stream[1].site = 20;
    stream[1].taken = true;
    stream[2].site = 30;
    EXPECT_EQ(compareSamples(stream, stream), "");
}

TEST(Differ, CompareSamplesPinsFirstMismatch)
{
    std::vector<BranchSample> oracle(4);
    for (std::size_t i = 0; i < oracle.size(); ++i)
        oracle[i].site = static_cast<Addr>(100 + i);
    std::vector<BranchSample> production = oracle;
    production[2].taken = true;

    const std::string report = compareSamples(oracle, production);
    ASSERT_FALSE(report.empty());
    // The report names the diverging index and shows both renderings.
    EXPECT_NE(report.find("2"), std::string::npos) << report;
    EXPECT_NE(report.find(formatSample(oracle[2])), std::string::npos)
        << report;
    EXPECT_NE(report.find(formatSample(production[2])), std::string::npos)
        << report;
}

TEST(Differ, CompareSamplesReportsLengthMismatch)
{
    std::vector<BranchSample> oracle(3);
    std::vector<BranchSample> production(2);
    const std::string report = compareSamples(oracle, production);
    ASSERT_FALSE(report.empty());
    // A prefix relationship is reported as a length problem, not a
    // field mismatch.
    EXPECT_NE(report.find("3"), std::string::npos) << report;
    EXPECT_NE(report.find("2"), std::string::npos) << report;
}

TEST(Differ, AllArchsAndKindsCoverTheMatrix)
{
    EXPECT_EQ(allArchs().size(), 8u);
    EXPECT_EQ(allAlignerKinds().size(), 4u);
    // The extended sweep appends ExtTsp without renumbering the paper's
    // four (suite goldens pin those).
    ASSERT_EQ(allAlignerKindsExtended().size(), 5u);
    for (std::size_t i = 0; i < allAlignerKinds().size(); ++i)
        EXPECT_EQ(allAlignerKindsExtended()[i], allAlignerKinds()[i]);
    EXPECT_EQ(allAlignerKindsExtended().back(), AlignerKind::ExtTsp);
}

TEST(Differ, DivergenceRecordsObjective)
{
    Divergence divergence;
    divergence.kind = DivergenceKind::Event;
    divergence.objective = ObjectiveKind::ExtTsp;
    divergence.detail = "detail";
    const std::string text = formatDivergence(divergence);
    EXPECT_NE(text.find("objective=exttsp"), std::string::npos) << text;
}
