/**
 * @file
 * Corpus replay: every checked-in repro under tests/corpus/ must load and
 * diff clean (oracle == production) across all architectures and aligners.
 *
 * Corpus files are either shrunk fuzzer finds (after the underlying bug
 * was fixed, the file stays as a regression test) or hand-minimized
 * degenerate shapes worth pinning forever. Each file carries its walk
 * parameters in the `# balign-fuzz-walk` magic comment; `balign repro
 * <file>` replays one interactively.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/differ.h"
#include "check/fuzz.h"

using namespace balign;

namespace {

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(BALIGN_CORPUS_DIR)) {
        if (entry.path().extension() == ".balign")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

}  // namespace

TEST(Corpus, HasSeedPrograms)
{
    EXPECT_GE(corpusFiles().size(), 3u)
        << "tests/corpus/ must ship at least three repro programs";
}

TEST(Corpus, EveryFileLoads)
{
    for (const auto &path : corpusFiles()) {
        const auto repro = loadRepro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        EXPECT_GE(repro->walk.instrBudget, 1u) << path;
    }
}

TEST(Corpus, EveryFileDiffsClean)
{
    DiffOptions options;
    options.maxDivergences = 1;
    // Replay the full fuzzer sweep: all five aligners, both objectives.
    options.kinds = allAlignerKindsExtended();
    options.objectives = allObjectiveKinds();
    for (const auto &path : corpusFiles()) {
        const auto repro = loadRepro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        const auto divergences =
            diffProgram(repro->program, repro->walk, options);
        for (const auto &divergence : divergences)
            ADD_FAILURE() << path << "\n" << formatDivergence(divergence);
    }
}
