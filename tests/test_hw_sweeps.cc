/**
 * @file
 * Parameterized hardware sweeps: predictor behaviour must vary sensibly
 * with table size, associativity and history length. These guard the
 * size/geometry plumbing that the paper's small-vs-large BTB comparison
 * rests on.
 */

#include <gtest/gtest.h>

#include "bpred/evaluator.h"
#include "layout/materialize.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

struct Prepared
{
    Program program;
    WalkOptions walk;
};

const Prepared &
gccModel()
{
    static const Prepared prepared = [] {
        ProgramSpec spec = suiteSpec("gcc");
        spec.traceInstrs = 200'000;
        Prepared p{generateProgram(spec), WalkOptions{}};
        p.walk.seed = traceSeed(spec);
        p.walk.instrBudget = spec.traceInstrs;
        Profiler profiler(p.program);
        walk(p.program, p.walk, profiler);
        return p;
    }();
    return prepared;
}

EvalResult
evalWith(const EvalParams &params)
{
    const Prepared &prepared = gccModel();
    const ProgramLayout layout = originalLayout(prepared.program);
    ArchEvaluator eval(prepared.program, layout, params);
    walk(prepared.program, prepared.walk, eval.sink());
    return eval.result();
}

}  // namespace

class PhtSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PhtSizeSweep, RunsAndStaysSane)
{
    EvalParams params = EvalParams::forArch(Arch::PhtDirect);
    params.phtEntries = GetParam();
    const EvalResult result = evalWith(params);
    EXPECT_GT(result.condExec, 0u);
    EXPECT_LE(result.condMispredicts, result.condExec);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhtSizeSweep,
                         ::testing::Values(64, 256, 1024, 4096, 16384));

TEST(PhtSizeSweepOrder, BiggerTablesNeverMuchWorse)
{
    EvalParams small = EvalParams::forArch(Arch::PhtDirect);
    small.phtEntries = 64;
    EvalParams large = EvalParams::forArch(Arch::PhtDirect);
    large.phtEntries = 16384;
    const EvalResult small_result = evalWith(small);
    const EvalResult large_result = evalWith(large);
    // Aliasing in a 64-entry table must not beat a 16K table by more than
    // noise, and typically loses clearly on the gcc model.
    EXPECT_LE(large_result.condMispredicts,
              small_result.condMispredicts * 101 / 100);
    EXPECT_LT(large_result.condMispredicts, small_result.condMispredicts);
}

class BtbGeometrySweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(BtbGeometrySweep, RunsAndCountsLookups)
{
    EvalParams params = EvalParams::forArch(Arch::BtbLarge);
    params.btbEntries = GetParam().first;
    params.btbWays = GetParam().second;
    const EvalResult result = evalWith(params);
    EXPECT_GT(result.btbLookups, 0u);
    EXPECT_LE(result.btbHits, result.btbLookups);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BtbGeometrySweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{16, 1},
                      std::pair<std::size_t, std::size_t>{64, 2},
                      std::pair<std::size_t, std::size_t>{256, 4},
                      std::pair<std::size_t, std::size_t>{1024, 8}));

TEST(BtbGeometryOrder, LargerBtbHitsMore)
{
    EvalParams small = EvalParams::forArch(Arch::BtbSmall);
    EvalParams large = EvalParams::forArch(Arch::BtbLarge);
    large.btbEntries = 2048;
    large.btbWays = 8;
    const EvalResult small_result = evalWith(small);
    const EvalResult large_result = evalWith(large);
    const double small_rate = static_cast<double>(small_result.btbHits) /
                              static_cast<double>(small_result.btbLookups);
    const double large_rate = static_cast<double>(large_result.btbHits) /
                              static_cast<double>(large_result.btbLookups);
    EXPECT_GT(large_rate, small_rate);
}

class HistoryLengthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistoryLengthSweep, RunsAndStaysSane)
{
    EvalParams params = EvalParams::forArch(Arch::PhtCorrelated);
    params.historyBits = GetParam();
    const EvalResult result = evalWith(params);
    EXPECT_GT(result.condExec, 0u);
    EXPECT_LE(result.condMispredicts, result.condExec);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HistoryLengthSweep,
                         ::testing::Values(1, 4, 8, 12, 16));

class RasDepthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RasDepthSweep, DeeperStacksNeverHurtReturns)
{
    EvalParams shallow = EvalParams::forArch(Arch::BtFnt);
    shallow.rasEntries = GetParam();
    EvalParams deep = EvalParams::forArch(Arch::BtFnt);
    deep.rasEntries = 64;
    const EvalResult shallow_result = evalWith(shallow);
    const EvalResult deep_result = evalWith(deep);
    EXPECT_LE(deep_result.returnMispredicts,
              shallow_result.returnMispredicts);
}

INSTANTIATE_TEST_SUITE_P(Depths, RasDepthSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(PenaltySweep, BepScalesLinearlyWithPenalties)
{
    EvalParams base = EvalParams::forArch(Arch::Fallthrough);
    const EvalResult r1 = evalWith(base);
    EvalParams doubled = base;
    doubled.penalties.misfetch = 2.0;
    doubled.penalties.mispredict = 8.0;
    const EvalResult r2 = evalWith(doubled);
    // Counts identical; BEP exactly doubles.
    EXPECT_EQ(r1.misfetches, r2.misfetches);
    EXPECT_EQ(r1.mispredicts, r2.mispredicts);
    EXPECT_DOUBLE_EQ(r2.bep(), 2.0 * r1.bep());
}
