/**
 * @file
 * Tests for the dynamic predictor structures: direct-mapped PHT, gshare
 * (correlation) PHT, set-associative BTB and the return-address stack.
 */

#include <gtest/gtest.h>

#include "bpred/btb.h"
#include "bpred/gshare.h"
#include "bpred/pht.h"
#include "bpred/ras.h"

using namespace balign;

// ---- PHT --------------------------------------------------------------------

TEST(Pht, DefaultsNotTaken)
{
    PhtDirect pht(16);
    for (Addr a = 0; a < 16; ++a)
        EXPECT_FALSE(pht.predict(a));
}

TEST(Pht, LearnsDirectionWithHysteresis)
{
    PhtDirect pht(16);
    pht.update(5, true);  // weakly-NT -> weakly-T
    EXPECT_TRUE(pht.predict(5));
    pht.update(5, true);  // strongly taken
    pht.update(5, false);
    EXPECT_TRUE(pht.predict(5));  // hysteresis survives one NT
    pht.update(5, false);
    EXPECT_FALSE(pht.predict(5));
}

TEST(Pht, IndexAliasing)
{
    PhtDirect pht(16);
    pht.update(3, true);
    // 3 and 19 collide in a 16-entry table.
    EXPECT_TRUE(pht.predict(19));
    // 4 does not.
    EXPECT_FALSE(pht.predict(4));
}

TEST(Pht, LoopBranchAccuracy)
{
    // A loop taken 9 of 10 times: after warmup the 2-bit counter
    // mispredicts only the exit (and nothing else).
    PhtDirect pht(64);
    int mispredicts = 0;
    for (int warm = 0; warm < 10; ++warm)
        pht.update(7, true);
    for (int iter = 0; iter < 100; ++iter) {
        const bool taken = (iter % 10) != 9;
        mispredicts += pht.predict(7) != taken;
        pht.update(7, taken);
    }
    EXPECT_EQ(mispredicts, 10);
}

TEST(PhtDeath, RejectsNonPowerOfTwo)
{
    EXPECT_DEATH(PhtDirect(100), "power of two");
}

// ---- gshare -----------------------------------------------------------------

TEST(Gshare, HistoryShiftsOutcomes)
{
    Gshare gshare(64, 4);
    EXPECT_EQ(gshare.history(), 0u);
    gshare.update(1, true);
    gshare.update(1, false);
    gshare.update(1, true);
    EXPECT_EQ(gshare.history(), 0b101u);
}

TEST(Gshare, HistoryMasked)
{
    Gshare gshare(64, 2);
    for (int i = 0; i < 10; ++i)
        gshare.update(1, true);
    EXPECT_EQ(gshare.history(), 0b11u);
}

TEST(Gshare, PredictsAlternatingPatternPerfectlyAfterWarmup)
{
    // A strictly alternating branch defeats a per-site 2-bit counter but
    // is captured exactly by history-indexed counters.
    Gshare gshare(256, 8);
    bool taken = false;
    for (int i = 0; i < 64; ++i) {  // warmup
        gshare.update(40, taken);
        taken = !taken;
    }
    int mispredicts = 0;
    for (int i = 0; i < 100; ++i) {
        mispredicts += gshare.predict(40) != taken;
        gshare.update(40, taken);
        taken = !taken;
    }
    EXPECT_EQ(mispredicts, 0);

    // Reference: the per-site counter gets every other one wrong.
    PhtDirect pht(256);
    taken = false;
    int pht_mispredicts = 0;
    for (int i = 0; i < 100; ++i) {
        pht_mispredicts += pht.predict(40) != taken;
        pht.update(40, taken);
        taken = !taken;
    }
    EXPECT_GE(pht_mispredicts, 49);
}

TEST(Gshare, CapturesCorrelatedPair)
{
    // Branch B repeats branch A's outcome; A alternates. After warmup,
    // B's prediction keyed on history containing A's outcome is perfect.
    Gshare gshare(1024, 6);
    bool a = false;
    for (int round = 0; round < 200; ++round) {
        gshare.update(100, a);        // branch A
        gshare.update(200, a);        // branch B copies A
        a = !a;
    }
    int mispredicts = 0;
    for (int round = 0; round < 100; ++round) {
        gshare.update(100, a);
        mispredicts += gshare.predict(200) != a;
        gshare.update(200, a);
        a = !a;
    }
    EXPECT_LE(mispredicts, 2);
}

TEST(GshareDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(Gshare(100, 12), "power of two");
    EXPECT_DEATH(Gshare(64, 0), "history");
}

// ---- BTB --------------------------------------------------------------------

TEST(Btb, MissesWhenEmpty)
{
    Btb btb(64, 2);
    EXPECT_FALSE(btb.lookup(100).has_value());
}

TEST(Btb, OnlyTakenBranchesInserted)
{
    Btb btb(64, 2);
    btb.update(100, false, 200);
    EXPECT_FALSE(btb.lookup(100).has_value());
    btb.update(100, true, 200);
    const auto hit = btb.lookup(100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->target, 200u);
    EXPECT_TRUE(hit->counterTaken);  // inserted weakly taken
}

TEST(Btb, CounterTrainsDown)
{
    Btb btb(64, 2);
    btb.update(100, true, 200);
    btb.update(100, false, 200);
    const auto hit = btb.lookup(100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->counterTaken);
}

TEST(Btb, TargetRetrainedForIndirect)
{
    Btb btb(64, 2);
    btb.update(100, true, 200);
    btb.update(100, true, 300);
    EXPECT_EQ(btb.lookup(100)->target, 300u);
}

TEST(Btb, SetConflictEvictsLru)
{
    // 4 entries, 2 ways => 2 sets. Addresses 0, 2, 4 share set 0.
    Btb btb(4, 2);
    btb.update(0, true, 10);
    btb.update(2, true, 20);
    btb.update(4, true, 30);  // evicts LRU (addr 0)
    EXPECT_FALSE(btb.lookup(0).has_value());
    EXPECT_TRUE(btb.lookup(2).has_value());
    EXPECT_TRUE(btb.lookup(4).has_value());
}

TEST(Btb, LruRefreshOnHit)
{
    Btb btb(4, 2);
    btb.update(0, true, 10);
    btb.update(2, true, 20);
    btb.update(0, true, 10);  // refresh 0: LRU is now 2
    btb.update(4, true, 30);
    EXPECT_TRUE(btb.lookup(0).has_value());
    EXPECT_FALSE(btb.lookup(2).has_value());
}

TEST(Btb, DifferentSetsDoNotConflict)
{
    Btb btb(4, 2);
    btb.update(0, true, 10);
    btb.update(1, true, 11);
    btb.update(2, true, 12);
    btb.update(3, true, 13);
    EXPECT_TRUE(btb.lookup(0).has_value());
    EXPECT_TRUE(btb.lookup(1).has_value());
    EXPECT_TRUE(btb.lookup(2).has_value());
    EXPECT_TRUE(btb.lookup(3).has_value());
}

TEST(Btb, Geometry)
{
    Btb btb(256, 4);
    EXPECT_EQ(btb.numEntries(), 256u);
    EXPECT_EQ(btb.numWays(), 4u);
    EXPECT_EQ(btb.numSets(), 64u);
}

TEST(BtbDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(Btb(0, 1), "bad geometry");
    EXPECT_DEATH(Btb(12, 4), "power of two");
}

// ---- Return stack -------------------------------------------------------------

TEST(ReturnStack, LifoOrder)
{
    ReturnStack ras(8);
    ras.push(10);
    ras.push(20);
    ras.push(30);
    EXPECT_EQ(ras.pop(), 30u);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
}

TEST(ReturnStack, UnderflowReturnsNoAddr)
{
    ReturnStack ras(4);
    EXPECT_EQ(ras.pop(), kNoAddr);
    ras.push(1);
    EXPECT_EQ(ras.pop(), 1u);
    EXPECT_EQ(ras.pop(), kNoAddr);
}

TEST(ReturnStack, WrapsAndOverwritesOldest)
{
    ReturnStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a);
    // Capacity 4: entries 3,4,5,6 survive.
    EXPECT_EQ(ras.depth(), 4u);
    EXPECT_EQ(ras.pop(), 6u);
    EXPECT_EQ(ras.pop(), 5u);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), kNoAddr);
}

TEST(ReturnStack, DeepRecursionPattern)
{
    // Push/pop balance across a simulated deep call chain within capacity.
    ReturnStack ras(32);
    for (Addr a = 0; a < 32; ++a)
        ras.push(a * 4);
    for (Addr a = 32; a-- > 0;)
        EXPECT_EQ(ras.pop(), a * 4);
}
