/**
 * @file
 * Tests for the synthetic workload generator: structural validity across
 * many seeds, the fall-through adjacency invariant that makes the identity
 * layout exact, call-graph reachability, and parameter effects.
 */

#include <gtest/gtest.h>

#include <set>

#include "cfg/validate.h"
#include "layout/materialize.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

ProgramSpec
smallSpec(std::uint64_t seed)
{
    ProgramSpec spec;
    spec.name = "gen";
    spec.seed = seed;
    spec.numProcs = 6;
    spec.minBlocksPerProc = 5;
    spec.maxBlocksPerProc = 24;
    return spec;
}

}  // namespace

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorSeedSweep, ProducesValidProgram)
{
    const Program program = generateProgram(smallSpec(GetParam()));
    EXPECT_TRUE(validate(program).empty());
    EXPECT_EQ(program.numProcs(), 6u);
}

TEST_P(GeneratorSeedSweep, FallThroughEdgesTargetNextBlock)
{
    const Program program = generateProgram(smallSpec(GetParam()));
    for (const auto &proc : program.procs()) {
        for (const auto &edge : proc.edges()) {
            if (edge.kind == EdgeKind::FallThrough) {
                EXPECT_EQ(edge.dst, edge.src + 1)
                    << proc.name() << " edge " << edge.src << "->"
                    << edge.dst;
            }
        }
    }
}

TEST_P(GeneratorSeedSweep, NoRedundantUnconditionalBranches)
{
    // An unconditional branch to the textually next block would be
    // deleted by the materializer, making the identity layout inexact.
    const Program program = generateProgram(smallSpec(GetParam()));
    for (const auto &proc : program.procs()) {
        for (const auto &edge : proc.edges()) {
            if (proc.block(edge.src).term == Terminator::UncondBranch) {
                EXPECT_NE(edge.dst, edge.src + 1) << proc.name();
            }
        }
    }
}

TEST_P(GeneratorSeedSweep, IdentityLayoutIsExact)
{
    const Program program = generateProgram(smallSpec(GetParam()));
    const ProgramLayout layout = originalLayout(program);
    EXPECT_EQ(layout.totalInstrs, program.totalInstrs());
    for (const auto &pl : layout.procs) {
        EXPECT_EQ(pl.jumpsInserted, 0u);
        EXPECT_EQ(pl.jumpsRemoved, 0u);
        EXPECT_EQ(pl.sensesInverted, 0u);
    }
}

TEST_P(GeneratorSeedSweep, EveryProcedureReachable)
{
    const Program program = generateProgram(smallSpec(GetParam()));
    std::set<ProcId> called{program.mainProc()};
    for (const auto &proc : program.procs())
        for (const auto &block : proc.blocks())
            for (const auto &site : block.calls)
                called.insert(site.callee);
    EXPECT_EQ(called.size(), program.numProcs());
}

TEST_P(GeneratorSeedSweep, CallGraphIsAcyclic)
{
    const Program program = generateProgram(smallSpec(GetParam()));
    for (const auto &proc : program.procs())
        for (const auto &block : proc.blocks())
            for (const auto &site : block.calls)
                EXPECT_GT(site.callee, proc.id());
}

TEST_P(GeneratorSeedSweep, CallSitesSortedByOffset)
{
    const Program program = generateProgram(smallSpec(GetParam()));
    for (const auto &proc : program.procs()) {
        for (const auto &block : proc.blocks()) {
            for (std::size_t i = 1; i < block.calls.size(); ++i) {
                EXPECT_LE(block.calls[i - 1].offset,
                          block.calls[i].offset);
            }
        }
    }
}

TEST_P(GeneratorSeedSweep, PatternsAreWellFormed)
{
    const Program program = generateProgram(smallSpec(GetParam()));
    for (const auto &proc : program.procs()) {
        for (const auto &block : proc.blocks()) {
            if (block.patternLength == 0)
                continue;
            EXPECT_EQ(block.term, Terminator::CondBranch);
            EXPECT_LE(block.patternLength, 32);
            // Mask confined to the pattern.
            if (block.patternLength < 32) {
                EXPECT_EQ(block.patternMask >> block.patternLength, 0u)
                    << proc.name();
            }
        }
    }
}

TEST_P(GeneratorSeedSweep, DeterministicForSeed)
{
    const Program a = generateProgram(smallSpec(GetParam()));
    const Program b = generateProgram(smallSpec(GetParam()));
    ASSERT_EQ(a.numProcs(), b.numProcs());
    for (ProcId p = 0; p < a.numProcs(); ++p) {
        ASSERT_EQ(a.proc(p).numBlocks(), b.proc(p).numBlocks());
        ASSERT_EQ(a.proc(p).numEdges(), b.proc(p).numEdges());
        for (std::size_t e = 0; e < a.proc(p).numEdges(); ++e) {
            EXPECT_EQ(a.proc(p).edge(e).src, b.proc(p).edge(e).src);
            EXPECT_EQ(a.proc(p).edge(e).dst, b.proc(p).edge(e).dst);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42, 99,
                                           12345));

TEST(Generator, BlockSizeTracksAvgParameter)
{
    ProgramSpec small = smallSpec(7);
    small.avgBlockInstrs = 4;
    ProgramSpec large = smallSpec(7);
    large.avgBlockInstrs = 16;

    const Program a = generateProgram(small);
    const Program b = generateProgram(large);
    const double mean_a = static_cast<double>(a.totalInstrs()) /
                          static_cast<double>([&] {
                              std::size_t n = 0;
                              for (const auto &proc : a.procs())
                                  n += proc.numBlocks();
                              return n;
                          }());
    const double mean_b = static_cast<double>(b.totalInstrs()) /
                          static_cast<double>([&] {
                              std::size_t n = 0;
                              for (const auto &proc : b.procs())
                                  n += proc.numBlocks();
                              return n;
                          }());
    EXPECT_LT(mean_a * 2.0, mean_b);
}

TEST(Generator, TraceSeedDiffersFromGenSeed)
{
    const ProgramSpec spec = smallSpec(1234);
    EXPECT_NE(traceSeed(spec), spec.seed);
}

TEST(Generator, SingleProcedureProgramHasNoCalls)
{
    ProgramSpec spec = smallSpec(3);
    spec.numProcs = 1;
    const Program program = generateProgram(spec);
    for (const auto &block : program.proc(0).blocks())
        EXPECT_TRUE(block.calls.empty());
}

// ---- suite ------------------------------------------------------------------

TEST(Suite, TwentyFourPrograms)
{
    const auto suite = benchmarkSuite();
    EXPECT_EQ(suite.size(), 24u);
    std::size_t fp = 0, intg = 0, other = 0;
    std::set<std::string> names;
    for (const auto &spec : suite) {
        names.insert(spec.name);
        if (spec.group == "SPECfp92")
            ++fp;
        else if (spec.group == "SPECint92")
            ++intg;
        else if (spec.group == "Other")
            ++other;
    }
    EXPECT_EQ(fp, 13u);
    EXPECT_EQ(intg, 6u);
    EXPECT_EQ(other, 5u);
    EXPECT_EQ(names.size(), 24u);  // unique names
}

TEST(Suite, Figure4SubsetIsTheSpecCPrograms)
{
    const auto subset = figure4Suite();
    ASSERT_EQ(subset.size(), 8u);
    EXPECT_EQ(subset[0].name, "alvinn");
    EXPECT_EQ(subset[5].name, "gcc");
}

TEST(Suite, EveryProgramGeneratesAndValidates)
{
    for (const auto &spec : benchmarkSuite()) {
        const Program program = generateProgram(spec);
        EXPECT_TRUE(validate(program).empty()) << spec.name;
        EXPECT_EQ(program.name(), spec.name);
    }
}

TEST(SuiteDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(suiteSpec("does-not-exist"), "unknown suite program");
}

TEST(Suite, FpProgramsAreLessBranchyThanInt)
{
    // The headline Table-2 distinction: FP programs break control flow
    // far less often than integer programs.
    auto measure = [](const char *name) {
        ProgramSpec spec = suiteSpec(name);
        spec.traceInstrs = 200'000;
        Program program = generateProgram(spec);
        Profiler profiler(program);
        WalkOptions options;
        options.seed = traceSeed(spec);
        options.instrBudget = spec.traceInstrs;
        walk(program, options, profiler);
        return profiler.stats().pctBreaks();
    };
    EXPECT_LT(measure("swm256"), measure("gcc"));
    EXPECT_LT(measure("fpppp"), measure("li"));
}
