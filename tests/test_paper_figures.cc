/**
 * @file
 * Tests for the reconstructed paper-figure CFGs: structural validity, flow
 * conservation, and the exact branch-cost numbers the harnesses report.
 */

#include <gtest/gtest.h>

#include "bpred/evaluator.h"
#include "cfg/validate.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "trace/walker.h"
#include "workload/paper_figures.h"

using namespace balign;

namespace {

/// Net flow imbalance of a block: in-weight minus out-weight.
std::int64_t
imbalance(const Procedure &proc, BlockId id, Weight external_in = 0)
{
    std::int64_t net = static_cast<std::int64_t>(external_in);
    for (auto e : proc.block(id).inEdges)
        net += static_cast<std::int64_t>(proc.edge(e).weight);
    for (auto e : proc.block(id).outEdges)
        net -= static_cast<std::int64_t>(proc.edge(e).weight);
    return net;
}

}  // namespace

TEST(Figure1, ValidatesAndConservesFlow)
{
    const Program program = figure1Espresso();
    EXPECT_TRUE(validate(program).empty());
    const Procedure &proc = program.proc(0);
    // Interior nodes (paper's 25..31 = ids 1..7) conserve flow.
    for (BlockId id = 1; id <= 7; ++id)
        EXPECT_EQ(imbalance(proc, id), 0) << "node " << id;
}

TEST(Figure1, HotTakenEdgesMatchPaper)
{
    // The edges the paper says FALLTHROUGH mispredicts: 25->31, 31->25,
    // 27->29 (ids 1->7, 7->1, 3->5) are all Taken and hot.
    const Program program = figure1Espresso();
    const Procedure &proc = program.proc(0);
    auto weight_of = [&](BlockId src, BlockId dst) -> Weight {
        for (auto e : proc.block(src).outEdges) {
            const Edge &edge = proc.edge(e);
            if (edge.dst == dst && edge.kind == EdgeKind::Taken)
                return edge.weight;
        }
        return 0;
    };
    EXPECT_EQ(weight_of(7, 1), 16000u);  // the "16" label
    EXPECT_EQ(weight_of(1, 7), 15000u);
    EXPECT_EQ(weight_of(3, 5), 4000u);
}

TEST(Figure1, AlignmentMakesNode25FallThroughOf31)
{
    // Paper: in the transformed code node 25 becomes the fall-through of
    // node 31 (31->25 is the hot loop edge). ids: 31 = 7, 25 = 1. The
    // FALLTHROUGH alignment must realize this (taken branches are always
    // mispredicted there); BT/FNT may legitimately keep 31->25 as a
    // backward taken branch instead.
    const Program program = figure1Espresso();
    const CostModel model(Arch::Fallthrough);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Try15, &model);
    const auto &order = layout.procs[0].order;
    const auto pos = [&](BlockId blk) {
        return std::find(order.begin(), order.end(), blk) - order.begin();
    };
    EXPECT_EQ(pos(1), pos(7) + 1);
}

TEST(Figure1, AlignmentReducesBepOnEveryStaticArch)
{
    const Program program = figure1Espresso();
    // Use the hand-set weights as both profile and trace (biases drive a
    // stochastic walk with matching ratios).
    for (Arch arch : {Arch::Fallthrough, Arch::BtFnt, Arch::Likely}) {
        const CostModel model(arch);
        const ProgramLayout orig = originalLayout(program);
        const ProgramLayout aligned =
            alignProgram(program, AlignerKind::Try15, &model);

        WalkOptions options;
        options.seed = 77;
        options.instrBudget = 200'000;

        ArchEvaluator orig_eval(program, orig, EvalParams::forArch(arch));
        ArchEvaluator aligned_eval(program, aligned,
                                   EvalParams::forArch(arch));
        MultiSink fanout;
        fanout.add(&orig_eval.sink());
        fanout.add(&aligned_eval.sink());
        walk(program, options, fanout);

        EXPECT_LT(aligned_eval.result().bep(), orig_eval.result().bep())
            << archName(arch);
    }
}

TEST(Figure2, LoopDominatesExecution)
{
    const Program program = figure2Alvinn();
    EXPECT_TRUE(validate(program).empty());
    const Procedure &proc = program.proc(0);
    EXPECT_EQ(proc.block(1).numInstrs, 11u);  // the paper's 11-instr block
    // The self edge carries ~99% of the weight.
    const Weight self =
        proc.edge(static_cast<std::uint32_t>(proc.takenEdge(1))).weight;
    EXPECT_GT(self, proc.totalEdgeWeight() * 95 / 100);
}

TEST(Figure2, FallthroughAlignmentAppliesLoopTrick)
{
    const Program program = figure2Alvinn();
    const CostModel model(Arch::Fallthrough);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Try15, &model);
    EXPECT_EQ(layout.procs[0].blocks[1].cond,
              CondRealization::NeitherJumpToTaken);

    // BT/FNT leaves the backward-taken loop alone.
    const CostModel bf(Arch::BtFnt);
    const ProgramLayout bf_layout =
        alignProgram(program, AlignerKind::Try15, &bf);
    EXPECT_EQ(bf_layout.procs[0].blocks[1].cond,
              CondRealization::FallAdjacent);
}

TEST(Figure3, ExactCostNumbers)
{
    // Checked end-to-end by bench_fig3_loop; here assert the layouts.
    const Program program = figure3Loop();
    EXPECT_TRUE(validate(program).empty());

    const ProgramLayout greedy =
        alignProgram(program, AlignerKind::Greedy, nullptr);
    EXPECT_EQ(greedy.procs[0].order, (std::vector<BlockId>{0, 1, 2, 3, 4}));

    const CostModel model(Arch::Likely);
    const ProgramLayout try15 =
        alignProgram(program, AlignerKind::Try15, &model);
    EXPECT_EQ(try15.procs[0].order, (std::vector<BlockId>{0, 2, 3, 1, 4}));
    EXPECT_EQ(try15.procs[0].jumpsRemoved, 1u);
    EXPECT_EQ(try15.procs[0].jumpsInserted, 1u);  // entry -> A jump
    EXPECT_EQ(try15.procs[0].sensesInverted, 1u);
    // Static size unchanged: one jump removed, one inserted.
    EXPECT_EQ(try15.totalInstrs, program.totalInstrs());
}

TEST(Figure3, CostAlignerAlsoBeatsGreedyHere)
{
    // The Cost heuristic cannot rotate the loop either (it processes edges
    // one at a time), but it must never be worse than Greedy under its
    // own cost model on this example.
    const Program program = figure3Loop();
    const CostModel model(Arch::Likely);
    const ProgramLayout cost_layout =
        alignProgram(program, AlignerKind::Cost, &model);

    WalkOptions options;
    options.seed = 5;
    options.instrBudget = 100'000;
    const ProgramLayout greedy_layout =
        alignProgram(program, AlignerKind::Greedy, nullptr);
    ArchEvaluator greedy_eval(program, greedy_layout,
                              EvalParams::forArch(Arch::Likely));
    ArchEvaluator cost_eval(program, cost_layout,
                            EvalParams::forArch(Arch::Likely));
    MultiSink fanout;
    fanout.add(&greedy_eval.sink());
    fanout.add(&cost_eval.sink());
    walk(program, options, fanout);
    EXPECT_LE(cost_eval.result().bep(),
              greedy_eval.result().bep() * 1.001);
}
