/**
 * @file
 * Part of the `ctest -L robust` group: differential coverage for
 * incremental realignment (core/realign.h).
 *
 * The contract under test, pinned byte-for-byte:
 *  - threshold 0 realigns every procedure and reproduces a full
 *    alignProgram of the new profile exactly — every layout field and,
 *    replayed under BOTH engines (batched and per-cell), every
 *    EvalResult counter;
 *  - threshold kNeverRealign keeps the old layout verbatim (re-based),
 *    again field- and counter-identical;
 *  - a mid-threshold splice passes the translation validator
 *    (AlignOptions.verify stays on, so a bad splice panics the test).
 *
 * profileDivergence's metric properties (scale invariance, zero-profile
 * poles) are covered directly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bpred/evaluator.h"
#include "check/differ.h"
#include "check/fuzz.h"
#include "core/align_program.h"
#include "core/realign.h"
#include "layout/layout_diff.h"
#include "profile/degrade.h"
#include "sim/batch_replay.h"
#include "sim/cpi.h"
#include "trace/branch_events.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kBudget = 50'000;

PreparedProgram
preparedSuiteProgram(const std::string &name)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = kBudget;
    return prepareProgram(spec);
}

/// The moved profile: the true profile perturbed hard enough that most
/// procedures diverge (deterministic; structure untouched).
Program
movedProfile(const PreparedProgram &prepared)
{
    Program moved = prepared.program;
    DegradeSpec spec;
    spec.kind = DegradeKind::Perturb;
    spec.param = 0.5;
    spec.seed = 99;
    degradeProfile(moved, prepared.walk, spec);
    return moved;
}

std::vector<std::uint64_t>
counters(const EvalResult &r)
{
    return {r.instrs,     r.misfetches, r.mispredicts,
            r.condExec,   r.condTaken,  r.condMispredicts,
            r.uncondExec, r.callExec,   r.returnExec,
            r.returnMispredicts, r.indirectExec,
            r.btbHits,    r.btbLookups};
}

/// Reference engine: one ArchEvaluator replay of the recorded trace.
EvalResult
evalPerCell(const PreparedProgram &prepared, const ProgramLayout &layout,
            const EvalParams &params)
{
    ArchEvaluator evaluator(prepared.program, layout, params);
    BranchEventAdapter adapter(prepared.program, layout, evaluator);
    prepared.trace->replay(prepared.program, adapter);
    return evaluator.result();
}

/// Batched engine: a single-lane sweep over the same trace.
EvalResult
evalBatched(const PreparedProgram &prepared, const ProgramLayout &layout,
            const EvalParams &params)
{
    return runBatchReplay(prepared.program, layout, *prepared.batch,
                          {params})[0];
}

}  // namespace

TEST(ProfileDivergence, MetricProperties)
{
    const PreparedProgram prepared = preparedSuiteProgram("compress");
    const Procedure &proc = prepared.program.proc(0);
    ASSERT_GT(proc.totalEdgeWeight(), 0u);

    // Identity.
    EXPECT_DOUBLE_EQ(profileDivergence(proc, proc), 0.0);

    // Scale invariance: the metric reads the weight *distribution*.
    Procedure scaled = proc;
    for (Edge &edge : scaled.edges())
        edge.weight *= 3;
    EXPECT_DOUBLE_EQ(profileDivergence(proc, scaled), 0.0);

    // Zero-profile poles: no information at all is maximal divergence
    // from any real profile, and zero-to-zero is no movement.
    Procedure dark = proc;
    for (Edge &edge : dark.edges())
        edge.weight = 0;
    EXPECT_DOUBLE_EQ(profileDivergence(proc, dark), 2.0);
    EXPECT_DOUBLE_EQ(profileDivergence(dark, dark), 0.0);

    // A genuine perturbation lands strictly inside the (0, 2] range.
    const Program moved = movedProfile(prepared);
    double max_divergence = 0.0;
    for (ProcId id = 0; id < prepared.program.numProcs(); ++id) {
        const double d = profileDivergence(prepared.program.proc(id),
                                           moved.proc(id));
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 2.0);
        max_divergence = std::max(max_divergence, d);
    }
    EXPECT_GT(max_divergence, 0.0);
}

TEST(Realign, ThresholdEndpointsAreByteIdentical)
{
    for (const std::string name : {"compress", "espresso", "li"}) {
        const PreparedProgram prepared = preparedSuiteProgram(name);
        const Program moved = movedProfile(prepared);
        const CostModel model(Arch::BtFnt);
        for (const AlignerKind kind : allAlignerKindsExtended()) {
            for (const ObjectiveKind objective : allObjectiveKinds()) {
                AlignOptions options;
                options.objective = objective;
                const std::string label =
                    std::string(name) + "/" + alignerKindName(kind) + "/" +
                    objectiveKindName(objective);

                const ProgramLayout old_layout = alignProgram(
                    prepared.program, kind, &model, options);
                const ProgramLayout full =
                    alignProgram(moved, kind, &model, options);

                RealignStats all_stats;
                const ProgramLayout incremental = realignProgram(
                    prepared.program, old_layout, moved, kind, &model,
                    options, 0.0, &all_stats);
                EXPECT_EQ(describeLayoutDifference(full, incremental), "")
                    << label;
                EXPECT_EQ(all_stats.procsRealigned, all_stats.procsTotal)
                    << label;

                RealignStats none_stats;
                const ProgramLayout kept = realignProgram(
                    prepared.program, old_layout, moved, kind, &model,
                    options, kNeverRealign, &none_stats);
                EXPECT_EQ(describeLayoutDifference(old_layout, kept), "")
                    << label;
                EXPECT_EQ(none_stats.procsRealigned, 0u) << label;
                EXPECT_EQ(none_stats.procsTotal,
                          prepared.program.numProcs())
                    << label;
            }
        }
    }
}

TEST(Realign, CountersByteIdenticalAcrossBothEngines)
{
    // The layout-level identity above implies counter identity, but the
    // replay engines are the instruments the robustness bench trusts —
    // pin every EvalResult counter of the spliced layouts under both.
    const PreparedProgram prepared = preparedSuiteProgram("compress");
    ASSERT_NE(prepared.trace, nullptr);
    ASSERT_NE(prepared.batch, nullptr);
    const Program moved = movedProfile(prepared);
    const CostModel model(Arch::BtFnt);
    const EvalParams params = EvalParams::forArch(Arch::BtFnt);

    for (const AlignerKind kind :
         {AlignerKind::Greedy, AlignerKind::Try15}) {
        AlignOptions options;
        const std::string label = alignerKindName(kind);
        const ProgramLayout old_layout =
            alignProgram(prepared.program, kind, &model, options);
        const ProgramLayout full = alignProgram(moved, kind, &model,
                                                options);
        const ProgramLayout incremental =
            realignProgram(prepared.program, old_layout, moved, kind,
                           &model, options, 0.0);
        const ProgramLayout kept =
            realignProgram(prepared.program, old_layout, moved, kind,
                           &model, options, kNeverRealign);

        // Threshold 0 == full alignment, threshold infinity == old
        // layout, on every counter, under each engine — and the two
        // engines agree with each other on the spliced layouts.
        EXPECT_EQ(counters(evalPerCell(prepared, incremental, params)),
                  counters(evalPerCell(prepared, full, params))) << label;
        EXPECT_EQ(counters(evalBatched(prepared, incremental, params)),
                  counters(evalBatched(prepared, full, params))) << label;
        EXPECT_EQ(counters(evalPerCell(prepared, kept, params)),
                  counters(evalPerCell(prepared, old_layout, params)))
            << label;
        EXPECT_EQ(counters(evalBatched(prepared, kept, params)),
                  counters(evalBatched(prepared, old_layout, params)))
            << label;
        EXPECT_EQ(counters(evalBatched(prepared, incremental, params)),
                  counters(evalPerCell(prepared, incremental, params)))
            << label;
        EXPECT_EQ(counters(evalBatched(prepared, kept, params)),
                  counters(evalPerCell(prepared, kept, params))) << label;
    }
}

TEST(Realign, MidThresholdSpliceVerifiesAndSavesWork)
{
    const PreparedProgram prepared = preparedSuiteProgram("espresso");
    const Program moved = movedProfile(prepared);
    const CostModel model(Arch::BtFnt);
    AlignOptions options;  // verify stays on: a bad splice panics

    const ProgramLayout old_layout =
        alignProgram(prepared.program, AlignerKind::Try15, &model, options);
    RealignStats stats;
    const ProgramLayout spliced = realignProgram(
        prepared.program, old_layout, moved, AlignerKind::Try15, &model,
        options, 0.25, &stats);

    EXPECT_EQ(stats.procsTotal, prepared.program.numProcs());
    EXPECT_GT(stats.maxDivergence, 0.0);
    EXPECT_LE(stats.procsRealigned, stats.procsTotal);
    EXPECT_EQ(spliced.procs.size(), prepared.program.numProcs());

    // The spliced layout is contiguous in id order.
    Addr base = 0;
    for (const ProcLayout &proc : spliced.procs) {
        EXPECT_EQ(proc.base, base);
        base += proc.totalInstrs;
    }
    EXPECT_EQ(spliced.totalInstrs, base);
}

TEST(Realign, CorpusReprosPassTheRealignGate)
{
    // Every checked-in repro — including the hand-minimized
    // realign-split shape — must satisfy the fuzzer's Realign gate:
    // threshold endpoints byte-identical, mid-threshold splice verified,
    // across all five aligners and both objectives.
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(BALIGN_CORPUS_DIR)) {
        if (entry.path().extension() == ".balign")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 3u);

    DiffOptions options;
    options.kinds = allAlignerKindsExtended();
    options.objectives = allObjectiveKinds();
    for (const std::string &path : files) {
        const std::optional<Repro> repro = loadRepro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        const PreparedProgram prepared =
            prepareProgram(repro->program, repro->walk);
        const std::optional<Divergence> finding =
            realignGateCheck(prepared.program, prepared.walk, options);
        if (finding.has_value())
            ADD_FAILURE() << path << "\n" << formatDivergence(*finding);
    }
}
