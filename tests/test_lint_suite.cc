/**
 * @file
 * The `ctest -L lint` group: static verification of the full 24-program
 * benchmark suite plus golden lint reports for the fuzz corpus.
 *
 * Suite programs are profiled (reduced budget — the linter checks
 * invariants, not simulation quality) and must lint clean: zero errors
 * and zero warnings across every architecture x aligner layout and every
 * cost pair.
 *
 * Corpus repros are replayed through the linter and their full reports
 * compared against checked-in goldens (tests/corpus/lint/<name>.lint.txt)
 * so any behaviour drift in the rules shows up as a readable text diff.
 * Regenerate with BALIGN_REGEN_LINT_GOLDEN=1 after an intentional change.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "lint/lint.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kSuiteBudget = 100'000;

void
profileWith(Program &program, std::uint64_t seed, std::uint64_t budget)
{
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = seed;
    options.instrBudget = budget;
    walk(program, options, profiler);
}

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(BALIGN_CORPUS_DIR)) {
        if (entry.path().extension() == ".balign")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
goldenPathFor(const std::string &corpus_path)
{
    const std::filesystem::path path(corpus_path);
    return (path.parent_path() / "lint" / (path.stem().string() +
                                           ".lint.txt")).string();
}

class LintSuite : public testing::TestWithParam<std::string>
{
};

}  // namespace

TEST_P(LintSuite, ProgramLintsClean)
{
    Program program = generateProgram(suiteSpec(GetParam()));
    profileWith(program, 1, kSuiteBudget);
    const LintReport report = lintProgram(program);
    EXPECT_EQ(report.layoutsChecked, 32u);
    EXPECT_EQ(report.costPairsChecked, 16u);
    if (report.errors() != 0 || report.warnings() != 0)
        ADD_FAILURE() << formatLintReport(report, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Suite24, LintSuite, [] {
    std::vector<std::string> names;
    for (const ProgramSpec &spec : benchmarkSuite())
        names.push_back(spec.name);
    return testing::ValuesIn(names);
}(), [](const testing::TestParamInfo<std::string> &param) {
    std::string name = param.param;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
});

TEST(LintCorpus, ReportsMatchGoldens)
{
    const bool regen = std::getenv("BALIGN_REGEN_LINT_GOLDEN") != nullptr;
    const std::vector<std::string> files = corpusFiles();
    ASSERT_GE(files.size(), 3u);
    for (const std::string &path : files) {
        const std::optional<Repro> repro = loadRepro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        Program program = repro->program;
        profileWith(program, repro->walk.seed, repro->walk.instrBudget);

        const std::string name =
            std::filesystem::path(path).stem().string();
        const std::string report =
            formatLintReport(lintProgram(program), name);
        const std::string golden_path = goldenPathFor(path);

        if (regen) {
            std::filesystem::create_directories(
                std::filesystem::path(golden_path).parent_path());
            std::ofstream out(golden_path);
            out << report;
            continue;
        }
        std::ifstream in(golden_path);
        ASSERT_TRUE(in.good())
            << "missing golden " << golden_path
            << " (regenerate with BALIGN_REGEN_LINT_GOLDEN=1)";
        std::ostringstream golden;
        golden << in.rdbuf();
        EXPECT_EQ(report, golden.str()) << "lint report for " << path
                                        << " drifted from its golden";
    }
}

TEST(LintCorpus, CorpusHasNoLintErrors)
{
    for (const std::string &path : corpusFiles()) {
        const std::optional<Repro> repro = loadRepro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        Program program = repro->program;
        profileWith(program, repro->walk.seed, repro->walk.instrBudget);
        const LintReport report = lintProgram(program);
        if (!report.clean()) {
            ADD_FAILURE()
                << formatLintReport(report,
                                    std::filesystem::path(path).stem()
                                        .string());
        }
    }
}
