/**
 * @file
 * Tests for procedure positioning (the Pettis–Hansen extension) and
 * ordered program materialization.
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "layout/proc_order.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

Program
threeProcs()
{
    Program program("three");
    for (int i = 0; i < 3; ++i) {
        Procedure &proc =
            program.proc(program.addProc("p" + std::to_string(i)));
        CfgBuilder b(proc);
        b.block(4 + i, Terminator::Return);
    }
    return program;
}

std::vector<std::vector<BlockId>>
identityOrders(const Program &program)
{
    std::vector<std::vector<BlockId>> orders;
    for (const auto &proc : program.procs()) {
        std::vector<BlockId> order(proc.numBlocks());
        for (BlockId b = 0; b < proc.numBlocks(); ++b)
            order[b] = b;
        orders.push_back(order);
    }
    return orders;
}

}  // namespace

TEST(ProcOrder, MainGroupComesFirst)
{
    const Program program = threeProcs();
    CallGraph calls;
    calls[{1, 2}] = 1000;  // hottest pair excludes main
    const auto order = orderProcsByCallGraph(program, calls);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order.front(), program.mainProc());
}

TEST(ProcOrder, HotPairsPlacedAdjacent)
{
    const Program program = threeProcs();
    CallGraph calls;
    calls[{0, 2}] = 1000;
    calls[{0, 1}] = 10;
    const auto order = orderProcsByCallGraph(program, calls);
    // 0 and 2 merge first; the orientation search then reverses the pair
    // so that 0 and 1 can also sit adjacent: [2, 0, 1] keeps BOTH call
    // pairs at distance one.
    const auto pos = [&](ProcId p) {
        for (std::size_t i = 0; i < order.size(); ++i)
            if (order[i] == p)
                return i;
        return order.size();
    };
    EXPECT_EQ(pos(2) + 1, pos(0));
    EXPECT_EQ(pos(0) + 1, pos(1));
}

TEST(ProcOrder, PermutationForRealCallGraph)
{
    ProgramSpec spec = suiteSpec("li");
    spec.traceInstrs = 100'000;
    Program program = generateProgram(spec);
    Profiler profiler(program);
    WalkOptions options;
    options.seed = traceSeed(spec);
    options.instrBudget = spec.traceInstrs;
    walk(program, options, profiler);

    const auto order =
        orderProcsByCallGraph(program, profiler.callCounts());
    ASSERT_EQ(order.size(), program.numProcs());
    std::vector<bool> seen(program.numProcs(), false);
    for (ProcId p : order) {
        ASSERT_LT(p, program.numProcs());
        EXPECT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(ProcOrder, EmptyCallGraphKeepsAllProcs)
{
    const Program program = threeProcs();
    const auto order = orderProcsByCallGraph(program, CallGraph{});
    EXPECT_EQ(order.size(), 3u);
    EXPECT_EQ(order.front(), 0u);
}

TEST(ProcOrder, OrderedMaterializationMovesBases)
{
    const Program program = threeProcs();  // sizes 4, 5, 6
    const auto orders = identityOrders(program);
    const std::vector<ProcId> proc_order{2, 0, 1};
    const ProgramLayout layout = materializeProgramOrdered(
        program, orders, proc_order, MaterializeOptions{});
    EXPECT_EQ(layout.procs[2].base, 0u);
    EXPECT_EQ(layout.procs[0].base, 6u);
    EXPECT_EQ(layout.procs[1].base, 10u);
    EXPECT_EQ(layout.totalInstrs, 15u);
    EXPECT_EQ(layout.procEntryAddr(0), 6u);
}

TEST(ProcOrderDeath, RejectsBadOrder)
{
    const Program program = threeProcs();
    const auto orders = identityOrders(program);
    EXPECT_DEATH(materializeProgramOrdered(program, orders, {0, 0, 1},
                                           MaterializeOptions{}),
                 "bad procedure order");
    EXPECT_DEATH(materializeProgramOrdered(program, orders, {0, 1},
                                           MaterializeOptions{}),
                 "size mismatch");
}

TEST(ProcOrder, IdOrderEquivalentToPlainMaterialization)
{
    ProgramSpec spec = suiteSpec("compress");
    spec.traceInstrs = 50'000;
    const Program program = generateProgram(spec);
    const auto orders = identityOrders(program);
    std::vector<ProcId> id_order(program.numProcs());
    for (ProcId p = 0; p < program.numProcs(); ++p)
        id_order[p] = p;

    const ProgramLayout plain =
        materializeProgram(program, orders, MaterializeOptions{});
    const ProgramLayout ordered = materializeProgramOrdered(
        program, orders, id_order, MaterializeOptions{});
    ASSERT_EQ(plain.totalInstrs, ordered.totalInstrs);
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        EXPECT_EQ(plain.procs[p].base, ordered.procs[p].base);
        EXPECT_EQ(plain.procs[p].order, ordered.procs[p].order);
    }
}
