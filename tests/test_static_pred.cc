/**
 * @file
 * Tests for the static prediction helpers: BT/FNT direction rule and the
 * profile-derived LIKELY bits under original and transformed layouts.
 */

#include <gtest/gtest.h>

#include "bpred/static_pred.h"
#include "cfg/builder.h"
#include "layout/materialize.h"

using namespace balign;

TEST(StaticPred, FallthroughNeverTaken)
{
    EXPECT_FALSE(fallthroughPredictsTaken());
}

TEST(StaticPred, BtFntDirectionRule)
{
    EXPECT_TRUE(btFntPredictsTaken(100, 50));   // backward
    EXPECT_TRUE(btFntPredictsTaken(100, 100));  // self loop counts backward
    EXPECT_FALSE(btFntPredictsTaken(100, 101)); // forward
}

namespace {

/// head cond: taken->hot (w 90), fall->cold (w 10).
Program
skewedProgram()
{
    Program program("skew");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId cold = b.block(3, Terminator::Return);
    const BlockId hot = b.block(3, Terminator::Return);
    b.fallThrough(head, cold, 10);
    b.taken(head, hot, 90);
    return program;
}

}  // namespace

TEST(LikelyBits, OriginalLayoutMajorityTaken)
{
    const Program program = skewedProgram();
    const ProgramLayout layout = originalLayout(program);
    const LikelyBits bits(program, layout);
    // The CFG taken edge carries 90 of 100 executions and the original
    // layout keeps the sense: likely = taken.
    EXPECT_TRUE(bits.taken(0, 0));
}

TEST(LikelyBits, InvertedLayoutFlipsBit)
{
    const Program program = skewedProgram();
    // Put the hot block right after head: sense inverts, the realized
    // branch (to the cold block) now executes only 10 of 100 times.
    const ProgramLayout layout = materializeProgram(
        program, {{0, 2, 1}}, MaterializeOptions{});
    ASSERT_EQ(layout.procs[0].blocks[0].cond,
              CondRealization::TakenAdjacent);
    const LikelyBits bits(program, layout);
    EXPECT_FALSE(bits.taken(0, 0));
}

TEST(LikelyBits, MultipleProceduresIndexedIndependently)
{
    Program program("multi");
    for (int i = 0; i < 2; ++i) {
        Procedure &proc =
            program.proc(program.addProc("p" + std::to_string(i)));
        CfgBuilder b(proc);
        const BlockId head = b.block(2, Terminator::CondBranch);
        const BlockId cold = b.block(1, Terminator::Return);
        const BlockId hot = b.block(1, Terminator::Return);
        // Procedure 0: taken-majority; procedure 1: fall-majority.
        b.fallThrough(head, cold, i == 0 ? 10 : 90);
        b.taken(head, hot, i == 0 ? 90 : 10);
    }
    const ProgramLayout layout = originalLayout(program);
    const LikelyBits bits(program, layout);
    EXPECT_TRUE(bits.taken(0, 0));
    EXPECT_FALSE(bits.taken(1, 0));
}
