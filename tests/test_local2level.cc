/**
 * @file
 * Tests for the Yeh–Patt local two-level predictor (PAg extension).
 */

#include <gtest/gtest.h>

#include "bpred/cost_model.h"
#include "bpred/local2level.h"
#include "bpred/pht.h"

using namespace balign;

TEST(LocalTwoLevel, Geometry)
{
    LocalTwoLevel pred(1024, 10);
    EXPECT_EQ(pred.numHistoryEntries(), 1024u);
    EXPECT_EQ(pred.numPatternEntries(), 1024u);
}

TEST(LocalTwoLevelDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(LocalTwoLevel(1000, 10), "power of two");
    EXPECT_DEATH(LocalTwoLevel(1024, 0), "history");
}

TEST(LocalTwoLevel, LearnsFixedTripCountExactly)
{
    // A loop with a fixed trip count of 5 (TTTTN repeating) is predicted
    // perfectly once the local history distinguishes the positions —
    // the behaviour per-site 2-bit counters cannot achieve.
    LocalTwoLevel local(256, 8);
    PhtDirect pht(256);
    const Addr site = 77;

    auto outcome = [](int i) { return (i % 5) != 4; };
    for (int i = 0; i < 200; ++i) {  // warmup
        local.update(site, outcome(i));
        pht.update(site, outcome(i));
    }
    int local_miss = 0, pht_miss = 0;
    for (int i = 200; i < 400; ++i) {
        local_miss += local.predict(site) != outcome(i);
        pht_miss += pht.predict(site) != outcome(i);
        local.update(site, outcome(i));
        pht.update(site, outcome(i));
    }
    EXPECT_EQ(local_miss, 0);
    EXPECT_GE(pht_miss, 200 / 5);  // at least the loop exits
}

TEST(LocalTwoLevel, SeparateSitesSeparateHistories)
{
    LocalTwoLevel local(256, 6);
    // Site A alternates; site B always taken. Interleaved updates must not
    // corrupt each other's histories.
    bool a = false;
    for (int i = 0; i < 200; ++i) {
        local.update(10, a);
        local.update(11, true);
        a = !a;
    }
    int a_miss = 0, b_miss = 0;
    for (int i = 0; i < 100; ++i) {
        a_miss += local.predict(10) != a;
        b_miss += local.predict(11) != true;
        local.update(10, a);
        local.update(11, true);
        a = !a;
    }
    EXPECT_EQ(a_miss, 0);
    EXPECT_EQ(b_miss, 0);
}

TEST(LocalTwoLevel, HistoryTableAliasing)
{
    // Sites 3 and 259 collide in a 256-entry history table: they share a
    // history register, degrading an alternating pattern.
    LocalTwoLevel local(256, 8);
    bool a = false;
    for (int i = 0; i < 400; ++i) {
        local.update(3, a);
        local.update(259, !a);  // opposite phase through the same register
        a = !a;
    }
    int miss = 0;
    for (int i = 0; i < 100; ++i) {
        miss += local.predict(3) != a;
        local.update(3, a);
        local.update(259, !a);
        a = !a;
    }
    // With the shared register the interleaved stream is still periodic,
    // so it may or may not predict well; the point is it must differ from
    // the isolated case. Just sanity-bound it.
    EXPECT_GE(miss, 0);
    EXPECT_LE(miss, 100);
}

TEST(LocalTwoLevel, ArchPlumbing)
{
    EXPECT_STREQ(archName(Arch::PhtLocal), "PHT-local");
    EXPECT_TRUE(isPht(Arch::PhtLocal));
    EXPECT_FALSE(isBtb(Arch::PhtLocal));
    EXPECT_FALSE(isStatic(Arch::PhtLocal));
}
