/**
 * @file
 * Cross-module invariant tests: properties that must hold for ANY layout
 * of ANY program, checked over generated workloads.
 *
 *  - Alignment preserves the executed work: for the same trace, the
 *    instruction counts of two layouts differ exactly by the inserted
 *    jumps executed minus the deleted jumps avoided.
 *  - The evaluator's BEP equals misfetches + 4 * mispredicts.
 *  - Static-architecture results are independent of evaluation order and
 *    of fan-out (MultiSink) versus solo runs.
 *  - The materializer's static size equals original size + inserted -
 *    removed jumps.
 *  - Block addresses are disjoint, contiguous and cover the whole image.
 */

#include <gtest/gtest.h>

#include "bpred/evaluator.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

struct Prepared
{
    Program program;
    WalkOptions walk;
};

Prepared
prepareSuiteProgram(const char *name, std::uint64_t instrs)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = instrs;
    Prepared prepared{generateProgram(spec), WalkOptions{}};
    prepared.walk.seed = traceSeed(spec);
    prepared.walk.instrBudget = instrs;
    // Profile in place.
    Profiler profiler(prepared.program);
    walk(prepared.program, prepared.walk, profiler);
    return prepared;
}

}  // namespace

class LayoutInvariantSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LayoutInvariantSweep, StaticSizeAccounting)
{
    const Prepared prepared = prepareSuiteProgram(GetParam(), 50'000);
    const CostModel model(Arch::Fallthrough);
    for (AlignerKind kind :
         {AlignerKind::Greedy, AlignerKind::Cost, AlignerKind::Try15}) {
        const ProgramLayout layout =
            alignProgram(prepared.program, kind, &model);
        std::uint64_t inserted = 0, removed = 0;
        for (const auto &pl : layout.procs) {
            inserted += pl.jumpsInserted;
            removed += pl.jumpsRemoved;
        }
        EXPECT_EQ(layout.totalInstrs,
                  prepared.program.totalInstrs() + inserted - removed)
            << alignerKindName(kind);
    }
}

TEST_P(LayoutInvariantSweep, AddressesAreContiguousAndDisjoint)
{
    const Prepared prepared = prepareSuiteProgram(GetParam(), 50'000);
    const CostModel model(Arch::BtFnt);
    const ProgramLayout layout =
        alignProgram(prepared.program, AlignerKind::Try15, &model);

    Addr expected = 0;
    for (ProcId p = 0; p < prepared.program.numProcs(); ++p) {
        const ProcLayout &pl = layout.procs[p];
        EXPECT_EQ(pl.base, expected);
        Addr cursor = pl.base;
        for (BlockId id : pl.order) {
            EXPECT_EQ(pl.blocks[id].addr, cursor);
            cursor += pl.blocks[id].finalInstrs;
        }
        EXPECT_EQ(cursor, pl.base + pl.totalInstrs);
        expected = cursor;
    }
    EXPECT_EQ(expected, layout.totalInstrs);
}

TEST_P(LayoutInvariantSweep, ExecutedInstructionAccounting)
{
    // instrs(layout) - instrs(original) == jumps executed - jumps removed
    // along the trace; verify via the uncondExec deltas instead of
    // re-deriving the path: original uncondExec counts real jumps; any
    // layout's executed instructions must equal original instrs
    // - (removed jump executions) + (inserted jump executions), i.e.
    // instrs_new - instrs_orig == uncondExec_new - uncondExec_orig
    // whenever conditional/indirect/call/return counts are identical.
    const Prepared prepared = prepareSuiteProgram(GetParam(), 80'000);
    const CostModel model(Arch::Fallthrough);

    const ProgramLayout orig = originalLayout(prepared.program);
    const ProgramLayout aligned =
        alignProgram(prepared.program, AlignerKind::Try15, &model);

    ArchEvaluator orig_eval(prepared.program, orig,
                            EvalParams::forArch(Arch::Fallthrough));
    ArchEvaluator aligned_eval(prepared.program, aligned,
                               EvalParams::forArch(Arch::Fallthrough));
    MultiSink fanout;
    fanout.add(&orig_eval.sink());
    fanout.add(&aligned_eval.sink());
    walk(prepared.program, prepared.walk, fanout);

    const EvalResult &a = orig_eval.result();
    const EvalResult &b = aligned_eval.result();
    // The same CFG path executes under both layouts.
    EXPECT_EQ(a.condExec, b.condExec);
    EXPECT_EQ(a.callExec, b.callExec);
    EXPECT_EQ(a.returnExec, b.returnExec);
    EXPECT_EQ(a.indirectExec, b.indirectExec);
    EXPECT_EQ(static_cast<std::int64_t>(b.instrs) -
                  static_cast<std::int64_t>(a.instrs),
              static_cast<std::int64_t>(b.uncondExec) -
                  static_cast<std::int64_t>(a.uncondExec));
}

TEST_P(LayoutInvariantSweep, BepDecomposition)
{
    const Prepared prepared = prepareSuiteProgram(GetParam(), 50'000);
    const ProgramLayout orig = originalLayout(prepared.program);
    for (Arch arch : {Arch::Fallthrough, Arch::Likely, Arch::PhtDirect,
                      Arch::BtbSmall}) {
        ArchEvaluator eval(prepared.program, orig,
                           EvalParams::forArch(arch));
        walk(prepared.program, prepared.walk, eval.sink());
        const EvalResult &r = eval.result();
        EXPECT_DOUBLE_EQ(r.bep(),
                         static_cast<double>(r.misfetches) * 1.0 +
                             static_cast<double>(r.mispredicts) * 4.0)
            << archName(arch);
    }
}

TEST_P(LayoutInvariantSweep, FanoutMatchesSoloEvaluation)
{
    const Prepared prepared = prepareSuiteProgram(GetParam(), 40'000);
    const ProgramLayout orig = originalLayout(prepared.program);

    ArchEvaluator solo(prepared.program, orig,
                       EvalParams::forArch(Arch::PhtDirect));
    walk(prepared.program, prepared.walk, solo.sink());

    ArchEvaluator first(prepared.program, orig,
                        EvalParams::forArch(Arch::BtbLarge));
    ArchEvaluator second(prepared.program, orig,
                         EvalParams::forArch(Arch::PhtDirect));
    MultiSink fanout;
    fanout.add(&first.sink());
    fanout.add(&second.sink());
    walk(prepared.program, prepared.walk, fanout);

    EXPECT_EQ(solo.result().instrs, second.result().instrs);
    EXPECT_EQ(solo.result().misfetches, second.result().misfetches);
    EXPECT_EQ(solo.result().mispredicts, second.result().mispredicts);
    EXPECT_EQ(solo.result().condTaken, second.result().condTaken);
}

TEST_P(LayoutInvariantSweep, AlignedLayoutsAreValidPermutations)
{
    const Prepared prepared = prepareSuiteProgram(GetParam(), 30'000);
    for (Arch arch : {Arch::Fallthrough, Arch::BtFnt, Arch::BtbLarge}) {
        const CostModel model(arch);
        for (AlignerKind kind :
             {AlignerKind::Greedy, AlignerKind::Cost, AlignerKind::Try15}) {
            const ProgramLayout layout =
                alignProgram(prepared.program, kind, &model);
            for (ProcId p = 0; p < prepared.program.numProcs(); ++p) {
                const Procedure &proc = prepared.program.proc(p);
                const ProcLayout &pl = layout.procs[p];
                ASSERT_EQ(pl.order.size(), proc.numBlocks());
                EXPECT_EQ(pl.order.front(), proc.entry());
                std::vector<bool> seen(proc.numBlocks(), false);
                for (BlockId id : pl.order) {
                    ASSERT_LT(id, proc.numBlocks());
                    EXPECT_FALSE(seen[id]);
                    seen[id] = true;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Programs, LayoutInvariantSweep,
                         ::testing::Values("compress", "li", "doduc",
                                           "idl", "alvinn"));
