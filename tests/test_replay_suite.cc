/**
 * @file
 * The `ctest -L replay` group: batched-vs-per-cell engine equivalence
 * over the full 24-program benchmark suite and the fuzz corpus.
 *
 * Every suite program is prepared with a reduced trace budget and run
 * through runConfigs twice — once per engine — over the full
 * configuration matrix (8 architectures x 5 aligners under table-cost
 * plus the ExtTSP-priced guided aligners). Every EvalResult counter of
 * every cell must be byte-identical; so must origInstrs and the derived
 * relative CPI. Corpus repros (including shrunk fuzzer findings) get the
 * same treatment, so any program shape that ever broke the pipeline also
 * pins the batched engine. New engine divergences found by the fuzzer
 * land here automatically as DivergenceKind::Batch repro files.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/differ.h"
#include "check/fuzz.h"
#include "sim/cpi.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kSuiteBudget = 100'000;

std::vector<std::uint64_t>
counters(const EvalResult &r)
{
    return {r.instrs,     r.misfetches, r.mispredicts,
            r.condExec,   r.condTaken,  r.condMispredicts,
            r.uncondExec, r.callExec,   r.returnExec,
            r.returnMispredicts, r.indirectExec,
            r.btbHits,    r.btbLookups};
}

std::vector<ExperimentConfig>
fullConfigMatrix()
{
    std::vector<ExperimentConfig> configs;
    for (const Arch arch : allArchs()) {
        for (const AlignerKind kind : allAlignerKindsExtended())
            configs.push_back({arch, kind});
    }
    for (const Arch arch : allArchs()) {
        configs.push_back({arch, AlignerKind::Cost, ObjectiveKind::ExtTsp});
        configs.push_back({arch, AlignerKind::Try15, ObjectiveKind::ExtTsp});
    }
    return configs;
}

void
expectEnginesAgree(const PreparedProgram &prepared, const std::string &label)
{
    const std::vector<ExperimentConfig> configs = fullConfigMatrix();
    RunContext batched;
    batched.engine = ReplayEngine::Batched;
    RunContext per_cell;
    per_cell.engine = ReplayEngine::PerCell;
    const ExperimentRun fast = runConfigs(prepared, configs, {}, batched);
    const ExperimentRun slow = runConfigs(prepared, configs, {}, per_cell);

    ASSERT_EQ(fast.cells.size(), slow.cells.size()) << label;
    EXPECT_EQ(fast.origInstrs, slow.origInstrs) << label;
    for (std::size_t i = 0; i < fast.cells.size(); ++i) {
        EXPECT_EQ(counters(fast.cells[i].eval),
                  counters(slow.cells[i].eval))
            << label << ": " << archName(configs[i].arch) << "/"
            << alignerKindName(configs[i].kind) << "/"
            << objectiveKindName(configs[i].objective);
        EXPECT_EQ(fast.cells[i].relCpi, slow.cells[i].relCpi) << label;
    }
}

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(BALIGN_CORPUS_DIR)) {
        if (entry.path().extension() == ".balign")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

class ReplaySuite : public testing::TestWithParam<std::string>
{
};

}  // namespace

TEST_P(ReplaySuite, EnginesByteIdentical)
{
    ProgramSpec spec = suiteSpec(GetParam());
    spec.traceInstrs = kSuiteBudget;
    expectEnginesAgree(prepareProgram(spec), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Suite24, ReplaySuite, [] {
    std::vector<std::string> names;
    for (const ProgramSpec &spec : benchmarkSuite())
        names.push_back(spec.name);
    return testing::ValuesIn(names);
}(), [](const testing::TestParamInfo<std::string> &param) {
    std::string name = param.param;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
});

TEST(ReplayCorpus, EnginesByteIdenticalOnEveryRepro)
{
    const std::vector<std::string> files = corpusFiles();
    ASSERT_GE(files.size(), 3u);
    for (const std::string &path : files) {
        const std::optional<Repro> repro = loadRepro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        const PreparedProgram prepared =
            prepareProgram(repro->program, repro->walk);
        expectEnginesAgree(
            prepared, std::filesystem::path(path).stem().string());
    }
}
