/**
 * @file
 * Integration tests for the experiment driver plus parameterized
 * paper-shape property tests across the benchmark suite: alignment must
 * reduce (or at worst match) branch cost on every program and static
 * architecture, Try15 must not lose to Greedy under its own cost model,
 * and the qualitative claims of paper §6 must hold on the suite averages.
 */

#include <gtest/gtest.h>

#include "sim/cpi.h"
#include "sim/exec_time.h"
#include "support/log.h"
#include "workload/suite.h"

using namespace balign;

namespace {

ProgramSpec
shortSpec(const std::string &name, std::uint64_t instrs = 150'000)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = instrs;
    return spec;
}

}  // namespace

TEST(Experiments, RunProducesAllCells)
{
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Try15},
        {Arch::BtbLarge, AlignerKind::Greedy},
    };
    const ExperimentRun run = runExperiment(shortSpec("compress"), configs);
    EXPECT_EQ(run.cells.size(), 3u);
    EXPECT_EQ(run.name, "compress");
    EXPECT_EQ(run.group, "SPECint92");
    EXPECT_GT(run.origInstrs, 0u);
    // Original relative CPI is at least 1 (penalties are non-negative).
    EXPECT_GE(run.cell(Arch::Fallthrough, AlignerKind::Original).relCpi,
              1.0);
}

TEST(Experiments, OriginalInstrsMatchProfiledInstrs)
{
    const std::vector<ExperimentConfig> configs = {
        {Arch::BtFnt, AlignerKind::Original},
    };
    const ExperimentRun run = runExperiment(shortSpec("li"), configs);
    // The identity layout executes exactly the traced instructions.
    EXPECT_EQ(run.origInstrs, run.stats.instrsTraced);
    EXPECT_EQ(run.cell(Arch::BtFnt, AlignerKind::Original).eval.instrs,
              run.stats.instrsTraced);
}

TEST(Experiments, DeterministicAcrossRuns)
{
    const std::vector<ExperimentConfig> configs = {
        {Arch::PhtDirect, AlignerKind::Try15},
    };
    const ExperimentRun a = runExperiment(shortSpec("sc"), configs);
    const ExperimentRun b = runExperiment(shortSpec("sc"), configs);
    EXPECT_EQ(a.cells[0].eval.instrs, b.cells[0].eval.instrs);
    EXPECT_EQ(a.cells[0].eval.misfetches, b.cells[0].eval.misfetches);
    EXPECT_EQ(a.cells[0].eval.mispredicts, b.cells[0].eval.mispredicts);
}

TEST(ExperimentsDeath, MissingCellIsFatal)
{
    const std::vector<ExperimentConfig> configs = {
        {Arch::BtFnt, AlignerKind::Original},
    };
    const ExperimentRun run = runExperiment(shortSpec("ora"), configs);
    EXPECT_DEATH(run.cell(Arch::Likely, AlignerKind::Try15), "no cell");
}

// ---- paper-shape properties, parameterized over the suite -------------------

class SuiteShapeSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    static constexpr double kTolerance = 1.005;  // 0.5% simulation noise
};

TEST_P(SuiteShapeSweep, AlignmentImprovesEveryStaticArchitecture)
{
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Greedy},
        {Arch::Fallthrough, AlignerKind::Try15},
        {Arch::BtFnt, AlignerKind::Original},
        {Arch::BtFnt, AlignerKind::Try15},
        {Arch::Likely, AlignerKind::Original},
        {Arch::Likely, AlignerKind::Try15},
    };
    const ExperimentRun run =
        runExperiment(shortSpec(GetParam()), configs);
    for (Arch arch : {Arch::Fallthrough, Arch::BtFnt, Arch::Likely}) {
        const double orig = run.cell(arch, AlignerKind::Original).relCpi;
        const double aligned = run.cell(arch, AlignerKind::Try15).relCpi;
        EXPECT_LE(aligned, orig * kTolerance)
            << GetParam() << " on " << archName(arch);
    }
    // Try15 should not lose to Greedy under its own cost model
    // (FALLTHROUGH is where the gap is widest).
    EXPECT_LE(run.cell(Arch::Fallthrough, AlignerKind::Try15).relCpi,
              run.cell(Arch::Fallthrough, AlignerKind::Greedy).relCpi *
                  kTolerance)
        << GetParam();
}

TEST_P(SuiteShapeSweep, Try15RaisesFallThroughPercentage)
{
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Try15},
    };
    const ExperimentRun run =
        runExperiment(shortSpec(GetParam()), configs);
    const double before =
        run.cell(Arch::Fallthrough, AlignerKind::Original)
            .eval.pctFallThrough();
    const double after =
        run.cell(Arch::Fallthrough, AlignerKind::Try15)
            .eval.pctFallThrough();
    EXPECT_GE(after, before - 0.5) << GetParam();
    // The paper reports up to 99% fall-through under FALLTHROUGH; demand a
    // strong conversion everywhere.
    EXPECT_GE(after, 70.0) << GetParam();
}

TEST_P(SuiteShapeSweep, DynamicArchitecturesSeeSmallerGains)
{
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Try15},
        {Arch::BtbLarge, AlignerKind::Original},
        {Arch::BtbLarge, AlignerKind::Try15},
    };
    const ExperimentRun run =
        runExperiment(shortSpec(GetParam()), configs);
    const double ft_gain =
        run.cell(Arch::Fallthrough, AlignerKind::Original).relCpi -
        run.cell(Arch::Fallthrough, AlignerKind::Try15).relCpi;
    const double btb_gain =
        run.cell(Arch::BtbLarge, AlignerKind::Original).relCpi -
        run.cell(Arch::BtbLarge, AlignerKind::Try15).relCpi;
    // The BTB architecture starts far more efficient, so alignment buys
    // less there (paper §6).
    EXPECT_LE(btb_gain, ft_gain + 0.01) << GetParam();
    EXPECT_GE(btb_gain, -0.01) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Programs, SuiteShapeSweep,
                         ::testing::Values("alvinn", "swm256", "doduc",
                                           "compress", "eqntott",
                                           "espresso", "li", "sc", "groff",
                                           "idl"));

// ---- averaged paper claims ---------------------------------------------------

TEST(PaperClaims, AlignmentNarrowsFallthroughVsBtFnt)
{
    // Paper §6: "the aligned FALLTHROUGH and BT/FNT architectures have
    // almost identical performance" — the gap must shrink markedly.
    double gap_before = 0.0, gap_after = 0.0;
    const char *programs[] = {"compress", "eqntott", "li", "sc"};
    for (const char *name : programs) {
        const std::vector<ExperimentConfig> configs = {
            {Arch::Fallthrough, AlignerKind::Original},
            {Arch::Fallthrough, AlignerKind::Try15},
            {Arch::BtFnt, AlignerKind::Original},
            {Arch::BtFnt, AlignerKind::Try15},
        };
        const ExperimentRun run = runExperiment(shortSpec(name), configs);
        gap_before +=
            run.cell(Arch::Fallthrough, AlignerKind::Original).relCpi -
            run.cell(Arch::BtFnt, AlignerKind::Original).relCpi;
        gap_after +=
            run.cell(Arch::Fallthrough, AlignerKind::Try15).relCpi -
            run.cell(Arch::BtFnt, AlignerKind::Try15).relCpi;
    }
    EXPECT_LT(gap_after, gap_before * 0.5);
}

TEST(PaperClaims, SmallBtbGainsMoreThanLargeBtb)
{
    // Paper §6: "The small BTB architecture can benefit more from branch
    // alignment than the larger BTB."
    double small_gain = 0.0, large_gain = 0.0;
    const char *programs[] = {"eqntott", "espresso", "li", "sc", "groff"};
    for (const char *name : programs) {
        const std::vector<ExperimentConfig> configs = {
            {Arch::BtbSmall, AlignerKind::Original},
            {Arch::BtbSmall, AlignerKind::Try15},
            {Arch::BtbLarge, AlignerKind::Original},
            {Arch::BtbLarge, AlignerKind::Try15},
        };
        const ExperimentRun run = runExperiment(shortSpec(name), configs);
        small_gain +=
            run.cell(Arch::BtbSmall, AlignerKind::Original).relCpi -
            run.cell(Arch::BtbSmall, AlignerKind::Try15).relCpi;
        large_gain +=
            run.cell(Arch::BtbLarge, AlignerKind::Original).relCpi -
            run.cell(Arch::BtbLarge, AlignerKind::Try15).relCpi;
    }
    EXPECT_GT(small_gain, large_gain);
}

TEST(PaperClaims, IntegerProgramsGainMoreThanFp)
{
    // Paper §6: SPECint92 and Other programs benefit more than SPECfp92.
    auto gain = [](const char *name) {
        const std::vector<ExperimentConfig> configs = {
            {Arch::Fallthrough, AlignerKind::Original},
            {Arch::Fallthrough, AlignerKind::Try15},
        };
        const ExperimentRun run = runExperiment(shortSpec(name), configs);
        return run.cell(Arch::Fallthrough, AlignerKind::Original).relCpi -
               run.cell(Arch::Fallthrough, AlignerKind::Try15).relCpi;
    };
    const double fp = gain("swm256") + gain("tomcatv") + gain("nasa7");
    const double integer = gain("eqntott") + gain("li") + gain("sc");
    EXPECT_GT(integer, fp);
}

// ---- Figure 4 driver -----------------------------------------------------------

TEST(ExecTime, FpProgramsSeeNoBenefitIntProgramsDo)
{
    ProgramSpec alvinn = shortSpec("alvinn", 300'000);
    ProgramSpec li = shortSpec("li", 300'000);
    const ExecTimeResult fp = runExecTime(alvinn);
    const ExecTimeResult integer = runExecTime(li);
    EXPECT_NEAR(fp.try15Relative, 1.0, 0.01);
    EXPECT_LT(integer.try15Relative, 0.99);
    EXPECT_GT(integer.try15Relative, 0.5);
    EXPECT_GT(fp.originalCycles, 0.0);
}

TEST(ExecTime, AlignedNeverMeaningfullySlower)
{
    for (const char *name : {"compress", "espresso", "sc"}) {
        const ExecTimeResult r = runExecTime(shortSpec(name, 200'000));
        EXPECT_LE(r.try15Relative, 1.005) << name;
        EXPECT_LE(r.greedyRelative, 1.01) << name;
    }
}
