/**
 * @file
 * Unit and property tests for the deterministic PRNG (support/rng.h).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/rng.h"

using namespace balign;

TEST(SplitMix64, DeterministicForSeed)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    // Overwhelmingly unlikely to collide on the first draw.
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(13);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                (1ull << 40) + 17}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, BoundedCoversAllResidues)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, BoolEdgeProbabilities)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
        EXPECT_FALSE(rng.nextBool(-0.5));
        EXPECT_TRUE(rng.nextBool(1.5));
    }
}

TEST(Rng, BoolFrequencyTracksProbability)
{
    Rng rng(23);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(29);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t x = rng.nextRange(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(Rng, RangeSingleton)
{
    Rng rng(31);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.nextRange(5, 5), 5);
}

TEST(Rng, GeometricEdgeCases)
{
    Rng rng(37);
    EXPECT_EQ(rng.nextGeometric(1.0, 100), 0u);
    EXPECT_EQ(rng.nextGeometric(0.0, 100), 100u);
    for (int i = 0; i < 500; ++i)
        EXPECT_LE(rng.nextGeometric(0.01, 10), 10u);
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    Rng rng(41);
    const double p = 0.25;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p, 1000));
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(43);
    const double weights[] = {1.0, 0.0, 3.0};
    std::map<std::size_t, int> counts;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextWeighted(weights, 3)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedAllZeroReturnsLast)
{
    Rng rng(47);
    const double weights[] = {0.0, 0.0, 0.0};
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.nextWeighted(weights, 3), 2u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(53);
    Rng b = a.split();
    // The two streams should not track each other.
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 3);
}

/// Parameterized sweep: Lemire rejection stays unbiased-ish for awkward
/// bounds (coarse chi-square-style check).
class RngBoundedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundedSweep, RoughlyUniform)
{
    const std::uint64_t bound = GetParam();
    Rng rng(61 + bound);
    std::vector<int> counts(bound, 0);
    const int per_bucket = 2000;
    const int n = static_cast<int>(bound) * per_bucket;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(bound)];
    for (std::uint64_t v = 0; v < bound; ++v) {
        EXPECT_NEAR(static_cast<double>(counts[v]), per_bucket,
                    per_bucket * 0.15)
            << "bucket " << v << " of bound " << bound;
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedSweep,
                         ::testing::Values(2, 3, 5, 7, 12, 33));
