/**
 * @file
 * Tests for the layout materializer: identity layouts, sense inversion,
 * jump insertion/removal, address assignment, the cost-model-driven
 * "neither" realization, and the outcome-mapping helpers.
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "layout/materialize.h"
#include "workload/paper_figures.h"

using namespace balign;

namespace {

/// entry(2) -> loop(4, cond self/exit) -> tail(2, uncond) -> ret(1),
/// with a pad block between tail and its target so the original layout
/// contains no redundant jumps.
Program
smallProgram()
{
    Program program("small");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId loop = b.block(4, Terminator::CondBranch);
    const BlockId tail = b.block(2, Terminator::UncondBranch);
    const BlockId pad = b.block(1, Terminator::Return);
    const BlockId ret = b.block(1, Terminator::Return);
    (void)pad;
    b.fallThrough(entry, loop, 100);
    b.taken(loop, loop, 900);
    b.fallThrough(loop, tail, 100);
    b.taken(tail, ret, 100);
    return program;
}

}  // namespace

// ---- outcome mapping helpers -----------------------------------------------

TEST(CondOutcome, ExhaustiveMapping)
{
    // FallAdjacent: taken edge -> branch taken; fall edge -> falls.
    auto out = condOutcome(CondRealization::FallAdjacent, EdgeKind::Taken);
    EXPECT_TRUE(out.branchTaken);
    EXPECT_FALSE(out.jumpExecuted);
    out = condOutcome(CondRealization::FallAdjacent, EdgeKind::FallThrough);
    EXPECT_FALSE(out.branchTaken);
    EXPECT_FALSE(out.jumpExecuted);

    // TakenAdjacent (inverted).
    out = condOutcome(CondRealization::TakenAdjacent, EdgeKind::Taken);
    EXPECT_FALSE(out.branchTaken);
    out = condOutcome(CondRealization::TakenAdjacent, EdgeKind::FallThrough);
    EXPECT_TRUE(out.branchTaken);

    // NeitherJumpToFall: fall edge needs the jump.
    out = condOutcome(CondRealization::NeitherJumpToFall, EdgeKind::Taken);
    EXPECT_TRUE(out.branchTaken);
    EXPECT_FALSE(out.jumpExecuted);
    out = condOutcome(CondRealization::NeitherJumpToFall,
                      EdgeKind::FallThrough);
    EXPECT_FALSE(out.branchTaken);
    EXPECT_TRUE(out.jumpExecuted);

    // NeitherJumpToTaken: taken edge goes NT + jump.
    out = condOutcome(CondRealization::NeitherJumpToTaken, EdgeKind::Taken);
    EXPECT_FALSE(out.branchTaken);
    EXPECT_TRUE(out.jumpExecuted);
    out = condOutcome(CondRealization::NeitherJumpToTaken,
                      EdgeKind::FallThrough);
    EXPECT_TRUE(out.branchTaken);
    EXPECT_FALSE(out.jumpExecuted);
}

TEST(CondOutcome, BranchTargetKind)
{
    EXPECT_EQ(branchTargetKind(CondRealization::FallAdjacent),
              EdgeKind::Taken);
    EXPECT_EQ(branchTargetKind(CondRealization::NeitherJumpToFall),
              EdgeKind::Taken);
    EXPECT_EQ(branchTargetKind(CondRealization::TakenAdjacent),
              EdgeKind::FallThrough);
    EXPECT_EQ(branchTargetKind(CondRealization::NeitherJumpToTaken),
              EdgeKind::FallThrough);
}

// ---- identity layout ---------------------------------------------------------

TEST(Materialize, OriginalLayoutIsExactIdentity)
{
    const Program program = smallProgram();
    const ProgramLayout layout = originalLayout(program);
    const ProcLayout &pl = layout.procs[0];

    EXPECT_EQ(layout.totalInstrs, program.totalInstrs());
    EXPECT_EQ(pl.jumpsInserted, 0u);
    EXPECT_EQ(pl.jumpsRemoved, 0u);
    EXPECT_EQ(pl.sensesInverted, 0u);
    EXPECT_EQ(pl.order, (std::vector<BlockId>{0, 1, 2, 3, 4}));

    // Addresses are cumulative instruction counts.
    EXPECT_EQ(pl.blocks[0].addr, 0u);
    EXPECT_EQ(pl.blocks[1].addr, 2u);
    EXPECT_EQ(pl.blocks[2].addr, 6u);
    EXPECT_EQ(pl.blocks[3].addr, 8u);
    EXPECT_EQ(pl.blocks[4].addr, 9u);

    // Branch instruction addresses sit in the blocks' final slots.
    EXPECT_EQ(pl.blocks[1].branchAddr, 5u);
    EXPECT_EQ(pl.blocks[2].branchAddr, 7u);
    EXPECT_EQ(pl.blocks[1].cond, CondRealization::FallAdjacent);
}

TEST(Materialize, ProgramLevelBasesAreContiguous)
{
    Program program("two");
    for (int i = 0; i < 2; ++i) {
        Procedure &proc =
            program.proc(program.addProc("p" + std::to_string(i)));
        CfgBuilder b(proc);
        b.block(5, Terminator::Return);
    }
    const ProgramLayout layout = originalLayout(program);
    EXPECT_EQ(layout.procs[0].base, 0u);
    EXPECT_EQ(layout.procs[1].base, 5u);
    EXPECT_EQ(layout.procEntryAddr(1), 5u);
    EXPECT_EQ(layout.totalInstrs, 10u);
}

// ---- transformations ---------------------------------------------------------

TEST(Materialize, InvertsSenseWhenTakenTargetAdjacent)
{
    const Program program = smallProgram();
    // Order: entry, loop, ret, tail — put ret right after loop? The loop's
    // taken edge is the self loop, so instead make the tail adjacent via
    // its taken target: order entry, loop, tail, ret stays normal. Use a
    // custom CFG: cond block whose taken target is placed next.
    Program custom("inv");
    Procedure &proc = custom.proc(custom.addProc("main"));
    CfgBuilder b(proc);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId cold = b.block(3, Terminator::Return);
    const BlockId hot = b.block(3, Terminator::Return);
    b.fallThrough(head, cold, 10);
    b.taken(head, hot, 90);

    const ProgramLayout layout = materializeProgram(
        custom, {{head, hot, cold}}, MaterializeOptions{});
    const ProcLayout &pl = layout.procs[0];
    EXPECT_EQ(pl.blocks[head].cond, CondRealization::TakenAdjacent);
    EXPECT_EQ(pl.sensesInverted, 1u);
    EXPECT_EQ(pl.jumpsInserted, 0u);
    EXPECT_EQ(layout.totalInstrs, custom.totalInstrs());
}

TEST(Materialize, InsertsJumpWhenNeitherAdjacent)
{
    Program custom("jump");
    Procedure &proc = custom.proc(custom.addProc("main"));
    CfgBuilder b(proc);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId a = b.block(3, Terminator::Return);
    const BlockId c = b.block(3, Terminator::Return);
    const BlockId pad = b.block(1, Terminator::Return);
    b.fallThrough(head, a, 10);
    b.taken(head, c, 90);

    // Order: head, pad, a, c — neither successor adjacent.
    const ProgramLayout layout = materializeProgram(
        custom, {{head, pad, a, c}}, MaterializeOptions{});
    const ProcLayout &pl = layout.procs[0];
    EXPECT_EQ(pl.blocks[head].cond, CondRealization::NeitherJumpToFall);
    EXPECT_EQ(pl.jumpsInserted, 1u);
    EXPECT_TRUE(pl.blocks[head].jumpInserted);
    EXPECT_EQ(pl.blocks[head].finalInstrs, 3u);
    EXPECT_EQ(pl.blocks[head].baseInstrs, 2u);
    EXPECT_EQ(pl.blocks[head].jumpAddr, 2u);
    EXPECT_EQ(layout.totalInstrs, custom.totalInstrs() + 1);
}

TEST(Materialize, CostModelPicksLoopTransformationOnFallthrough)
{
    // Self-loop block under the FALLTHROUGH cost model: even with the exit
    // adjacent, the materializer should choose NeitherJumpToTaken (branch
    // to the cold exit, jump back to the loop) — the paper's Figure 2
    // transformation.
    const Program program = smallProgram();
    const CostModel model(Arch::Fallthrough);
    MaterializeOptions options;
    options.costModel = &model;
    std::vector<BlockId> order{0, 1, 2, 3, 4};
    const ProgramLayout layout =
        materializeProgram(program, {order}, options);
    EXPECT_EQ(layout.procs[0].blocks[1].cond,
              CondRealization::NeitherJumpToTaken);
    EXPECT_TRUE(layout.procs[0].blocks[1].jumpInserted);
}

TEST(Materialize, CostModelKeepsBackwardTakenOnBtFnt)
{
    const Program program = smallProgram();
    const CostModel model(Arch::BtFnt);
    MaterializeOptions options;
    options.costModel = &model;
    std::vector<BlockId> order{0, 1, 2, 3, 4};
    const ProgramLayout layout =
        materializeProgram(program, {order}, options);
    // Backward taken loop branch is already ideal for BT/FNT.
    EXPECT_EQ(layout.procs[0].blocks[1].cond,
              CondRealization::FallAdjacent);
}

TEST(Materialize, RemovesUncondToAdjacentTarget)
{
    const Program program = smallProgram();
    // Reorder so ret(4) directly follows tail(2): the unconditional
    // branch becomes redundant and is deleted.
    const ProgramLayout layout = materializeProgram(
        program, {{0, 1, 2, 4, 3}}, MaterializeOptions{});
    EXPECT_TRUE(layout.procs[0].blocks[2].jumpRemoved);
    EXPECT_EQ(layout.procs[0].blocks[2].finalInstrs, 1u);
    EXPECT_EQ(layout.procs[0].jumpsRemoved, 1u);
    EXPECT_EQ(layout.totalInstrs, program.totalInstrs() - 1);
}

TEST(Materialize, FallThroughBlockGetsJumpWhenDisplaced)
{
    const Program program = smallProgram();
    // Move the loop away from entry: order entry, tail, ret, pad, loop.
    const ProgramLayout layout = materializeProgram(
        program, {{0, 2, 4, 3, 1}}, MaterializeOptions{});
    const ProcLayout &pl = layout.procs[0];
    EXPECT_TRUE(pl.blocks[0].jumpInserted);
    EXPECT_EQ(pl.blocks[0].finalInstrs, 3u);
}

// ---- error handling ------------------------------------------------------------

TEST(MaterializeDeath, RejectsNonPermutation)
{
    const Program program = smallProgram();
    EXPECT_DEATH(
        materializeProgram(program, {{0, 1, 2, 3, 3}},
                           MaterializeOptions{}),
        "appears twice");
    EXPECT_DEATH(
        materializeProgram(program, {{0, 1, 2}}, MaterializeOptions{}),
        "order has");
}

TEST(MaterializeDeath, RejectsNonEntryFirst)
{
    const Program program = smallProgram();
    EXPECT_DEATH(
        materializeProgram(program, {{1, 0, 2, 3, 4}},
                           MaterializeOptions{}),
        "entry block");
}

// ---- paper figure layouts ---------------------------------------------------

TEST(Materialize, Figure1OriginalMatchesPaperAdjacency)
{
    const Program program = figure1Espresso();
    const ProgramLayout layout = originalLayout(program);
    // No transformations in the original layout of a well-formed CFG.
    EXPECT_EQ(layout.procs[0].jumpsInserted, 0u);
    EXPECT_EQ(layout.procs[0].jumpsRemoved, 0u);
    EXPECT_EQ(layout.totalInstrs, program.totalInstrs());
}
