/**
 * @file
 * Dataflow-analysis tests: reverse postorder, dominators, and the
 * natural-loop forest on hand-computed golden CFGs, plus total-function
 * behaviour on the adversarial shapes the lint rules must survive —
 * irreducible regions, self-loops, unreachable blocks, non-zero entries,
 * and every degenerate fuzzer shape.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/analysis.h"
#include "cfg/builder.h"
#include "cfg/procedure.h"
#include "check/fuzz.h"

using namespace balign;

namespace {

/**
 * Procedure whose every block is an indirect jump (arbitrary fan-out), so
 * the edge list encodes exactly the adjacency the analyses should see —
 * no terminator-arity rules in the way. The analyses are total, so the
 * shape need not pass validation.
 */
Procedure
shapeProc(std::uint32_t num_blocks,
          const std::vector<std::pair<BlockId, BlockId>> &edges,
          BlockId entry = 0)
{
    Procedure proc(0, "shape");
    for (std::uint32_t i = 0; i < num_blocks; ++i)
        proc.addBlock(2, Terminator::IndirectJump);
    for (const auto &[src, dst] : edges)
        proc.addEdge(src, dst, EdgeKind::Other);
    proc.setEntry(entry);
    return proc;
}

/// The loop (if any) whose header is @p header, or nullptr.
const NaturalLoop *
loopWithHeader(const LoopForest &forest, BlockId header)
{
    for (const NaturalLoop &loop : forest.loops) {
        if (loop.header == header)
            return &loop;
    }
    return nullptr;
}

}  // namespace

TEST(Rpo, EntryFirstAndEdgesForwardOnAcyclicCfg)
{
    // Diamond: 0 -> {1,2} -> 3 -> 4.
    const Procedure proc = shapeProc(
        5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
    const CfgView view(proc);
    const RpoOrder rpo = reversePostorder(view);

    ASSERT_EQ(rpo.order.size(), 5u);
    EXPECT_EQ(rpo.order.front(), 0u);
    for (const auto &[src, dst] : std::vector<std::pair<BlockId, BlockId>>{
             {0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}) {
        EXPECT_LT(rpo.indexOf[src], rpo.indexOf[dst])
            << src << " -> " << dst << " must be a forward edge";
    }
}

TEST(Rpo, UnreachableBlocksAreExcluded)
{
    // Blocks 3 and 4 form an island the entry never reaches.
    const Procedure proc = shapeProc(5, {{0, 1}, {1, 2}, {3, 4}, {4, 3}});
    const CfgView view(proc);
    const RpoOrder rpo = reversePostorder(view);

    EXPECT_EQ(rpo.order.size(), 3u);
    EXPECT_TRUE(rpo.reachable(0));
    EXPECT_TRUE(rpo.reachable(2));
    EXPECT_FALSE(rpo.reachable(3));
    EXPECT_FALSE(rpo.reachable(4));
    EXPECT_EQ(rpo.indexOf[3], kNoRpoIndex);

    const std::vector<bool> reach = reachableBlocks(view);
    EXPECT_TRUE(reach[2]);
    EXPECT_FALSE(reach[4]);
}

TEST(CfgViewTest, DeduplicatesParallelEdgesAndSkipsOutOfRange)
{
    Procedure proc = shapeProc(2, {{0, 1}, {0, 1}, {0, 1}});
    // Retarget one of the parallel edges past the block array (malformed
    // input; the view must drop it rather than index out of bounds).
    proc.edge(2).dst = 7;
    const CfgView view(proc);
    ASSERT_EQ(view.succs(0).size(), 1u);
    EXPECT_EQ(view.succs(0).front(), 1u);
    EXPECT_EQ(view.preds(1).size(), 1u);
}

TEST(Dominators, MatchHandComputedGolden)
{
    // The running example from Cooper-Harvey-Kennedy (renumbered so the
    // entry is 0): 0 branches to 1 and 2; both reach the join 3; 2 also
    // reaches 4; and 3 -> 5 -> 4 -> 3 closes a cycle around the join.
    const Procedure proc = shapeProc(6, {{0, 1},
                                         {0, 2},
                                         {1, 3},
                                         {2, 3},
                                         {2, 4},
                                         {4, 3},
                                         {3, 5},
                                         {5, 4}});
    const DominatorTree doms = computeDominators(CfgView(proc));

    EXPECT_EQ(doms.idom[0], 0u);
    EXPECT_EQ(doms.idom[1], 0u);
    EXPECT_EQ(doms.idom[2], 0u);
    EXPECT_EQ(doms.idom[3], 0u);  // joined via 1, 2 and 4
    EXPECT_EQ(doms.idom[4], 0u);  // reached via 2 and via 5
    EXPECT_EQ(doms.idom[5], 3u);

    EXPECT_TRUE(doms.dominates(0, 5));
    EXPECT_TRUE(doms.dominates(3, 5));
    EXPECT_TRUE(doms.dominates(5, 5));  // reflexive
    EXPECT_FALSE(doms.dominates(1, 3));
    EXPECT_FALSE(doms.dominates(2, 4));  // 5 -> 4 bypasses 2
}

TEST(Dominators, LinearChainAndUnreachableBlocks)
{
    const Procedure proc = shapeProc(4, {{0, 1}, {1, 2}});
    const DominatorTree doms = computeDominators(CfgView(proc));
    EXPECT_EQ(doms.idom[1], 0u);
    EXPECT_EQ(doms.idom[2], 1u);
    EXPECT_EQ(doms.idom[3], kNoBlock);  // unreachable
    EXPECT_FALSE(doms.dominates(0, 3));
    EXPECT_FALSE(doms.dominates(3, 3));
}

TEST(Loops, SimpleLoopHasHeaderLatchAndBody)
{
    // 0 -> 1 -> 2 -> 1 (back), 2 -> 3.
    const Procedure proc = shapeProc(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
    const ProcAnalysis analysis = ProcAnalysis::of(proc);

    EXPECT_FALSE(analysis.loops.irreducible());
    ASSERT_EQ(analysis.loops.loops.size(), 1u);
    const NaturalLoop &loop = analysis.loops.loops.front();
    EXPECT_EQ(loop.header, 1u);
    EXPECT_EQ(loop.latches, std::vector<BlockId>{2});
    EXPECT_EQ(loop.blocks, (std::vector<BlockId>{1, 2}));
    EXPECT_EQ(loop.parent, kNoLoop);
    EXPECT_EQ(loop.depth, 1u);
    EXPECT_TRUE(loop.contains(1));
    EXPECT_TRUE(loop.contains(2));
    EXPECT_FALSE(loop.contains(0));
    EXPECT_FALSE(loop.contains(3));
    EXPECT_EQ(analysis.loops.innermost[2], 0u);
    EXPECT_EQ(analysis.loops.innermost[3], kNoLoop);
}

TEST(Loops, SelfLoopIsItsOwnHeaderAndLatch)
{
    const Procedure proc = shapeProc(3, {{0, 1}, {1, 1}, {1, 2}});
    const LoopForest forest = ProcAnalysis::of(proc).loops;

    EXPECT_FALSE(forest.irreducible());
    ASSERT_EQ(forest.loops.size(), 1u);
    EXPECT_EQ(forest.loops[0].header, 1u);
    EXPECT_EQ(forest.loops[0].latches, std::vector<BlockId>{1});
    EXPECT_EQ(forest.loops[0].blocks, std::vector<BlockId>{1});
}

TEST(Loops, NestedLoopsGetParentAndDepth)
{
    // outer: 1..4 (4 -> 1), inner: 2..3 (3 -> 2).
    const Procedure proc = shapeProc(6, {{0, 1},
                                         {1, 2},
                                         {2, 3},
                                         {3, 2},
                                         {3, 4},
                                         {4, 1},
                                         {4, 5}});
    const LoopForest forest = ProcAnalysis::of(proc).loops;

    EXPECT_FALSE(forest.irreducible());
    ASSERT_EQ(forest.loops.size(), 2u);
    const NaturalLoop *outer = loopWithHeader(forest, 1);
    const NaturalLoop *inner = loopWithHeader(forest, 2);
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);

    EXPECT_EQ(outer->blocks, (std::vector<BlockId>{1, 2, 3, 4}));
    EXPECT_EQ(inner->blocks, (std::vector<BlockId>{2, 3}));
    EXPECT_EQ(outer->parent, kNoLoop);
    EXPECT_EQ(outer->depth, 1u);
    EXPECT_EQ(inner->depth, 2u);
    ASSERT_NE(inner->parent, kNoLoop);
    EXPECT_EQ(forest.loops[inner->parent].header, 1u);
    // Innermost-loop map prefers the inner loop for its body...
    EXPECT_EQ(forest.loops[forest.innermost[3]].header, 2u);
    // ...and the outer loop for blocks only it contains.
    EXPECT_EQ(forest.loops[forest.innermost[4]].header, 1u);
}

TEST(Loops, TwoBackEdgesToOneHeaderMerge)
{
    // Both 2 and 3 latch back to header 1: one merged loop.
    const Procedure proc = shapeProc(
        5, {{0, 1}, {1, 2}, {1, 3}, {2, 1}, {3, 1}, {3, 4}});
    const LoopForest forest = ProcAnalysis::of(proc).loops;
    ASSERT_EQ(forest.loops.size(), 1u);
    EXPECT_EQ(forest.loops[0].header, 1u);
    // Discovery order follows RPO: the DFS finishes 2's arm first, so 3
    // gets the earlier RPO number and its back edge is found first.
    EXPECT_EQ(forest.loops[0].latches, (std::vector<BlockId>{3, 2}));
    EXPECT_EQ(forest.loops[0].blocks, (std::vector<BlockId>{1, 2, 3}));
}

TEST(Loops, MultiEntryRegionIsReportedIrreducible)
{
    // The classic irreducible triangle: both 1 and 2 are entered from
    // the entry, and they cycle through each other, so neither dominates
    // the other — no natural loop exists.
    const Procedure proc = shapeProc(
        4, {{0, 1}, {0, 2}, {1, 2}, {2, 1}, {1, 3}});
    const LoopForest forest = ProcAnalysis::of(proc).loops;

    EXPECT_TRUE(forest.irreducible());
    ASSERT_EQ(forest.irreducibleEdges.size(), 1u);
    EXPECT_EQ(forest.irreducibleEdges.front(),
              (std::pair<BlockId, BlockId>{2, 1}));
    EXPECT_TRUE(forest.loops.empty());
}

TEST(Loops, ReducibleLoopBesideIrreducibleRegionIsStillFound)
{
    // Block 5's self-loop is a genuine natural loop even though blocks
    // 1..2 form an irreducible region elsewhere in the procedure.
    const Procedure proc = shapeProc(6, {{0, 1},
                                         {0, 2},
                                         {1, 2},
                                         {2, 1},
                                         {2, 5},
                                         {5, 5},
                                         {5, 3}});
    const LoopForest forest = ProcAnalysis::of(proc).loops;
    EXPECT_TRUE(forest.irreducible());
    ASSERT_EQ(forest.loops.size(), 1u);
    EXPECT_EQ(forest.loops[0].header, 5u);
}

TEST(Analysis, RespectsNonZeroEntryBlock)
{
    // Entry 2; block 0 becomes unreachable and the loop 2 -> 1 -> 2 is
    // rooted at the real entry.
    const Procedure proc =
        shapeProc(3, {{0, 1}, {2, 1}, {1, 2}}, /*entry=*/2);
    const ProcAnalysis analysis = ProcAnalysis::of(proc);

    EXPECT_EQ(analysis.rpo().order.front(), 2u);
    EXPECT_FALSE(analysis.rpo().reachable(0));
    ASSERT_EQ(analysis.loops.loops.size(), 1u);
    EXPECT_EQ(analysis.loops.loops[0].header, 2u);
}

TEST(Analysis, EmptyAndEdgelessProceduresAreHandled)
{
    const Procedure empty(0, "empty");
    const ProcAnalysis none = ProcAnalysis::of(empty);
    EXPECT_TRUE(none.rpo().order.empty());
    EXPECT_TRUE(none.loops.loops.empty());

    const Procedure lone = shapeProc(1, {});
    const ProcAnalysis one = ProcAnalysis::of(lone);
    EXPECT_EQ(one.rpo().order.size(), 1u);
    EXPECT_TRUE(one.doms.dominates(0, 0));
}

TEST(Analysis, OutOfRangeEntryIsNotReachable)
{
    const Procedure proc = shapeProc(2, {{0, 1}}, /*entry=*/9);
    const ProcAnalysis analysis = ProcAnalysis::of(proc);
    EXPECT_TRUE(analysis.rpo().order.empty());
    EXPECT_FALSE(analysis.rpo().reachable(0));
    EXPECT_TRUE(analysis.loops.loops.empty());
}

TEST(Analysis, SurvivesEveryDegenerateFuzzShape)
{
    // The fuzzer's hand-built adversarial programs (single-block loops,
    // dense indirect fan-out, deep call chains, ...) must all analyze
    // without a panic, and the results must satisfy the loop-forest
    // invariants the lint rules rely on.
    for (std::size_t kind = 0; kind < numDegenerateKinds(); ++kind) {
        for (const std::uint64_t seed : {1u, 4u}) {
            const Program program = degenerateProgram(kind, seed);
            for (ProcId id = 0; id < program.numProcs(); ++id) {
                const Procedure &proc = program.proc(id);
                const ProcAnalysis analysis = ProcAnalysis::of(proc);
                EXPECT_LE(analysis.rpo().order.size(), proc.numBlocks())
                    << degenerateKindName(kind);
                for (const NaturalLoop &loop : analysis.loops.loops) {
                    EXPECT_TRUE(analysis.rpo().reachable(loop.header));
                    EXPECT_TRUE(loop.contains(loop.header));
                    for (const BlockId latch : loop.latches) {
                        EXPECT_TRUE(loop.contains(latch));
                        EXPECT_TRUE(analysis.doms.dominates(loop.header,
                                                            latch))
                            << degenerateKindName(kind) << ": back edge "
                            << latch << " -> " << loop.header;
                    }
                }
            }
        }
    }
}

TEST(Analysis, CompilerShapedProgramsAreReducible)
{
    // The workload generator emits structured control flow; its loops
    // must come out as natural loops, never as irreducible witnesses.
    for (const std::uint64_t seed : {2u, 11u, 23u}) {
        const Program program = fuzzProgram(seed);
        for (ProcId id = 0; id < program.numProcs(); ++id) {
            const ProcAnalysis analysis =
                ProcAnalysis::of(program.proc(id));
            EXPECT_FALSE(analysis.loops.irreducible())
                << "seed " << seed << " proc " << id;
        }
    }
}
