/**
 * @file
 * Tests for the block-duplication loop unroller (the paper's §3 proposed
 * extension): structural correctness, semantics preservation (iteration
 * distribution), and the predicted FALLTHROUGH/misfetch improvements.
 */

#include <gtest/gtest.h>

#include "bpred/evaluator.h"
#include "cfg/builder.h"
#include "cfg/validate.h"
#include "core/align_program.h"
#include "core/unroll.h"
#include "layout/materialize.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/paper_figures.h"

using namespace balign;

namespace {

Program
selfLoopProgram(double p_continue = 0.9)
{
    Program program("loop");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId loop = b.block(11, Terminator::CondBranch);
    const BlockId exit = b.block(3, Terminator::Return);
    b.fallThrough(entry, loop, 0, 1.0);
    b.taken(loop, loop, 0, p_continue);
    b.fallThrough(loop, exit, 0, 1.0 - p_continue);
    return program;
}

}  // namespace

TEST(Unroll, StructureAfterFactor4)
{
    Program program = selfLoopProgram();
    const unsigned count = unrollSelfLoops(program, UnrollOptions{4});
    EXPECT_EQ(count, 1u);
    EXPECT_TRUE(validate(program).empty());

    const Procedure &proc = program.proc(0);
    // entry + 4 copies + exit.
    EXPECT_EQ(proc.numBlocks(), 6u);
    // Copies occupy ids 1..4; early copies fall through to the next.
    for (BlockId c = 1; c <= 3; ++c) {
        const auto fall =
            static_cast<std::uint32_t>(proc.fallThroughEdge(c));
        EXPECT_EQ(proc.edge(fall).dst, c + 1);
        const auto taken = static_cast<std::uint32_t>(proc.takenEdge(c));
        EXPECT_EQ(proc.edge(taken).dst, 5u);  // exit
    }
    // Last copy branches back to the head and falls into the exit.
    const auto back = static_cast<std::uint32_t>(proc.takenEdge(4));
    EXPECT_EQ(proc.edge(back).dst, 1u);
    const auto out = static_cast<std::uint32_t>(proc.fallThroughEdge(4));
    EXPECT_EQ(proc.edge(out).dst, 5u);
}

TEST(Unroll, IdentityLayoutStaysExact)
{
    Program program = selfLoopProgram();
    unrollSelfLoops(program, UnrollOptions{3});
    const ProgramLayout layout = originalLayout(program);
    EXPECT_EQ(layout.totalInstrs, program.totalInstrs());
    EXPECT_EQ(layout.procs[0].jumpsInserted, 0u);
}

TEST(Unroll, FactorBelowTwoIsNoOp)
{
    Program program = selfLoopProgram();
    UnrollOptions options;
    options.factor = 1;
    EXPECT_EQ(unrollSelfLoops(program, options), 0u);
    EXPECT_EQ(program.proc(0).numBlocks(), 3u);
}

TEST(Unroll, RespectsSizeGuard)
{
    Program program = selfLoopProgram();
    UnrollOptions options;
    options.factor = 4;
    options.maxBlockInstrs = 8;  // loop block has 11 instructions
    EXPECT_EQ(unrollSelfLoops(program, options), 0u);
}

TEST(Unroll, RespectsMinWeight)
{
    Program program = selfLoopProgram();
    UnrollOptions options;
    options.factor = 4;
    options.minWeight = 100;  // weights are all zero (unprofiled)
    EXPECT_EQ(unrollSelfLoops(program.proc(0), options), 0u);

    // After profiling, the hot loop qualifies.
    Profiler profiler(program);
    WalkOptions walk_options;
    walk_options.instrBudget = 50'000;
    walk(program, walk_options, profiler);
    EXPECT_EQ(unrollSelfLoops(program.proc(0), options), 1u);
}

TEST(Unroll, IterationCountPreserved)
{
    // Unrolling must not change how much loop work executes: compare the
    // executed loop-body instructions before and after.
    Program before = selfLoopProgram(0.95);
    Program after = selfLoopProgram(0.95);
    unrollSelfLoops(after, UnrollOptions{4});

    WalkOptions options;
    options.seed = 9;
    options.instrBudget = 400'000;
    Profiler prof_before(before);
    walk(before, options, prof_before);
    Profiler prof_after(after);
    walk(after, options, prof_after);

    // Loop-body activations: block weight of the single loop block vs the
    // sum over the four copies.
    const Weight w_before = before.proc(0).blockWeight(1);
    Weight w_after = 0;
    for (BlockId c = 1; c <= 4; ++c)
        w_after += after.proc(0).blockWeight(c);
    // entry edges add 1 activation per run; allow 5% tolerance for the
    // stochastic draw differences.
    EXPECT_NEAR(static_cast<double>(w_after),
                static_cast<double>(w_before),
                0.05 * static_cast<double>(w_before));
}

TEST(Unroll, ReducesTakenBranchFraction)
{
    Program plain = selfLoopProgram(0.95);
    Program unrolled = selfLoopProgram(0.95);
    unrollSelfLoops(unrolled, UnrollOptions{4});

    WalkOptions options;
    options.seed = 11;
    options.instrBudget = 300'000;

    auto eval = [&](Program &program) {
        program.clearWeights();
        Profiler profiler(program);
        walk(program, options, profiler);
        return profiler.stats();
    };
    const ProgramStats before = eval(plain);
    const ProgramStats after = eval(unrolled);
    // One taken back edge per ~4 iterations instead of per iteration.
    EXPECT_LT(after.pctTaken(), before.pctTaken() * 0.5);
}

TEST(Unroll, ImprovesFallthroughArchitecture)
{
    // Paper §3: unrolling ALVINN's input_hidden loop "could reduce the
    // misfetch penalty for all architectures and improve the branch
    // prediction for the FALLTHROUGH architecture".
    Program plain = figure2Alvinn();
    Program unrolled = figure2Alvinn();
    unrollSelfLoops(unrolled, UnrollOptions{4});

    WalkOptions options;
    options.seed = 21;
    options.instrBudget = 500'000;

    auto bep_of = [&](Program &program, Arch arch) {
        program.clearWeights();
        Profiler profiler(program);
        walk(program, options, profiler);
        const CostModel model(arch);
        const ProgramLayout layout =
            alignProgram(program, AlignerKind::Try15, &model);
        ArchEvaluator eval(program, layout, EvalParams::forArch(arch));
        walk(program, options, eval.sink());
        // Normalize per executed instruction (programs differ in size).
        return eval.result().bep() /
               static_cast<double>(eval.result().instrs);
    };

    EXPECT_LT(bep_of(unrolled, Arch::Fallthrough),
              bep_of(plain, Arch::Fallthrough));
    EXPECT_LT(bep_of(unrolled, Arch::BtFnt), bep_of(plain, Arch::BtFnt));
}

TEST(Unroll, MaxLoopsPerProcCap)
{
    Program program("two");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId l1 = b.block(4, Terminator::CondBranch);
    const BlockId mid = b.block(2, Terminator::FallThrough);
    const BlockId l2 = b.block(4, Terminator::CondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, l1, 0, 1.0);
    b.taken(l1, l1, 10, 0.9);
    b.fallThrough(l1, mid, 0, 0.1);
    b.fallThrough(mid, l2, 0, 1.0);
    b.taken(l2, l2, 100, 0.9);
    b.fallThrough(l2, exit, 0, 0.1);

    UnrollOptions options;
    options.factor = 2;
    options.maxLoopsPerProc = 1;
    EXPECT_EQ(unrollSelfLoops(program.proc(0), options), 1u);
    // The hotter loop (l2, weight 100) was chosen; it now has two copies.
    EXPECT_EQ(program.proc(0).numBlocks(), 6u);
    EXPECT_TRUE(validate(program).empty());
    // l1 kept its self edge.
    const Procedure &rebuilt = program.proc(0);
    const auto taken = static_cast<std::uint32_t>(rebuilt.takenEdge(1));
    EXPECT_EQ(rebuilt.edge(taken).dst, 1u);
}
