/**
 * @file
 * Unit tests for the static profile estimator (estimate/estimate.h):
 * Dempster-Shafer evidence algebra, heuristic firing on the hand-minimized
 * estimate corpus cases, and pinned golden `balign estimate --json`
 * reports (tests/corpus/estimate/<name>.est.json) so any drift in the
 * heuristics, the combiner or the propagation shows up as a readable
 * JSON diff. Regenerate with BALIGN_REGEN_ESTIMATE_GOLDEN=1 after an
 * intentional change.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "check/fuzz.h"
#include "estimate/estimate.h"
#include "lint/lint.h"

using namespace balign;

namespace {

std::string
corpusPath(const std::string &name)
{
    return std::string(BALIGN_CORPUS_DIR) + "/" + name;
}

Program
loadCorpus(const std::string &name)
{
    const std::optional<Repro> repro = loadRepro(corpusPath(name));
    if (!repro.has_value())
        ADD_FAILURE() << "cannot load corpus file " << name;
    return repro.has_value() ? repro->program : Program();
}

/// The CLI's `balign estimate <file> --json` framing for one input.
std::string
estimateJsonFor(const std::string &name)
{
    Program program = loadCorpus(name);
    const EstimateReport report = estimateProfile(program);
    std::ostringstream os;
    os << "[\n";
    writeEstimateReportJson(report, program, os);
    os << "\n]\n";
    return os.str();
}

const BranchEstimate *
findBranch(const EstimateReport &report, ProcId proc, BlockId block)
{
    for (const BranchEstimate &branch : report.branches) {
        if (branch.proc == proc && branch.block == block)
            return &branch;
    }
    return nullptr;
}

bool
hasVote(const BranchEstimate &branch, const std::string &heuristic)
{
    for (const HeuristicVote &vote : branch.votes) {
        if (heuristic == vote.heuristic)
            return true;
    }
    return false;
}

}  // namespace

TEST(CombineEvidence, NeutralElementIsHalf)
{
    for (const double p : {0.02, 0.2, 0.5, 0.62, 0.88, 0.98}) {
        EXPECT_NEAR(combineEvidence(0.5, p), p, 1e-12);
        EXPECT_NEAR(combineEvidence(p, 0.5), p, 1e-12);
    }
}

TEST(CombineEvidence, SymmetricAndAssociative)
{
    const double a = 0.8, b = 0.3, c = 0.62;
    EXPECT_NEAR(combineEvidence(a, b), combineEvidence(b, a), 1e-12);
    EXPECT_NEAR(combineEvidence(combineEvidence(a, b), c),
                combineEvidence(a, combineEvidence(b, c)), 1e-12);
}

TEST(CombineEvidence, AgreementAmplifiesConflictAttenuates)
{
    // Two agreeing pieces of evidence are stronger than either alone.
    EXPECT_GT(combineEvidence(0.8, 0.8), 0.8);
    EXPECT_LT(combineEvidence(0.2, 0.2), 0.2);
    // Perfectly opposed evidence cancels back to neutral.
    EXPECT_NEAR(combineEvidence(0.8, 0.2), 0.5, 1e-12);
}

TEST(EstimateCorpus, IrreducibleCaseTakesFallback)
{
    Program program = loadCorpus("est-irreducible.balign");
    const EstimateReport report = estimateProfile(program);

    ASSERT_EQ(report.procs.size(), 1u);
    EXPECT_TRUE(report.procs[0].irreducibleFallback)
        << "the 1<->2 two-entry cycle must defeat closed-form propagation";
    EXPECT_EQ(program.profileProvenance(), ProfileProvenance::Estimated);

    // The fallback still synthesizes a conserving profile: the est.* and
    // prof.* rules must hold on the estimated program.
    LintRunOptions run;
    const LintReport lint = lintProgram(program, run);
    EXPECT_EQ(lint.errors(), 0u)
        << formatLintReport(lint, "est-irreducible");
    EXPECT_EQ(lint.profileProvenance, "estimated");
}

TEST(EstimateCorpus, TieCaseCombinesOpposingHeuristics)
{
    Program program = loadCorpus("est-tie.balign");
    const EstimateReport report = estimateProfile(program);

    ASSERT_EQ(report.conditionals, 1u);
    const BranchEstimate *branch = findBranch(report, 0, 2);
    ASSERT_NE(branch, nullptr);
    ASSERT_EQ(branch->votes.size(), 2u);
    EXPECT_TRUE(hasVote(*branch, "loop-exit"));
    EXPECT_TRUE(hasVote(*branch, "call"));

    // D-S of the conflict: 0.2 (stay in loop) vs 0.78 (avoid the call)
    // = 0.156 / (0.156 + 0.176) — just on the fall side of neutral.
    EXPECT_NEAR(branch->takenProb, 0.2 * 0.78 / (0.2 * 0.78 + 0.8 * 0.22),
                1e-9);
    EXPECT_LT(branch->takenProb, 0.5);
    EXPECT_GT(branch->takenProb, 0.4);
}

TEST(EstimateCorpus, PatternMetadataDrivesTightLoop)
{
    Program program = loadCorpus("tight-loop.balign");
    const EstimateReport report = estimateProfile(program);

    // Block 0 carries `pattern 4 7`: 3 taken outcomes in a period of 4.
    const BranchEstimate *branch = findBranch(report, 0, 0);
    ASSERT_NE(branch, nullptr);
    EXPECT_TRUE(hasVote(*branch, "pattern"));
    EXPECT_TRUE(hasVote(*branch, "loop-branch"));
    EXPECT_GT(branch->takenProb, 0.5)
        << "self-loop back edge plus a 3/4 pattern must predict taken";
}

TEST(EstimateCorpus, GoldenJsonReportsMatch)
{
    const bool regen =
        std::getenv("BALIGN_REGEN_ESTIMATE_GOLDEN") != nullptr;
    for (const std::string name : {"est-irreducible", "est-tie"}) {
        const std::string json = estimateJsonFor(name + ".balign");
        const std::string golden_path =
            std::string(BALIGN_CORPUS_DIR) + "/estimate/" + name +
            ".est.json";
        if (regen) {
            std::filesystem::create_directories(
                std::filesystem::path(golden_path).parent_path());
            std::ofstream out(golden_path);
            out << json;
            continue;
        }
        std::ifstream in(golden_path);
        ASSERT_TRUE(in.good())
            << "missing golden " << golden_path
            << " (regenerate with BALIGN_REGEN_ESTIMATE_GOLDEN=1)";
        std::ostringstream golden;
        golden << in.rdbuf();
        EXPECT_EQ(json, golden.str())
            << "estimate report for " << name
            << " drifted from its golden";
    }
}
