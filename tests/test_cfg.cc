/**
 * @file
 * Unit tests for the CFG IR: blocks, edges, procedures, programs, the
 * fluent builder, and structural validation.
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "cfg/program.h"
#include "cfg/validate.h"

using namespace balign;

namespace {

/// diamond: 0 -> (1 | 2) -> 3(return); fall edges 0->1, 2->3.
Procedure
makeDiamond()
{
    Procedure proc(0, "diamond");
    CfgBuilder b(proc);
    const BlockId head = b.block(3, Terminator::CondBranch);
    const BlockId then_blk = b.block(4, Terminator::UncondBranch);
    const BlockId else_blk = b.block(5, Terminator::FallThrough);
    const BlockId join = b.block(2, Terminator::Return);
    b.fallThrough(head, then_blk, 70);
    b.taken(head, else_blk, 30);
    b.taken(then_blk, join, 70);
    b.fallThrough(else_blk, join, 30);
    return proc;
}

}  // namespace

TEST(Procedure, AddBlockAssignsDenseIds)
{
    Procedure proc(0, "p");
    EXPECT_EQ(proc.addBlock(1, Terminator::FallThrough), 0u);
    EXPECT_EQ(proc.addBlock(2, Terminator::Return), 1u);
    EXPECT_EQ(proc.numBlocks(), 2u);
    EXPECT_EQ(proc.block(0).numInstrs, 1u);
    EXPECT_EQ(proc.block(1).term, Terminator::Return);
}

TEST(Procedure, EdgeWiring)
{
    const Procedure proc = makeDiamond();
    EXPECT_EQ(proc.numEdges(), 4u);
    EXPECT_EQ(proc.block(0).outEdges.size(), 2u);
    EXPECT_EQ(proc.block(3).inEdges.size(), 2u);
    const auto taken = proc.takenEdge(0);
    ASSERT_GE(taken, 0);
    EXPECT_EQ(proc.edge(static_cast<std::uint32_t>(taken)).dst, 2u);
    const auto fall = proc.fallThroughEdge(0);
    ASSERT_GE(fall, 0);
    EXPECT_EQ(proc.edge(static_cast<std::uint32_t>(fall)).dst, 1u);
}

TEST(Procedure, FindMissingEdgeReturnsNegative)
{
    const Procedure proc = makeDiamond();
    EXPECT_LT(proc.takenEdge(2), 0);   // fall-through block has no taken
    EXPECT_LT(proc.fallThroughEdge(1), 0);  // uncond has no fall-through
}

TEST(Procedure, TotalInstrs)
{
    const Procedure proc = makeDiamond();
    EXPECT_EQ(proc.totalInstrs(), 3u + 4u + 5u + 2u);
}

TEST(Procedure, TotalEdgeWeightAndClear)
{
    Procedure proc = makeDiamond();
    EXPECT_EQ(proc.totalEdgeWeight(), 200u);
    proc.clearWeights();
    EXPECT_EQ(proc.totalEdgeWeight(), 0u);
}

TEST(Procedure, BlockWeightSumsInEdges)
{
    const Procedure proc = makeDiamond();
    EXPECT_EQ(proc.blockWeight(3), 100u);
    EXPECT_EQ(proc.blockWeight(0), 0u);  // entry: no in-edges
}

TEST(Program, AddProcAssignsIds)
{
    Program program("prog");
    EXPECT_EQ(program.addProc("a"), 0u);
    EXPECT_EQ(program.addProc("b"), 1u);
    EXPECT_EQ(program.proc(1).name(), "b");
    EXPECT_EQ(program.mainProc(), 0u);
}

TEST(Program, TotalInstrsAcrossProcs)
{
    Program program("prog");
    program.addProc("a");
    program.addProc("b");
    program.proc(0).addBlock(5, Terminator::Return);
    program.proc(1).addBlock(7, Terminator::Return);
    EXPECT_EQ(program.totalInstrs(), 12u);
}

TEST(TerminatorName, AllNamed)
{
    EXPECT_STREQ(terminatorName(Terminator::FallThrough), "fallthrough");
    EXPECT_STREQ(terminatorName(Terminator::CondBranch), "cond");
    EXPECT_STREQ(terminatorName(Terminator::UncondBranch), "uncond");
    EXPECT_STREQ(terminatorName(Terminator::IndirectJump), "indirect");
    EXPECT_STREQ(terminatorName(Terminator::Return), "return");
}

// ---- CfgBuilder rule enforcement -------------------------------------------

using CfgBuilderDeath = ::testing::Test;

TEST(CfgBuilderDeath, RejectsSecondTakenEdge)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId u = b.block(2, Terminator::UncondBranch);
    const BlockId r = b.block(1, Terminator::Return);
    b.taken(u, r);
    EXPECT_DEATH(b.taken(u, r), "already has a taken edge");
}

TEST(CfgBuilderDeath, RejectsTakenFromFallThroughBlock)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId f = b.block(2, Terminator::FallThrough);
    const BlockId r = b.block(1, Terminator::Return);
    EXPECT_DEATH(b.taken(f, r), "may only have a fall-through edge");
}

TEST(CfgBuilderDeath, RejectsEdgeFromReturnBlock)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId r = b.block(1, Terminator::Return);
    const BlockId x = b.block(1, Terminator::Return);
    EXPECT_DEATH(b.taken(r, x), "may not have out-edges");
}

TEST(CfgBuilderDeath, RejectsZeroInstrBlock)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    EXPECT_DEATH(b.block(0, Terminator::Return), "at least one instruction");
}

TEST(CfgBuilderDeath, RejectsCallBeyondBlock)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId blk = b.block(3, Terminator::FallThrough);
    EXPECT_DEATH(b.call(blk, 0, 3), "beyond block");
}

TEST(CfgBuilder, OtherEdgesOnIndirect)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId sw = b.block(2, Terminator::IndirectJump);
    const BlockId c1 = b.block(1, Terminator::Return);
    const BlockId c2 = b.block(1, Terminator::Return);
    b.other(sw, c1).other(sw, c2);
    EXPECT_EQ(proc.block(sw).outEdges.size(), 2u);
}

// ---- validate ----------------------------------------------------------------

TEST(Validate, AcceptsWellFormedProgram)
{
    Program program("ok");
    const ProcId pid = program.addProc("diamond");
    program.proc(pid) = makeDiamond();
    program.proc(pid).setId(pid);
    EXPECT_TRUE(validate(program).empty());
}

TEST(Validate, EmptyProgramRejected)
{
    Program program("empty");
    EXPECT_FALSE(validate(program).empty());
}

TEST(Validate, EmptyProcedureRejected)
{
    Program program("p");
    program.addProc("empty");
    const auto errors = validate(program);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().message.find("no blocks"), std::string::npos);
}

TEST(Validate, CondBlockMissingFallThrough)
{
    Program program("p");
    Procedure &proc = program.proc(program.addProc("q"));
    const BlockId c = proc.addBlock(2, Terminator::CondBranch);
    const BlockId r = proc.addBlock(1, Terminator::Return);
    proc.addEdge(c, r, EdgeKind::Taken);
    EXPECT_FALSE(validate(program).empty());
}

TEST(Validate, UncondBlockWithTwoEdges)
{
    Program program("p");
    Procedure &proc = program.proc(program.addProc("q"));
    const BlockId u = proc.addBlock(2, Terminator::UncondBranch);
    const BlockId r = proc.addBlock(1, Terminator::Return);
    proc.addEdge(u, r, EdgeKind::Taken);
    proc.addEdge(u, r, EdgeKind::Taken);
    EXPECT_FALSE(validate(program).empty());
}

TEST(Validate, IndirectWithoutTargets)
{
    Program program("p");
    Procedure &proc = program.proc(program.addProc("q"));
    proc.addBlock(2, Terminator::IndirectJump);
    EXPECT_FALSE(validate(program).empty());
}

TEST(Validate, CallToUnknownProcedure)
{
    Program program("p");
    Procedure &proc = program.proc(program.addProc("q"));
    const BlockId blk = proc.addBlock(3, Terminator::Return);
    proc.block(blk).calls.push_back(CallSite{99, 0});
    const auto errors = validate(program);
    bool found = false;
    for (const auto &error : errors)
        found |= error.message.find("unknown procedure") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Validate, CallOverlappingTerminator)
{
    Program program("p");
    program.addProc("callee");
    Procedure &proc = program.proc(program.addProc("q"));
    const BlockId blk = proc.addBlock(3, Terminator::Return);
    // Return instruction occupies slot 2; a call there is invalid.
    proc.block(blk).calls.push_back(CallSite{0, 2});
    const auto errors = validate(program);
    bool found = false;
    for (const auto &error : errors)
        found |= error.message.find("overlaps the terminator") !=
                 std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Validate, EntryOutOfRange)
{
    Program program("p");
    Procedure &proc = program.proc(program.addProc("q"));
    proc.addBlock(1, Terminator::Return);
    proc.setEntry(5);
    EXPECT_FALSE(validate(program).empty());
}

TEST(ValidateDeath, ValidateOrDiePanicsOnBadProgram)
{
    Program program("bad");
    program.addProc("empty");
    EXPECT_DEATH(validateOrDie(program), "failed validation");
}
