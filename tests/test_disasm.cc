/**
 * @file
 * Disassembler + object-checker unit tests (`ctest -L disasm`): the
 * independent decoder for both encoding models, the shared CFG lifter,
 * the byte-level obligation family (disasm/checkobj.h), the obj.* lint
 * rules, the fuzzer's disasm gate, and the malformed-object corpus under
 * tests/corpus/disasm/.
 *
 * The corpus fixtures are REAL checked-in object files, each corrupted
 * by direct ELF surgery (section-header / symtab / rela / .text byte
 * edits) so that exactly one intended obligation fails. Regenerate them
 * after changing the emitter, the fixture program or the aligner:
 *
 *   BALIGN_REGEN_DISASM_CORPUS=1 ./balign_disasm_tests \
 *       --gtest_filter='DisasmCorpus.Regenerate'
 *
 * CorpusBaseObjectVerifies failing is the staleness signal.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cfg/builder.h"
#include "cfg/validate.h"
#include "check/differ.h"
#include "check/fuzz.h"
#include "core/align_program.h"
#include "disasm/checkobj.h"
#include "disasm/disasm.h"
#include "emit/elf.h"
#include "emit/relax.h"
#include "lint/rules.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "verify/verify.h"

using namespace balign;

namespace {

constexpr const char *kCorpusDir = BALIGN_DISASM_CORPUS_DIR;

void
profileWith(Program &program, std::uint64_t seed, std::uint64_t budget)
{
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = seed;
    options.instrBudget = budget;
    walk(program, options, profiler);
}

/// Two procedures exercising every instruction class; identical shape to
/// test_emit.cc's emitBase.
Program
emitBase()
{
    Program program("emit-base");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId b0 = b.block(3, Terminator::CondBranch);
        const BlockId b1 = b.block(4, Terminator::UncondBranch);
        const BlockId b2 = b.block(2, Terminator::Return);
        b.taken(b0, b2, 0, 0.1);
        b.fallThrough(b0, b1, 0, 0.9);
        b.taken(b1, b0, 0);
        b.call(b0, leaf_id, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        const BlockId b0 = b.block(2, Terminator::CondBranch);
        const BlockId b1 = b.block(3, Terminator::FallThrough);
        const BlockId b2 = b.block(5, Terminator::FallThrough);
        const BlockId b3 = b.block(1, Terminator::Return);
        b.taken(b0, b1, 0, 0.6);
        b.fallThrough(b0, b2, 0, 0.4);
        b.fallThrough(b1, b3, 0);
        b.fallThrough(b2, b3, 0);
    }
    validateOrDie(program);
    profileWith(program, 11, 5'000);
    return program;
}

/**
 * The corpus fixture program: emitBase with main's middle block fattened
 * to 40 instructions, pushing main's conditional branch and back-jump
 * out of rel8 range — so the variable encoding exercises BOTH forms
 * (near in main, short in leaf) plus a call relocation.
 */
Program
fixtureProgram()
{
    Program program("disasm-fixture");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId b0 = b.block(3, Terminator::CondBranch);
        const BlockId b1 = b.block(40, Terminator::UncondBranch);
        const BlockId b2 = b.block(2, Terminator::Return);
        b.taken(b0, b2, 0, 0.1);
        b.fallThrough(b0, b1, 0, 0.9);
        b.taken(b1, b0, 0);
        b.call(b0, leaf_id, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        const BlockId b0 = b.block(2, Terminator::CondBranch);
        const BlockId b1 = b.block(3, Terminator::FallThrough);
        const BlockId b2 = b.block(5, Terminator::FallThrough);
        const BlockId b3 = b.block(1, Terminator::Return);
        b.taken(b0, b2, 0, 0.6);
        b.fallThrough(b0, b1, 0, 0.4);
        b.fallThrough(b1, b3, 0);
        b.fallThrough(b2, b3, 0);
    }
    validateOrDie(program);
    profileWith(program, 11, 5'000);
    return program;
}

ProgramLayout
alignWith(const Program &program, AlignerKind kind)
{
    const CostModel model(Arch::Fallthrough);
    return alignProgram(program, kind, &model);
}

/// A ParsedElf assembled by hand — the decoder consumes only data, so
/// tests can feed it byte streams no writer would produce.
ParsedElf
fakeElf(std::uint16_t machine, std::vector<std::uint8_t> text,
        std::vector<ElfSymbolInfo> funcs)
{
    ParsedElf elf;
    elf.ok = true;
    elf.machine = machine;
    elf.text = std::move(text);
    elf.symbols.emplace_back();  // null symbol
    ElfSymbolInfo section;
    section.info = 0x03;  // LOCAL STT_SECTION
    section.shndx = 1;
    elf.symbols.push_back(section);
    for (ElfSymbolInfo &func : funcs) {
        func.info = 0x12;  // GLOBAL STT_FUNC
        func.shndx = 1;
        elf.symbols.push_back(func);
    }
    return elf;
}

ElfSymbolInfo
funcSym(const std::string &name, std::uint64_t value, std::uint64_t size)
{
    ElfSymbolInfo sym;
    sym.name = name;
    sym.value = value;
    sym.size = size;
    return sym;
}

// ---------------------------------------------------------------------
// ELF surgery for the corpus fixtures: raw little-endian field edits at
// the documented ELF64 offsets, independent of both the writer and the
// reader.

std::uint64_t
leRead(const std::vector<std::uint8_t> &bytes, std::size_t off, unsigned n)
{
    std::uint64_t value = 0;
    for (unsigned i = 0; i < n; ++i)
        value |= static_cast<std::uint64_t>(bytes.at(off + i)) << (8 * i);
    return value;
}

void
leWrite(std::vector<std::uint8_t> &bytes, std::size_t off,
        std::uint64_t value, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        bytes.at(off + i) = static_cast<std::uint8_t>(value >> (8 * i));
}

struct SectionLoc
{
    std::size_t shdr = 0;    ///< file offset of the section header
    std::size_t offset = 0;  ///< sh_offset
    std::size_t size = 0;    ///< sh_size
    bool ok = false;
};

SectionLoc
findSection(const std::vector<std::uint8_t> &bytes, const std::string &name)
{
    SectionLoc loc;
    const std::size_t shoff = leRead(bytes, 0x28, 8);
    const std::size_t shentsize = leRead(bytes, 0x3a, 2);
    const std::size_t shnum = leRead(bytes, 0x3c, 2);
    const std::size_t shstrndx = leRead(bytes, 0x3e, 2);
    const std::size_t strOff =
        leRead(bytes, shoff + shstrndx * shentsize + 0x18, 8);
    for (std::size_t i = 0; i < shnum; ++i) {
        const std::size_t shdr = shoff + i * shentsize;
        std::size_t at = strOff + leRead(bytes, shdr, 4);
        std::string got;
        while (at < bytes.size() && bytes[at] != 0)
            got += static_cast<char>(bytes[at++]);
        if (got != name)
            continue;
        loc.shdr = shdr;
        loc.offset = leRead(bytes, shdr + 0x18, 8);
        loc.size = leRead(bytes, shdr + 0x20, 8);
        loc.ok = true;
        return loc;
    }
    return loc;
}

/// Shrinks .text's sh_size by 3 bytes, and the last procedure symbol's
/// size with it so the object still parses (the PR-9 reader rejects
/// symbol ranges escaping .text): the byte total and the symbol size no
/// longer match the relaxation fixpoint.
std::vector<std::uint8_t>
corruptTruncateText(std::vector<std::uint8_t> bytes)
{
    const SectionLoc text = findSection(bytes, ".text");
    EXPECT_TRUE(text.ok);
    EXPECT_GT(text.size, 3u);
    leWrite(bytes, text.shdr + 0x20, text.size - 3, 8);

    const SectionLoc symtab = findSection(bytes, ".symtab");
    EXPECT_TRUE(symtab.ok);
    // Elf64_Sym is 24 bytes, st_size at +16; the last procedure is the
    // final symtab entry.
    const std::size_t sizeOff = symtab.offset + symtab.size - 24 + 16;
    const std::uint64_t size = leRead(bytes, sizeOff, 8);
    EXPECT_GT(size, 3u);
    leWrite(bytes, sizeOff, size - 3, 8);
    return bytes;
}

/// Pulls the second procedure's symbol value back 2 bytes into the
/// first's range: procedure ranges no longer tile .text, and the
/// misaligned sweep decodes mid-instruction bytes.
std::vector<std::uint8_t>
corruptOverlapProcs(std::vector<std::uint8_t> bytes)
{
    const SectionLoc symtab = findSection(bytes, ".symtab");
    EXPECT_TRUE(symtab.ok);
    // Elf64_Sym is 24 bytes, st_value at +8; proc 1 is symtab entry 3.
    const std::size_t valueOff = symtab.offset + 3 * 24 + 8;
    const std::uint64_t value = leRead(bytes, valueOff, 8);
    EXPECT_GE(value, 2u);
    leWrite(bytes, valueOff, value - 2, 8);
    return bytes;
}

/**
 * Picks a short-form conditional branch whose displacement can grow by
 * one without leaving rel8 range or landing on another instruction
 * boundary, and bumps its rel8 field: the branch now targets the middle
 * of an instruction.
 */
std::vector<std::uint8_t>
corruptBranchTarget(std::vector<std::uint8_t> bytes,
                    const RelaxedLayout &relaxed)
{
    const SectionLoc text = findSection(bytes, ".text");
    EXPECT_TRUE(text.ok);
    std::set<std::uint64_t> boundaries;
    for (const RelaxedInstr &slot : relaxed.instrs)
        boundaries.insert(slot.byteAddr);
    for (const RelaxedInstr &slot : relaxed.instrs) {
        if (slot.cls != InstrClass::CondBranch ||
            slot.form != BranchForm::Short || slot.disp >= 127)
            continue;
        const std::uint64_t target = slot.byteAddr + slot.size + slot.disp;
        const RelaxedProc &proc = relaxed.procs[slot.proc];
        if (boundaries.count(target + 1) ||
            target + 1 >= proc.byteBase + proc.byteSize)
            continue;
        bytes.at(text.offset + slot.byteAddr + 1) =
            static_cast<std::uint8_t>(slot.disp + 1);
        return bytes;
    }
    ADD_FAILURE() << "no corruptible short conditional branch in fixture";
    return bytes;
}

/// Rewrites the first relocation's addend from -4 to -8.
std::vector<std::uint8_t>
corruptRelocAddend(std::vector<std::uint8_t> bytes)
{
    const SectionLoc rela = findSection(bytes, ".rela.text");
    EXPECT_TRUE(rela.ok);
    EXPECT_GE(rela.size, 24u);
    // Elf64_Rela is 24 bytes, r_addend at +16.
    leWrite(bytes, rela.offset + 16, static_cast<std::uint64_t>(-8), 8);
    return bytes;
}

/// Swaps a short conditional branch's opcode (74) for a short jump's
/// (eb): same size, same target, different terminator class.
std::vector<std::uint8_t>
corruptJumpSwap(std::vector<std::uint8_t> bytes,
                const RelaxedLayout &relaxed)
{
    const SectionLoc text = findSection(bytes, ".text");
    EXPECT_TRUE(text.ok);
    for (const RelaxedInstr &slot : relaxed.instrs) {
        if (slot.cls != InstrClass::CondBranch ||
            slot.form != BranchForm::Short)
            continue;
        EXPECT_EQ(bytes.at(text.offset + slot.byteAddr), 0x74);
        bytes.at(text.offset + slot.byteAddr) = 0xeb;
        return bytes;
    }
    ADD_FAILURE() << "no short conditional branch in fixture";
    return bytes;
}

// ---------------------------------------------------------------------
// Corpus plumbing.

std::optional<std::vector<std::uint8_t>>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/// The fixture pipeline both regeneration and checking share: load the
/// checked-in program, re-profile it from the embedded walk parameters,
/// and relax the identity layout under the variable model.
struct CorpusContext
{
    Program program;
    RelaxedLayout relaxed;
};

std::optional<CorpusContext>
corpusContext()
{
    std::optional<Repro> repro =
        loadRepro(std::string(kCorpusDir) + "/base.balign");
    if (!repro.has_value())
        return std::nullopt;
    Program program = std::move(repro->program);
    profileWith(program, repro->walk.seed, repro->walk.instrBudget);
    const ProgramLayout layout =
        alignWith(program, AlignerKind::Original);
    RelaxedLayout relaxed = relaxLayout(
        program, layout, encodingModel(EncodingModelKind::Variable));
    return CorpusContext{std::move(program), std::move(relaxed)};
}

/// Loads a corpus object and asserts the named obligation (and only an
/// actual check run) catches it.
void
expectCorpusFailure(const char *object, ObjObligation obligation)
{
    std::optional<CorpusContext> ctx = corpusContext();
    ASSERT_TRUE(ctx.has_value()) << "missing corpus base.balign";
    const std::optional<std::vector<std::uint8_t>> bytes =
        readBytes(std::string(kCorpusDir) + "/" + object);
    ASSERT_TRUE(bytes.has_value()) << "missing corpus fixture " << object;

    const ObjCheckResult result =
        checkObject(ctx->program, ctx->relaxed, *bytes);
    EXPECT_FALSE(result.verified()) << object << " verified unexpectedly";
    EXPECT_GT(
        result.obligations[static_cast<std::size_t>(obligation)].failures,
        0u)
        << object << " did not fail " << objObligationName(obligation)
        << "; first failure: "
        << (result.failures.empty()
                ? "(none)"
                : formatObjFailure(result.failures.front()));
}

}  // namespace

// ---------------------------------------------------------------------
// Decoder.

TEST(Disasm, DecodeRoundTripsRelaxedSlotsUnderBothModels)
{
    const Program program = emitBase();
    const ProgramLayout layout = alignWith(program, AlignerKind::Cost);

    for (const EncodingModelKind kind : allEncodingModelKinds()) {
        SCOPED_TRACE(encodingModelKindName(kind));
        const EncodingModel &em = encodingModel(kind);
        const RelaxedLayout relaxed = relaxLayout(program, layout, em);
        ASSERT_TRUE(relaxed.converged) << relaxed.diagnostic;

        const ParsedElf parsed =
            parseElfObject(buildElfObject(program, relaxed, em));
        ASSERT_TRUE(parsed.ok) << parsed.error;
        const Disassembly disasm = disassembleObject(parsed);
        ASSERT_TRUE(disasm.ok) << disasm.error;
        EXPECT_EQ(disasm.model, kind);
        EXPECT_EQ(disasm.textBytes, relaxed.totalBytes);
        ASSERT_EQ(disasm.procs.size(),
                  static_cast<std::size_t>(program.numProcs()));

        for (ProcId p = 0; p < program.numProcs(); ++p) {
            const DecodedProc &proc = disasm.procs[p];
            const RelaxedProc &rp = relaxed.procs[p];
            ASSERT_TRUE(proc.ok) << proc.error;
            ASSERT_EQ(proc.instrs.size(), rp.numInstrs);
            for (std::size_t i = 0; i < proc.instrs.size(); ++i) {
                const DecodedInstr &got = proc.instrs[i];
                const RelaxedInstr &want =
                    relaxed.instrs[rp.firstInstr + i];
                ASSERT_EQ(got.addr, want.byteAddr);
                ASSERT_EQ(got.size, want.size);
                ASSERT_EQ(got.cls, want.cls);
                ASSERT_EQ(got.form, want.form);
                const bool branch = want.cls == InstrClass::CondBranch ||
                                    want.cls == InstrClass::Jump;
                ASSERT_EQ(got.hasTarget, branch);
                if (branch) {
                    ASSERT_EQ(got.disp, want.disp);
                    ASSERT_EQ(got.target,
                              want.byteAddr + want.size + want.disp);
                } else {
                    // Call displacement fields are zero in the bytes —
                    // the relocation carries the target.
                    ASSERT_EQ(got.disp, 0);
                }
            }
        }
    }
}

TEST(Disasm, VariableRejectsUnknownOpcode)
{
    // 0x90 is a real x86 nop, but NOT in the documented variable
    // instruction set — the decoder must reject it, not guess.
    const ParsedElf elf =
        fakeElf(62, {0x90}, {funcSym("f", 0, 1)});
    const Disassembly disasm = disassembleObject(elf);
    ASSERT_TRUE(disasm.ok);
    ASSERT_EQ(disasm.procs.size(), 1u);
    EXPECT_FALSE(disasm.procs[0].ok);
    EXPECT_NE(disasm.procs[0].error.find("byte 0"), std::string::npos)
        << disasm.procs[0].error;
}

TEST(Disasm, VariableRejectsTruncatedInstruction)
{
    // e8 needs four displacement bytes; only one follows.
    const ParsedElf elf =
        fakeElf(62, {0xe8, 0x00}, {funcSym("f", 0, 2)});
    const Disassembly disasm = disassembleObject(elf);
    ASSERT_TRUE(disasm.ok);
    ASSERT_EQ(disasm.procs.size(), 1u);
    EXPECT_FALSE(disasm.procs[0].ok);
}

TEST(Disasm, FixedWordRejectsNonzeroBodyField)
{
    // Tag 0xb0 (body) with a nonzero 24-bit field.
    const ParsedElf elf =
        fakeElf(0, {0xb0, 0x01, 0x00, 0x00}, {funcSym("f", 0, 4)});
    const Disassembly disasm = disassembleObject(elf);
    ASSERT_TRUE(disasm.ok);
    ASSERT_EQ(disasm.procs.size(), 1u);
    EXPECT_FALSE(disasm.procs[0].ok);
}

TEST(Disasm, UnknownMachineIsStructural)
{
    const ParsedElf elf = fakeElf(3, {0xc3}, {funcSym("f", 0, 1)});
    const Disassembly disasm = disassembleObject(elf);
    EXPECT_FALSE(disasm.ok);
    EXPECT_FALSE(disasm.error.empty());
}

TEST(Disasm, LiftCfgRecoversLeadersAndSuccessors)
{
    // 0: body; 4: cond -> 16; 6: body; 10: jump -> 0; 12: body; 16: ret.
    std::vector<CfgInstr> instrs(6);
    instrs[0] = {0, InstrClass::Body, false, 0};
    instrs[1] = {4, InstrClass::CondBranch, true, 16};
    instrs[2] = {6, InstrClass::Body, false, 0};
    instrs[3] = {10, InstrClass::Jump, true, 0};
    instrs[4] = {12, InstrClass::Body, false, 0};
    instrs[5] = {16, InstrClass::Return, false, 0};

    const LiftedCfg cfg = liftCfg(instrs, 0, 17);
    ASSERT_EQ(cfg.blocks.size(), 4u);

    EXPECT_EQ(cfg.blocks[0].addr, 0u);
    EXPECT_EQ(cfg.blocks[0].numInstrs, 2u);
    EXPECT_EQ(cfg.blocks[0].terminator, InstrClass::CondBranch);
    EXPECT_EQ(cfg.blocks[0].succs, (std::vector<std::uint64_t>{6, 16}));

    EXPECT_EQ(cfg.blocks[1].addr, 6u);
    EXPECT_EQ(cfg.blocks[1].numInstrs, 2u);
    EXPECT_EQ(cfg.blocks[1].terminator, InstrClass::Jump);
    EXPECT_EQ(cfg.blocks[1].succs, (std::vector<std::uint64_t>{0}));

    // A body-terminated block simply runs into the next leader.
    EXPECT_EQ(cfg.blocks[2].addr, 12u);
    EXPECT_EQ(cfg.blocks[2].terminator, InstrClass::Body);
    EXPECT_EQ(cfg.blocks[2].succs, (std::vector<std::uint64_t>{16}));

    EXPECT_EQ(cfg.blocks[3].addr, 16u);
    EXPECT_EQ(cfg.blocks[3].terminator, InstrClass::Return);
    EXPECT_TRUE(cfg.blocks[3].succs.empty());
}

// ---------------------------------------------------------------------
// Object checker.

TEST(CheckObj, CleanObjectDischargesEveryObligation)
{
    const Program program = emitBase();
    const ProgramLayout layout = alignWith(program, AlignerKind::Cost);

    for (const EncodingModelKind kind : allEncodingModelKinds()) {
        SCOPED_TRACE(encodingModelKindName(kind));
        const EncodingModel &em = encodingModel(kind);
        const RelaxedLayout relaxed = relaxLayout(program, layout, em);
        ASSERT_TRUE(relaxed.converged) << relaxed.diagnostic;

        const ObjCheckResult result = checkObject(
            program, relaxed, buildElfObject(program, relaxed, em));
        EXPECT_TRUE(result.verified())
            << formatObjFailure(result.failures.front());
        // Every obligation actually ran: emitBase has branches (branch-
        // target, cfg-isomorphism) and a call (reloc-correctness).
        for (std::size_t i = 0; i < kNumObjObligations; ++i) {
            EXPECT_GT(result.obligations[i].checks, 0u)
                << objObligationName(static_cast<ObjObligation>(i));
            EXPECT_EQ(result.obligations[i].failures, 0u)
                << objObligationName(static_cast<ObjObligation>(i));
        }
    }
}

TEST(CheckObj, MachineMismatchFailsDecodeTotality)
{
    const Program program = emitBase();
    const ProgramLayout layout = alignWith(program, AlignerKind::Cost);
    const EncodingModel &fixed =
        encodingModel(EncodingModelKind::FixedWord);
    const EncodingModel &variable =
        encodingModel(EncodingModelKind::Variable);

    // Fixed-word object, variable-model expectation.
    const RelaxedLayout fixedRelaxed = relaxLayout(program, layout, fixed);
    const RelaxedLayout variableRelaxed =
        relaxLayout(program, layout, variable);
    const ObjCheckResult result =
        checkObject(program, variableRelaxed,
                    buildElfObject(program, fixedRelaxed, fixed));
    EXPECT_FALSE(result.verified());
    EXPECT_GT(result
                  .obligations[static_cast<std::size_t>(
                      ObjObligation::DecodeTotality)]
                  .failures,
              0u);
}

TEST(CheckObj, LayoutMismatchIsCaught)
{
    // An object honestly emitted for one layout must not validate
    // against another layout's relaxation.
    const Program program = emitBase();
    const EncodingModel &em = encodingModel(EncodingModelKind::Variable);
    const RelaxedLayout costRelaxed = relaxLayout(
        program, alignWith(program, AlignerKind::Cost), em);
    const RelaxedLayout originalRelaxed = relaxLayout(
        program, alignWith(program, AlignerKind::Original), em);
    ASSERT_NE(encodeText(costRelaxed, em), encodeText(originalRelaxed, em))
        << "aligners produced identical bytes; pick a different pair";

    const ObjCheckResult result =
        checkObject(program, originalRelaxed,
                    buildElfObject(program, costRelaxed, em));
    EXPECT_FALSE(result.verified());
    EXPECT_GT(result.totalFailures(), 0u);
}

TEST(CheckObj, ObligationNamesAreStable)
{
    EXPECT_STREQ(objObligationName(ObjObligation::DecodeTotality),
                 "decode-totality");
    EXPECT_STREQ(objObligationName(ObjObligation::BranchTarget),
                 "branch-target");
    EXPECT_STREQ(objObligationName(ObjObligation::RelocCorrectness),
                 "reloc-correctness");
    EXPECT_STREQ(objObligationName(ObjObligation::CfgIsomorphism),
                 "cfg-isomorphism");
    EXPECT_STREQ(objObligationName(ObjObligation::SizeAccounting),
                 "size-accounting");

    ObjFailure failure;
    failure.obligation = ObjObligation::BranchTarget;
    failure.proc = 0;
    failure.byteAddr = 42;
    failure.detail = "boom";
    EXPECT_EQ(formatObjFailure(failure),
              "check-obj[branch-target] proc=0 byte=42: boom");
}

TEST(CheckObj, CertificateJsonCarriesSchemaObligationsAndProcSizes)
{
    const Program program = emitBase();
    const EncodingModel &em = encodingModel(EncodingModelKind::Variable);
    const RelaxedLayout relaxed = relaxLayout(
        program, alignWith(program, AlignerKind::Cost), em);

    ObjCertificate cert;
    cert.program = program.name();
    cert.arch = "fallthrough";
    cert.aligner = "cost";
    cert.objective = "table-cost";
    cert.encoding = em.name();
    cert.result =
        checkObject(program, relaxed, buildElfObject(program, relaxed, em));

    std::ostringstream os;
    writeObjCertificateJson(cert, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"verified\":true"), std::string::npos);
    for (std::size_t i = 0; i < kNumObjObligations; ++i) {
        EXPECT_NE(
            json.find(objObligationName(static_cast<ObjObligation>(i))),
            std::string::npos);
    }
    // The unified per-procedure size schema shared with `emit --json`.
    EXPECT_NE(json.find("\"procs\":["), std::string::npos);
    EXPECT_NE(json.find("\"text_bytes\":"), std::string::npos);
    EXPECT_NE(json.find("\"short_branches\":"), std::string::npos);
    EXPECT_NE(json.find("\"near_branches\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// obj.* lint rules.

TEST(ObjLint, LongFormBranchesAreReported)
{
    const Program program = fixtureProgram();
    const EncodingModel &em = encodingModel(EncodingModelKind::Variable);
    const RelaxedLayout relaxed = relaxLayout(
        program, alignWith(program, AlignerKind::Original), em);
    ASSERT_GT(relaxed.nearBranches, 0u)
        << "fixture no longer forces a near branch";

    const ParsedElf parsed =
        parseElfObject(buildElfObject(program, relaxed, em));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const Disassembly disasm = disassembleObject(parsed);

    std::vector<Diagnostic> sink;
    lintObject(program, disasm, em.name(), sink);
    std::size_t longForm = 0;
    for (const Diagnostic &diag : sink) {
        EXPECT_NE(diag.rule, "obj.unreachable") << diag.message;
        if (diag.rule == "obj.long-form") {
            ++longForm;
            EXPECT_EQ(diag.aligner, "variable");
        }
    }
    EXPECT_EQ(longForm, relaxed.nearBranches);
}

TEST(ObjLint, UnreachableDecodedBlockIsReported)
{
    // ret; nop; ret — everything after the first return is dead bytes.
    Program program("t");
    const ProcId f = program.addProc("f");
    {
        CfgBuilder b(program.proc(f));
        b.block(1, Terminator::Return);
    }
    validateOrDie(program);

    const ParsedElf elf = fakeElf(
        62, {0xc3, 0x0f, 0x1f, 0x40, 0x00, 0xc3}, {funcSym("f", 0, 6)});
    const Disassembly disasm = disassembleObject(elf);
    ASSERT_TRUE(disasm.ok);
    ASSERT_TRUE(disasm.procs[0].ok) << disasm.procs[0].error;

    std::vector<Diagnostic> sink;
    lintObject(program, disasm, "variable", sink);
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink[0].rule, "obj.unreachable");
    EXPECT_NE(sink[0].message.find("byte 1"), std::string::npos)
        << sink[0].message;
}

// ---------------------------------------------------------------------
// Fuzz gate.

TEST(DisasmGate, CleanOnWellFormedProgram)
{
    EXPECT_STREQ(divergenceKindName(DivergenceKind::Disasm), "disasm");
    const std::optional<Divergence> divergence =
        disasmGateCheck(emitBase());
    EXPECT_FALSE(divergence.has_value())
        << formatDivergence(*divergence);
}

// ---------------------------------------------------------------------
// Malformed-object corpus.

TEST(DisasmCorpus, Regenerate)
{
    if (std::getenv("BALIGN_REGEN_DISASM_CORPUS") == nullptr)
        GTEST_SKIP() << "set BALIGN_REGEN_DISASM_CORPUS=1 to regenerate";

    Repro repro;
    repro.program = fixtureProgram();
    repro.walk.seed = 11;
    repro.walk.instrBudget = 5'000;
    saveRepro(repro, std::string(kCorpusDir) + "/base.balign");

    // Round-trip through the exact pipeline the checking tests use.
    std::optional<CorpusContext> ctx = corpusContext();
    ASSERT_TRUE(ctx.has_value());
    ASSERT_TRUE(ctx->relaxed.converged);
    ASSERT_GT(ctx->relaxed.shortBranches, 0u);
    ASSERT_GT(ctx->relaxed.nearBranches, 0u);

    const std::vector<std::uint8_t> clean = buildElfObject(
        ctx->program, ctx->relaxed,
        encodingModel(EncodingModelKind::Variable));
    ASSERT_TRUE(
        checkObject(ctx->program, ctx->relaxed, clean).verified());
    writeBytes(std::string(kCorpusDir) + "/base.o", clean);

    writeBytes(std::string(kCorpusDir) + "/truncated-text.o",
               corruptTruncateText(clean));
    writeBytes(std::string(kCorpusDir) + "/overlap.o",
               corruptOverlapProcs(clean));
    writeBytes(std::string(kCorpusDir) + "/bad-target.o",
               corruptBranchTarget(clean, ctx->relaxed));
    writeBytes(std::string(kCorpusDir) + "/bad-addend.o",
               corruptRelocAddend(clean));
    writeBytes(std::string(kCorpusDir) + "/jump-swap.o",
               corruptJumpSwap(clean, ctx->relaxed));
}

TEST(DisasmCorpus, CorpusBaseObjectVerifies)
{
    std::optional<CorpusContext> ctx = corpusContext();
    ASSERT_TRUE(ctx.has_value()) << "missing corpus base.balign";
    const std::optional<std::vector<std::uint8_t>> bytes =
        readBytes(std::string(kCorpusDir) + "/base.o");
    ASSERT_TRUE(bytes.has_value()) << "missing corpus base.o";
    const ObjCheckResult result =
        checkObject(ctx->program, ctx->relaxed, *bytes);
    EXPECT_TRUE(result.verified())
        << "corpus is stale — regenerate with "
           "BALIGN_REGEN_DISASM_CORPUS=1; first failure: "
        << formatObjFailure(result.failures.front());
}

TEST(DisasmCorpus, TruncatedTextFailsSizeAccounting)
{
    expectCorpusFailure("truncated-text.o", ObjObligation::SizeAccounting);
}

TEST(DisasmCorpus, OverlappingProceduresFailDecodeTotality)
{
    expectCorpusFailure("overlap.o", ObjObligation::DecodeTotality);
}

TEST(DisasmCorpus, NonBoundaryDisplacementFailsBranchTarget)
{
    expectCorpusFailure("bad-target.o", ObjObligation::BranchTarget);
}

TEST(DisasmCorpus, FlippedAddendFailsRelocCorrectness)
{
    expectCorpusFailure("bad-addend.o", ObjObligation::RelocCorrectness);
}

TEST(DisasmCorpus, SwappedOpcodeFailsCfgIsomorphism)
{
    expectCorpusFailure("jump-swap.o", ObjObligation::CfgIsomorphism);
}
