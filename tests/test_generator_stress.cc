/**
 * @file
 * Stress tests for the workload generator and the full pipeline under
 * extreme parameter settings — robustness against degenerate shapes
 * (no loops, all switches, single block budgets, huge call densities).
 */

#include <gtest/gtest.h>

#include "cfg/validate.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "workload/generator.h"

using namespace balign;

namespace {

ProgramSpec
base(std::uint64_t seed)
{
    ProgramSpec spec;
    spec.name = "stress";
    spec.seed = seed;
    spec.numProcs = 4;
    spec.minBlocksPerProc = 3;
    spec.maxBlocksPerProc = 12;
    spec.traceInstrs = 20'000;
    return spec;
}

void
runFullPipeline(const ProgramSpec &spec)
{
    const PreparedProgram prepared = prepareProgram(spec);
    EXPECT_TRUE(validate(prepared.program).empty()) << spec.name;
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::Fallthrough, AlignerKind::Try15},
        {Arch::BtbSmall, AlignerKind::Cost},
    };
    const ExperimentRun run = runConfigs(prepared, configs);
    EXPECT_GT(run.origInstrs, 0u);
    for (const auto &cell : run.cells)
        EXPECT_GE(cell.relCpi, 0.99);
}

}  // namespace

TEST(GeneratorStress, NoLoopsAtAll)
{
    ProgramSpec spec = base(1);
    spec.loopProb = 0.0;
    spec.tightLoopProb = 0.0;
    runFullPipeline(spec);
}

TEST(GeneratorStress, OnlyLoops)
{
    ProgramSpec spec = base(2);
    spec.loopProb = 1.0;
    spec.ifProb = 0.0;
    spec.switchProb = 0.0;
    spec.earlyReturnProb = 0.0;
    runFullPipeline(spec);
}

TEST(GeneratorStress, SwitchHeavy)
{
    ProgramSpec spec = base(3);
    spec.switchProb = 0.8;
    spec.maxSwitchCases = 8;
    spec.loopProb = 0.05;
    runFullPipeline(spec);
}

TEST(GeneratorStress, CallSaturated)
{
    ProgramSpec spec = base(4);
    spec.callProb = 1.0;
    spec.numProcs = 8;
    runFullPipeline(spec);
}

TEST(GeneratorStress, TinyBlocks)
{
    ProgramSpec spec = base(5);
    spec.avgBlockInstrs = 1;
    runFullPipeline(spec);
}

TEST(GeneratorStress, HugeBlocks)
{
    ProgramSpec spec = base(6);
    spec.avgBlockInstrs = 200;
    runFullPipeline(spec);
}

TEST(GeneratorStress, MinimalBudget)
{
    ProgramSpec spec = base(7);
    spec.minBlocksPerProc = 1;
    spec.maxBlocksPerProc = 1;
    runFullPipeline(spec);
}

TEST(GeneratorStress, DeepNesting)
{
    ProgramSpec spec = base(8);
    spec.maxLoopDepth = 6;
    spec.loopProb = 0.6;
    spec.maxBlocksPerProc = 60;
    runFullPipeline(spec);
}

TEST(GeneratorStress, AlwaysEarlyReturn)
{
    ProgramSpec spec = base(9);
    spec.earlyReturnProb = 0.9;
    runFullPipeline(spec);
}

TEST(GeneratorStress, SingleProcedure)
{
    ProgramSpec spec = base(10);
    spec.numProcs = 1;
    runFullPipeline(spec);
}

TEST(GeneratorStress, AllPatternsAndCorrelation)
{
    ProgramSpec spec = base(11);
    spec.fixedTripProb = 1.0;
    spec.patternedIfProb = 1.0;
    spec.correlatedIfProb = 1.0;
    runFullPipeline(spec);
}

TEST(GeneratorStress, ExtremeBias)
{
    ProgramSpec spec = base(12);
    spec.loopContinueProb = 0.995;
    spec.loopContinueJitter = 0.0;
    spec.ifSkewHot = 0.999;
    spec.balancedIfProb = 0.0;
    runFullPipeline(spec);
}

TEST(GeneratorStress, ManyProcedures)
{
    ProgramSpec spec = base(13);
    spec.numProcs = 64;
    spec.minBlocksPerProc = 2;
    spec.maxBlocksPerProc = 5;
    runFullPipeline(spec);
}
