/**
 * @file
 * Tests for the Profiler: edge weights, break-type counters and the
 * Table-2 statistics record, checked against hand-computable CFGs.
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "trace/profiler.h"
#include "trace/walker.h"

using namespace balign;

namespace {

/// entry -> loop(cond, self x bias) -> tail(uncond) -> ret.
Program
mixedProgram()
{
    Program program("mixed");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        Procedure &proc = program.proc(main_id);
        CfgBuilder b(proc);
        const BlockId entry = b.block(2, Terminator::FallThrough);
        const BlockId loop = b.block(4, Terminator::CondBranch);
        const BlockId tail = b.block(2, Terminator::UncondBranch);
        const BlockId ret = b.block(1, Terminator::Return);
        b.fallThrough(entry, loop, 0, 1.0);
        b.taken(loop, loop, 0, 0.8);
        b.fallThrough(loop, tail, 0, 0.2);
        b.taken(tail, ret, 0, 1.0);
        b.call(entry, leaf_id, 0);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        b.block(3, Terminator::Return);
    }
    return program;
}

}  // namespace

TEST(Profiler, WeightsAreFlowConserving)
{
    Program program = mixedProgram();
    Profiler profiler(program);
    WalkOptions options;
    options.instrBudget = 100'000;
    walk(program, options, profiler);

    const Procedure &proc = program.proc(0);
    // Flow into the loop block equals flow out of it (self edge counted on
    // both sides), modulo the at-most-one truncated run at budget end.
    const Weight in = proc.blockWeight(1);
    Weight out = 0;
    for (auto index : proc.block(1).outEdges)
        out += proc.edge(index).weight;
    EXPECT_NEAR(static_cast<double>(in), static_cast<double>(out), 1.0);
}

TEST(Profiler, CountsBreakTypes)
{
    Program program = mixedProgram();
    Profiler profiler(program);
    WalkOptions options;
    options.instrBudget = 50'000;
    options.restartOnExit = true;
    walk(program, options, profiler);
    const ProgramStats stats = profiler.stats();

    EXPECT_GT(stats.condBranches, 0u);
    EXPECT_GT(stats.takenCondBranches, 0u);
    EXPECT_GT(stats.uncondBranches, 0u);
    EXPECT_GT(stats.calls, 0u);
    EXPECT_GT(stats.returns, 0u);
    EXPECT_EQ(stats.indirectJumps, 0u);

    // Each completed run: 1 uncond; cond branches >= uncond (loop).
    EXPECT_GE(stats.condBranches, stats.uncondBranches);
    // Every call returns (leaf always returns; main's returns end runs).
    EXPECT_GE(stats.returns, stats.calls);
}

TEST(Profiler, InstrsTracedMatchesWalkResult)
{
    Program program = mixedProgram();
    Profiler profiler(program);
    WalkOptions options;
    options.instrBudget = 30'000;
    const WalkResult result = walk(program, options, profiler);
    EXPECT_EQ(profiler.stats().instrsTraced, result.instrs);
}

TEST(Profiler, TakenFractionMatchesBias)
{
    Program program = mixedProgram();
    Profiler profiler(program);
    WalkOptions options;
    options.instrBudget = 400'000;
    walk(program, options, profiler);
    const ProgramStats stats = profiler.stats();
    EXPECT_NEAR(stats.pctTaken(), 80.0, 2.0);
}

TEST(Profiler, StaticStatsFilled)
{
    Program program = mixedProgram();
    Profiler profiler(program);
    WalkOptions options;
    options.instrBudget = 50'000;
    walk(program, options, profiler);
    const ProgramStats stats = profiler.stats();

    EXPECT_EQ(stats.staticCondSites, 1u);
    EXPECT_EQ(stats.q50, 1u);
    EXPECT_EQ(stats.q100, 1u);
}

TEST(Profiler, PercentagesSumSensibly)
{
    Program program = mixedProgram();
    Profiler profiler(program);
    WalkOptions options;
    options.instrBudget = 50'000;
    walk(program, options, profiler);
    const ProgramStats stats = profiler.stats();

    const double total = stats.pctCondOfBreaks() +
                         stats.pctIndirectOfBreaks() +
                         stats.pctUncondOfBreaks() + stats.pctCallOfBreaks() +
                         stats.pctReturnOfBreaks();
    EXPECT_NEAR(total, 100.0, 1e-9);
    EXPECT_GT(stats.pctBreaks(), 0.0);
    EXPECT_LT(stats.pctBreaks(), 100.0);
}

TEST(Profiler, ReprofilingAfterClearMatches)
{
    Program program = mixedProgram();
    WalkOptions options;
    options.instrBudget = 20'000;

    Profiler first(program);
    walk(program, options, first);
    std::vector<Weight> weights_a;
    for (const auto &edge : program.proc(0).edges())
        weights_a.push_back(edge.weight);

    program.clearWeights();
    Profiler second(program);
    walk(program, options, second);
    std::vector<Weight> weights_b;
    for (const auto &edge : program.proc(0).edges())
        weights_b.push_back(edge.weight);

    EXPECT_EQ(weights_a, weights_b);
}
