/**
 * @file
 * Tests for the ChainSet: linking rules, cycle rejection, the entry-block
 * constraint, O(1) endpoint bookkeeping, LIFO undo, and a randomized
 * property test against a brute-force reference.
 */

#include <gtest/gtest.h>

#include "layout/chain.h"
#include "support/rng.h"

using namespace balign;

TEST(ChainSet, InitiallySingletons)
{
    ChainSet chains(4);
    for (BlockId b = 0; b < 4; ++b) {
        EXPECT_EQ(chains.next(b), kNoBlock);
        EXPECT_EQ(chains.prev(b), kNoBlock);
        EXPECT_EQ(chains.head(b), b);
        EXPECT_EQ(chains.tail(b), b);
    }
    EXPECT_EQ(chains.chains().size(), 4u);
    EXPECT_EQ(chains.numLinks(), 0u);
}

TEST(ChainSet, BasicLink)
{
    ChainSet chains(4);
    EXPECT_TRUE(chains.link(1, 2));
    EXPECT_EQ(chains.next(1), 2u);
    EXPECT_EQ(chains.prev(2), 1u);
    EXPECT_EQ(chains.head(2), 1u);
    EXPECT_EQ(chains.tail(1), 2u);
    EXPECT_TRUE(chains.sameChain(1, 2));
    EXPECT_FALSE(chains.sameChain(1, 3));
}

TEST(ChainSet, RejectsBusyEndpoints)
{
    ChainSet chains(4);
    ASSERT_TRUE(chains.link(1, 2));
    EXPECT_FALSE(chains.canLink(1, 3));  // 1 already has a successor
    EXPECT_FALSE(chains.canLink(3, 2));  // 2 already has a predecessor
    EXPECT_TRUE(chains.canLink(2, 3));   // extending the tail is fine
}

TEST(ChainSet, RejectsSelfLink)
{
    ChainSet chains(3);
    EXPECT_FALSE(chains.canLink(1, 1));
    EXPECT_FALSE(chains.link(1, 1));
}

TEST(ChainSet, RejectsLinkIntoEntry)
{
    ChainSet chains(3, 0);
    EXPECT_FALSE(chains.canLink(1, 0));
    EXPECT_TRUE(chains.canLink(0, 1));
}

TEST(ChainSet, RejectsCycles)
{
    ChainSet chains(4);
    ASSERT_TRUE(chains.link(1, 2));
    ASSERT_TRUE(chains.link(2, 3));
    EXPECT_FALSE(chains.canLink(3, 1));  // would close 1-2-3-1
    EXPECT_FALSE(chains.link(3, 1));
}

TEST(ChainSet, MergeChains)
{
    ChainSet chains(6);
    ASSERT_TRUE(chains.link(1, 2));
    ASSERT_TRUE(chains.link(3, 4));
    ASSERT_TRUE(chains.link(2, 3));  // merge [1,2] + [3,4]
    EXPECT_EQ(chains.head(4), 1u);
    EXPECT_EQ(chains.tail(1), 4u);
    EXPECT_TRUE(chains.sameChain(1, 4));

    const auto lists = chains.chains();
    // Chains: [0], [1,2,3,4], [5].
    ASSERT_EQ(lists.size(), 3u);
    EXPECT_EQ(lists[1], (std::vector<BlockId>{1, 2, 3, 4}));
}

TEST(ChainSet, UnlinkRestoresState)
{
    ChainSet chains(4);
    ASSERT_TRUE(chains.link(1, 2));
    ASSERT_TRUE(chains.link(2, 3));
    chains.unlink(2, 3);
    EXPECT_EQ(chains.next(2), kNoBlock);
    EXPECT_EQ(chains.prev(3), kNoBlock);
    EXPECT_EQ(chains.tail(1), 2u);
    EXPECT_EQ(chains.head(3), 3u);
    EXPECT_EQ(chains.numLinks(), 1u);
    // Re-linking after undo works.
    EXPECT_TRUE(chains.link(2, 3));
}

TEST(ChainSet, LifoUndoSequence)
{
    ChainSet chains(6);
    ASSERT_TRUE(chains.link(1, 2));
    ASSERT_TRUE(chains.link(3, 4));
    ASSERT_TRUE(chains.link(2, 3));
    ASSERT_TRUE(chains.link(4, 5));
    chains.unlink(4, 5);
    chains.unlink(2, 3);
    chains.unlink(3, 4);
    chains.unlink(1, 2);
    for (BlockId b = 0; b < 6; ++b) {
        EXPECT_EQ(chains.next(b), kNoBlock);
        EXPECT_EQ(chains.head(b), b);
        EXPECT_EQ(chains.tail(b), b);
    }
}

TEST(ChainSetDeath, UnlinkNonexistentPanics)
{
    ChainSet chains(3);
    EXPECT_DEATH(chains.unlink(0, 1), "not linked");
}

TEST(ChainSet, ChainsCoverEveryBlockOnce)
{
    ChainSet chains(8, 0);
    chains.link(0, 3);
    chains.link(3, 5);
    chains.link(1, 2);
    chains.link(6, 7);
    const auto lists = chains.chains();
    std::vector<int> seen(8, 0);
    for (const auto &chain : lists)
        for (BlockId b : chain)
            ++seen[b];
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

/**
 * Property test: random link/unlink sequences agree with a brute-force
 * reference implementation (adjacency walking).
 */
TEST(ChainSet, RandomizedAgainstBruteForce)
{
    const std::size_t n = 12;
    Rng rng(2024);
    for (int round = 0; round < 50; ++round) {
        ChainSet chains(n, 0);
        std::vector<BlockId> next_ref(n, kNoBlock), prev_ref(n, kNoBlock);
        std::vector<std::pair<BlockId, BlockId>> stack;

        auto ref_head = [&](BlockId b) {
            while (prev_ref[b] != kNoBlock)
                b = prev_ref[b];
            return b;
        };
        auto ref_can_link = [&](BlockId s, BlockId d) {
            return s != d && d != 0 && next_ref[s] == kNoBlock &&
                   prev_ref[d] == kNoBlock && ref_head(s) != d;
        };

        for (int step = 0; step < 200; ++step) {
            const bool do_unlink =
                !stack.empty() && rng.nextBool(0.35);
            if (do_unlink) {
                const auto [s, d] = stack.back();
                stack.pop_back();
                chains.unlink(s, d);
                next_ref[s] = kNoBlock;
                prev_ref[d] = kNoBlock;
            } else {
                const auto s = static_cast<BlockId>(rng.nextBounded(n));
                const auto d = static_cast<BlockId>(rng.nextBounded(n));
                const bool expect = ref_can_link(s, d);
                ASSERT_EQ(chains.canLink(s, d), expect)
                    << "round " << round << " step " << step << " link "
                    << s << "->" << d;
                if (chains.link(s, d)) {
                    stack.emplace_back(s, d);
                    next_ref[s] = d;
                    prev_ref[d] = s;
                }
            }
            // Spot-check endpoint bookkeeping.
            const auto probe = static_cast<BlockId>(rng.nextBounded(n));
            EXPECT_EQ(chains.head(probe), ref_head(probe));
        }
    }
}
