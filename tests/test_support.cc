/**
 * @file
 * Unit tests for support utilities: saturating counters, statistics
 * accumulators, coverage counting and the table writer.
 */

#include <gtest/gtest.h>

#include "support/saturating_counter.h"
#include "support/stats.h"
#include "support/table.h"

using namespace balign;

// ---- SaturatingCounter ---------------------------------------------------

TEST(SaturatingCounter, TwoBitDefaultsWeaklyNotTaken)
{
    SaturatingCounter c(2);
    EXPECT_EQ(c.value(), 1u);
    EXPECT_FALSE(c.taken());
}

TEST(SaturatingCounter, TwoBitHysteresis)
{
    SaturatingCounter c(2);
    c.update(true);  // 1 -> 2
    EXPECT_TRUE(c.taken());
    c.update(false);  // 2 -> 1
    EXPECT_FALSE(c.taken());
}

TEST(SaturatingCounter, SaturatesAtBounds)
{
    SaturatingCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3u);
    for (int i = 0; i < 10; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), 0u);
}

TEST(SaturatingCounter, OneBitFlipsImmediately)
{
    SaturatingCounter c(1);
    EXPECT_FALSE(c.taken());
    c.update(true);
    EXPECT_TRUE(c.taken());
    c.update(false);
    EXPECT_FALSE(c.taken());
}

TEST(SaturatingCounter, ResetWeak)
{
    SaturatingCounter c(2);
    c.resetWeak(true);
    EXPECT_TRUE(c.taken());
    EXPECT_EQ(c.value(), 2u);
    c.resetWeak(false);
    EXPECT_FALSE(c.taken());
    EXPECT_EQ(c.value(), 1u);
}

TEST(SaturatingCounter, ExplicitInitialClamped)
{
    SaturatingCounter c(2, 99);
    EXPECT_EQ(c.value(), 3u);
}

class CounterWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CounterWidthSweep, TakenThresholdIsUpperHalf)
{
    const unsigned bits = GetParam();
    const unsigned max = (1u << bits) - 1;
    for (unsigned v = 0; v <= max; ++v) {
        SaturatingCounter c(bits, v);
        EXPECT_EQ(c.taken(), v > max / 2) << "bits=" << bits << " v=" << v;
    }
}

TEST_P(CounterWidthSweep, MonotoneUpdates)
{
    const unsigned bits = GetParam();
    SaturatingCounter c(bits, 0);
    unsigned prev = c.value();
    for (unsigned i = 0; i < (2u << bits); ++i) {
        c.update(true);
        EXPECT_GE(c.value(), prev);
        prev = c.value();
    }
    EXPECT_EQ(c.value(), (1u << bits) - 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterWidthSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

// ---- Accumulator ----------------------------------------------------------

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator acc;
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_EQ(acc.mean(), 5.0);
    EXPECT_EQ(acc.min(), 5.0);
    EXPECT_EQ(acc.max(), 5.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_EQ(acc.min(), 2.0);
    EXPECT_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, NegativeValues)
{
    Accumulator acc;
    acc.add(-3.0);
    acc.add(3.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.min(), -3.0);
    EXPECT_EQ(acc.max(), 3.0);
}

// ---- coverageCount ----------------------------------------------------------

TEST(CoverageCount, EmptyIsZero)
{
    EXPECT_EQ(coverageCount({}, 0.5), 0u);
}

TEST(CoverageCount, AllZeroWeights)
{
    EXPECT_EQ(coverageCount({0, 0, 0}, 0.5), 0u);
}

TEST(CoverageCount, SingleDominantItem)
{
    // 90 of 100 total in one item: Q-50 and Q-90 need only it.
    const std::vector<std::uint64_t> w = {90, 5, 3, 2};
    EXPECT_EQ(coverageCount(w, 0.50), 1u);
    EXPECT_EQ(coverageCount(w, 0.90), 1u);
    EXPECT_EQ(coverageCount(w, 0.95), 2u);
    EXPECT_EQ(coverageCount(w, 1.00), 4u);
}

TEST(CoverageCount, UniformWeights)
{
    const std::vector<std::uint64_t> w(10, 7);
    EXPECT_EQ(coverageCount(w, 0.50), 5u);
    EXPECT_EQ(coverageCount(w, 0.90), 9u);
    EXPECT_EQ(coverageCount(w, 1.00), 10u);
}

TEST(CoverageCount, Q100IgnoresZeroItems)
{
    const std::vector<std::uint64_t> w = {10, 0, 5, 0};
    EXPECT_EQ(coverageCount(w, 1.00), 2u);
}

TEST(SafeRatio, DivisionByZero)
{
    EXPECT_EQ(safeRatio(5.0, 0.0), 0.0);
    EXPECT_EQ(pct(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(pct(1.0, 4.0), 25.0);
}

// ---- Table ------------------------------------------------------------------

TEST(Table, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(7), "7");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(5240969), "5,240,969");
    EXPECT_EQ(withCommas(1234567890123ull), "1,234,567,890,123");
}

TEST(Table, Fixed)
{
    EXPECT_EQ(fixed(1.2345, 3), "1.234");
    EXPECT_EQ(fixed(1.5, 0), "2");
    EXPECT_EQ(fixed(-0.125, 2), "-0.12");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"Name", "Value"});
    t.row().cell("alpha").cell(std::uint64_t{1});
    t.row().cell("bb").cell(std::uint64_t{22});
    const std::string out = t.str();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, SeparatorRows)
{
    Table t({"A"});
    t.row().cell("x");
    t.separator();
    t.row().cell("y");
    const std::string out = t.str();
    // Two rule lines: one under the header, one mid-table.
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("\n-", pos)) != std::string::npos) {
        ++rules;
        pos += 2;
    }
    EXPECT_EQ(rules, 2u);
    EXPECT_EQ(t.numRows(), 3u);  // separator counts as a row slot
}

TEST(Table, NumericFormattingInCells)
{
    Table t({"A", "B", "C"});
    t.row().cell("r").cell(3.14159, 2).cell(std::uint64_t{1234567}, true);
    const std::string out = t.str();
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("1,234,567"), std::string::npos);
}
