/**
 * @file
 * Direct tests for the Table-2 statistics record (cfg/cfg_stats.h).
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "cfg/cfg_stats.h"

using namespace balign;

TEST(ProgramStats, PercentagesFromKnownCounts)
{
    ProgramStats stats;
    stats.instrsTraced = 1000;
    stats.condBranches = 60;
    stats.takenCondBranches = 40;
    stats.uncondBranches = 20;
    stats.indirectJumps = 5;
    stats.calls = 10;
    stats.returns = 5;

    EXPECT_EQ(stats.totalBreaks(), 100u);
    EXPECT_DOUBLE_EQ(stats.pctBreaks(), 10.0);
    EXPECT_NEAR(stats.pctTaken(), 100.0 * 40 / 60, 1e-9);
    EXPECT_DOUBLE_EQ(stats.pctCondOfBreaks(), 60.0);
    EXPECT_DOUBLE_EQ(stats.pctUncondOfBreaks(), 20.0);
    EXPECT_DOUBLE_EQ(stats.pctIndirectOfBreaks(), 5.0);
    EXPECT_DOUBLE_EQ(stats.pctCallOfBreaks(), 10.0);
    EXPECT_DOUBLE_EQ(stats.pctReturnOfBreaks(), 5.0);
}

TEST(ProgramStats, EmptyStatsAreZeroNotNan)
{
    const ProgramStats stats;
    EXPECT_EQ(stats.totalBreaks(), 0u);
    EXPECT_EQ(stats.pctBreaks(), 0.0);
    EXPECT_EQ(stats.pctTaken(), 0.0);
    EXPECT_EQ(stats.pctCondOfBreaks(), 0.0);
}

TEST(FillStaticStats, CountsConditionalSitesAndCoverage)
{
    Program program("p");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    // Three conditional sites with executed weights 90, 9, 1.
    const BlockId c1 = b.block(2, Terminator::CondBranch);
    const BlockId c2 = b.block(2, Terminator::CondBranch);
    const BlockId c3 = b.block(2, Terminator::CondBranch);
    const BlockId sink1 = b.block(1, Terminator::Return);
    const BlockId sink2 = b.block(1, Terminator::Return);
    b.fallThrough(c1, c2, 45);
    b.taken(c1, sink1, 45);
    b.fallThrough(c2, c3, 5);
    b.taken(c2, sink2, 4);
    b.fallThrough(c3, sink1, 1);
    b.taken(c3, sink2, 0);

    ProgramStats stats;
    fillStaticStats(program, stats);
    EXPECT_EQ(stats.staticCondSites, 3u);
    EXPECT_EQ(stats.q50, 1u);   // the 90-weight site covers 50%
    EXPECT_EQ(stats.q90, 1u);   // and exactly 90%
    EXPECT_EQ(stats.q99, 2u);   // plus the 9-weight site
    EXPECT_EQ(stats.q100, 3u);
}

TEST(FillStaticStats, IgnoresUnexecutedSitesInQ100)
{
    Program program("p");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId hot = b.block(2, Terminator::CondBranch);
    const BlockId cold = b.block(2, Terminator::CondBranch);
    const BlockId s1 = b.block(1, Terminator::Return);
    const BlockId s2 = b.block(1, Terminator::Return);
    b.fallThrough(hot, cold, 50);
    b.taken(hot, s1, 50);
    b.fallThrough(cold, s1, 0);
    b.taken(cold, s2, 0);

    ProgramStats stats;
    fillStaticStats(program, stats);
    EXPECT_EQ(stats.staticCondSites, 2u);  // static count includes cold
    EXPECT_EQ(stats.q100, 1u);             // coverage counts only executed
}

TEST(FillStaticStats, SpansProcedures)
{
    Program program("p");
    for (int i = 0; i < 2; ++i) {
        Procedure &proc =
            program.proc(program.addProc("p" + std::to_string(i)));
        CfgBuilder b(proc);
        const BlockId c = b.block(2, Terminator::CondBranch);
        const BlockId s1 = b.block(1, Terminator::Return);
        const BlockId s2 = b.block(1, Terminator::Return);
        b.fallThrough(c, s1, 10);
        b.taken(c, s2, 10);
    }
    ProgramStats stats;
    fillStaticStats(program, stats);
    EXPECT_EQ(stats.staticCondSites, 2u);
    EXPECT_EQ(stats.q50, 1u);
    EXPECT_EQ(stats.q100, 2u);
}
