/**
 * @file
 * Golden-equivalence tests for the record-once trace engine: a recorded
 * trace must replay the exact event stream the walker produced, and every
 * evaluation driven from a replay must be bit-identical to one driven by
 * a direct walk.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "bpred/evaluator.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "sim/cpi.h"
#include "trace/profiler.h"
#include "trace/recorder.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

struct Prepared
{
    Program program;
    WalkOptions walk;
};

Prepared
profiledProgram(const char *name, std::uint64_t instrs)
{
    ProgramSpec spec = suiteSpec(name);
    spec.traceInstrs = instrs;
    Prepared prepared{generateProgram(spec), WalkOptions{}};
    prepared.walk.seed = traceSeed(spec);
    prepared.walk.instrBudget = instrs;
    Profiler profiler(prepared.program);
    walk(prepared.program, prepared.walk, profiler);
    return prepared;
}

/// EventSink logging every event as a comparable tuple.
class LogSink : public EventSink
{
  public:
    // (opcode, proc, block-or-edge, call-site offset)
    using Entry = std::tuple<int, ProcId, std::uint32_t, std::uint32_t>;

    void
    onBlock(ProcId proc, BlockId block) override
    {
        log.emplace_back(0, proc, block, 0);
    }

    void
    onCall(ProcId proc, BlockId block, const CallSite &site) override
    {
        log.emplace_back(1, proc, block, site.offset);
    }

    void
    onReturn(ProcId proc, BlockId block, const CallSite &site) override
    {
        log.emplace_back(2, proc, block, site.offset);
    }

    void
    onEdge(ProcId proc, std::uint32_t edge_index) override
    {
        log.emplace_back(3, proc, edge_index, 0);
    }

    void
    onExit() override
    {
        log.emplace_back(4, 0, 0, 0);
    }

    std::vector<Entry> log;
};

void
expectEqualResults(const EvalResult &a, const EvalResult &b,
                   const char *label)
{
    EXPECT_EQ(a.instrs, b.instrs) << label;
    EXPECT_EQ(a.misfetches, b.misfetches) << label;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << label;
    EXPECT_EQ(a.condExec, b.condExec) << label;
    EXPECT_EQ(a.condTaken, b.condTaken) << label;
    EXPECT_EQ(a.condMispredicts, b.condMispredicts) << label;
    EXPECT_EQ(a.uncondExec, b.uncondExec) << label;
    EXPECT_EQ(a.callExec, b.callExec) << label;
    EXPECT_EQ(a.returnExec, b.returnExec) << label;
    EXPECT_EQ(a.returnMispredicts, b.returnMispredicts) << label;
    EXPECT_EQ(a.indirectExec, b.indirectExec) << label;
    EXPECT_EQ(a.btbHits, b.btbHits) << label;
    EXPECT_EQ(a.btbLookups, b.btbLookups) << label;
}

}  // namespace

TEST(Recorder, ReplayReproducesExactEventStream)
{
    for (const char *name : {"compress", "li", "alvinn", "tex"}) {
        const Prepared prepared = profiledProgram(name, 60'000);

        LogSink direct;
        const WalkResult walked =
            walk(prepared.program, prepared.walk, direct);

        const RecordedTrace trace =
            recordTrace(prepared.program, prepared.walk);
        LogSink replayed;
        trace.replay(prepared.program, replayed);

        EXPECT_EQ(trace.numEvents(), direct.log.size()) << name;
        ASSERT_EQ(replayed.log.size(), direct.log.size()) << name;
        EXPECT_TRUE(replayed.log == direct.log) << name;

        EXPECT_EQ(trace.walkResult().instrs, walked.instrs) << name;
        EXPECT_EQ(trace.walkResult().blocks, walked.blocks) << name;
        EXPECT_EQ(trace.walkResult().calls, walked.calls) << name;
        EXPECT_EQ(trace.walkResult().runs, walked.runs) << name;
        EXPECT_GT(trace.sizeBytes(), 0u) << name;
    }
}

TEST(Recorder, ReplayEvaluationBitIdenticalToDirectWalk)
{
    for (const char *name : {"compress", "doduc"}) {
        const Prepared prepared = profiledProgram(name, 80'000);
        const RecordedTrace trace =
            recordTrace(prepared.program, prepared.walk);

        const CostModel model(Arch::BtFnt);
        const std::vector<ProgramLayout> layouts = {
            originalLayout(prepared.program),
            alignProgram(prepared.program, AlignerKind::Try15, &model),
        };
        const Arch archs[] = {Arch::Fallthrough, Arch::BtFnt,
                              Arch::PhtDirect, Arch::PhtCorrelated,
                              Arch::BtbSmall, Arch::BtbLarge};
        for (const ProgramLayout &layout : layouts) {
            for (Arch arch : archs) {
                ArchEvaluator walked(prepared.program, layout,
                                     EvalParams::forArch(arch));
                walk(prepared.program, prepared.walk, walked.sink());

                ArchEvaluator replayed(prepared.program, layout,
                                       EvalParams::forArch(arch));
                trace.replay(prepared.program, replayed.sink());

                expectEqualResults(walked.result(), replayed.result(),
                                   archName(arch));
            }
        }
    }
}

TEST(Recorder, PreparedProgramCarriesReplayableTrace)
{
    ProgramSpec spec = suiteSpec("eqntott");
    spec.traceInstrs = 60'000;
    const PreparedProgram prepared = prepareProgram(spec);
    ASSERT_NE(prepared.trace, nullptr);
    EXPECT_GT(prepared.trace->numEvents(), 0u);
    EXPECT_EQ(prepared.trace->walkResult().instrs,
              prepared.stats.instrsTraced);
}

TEST(Recorder, RunConfigsMatchesWalkFallback)
{
    // The record-once engine and the legacy re-walk path (hand-built
    // PreparedProgram without a trace) must produce identical experiments.
    ProgramSpec spec = suiteSpec("sc");
    spec.traceInstrs = 60'000;
    const std::vector<ExperimentConfig> configs = {
        {Arch::Fallthrough, AlignerKind::Original},
        {Arch::BtFnt, AlignerKind::Greedy},
        {Arch::PhtDirect, AlignerKind::Try15},
        {Arch::BtbSmall, AlignerKind::Cost},
    };

    PreparedProgram recorded = prepareProgram(spec);
    PreparedProgram walked;
    walked.program = recorded.program;  // copy of the profiled CFG
    walked.walk = recorded.walk;
    walked.stats = recorded.stats;
    walked.trace = nullptr;  // force the fallback walk

    const ExperimentRun via_replay = runConfigs(recorded, configs);
    const ExperimentRun via_walk = runConfigs(walked, configs);

    EXPECT_EQ(via_replay.origInstrs, via_walk.origInstrs);
    ASSERT_EQ(via_replay.cells.size(), via_walk.cells.size());
    for (std::size_t i = 0; i < via_replay.cells.size(); ++i) {
        expectEqualResults(via_replay.cells[i].eval, via_walk.cells[i].eval,
                           "cell");
        EXPECT_EQ(via_replay.cells[i].relCpi, via_walk.cells[i].relCpi);
    }
}

TEST(Recorder, TraceSurvivesProgramMove)
{
    // Call sites are stored by index, not by pointer, so a recorded trace
    // must stay valid when the Program it came from is moved — exactly
    // what happens when a PreparedProgram travels by value.
    Prepared prepared = profiledProgram("espresso", 60'000);
    const RecordedTrace trace =
        recordTrace(prepared.program, prepared.walk);

    const ProgramLayout layout = originalLayout(prepared.program);
    ArchEvaluator before(prepared.program, layout,
                         EvalParams::forArch(Arch::BtbSmall));
    trace.replay(prepared.program, before.sink());

    const Program moved = std::move(prepared.program);

    LogSink replayed;
    trace.replay(moved, replayed);
    EXPECT_EQ(replayed.log.size(), trace.numEvents());

    ArchEvaluator after(moved, layout, EvalParams::forArch(Arch::BtbSmall));
    trace.replay(moved, after.sink());
    expectEqualResults(before.result(), after.result(), "after move");
}
