/**
 * @file
 * Layout-verifier tests. The verifier is only trustworthy if it (a)
 * proves every layout the real aligners produce and (b) rejects every
 * corrupted one while naming the exact obligation that broke — so each
 * proof obligation gets an injection test in the style of test_differ.cc:
 * align a clean fixture, corrupt exactly one invariant, and require the
 * right obligation among the failures. The fuzzer's verify pre-gate and
 * its shrinker are exercised end to end through FuzzOptions::layoutMutator.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bpred/static_cost.h"
#include "cfg/builder.h"
#include "cfg/validate.h"
#include "check/differ.h"
#include "check/fuzz.h"
#include "core/align_program.h"
#include "emit/relax.h"
#include "objective/objective.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "verify/driver.h"
#include "verify/verify.h"

using namespace balign;

namespace {

/**
 * A loop plus a diamond across two procedures — enough structure that the
 * aligners invert senses, insert jumps and remove one, so every
 * obligation has real instances to check.
 *
 *   main: b0 cond --taken--> b2 (exit path, returns)
 *            \--fall--> b1 uncond --> b0   (hot back edge)
 *   leaf: b0 cond -> {b1 fall -> b3, b2 fall -> b3}, b3 return
 *
 * In leaf, b1 and b2 BOTH fall through into b3, so at most one of them
 * can be layout-adjacent to it: every layout of every aligner contains at
 * least one inserted jump, keeping the jump-targets obligation exercised.
 */
Program
verifyBase()
{
    Program program("verify-base");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId b0 = b.block(3, Terminator::CondBranch);
        const BlockId b1 = b.block(4, Terminator::UncondBranch);
        const BlockId b2 = b.block(2, Terminator::Return);
        b.taken(b0, b2, 0, 0.1);
        b.fallThrough(b0, b1, 0, 0.9);
        b.taken(b1, b0, 0);
        b.call(b0, leaf_id, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        const BlockId b0 = b.block(2, Terminator::CondBranch);
        const BlockId b1 = b.block(3, Terminator::FallThrough);
        const BlockId b2 = b.block(5, Terminator::FallThrough);
        const BlockId b3 = b.block(1, Terminator::Return);
        b.taken(b0, b1, 0, 0.6);
        b.fallThrough(b0, b2, 0, 0.4);
        b.fallThrough(b1, b3, 0);
        b.fallThrough(b2, b3, 0);
    }
    validateOrDie(program);

    Profiler profiler(program);
    WalkOptions options;
    options.seed = 11;
    options.instrBudget = 5'000;
    walk(program, options, profiler);
    return program;
}

/// Aligns the fixture under one architecture (post-condition included).
ProgramLayout
alignedBase(const Program &program, AlignerKind kind)
{
    const CostModel model(Arch::Fallthrough);
    return alignProgram(program, kind, &model);
}

std::set<Obligation>
failedObligations(const VerifyResult &result)
{
    std::set<Obligation> failed;
    for (const VerifyFailure &failure : result.failures)
        failed.insert(failure.obligation);
    return failed;
}

}  // namespace

TEST(Verify, ObligationNamesAreStableAndDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumObligations; ++i) {
        const auto obligation = static_cast<Obligation>(i);
        const std::string name = obligationName(obligation);
        EXPECT_FALSE(name.empty());
        EXPECT_EQ(name.find(' '), std::string::npos)
            << name << " must be kebab-case";
        EXPECT_NE(obligationSummary(obligation)[0], '\0');
        names.insert(name);
    }
    EXPECT_EQ(names.size(), kNumObligations);
    EXPECT_EQ(std::string(obligationName(Obligation::SuccPreservation)),
              "succ-preservation");
}

TEST(Verify, CleanLayoutsProveForEveryAligner)
{
    const Program program = verifyBase();
    for (const AlignerKind kind : allAlignerKindsExtended()) {
        const ProgramLayout layout = alignedBase(program, kind);
        VerifyResult result = verifyLayout(program, layout);
        EXPECT_TRUE(result.verified()) << alignerKindName(kind) << ": "
            << (result.failures.empty()
                    ? std::string()
                    : formatVerifyFailure(result.failures.front()));
        // The relaxed byte-layout obligations live in their own proof;
        // merge them the way the sweep driver does so the coverage
        // assertion below spans all kNumObligations.
        for (const EncodingModelKind encoding : allEncodingModelKinds()) {
            const EncodingModel &model = encodingModel(encoding);
            const VerifyResult relaxed = verifyRelaxedLayout(
                program, layout, relaxLayout(program, layout, model),
                model);
            EXPECT_TRUE(relaxed.verified())
                << alignerKindName(kind) << "/"
                << encodingModelKindName(encoding) << ": "
                << (relaxed.failures.empty()
                        ? std::string()
                        : formatVerifyFailure(relaxed.failures.front()));
            for (std::size_t i = 0; i < kNumObligations; ++i)
                result.obligations[i].checks +=
                    relaxed.obligations[i].checks;
        }
        // Every obligation must actually be exercised, not vacuously
        // skipped.
        for (const ObligationRecord &record : result.obligations)
            EXPECT_GT(record.checks, 0u) << alignerKindName(kind);
    }
}

TEST(Verify, MissingProcLayoutBreaksProcBijection)
{
    const Program program = verifyBase();
    ProgramLayout layout = alignedBase(program, AlignerKind::Original);
    layout.procs.pop_back();
    const VerifyResult result = verifyLayout(program, layout);
    ASSERT_FALSE(result.verified());
    EXPECT_TRUE(failedObligations(result).count(Obligation::ProcBijection));
}

TEST(Verify, DuplicatedOrderEntryBreaksBlockBijection)
{
    const Program program = verifyBase();
    ProgramLayout layout = alignedBase(program, AlignerKind::Original);
    ASSERT_GE(layout.procs[0].order.size(), 2u);
    layout.procs[0].order[1] = layout.procs[0].order[0];
    const VerifyResult result = verifyLayout(program, layout);
    ASSERT_FALSE(result.verified());
    EXPECT_TRUE(
        failedObligations(result).count(Obligation::BlockBijection));
}

TEST(Verify, DisplacedEntryBlockBreaksEntryFirst)
{
    const Program program = verifyBase();
    ProgramLayout layout = alignedBase(program, AlignerKind::Original);
    ProcLayout &proc = layout.procs[0];
    ASSERT_GE(proc.order.size(), 2u);
    // Swap the first two blocks and reflow start addresses / positions so
    // the permutation stays internally consistent; the entry simply no
    // longer sits at the procedure's base address.
    std::swap(proc.order[0], proc.order[1]);
    Addr addr = proc.base;
    for (std::uint32_t i = 0; i < proc.order.size(); ++i) {
        BlockLayout &block = proc.blocks[proc.order[i]];
        block.orderIndex = i;
        block.addr = addr;
        addr += block.finalInstrs;
    }
    const VerifyResult result = verifyLayout(program, layout);
    ASSERT_FALSE(result.verified());
    EXPECT_TRUE(failedObligations(result).count(Obligation::EntryFirst));
}

TEST(Verify, ShiftedBlockAddressBreaksContiguity)
{
    const Program program = verifyBase();
    ProgramLayout layout = alignedBase(program, AlignerKind::Cost);
    ProcLayout &proc = layout.procs[0];
    ASSERT_GE(proc.order.size(), 2u);
    proc.blocks[proc.order[1]].addr += 1;
    const VerifyResult result = verifyLayout(program, layout);
    ASSERT_FALSE(result.verified());
    EXPECT_TRUE(
        failedObligations(result).count(Obligation::AddressContiguity));
}

TEST(Verify, InflatedBlockSizeBreaksSizeAccounting)
{
    const Program program = verifyBase();
    ProgramLayout layout = alignedBase(program, AlignerKind::Greedy);
    layout.procs[0].blocks[layout.procs[0].order[0]].finalInstrs += 1;
    const VerifyResult result = verifyLayout(program, layout);
    ASSERT_FALSE(result.verified());
    EXPECT_TRUE(
        failedObligations(result).count(Obligation::SizeAccounting));
}

TEST(Verify, RetargetedSuccessorEdgeIsCaughtByName)
{
    // The acceptance-criterion mutation: corrupt exactly one successor
    // edge of an already-laid-out program. The proof must fail, every
    // failure must name succ-preservation, and the rendering must carry
    // that name for the human reading the report. The corrupted edge is
    // the fall-through, which the layout realizes by adjacency — the
    // retarget makes the laid-out binary fall into the wrong block.
    Program program = verifyBase();
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Original);

    Procedure &main = program.proc(0);
    const std::int64_t fall = main.fallThroughEdge(0);
    ASSERT_GE(fall, 0);
    ASSERT_EQ(main.edge(static_cast<std::uint32_t>(fall)).dst, 1u);
    main.edge(static_cast<std::uint32_t>(fall)).dst = 2;  // retarget

    const VerifyResult result = verifyLayout(program, layout);
    ASSERT_FALSE(result.verified());
    for (const VerifyFailure &failure : result.failures) {
        EXPECT_EQ(failure.obligation, Obligation::SuccPreservation);
        EXPECT_EQ(failure.proc, 0u);
        EXPECT_EQ(failure.block, 0u);
        EXPECT_NE(formatVerifyFailure(failure).find("succ-preservation"),
                  std::string::npos);
    }
}

TEST(Verify, TotalOnMalformedLayouts)
{
    const Program program = verifyBase();
    // An empty layout is maximally malformed input: the proof fails at
    // the bijection layer without touching anything else — and without
    // crashing.
    const VerifyResult result = verifyLayout(program, ProgramLayout{});
    EXPECT_FALSE(result.verified());
    EXPECT_TRUE(failedObligations(result).count(Obligation::ProcBijection));
}

TEST(VerifyDriver, SweepProvesFullMatrixWithArchDedup)
{
    const Program program = verifyBase();
    VerifyRunOptions options;
    options.objectives = allObjectiveKinds();
    const VerifyRunReport report = verifyProgramLayouts(program, options);

    EXPECT_TRUE(report.verified())
        << formatVerifyReport(report, "verify-base");
    // table-cost and size-aware are arch-dependent: 8 archs x 4 aligners
    // each. exttsp layouts are identical off BT/FNT, so one
    // representative (empty arch context) plus BT/FNT: 2 x 4.
    EXPECT_EQ(report.layoutsVerified, 2u * 8u * 4u + 2u * 4u);
    EXPECT_EQ(report.failedLayouts, 0u);
    EXPECT_GT(report.totalChecks(), 0u);

    bool saw_representative = false;
    for (const VerifyCertificate &certificate : report.certificates) {
        EXPECT_TRUE(certificate.result.verified());
        if (certificate.arch.empty()) {
            saw_representative = true;
            EXPECT_EQ(certificate.objective, "exttsp");
        }
    }
    EXPECT_TRUE(saw_representative);
}

TEST(VerifyDriver, MutatorFailuresLandInReportAndCertificates)
{
    const Program program = verifyBase();
    VerifyRunOptions options;
    options.archs = {Arch::Fallthrough};
    options.kinds = {AlignerKind::Cost};
    options.mutate = [](ProgramLayout &layout, Arch, AlignerKind,
                        ObjectiveKind) {
        layout.procs[0].blocks[layout.procs[0].order[1]].addr += 1;
    };
    const VerifyRunReport report = verifyProgramLayouts(program, options);
    EXPECT_FALSE(report.verified());
    EXPECT_EQ(report.failedLayouts, 1u);
    const std::string text = formatVerifyReport(report, "verify-base");
    EXPECT_NE(text.find("address-contiguity"), std::string::npos);
    EXPECT_NE(text.find("1 failed"), std::string::npos);
}

TEST(VerifyDriver, CertificateJsonCarriesSchemaAndObligations)
{
    const Program program = verifyBase();
    VerifyRunOptions options;
    options.archs = {Arch::BtFnt};
    options.kinds = {AlignerKind::Greedy};
    const VerifyRunReport report = verifyProgramLayouts(program, options);
    ASSERT_EQ(report.certificates.size(), 1u);

    std::ostringstream os;
    writeCertificateJson(report.certificates.front(), os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"verified\":true"), std::string::npos);
    EXPECT_NE(json.find("\"aligner\":\"greedy\""), std::string::npos);
    for (std::size_t i = 0; i < kNumObligations; ++i) {
        EXPECT_NE(json.find(obligationName(static_cast<Obligation>(i))),
                  std::string::npos);
    }

    std::ostringstream report_os;
    writeVerifyReportJson(report, "verify-base", report_os);
    EXPECT_NE(report_os.str().find("\"schema_version\":1"),
              std::string::npos);
    EXPECT_NE(report_os.str().find("\"certificates\":["),
              std::string::npos);
}

TEST(VerifyGate, CleanProgramPassesCorruptedLayoutFails)
{
    const Program program = verifyBase();
    DiffOptions diff;
    diff.archs = {Arch::Fallthrough};
    diff.kinds = {AlignerKind::Greedy};

    EXPECT_FALSE(verifyGateCheck(program, diff).has_value());

    const auto finding = verifyGateCheck(
        program, diff,
        [](ProgramLayout &layout, Arch, AlignerKind, ObjectiveKind) {
            layout.procs[0].blocks[layout.procs[0].order[1]].addr += 1;
        });
    ASSERT_TRUE(finding.has_value());
    EXPECT_EQ(finding->kind, DivergenceKind::Verify);
    EXPECT_EQ(finding->arch, Arch::Fallthrough);
    EXPECT_EQ(finding->aligner, AlignerKind::Greedy);
    EXPECT_NE(finding->detail.find("address-contiguity"),
              std::string::npos);
}

TEST(VerifyGate, FuzzCampaignCatchesAndShrinksInjectedFailure)
{
    // End to end: an injected layout corruption must surface as a
    // DivergenceKind::Verify finding, and the shrinker must boil the
    // repro down to the smallest program the mutator can still corrupt —
    // one procedure of two minimum-size blocks.
    FuzzOptions options;
    options.seeds = 1;
    options.walkInstrs = 2'000;
    options.diff.archs = {Arch::Fallthrough};
    options.diff.kinds = {AlignerKind::Greedy};
    options.diff.objectives = {ObjectiveKind::TableCost};
    options.corpusDir = testing::TempDir() + "balign-verify-gate";
    std::filesystem::create_directories(options.corpusDir);
    options.layoutMutator = [](ProgramLayout &layout, Arch, AlignerKind,
                               ObjectiveKind) {
        for (ProcLayout &proc : layout.procs) {
            if (proc.order.size() > 1) {
                proc.blocks[proc.order[1]].addr += 1;
                return;
            }
        }
    };

    const FuzzReport report = runFuzz(options);
    EXPECT_EQ(report.programsRun, 1u);
    EXPECT_EQ(report.verifyHits, 1u);
    ASSERT_EQ(report.divergences.size(), 1u);
    EXPECT_EQ(report.divergences.front().kind, DivergenceKind::Verify);
    EXPECT_NE(report.divergences.front().detail.find("address-contiguity"),
              std::string::npos);

    ASSERT_EQ(report.reproPaths.size(), 1u);
    const auto repro = loadRepro(report.reproPaths.front());
    ASSERT_TRUE(repro.has_value());
    EXPECT_EQ(repro->program.numProcs(), 1u);
    const Procedure &main = repro->program.proc(repro->program.mainProc());
    EXPECT_GE(main.numBlocks(), 2u);  // one block would dodge the mutator
    EXPECT_LE(main.numBlocks(), 3u);
    for (const BasicBlock &block : main.blocks())
        EXPECT_EQ(block.numInstrs, 1u);
}
