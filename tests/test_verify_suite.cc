/**
 * @file
 * The `ctest -L verify` group: translation validation of the full
 * 24-program benchmark suite and the fuzz corpus.
 *
 * Every suite program is profiled (reduced budget — the verifier proves
 * layout equivalence, not simulation quality) and swept through
 * verifyProgramLayouts under every objective: all 72 layouts per program
 * (8 architectures x 4 aligners under each arch-dependent objective —
 * table-cost and size-aware — plus the deduplicated representative +
 * BT/FNT x 4 under exttsp) must prove with zero failed obligations,
 * including the relaxed byte-layout obligations under both encoding
 * models. Corpus repros — including the shrunk divergence findings — get
 * the same treatment: whatever bug a repro pins, its layouts must still
 * be faithful translations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "objective/objective.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "verify/driver.h"
#include "workload/generator.h"
#include "workload/suite.h"

using namespace balign;

namespace {

constexpr std::uint64_t kSuiteBudget = 50'000;

void
profileWith(Program &program, std::uint64_t seed, std::uint64_t budget)
{
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = seed;
    options.instrBudget = budget;
    walk(program, options, profiler);
}

VerifyRunOptions
fullMatrix()
{
    VerifyRunOptions options;
    options.objectives = allObjectiveKinds();
    return options;
}

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(BALIGN_CORPUS_DIR)) {
        if (entry.path().extension() == ".balign")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

class VerifySuite : public testing::TestWithParam<std::string>
{
};

}  // namespace

TEST_P(VerifySuite, AllLayoutsProve)
{
    Program program = generateProgram(suiteSpec(GetParam()));
    profileWith(program, 1, kSuiteBudget);
    const VerifyRunReport report =
        verifyProgramLayouts(program, fullMatrix());
    EXPECT_EQ(report.layoutsVerified, 72u);
    EXPECT_EQ(report.certificates.size(), 72u);
    if (!report.verified())
        ADD_FAILURE() << formatVerifyReport(report, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Suite24, VerifySuite, [] {
    std::vector<std::string> names;
    for (const ProgramSpec &spec : benchmarkSuite())
        names.push_back(spec.name);
    return testing::ValuesIn(names);
}(), [](const testing::TestParamInfo<std::string> &param) {
    std::string name = param.param;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
});

TEST(VerifyCorpus, EveryReproLayoutProves)
{
    const std::vector<std::string> files = corpusFiles();
    ASSERT_GE(files.size(), 3u);
    for (const std::string &path : files) {
        const std::optional<Repro> repro = loadRepro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        Program program = repro->program;
        profileWith(program, repro->walk.seed, repro->walk.instrBudget);
        const VerifyRunReport report =
            verifyProgramLayouts(program, fullMatrix());
        if (!report.verified()) {
            ADD_FAILURE()
                << formatVerifyReport(
                       report,
                       std::filesystem::path(path).stem().string());
        }
    }
}
