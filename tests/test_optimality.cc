/**
 * @file
 * Optimality oracle tests: for small procedures, enumerate EVERY block
 * order (entry first) with the cost-model-aware materializer and compare
 * the heuristics against the true minimum of the modelled branch cost.
 *
 * These are the strongest correctness checks in the suite: they bound how
 * far Try15 (and Cost/Greedy) are from the optimum the paper's exhaustive
 * search aspires to, on exactly the objective the aligners optimize.
 */

#include <gtest/gtest.h>

#include "bpred/static_cost.h"
#include "cfg/builder.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "support/rng.h"
#include "workload/paper_figures.h"

using namespace balign;

namespace {

/**
 * Random small procedure: structured if/loop soup with <= 8 blocks and
 * randomized profile weights, built directly so block counts stay small.
 */
Program
randomSmallProgram(std::uint64_t seed)
{
    Rng rng(seed);
    Program program("small" + std::to_string(seed));
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);

    // Shape: entry -> diamond -> loop -> exit, with randomized weights and
    // an occasional extra straight block.
    const BlockId entry = b.block(1 + rng.nextBounded(4),
                                  Terminator::CondBranch);
    const BlockId then_blk =
        b.block(1 + rng.nextBounded(5), Terminator::UncondBranch);
    const BlockId else_blk =
        b.block(1 + rng.nextBounded(5), Terminator::FallThrough);
    const BlockId join = b.block(1 + rng.nextBounded(4),
                                 Terminator::FallThrough);
    const BlockId loop = b.block(1 + rng.nextBounded(6),
                                 Terminator::CondBranch);
    const BlockId latch =
        b.block(1 + rng.nextBounded(3), Terminator::UncondBranch);
    const BlockId exit = b.block(1 + rng.nextBounded(3),
                                 Terminator::Return);

    const Weight runs = 50 + rng.nextBounded(200);
    const Weight hot = runs * (2 + rng.nextBounded(30));
    const bool then_hot = rng.nextBool(0.5);
    const Weight w_then = then_hot ? runs * 9 / 10 : runs / 10;
    const Weight w_else = runs - w_then;

    b.fallThrough(entry, then_blk, w_then);
    b.taken(entry, else_blk, w_else);
    b.taken(then_blk, join, w_then);
    b.fallThrough(else_blk, join, w_else);
    b.fallThrough(join, loop, runs);
    b.fallThrough(loop, latch, hot);
    b.taken(loop, exit, runs);
    b.taken(latch, loop, hot - runs + rng.nextBounded(2));
    return program;
}

struct HeuristicCosts
{
    double original;
    double greedy;
    double cost;
    double try15;
    double optimal;
};

HeuristicCosts
measure(const Program &program, Arch arch)
{
    const CostModel model(arch);
    HeuristicCosts costs{};
    costs.original = modeledBranchCost(
        program, originalLayout(program), model);
    costs.greedy = modeledBranchCost(
        program, alignProgram(program, AlignerKind::Greedy, nullptr),
        model);
    costs.cost = modeledBranchCost(
        program, alignProgram(program, AlignerKind::Cost, &model), model);
    costs.try15 = modeledBranchCost(
        program, alignProgram(program, AlignerKind::Try15, &model), model);
    costs.optimal = optimalBranchCost(program.proc(0), model);
    return costs;
}

}  // namespace

class OptimalitySweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OptimalitySweep, Try15WithinTenPercentOfOptimal)
{
    // The group search prices BOTH endpoints of a candidate link with the
    // live chain context (a successor equal to the chain predecessor is a
    // known-backward branch), which resolves the direction circularity
    // the paper flags for BT/FNT ("when forming chains, it is not known
    // where the taken branch will be located"): on these procedures the
    // search lands within 10% of the brute-force optimum on every
    // architecture, and exactly on it for the sampled seeds on BT/FNT.
    const Program program = randomSmallProgram(GetParam());
    for (Arch arch : {Arch::Fallthrough, Arch::BtFnt, Arch::Likely}) {
        const HeuristicCosts costs = measure(program, arch);
        EXPECT_GE(costs.try15, costs.optimal - 1e-9) << archName(arch);
        EXPECT_LE(costs.try15, costs.optimal * 1.10 + 1e-9)
            << archName(arch) << " seed " << GetParam() << " (optimal "
            << costs.optimal << ", try15 " << costs.try15 << ")";
    }
}

TEST_P(OptimalitySweep, HeuristicRankingHolds)
{
    const Program program = randomSmallProgram(GetParam());
    for (Arch arch : {Arch::Fallthrough, Arch::Likely}) {
        const HeuristicCosts costs = measure(program, arch);
        // The cost-aware algorithms never lose to Greedy on their own
        // objective, and nothing beats the brute-force optimum.
        EXPECT_LE(costs.try15, costs.greedy + 1e-9) << archName(arch);
        EXPECT_GE(costs.greedy, costs.optimal - 1e-9) << archName(arch);
        EXPECT_GE(costs.cost, costs.optimal - 1e-9) << archName(arch);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalitySweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

TEST(Optimality, Figure3Try15IsOptimal)
{
    const Program program = figure3Loop();
    const CostModel model(Arch::Likely);
    const double optimal = optimalBranchCost(program.proc(0), model);
    const double try15 = modeledBranchCost(
        program, alignProgram(program, AlignerKind::Try15, &model), model);
    EXPECT_DOUBLE_EQ(optimal, 18007.0);
    EXPECT_DOUBLE_EQ(try15, optimal);
}

TEST(Optimality, Figure2LoopTrickIsOptimalOnFallthrough)
{
    const Program program = figure2Alvinn();
    const CostModel model(Arch::Fallthrough);
    const double optimal = optimalBranchCost(program.proc(0), model);
    const double try15 = modeledBranchCost(
        program, alignProgram(program, AlignerKind::Try15, &model), model);
    EXPECT_DOUBLE_EQ(try15, optimal);
}

TEST(OptimalityDeath, BruteForceCapEnforced)
{
    Program program("big");
    Procedure &proc = program.proc(program.addProc("main"));
    for (int i = 0; i < 12; ++i)
        proc.addBlock(1, Terminator::Return);
    const CostModel model(Arch::Likely);
    EXPECT_DEATH(optimalBranchCost(proc, model), "brute-force cap");
}
