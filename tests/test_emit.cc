/**
 * @file
 * Emission-backend unit tests (`ctest -L emit`): the pluggable encoding
 * models, the fragment-relaxation fixpoint, the relaxed-layout proof
 * obligations, the ELF object writer and its self-contained reader, the
 * size-aware objective, and the fuzzer's emission gate.
 *
 * The relaxation chain tests lean on the hand-minimized
 * tests/corpus/relax-chain.balign: block sizes chosen so one branch's
 * growth pushes a second branch out of short range, forcing exactly
 * three sweeps (grow, grow, clean).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "cfg/builder.h"
#include "cfg/validate.h"
#include "check/differ.h"
#include "check/fuzz.h"
#include "core/align_program.h"
#include "emit/elf.h"
#include "emit/relax.h"
#include "objective/objective.h"
#include "objective/size_aware.h"
#include "objective/table_cost.h"
#include "support/thread_pool.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "verify/verify.h"

using namespace balign;

namespace {

void
profileWith(Program &program, std::uint64_t seed, std::uint64_t budget)
{
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions options;
    options.seed = seed;
    options.instrBudget = budget;
    walk(program, options, profiler);
}

Program
loadCorpusProgram(const char *name)
{
    const std::string path =
        std::string(BALIGN_CORPUS_DIR) + "/" + name;
    std::optional<Repro> repro = loadRepro(path);
    if (!repro.has_value())
        ADD_FAILURE() << "cannot load " << path;
    Program program = std::move(repro->program);
    profileWith(program, repro->walk.seed, repro->walk.instrBudget);
    return program;
}

/// Two procedures with calls, conditional branches and an inserted jump —
/// every instruction class shows up in the enumeration.
Program
emitBase()
{
    Program program("emit-base");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId b0 = b.block(3, Terminator::CondBranch);
        const BlockId b1 = b.block(4, Terminator::UncondBranch);
        const BlockId b2 = b.block(2, Terminator::Return);
        b.taken(b0, b2, 0, 0.1);
        b.fallThrough(b0, b1, 0, 0.9);
        b.taken(b1, b0, 0);
        b.call(b0, leaf_id, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        const BlockId b0 = b.block(2, Terminator::CondBranch);
        const BlockId b1 = b.block(3, Terminator::FallThrough);
        const BlockId b2 = b.block(5, Terminator::FallThrough);
        const BlockId b3 = b.block(1, Terminator::Return);
        b.taken(b0, b1, 0, 0.6);
        b.fallThrough(b0, b2, 0, 0.4);
        b.fallThrough(b1, b3, 0);
        b.fallThrough(b2, b3, 0);
    }
    validateOrDie(program);
    profileWith(program, 11, 5'000);
    return program;
}

ProgramLayout
alignedBase(const Program &program, AlignerKind kind)
{
    const CostModel model(Arch::Fallthrough);
    return alignProgram(program, kind, &model);
}

bool
sameRelaxation(const RelaxedLayout &a, const RelaxedLayout &b)
{
    if (a.totalBytes != b.totalBytes || a.iterations != b.iterations ||
        a.instrs.size() != b.instrs.size())
        return false;
    for (std::size_t i = 0; i < a.instrs.size(); ++i) {
        if (a.instrs[i].byteAddr != b.instrs[i].byteAddr ||
            a.instrs[i].form != b.instrs[i].form ||
            a.instrs[i].size != b.instrs[i].size ||
            a.instrs[i].disp != b.instrs[i].disp)
            return false;
    }
    return true;
}

std::set<Obligation>
failedObligations(const VerifyResult &result)
{
    std::set<Obligation> failed;
    for (const VerifyFailure &failure : result.failures)
        failed.insert(failure.obligation);
    return failed;
}

}  // namespace

// ---------------------------------------------------------------------
// Encoding models.

TEST(Encoding, RegistryNamesAndParseRoundTrip)
{
    for (const EncodingModelKind kind : allEncodingModelKinds()) {
        const EncodingModel &model = encodingModel(kind);
        EXPECT_EQ(model.kind(), kind);
        const auto parsed =
            parseEncodingModelKind(encodingModelKindName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(parseEncodingModelKind("thumb2").has_value());
    EXPECT_EQ(parseEncodingModelKind("fixed"),
              EncodingModelKind::FixedWord);
    EXPECT_EQ(parseEncodingModelKind("variable"),
              EncodingModelKind::Variable);
}

TEST(Encoding, FixedWordIsUniformAndRigid)
{
    const EncodingModel &model =
        encodingModel(EncodingModelKind::FixedWord);
    for (const InstrClass cls :
         {InstrClass::Body, InstrClass::Call, InstrClass::CondBranch,
          InstrClass::Jump, InstrClass::IndirectJump, InstrClass::Return}) {
        EXPECT_FALSE(model.relaxable(cls));
        EXPECT_EQ(model.initialForm(cls), BranchForm::None);
        EXPECT_EQ(model.instrBytes(cls, BranchForm::None), kInstrBytes);
    }
}

TEST(Encoding, VariableShortAndNearFormsDiffer)
{
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    EXPECT_TRUE(model.relaxable(InstrClass::CondBranch));
    EXPECT_TRUE(model.relaxable(InstrClass::Jump));
    EXPECT_FALSE(model.relaxable(InstrClass::Call));
    EXPECT_LT(model.instrBytes(InstrClass::CondBranch, BranchForm::Short),
              model.instrBytes(InstrClass::CondBranch, BranchForm::Near));
    // The short range is the x86 rel8 interval, measured from the end of
    // the instruction.
    EXPECT_TRUE(model.displacementFits(InstrClass::CondBranch,
                                       BranchForm::Short, 127));
    EXPECT_FALSE(model.displacementFits(InstrClass::CondBranch,
                                        BranchForm::Short, 128));
    EXPECT_TRUE(model.displacementFits(InstrClass::CondBranch,
                                       BranchForm::Short, -128));
    EXPECT_FALSE(model.displacementFits(InstrClass::CondBranch,
                                        BranchForm::Short, -129));
    EXPECT_TRUE(model.displacementFits(InstrClass::CondBranch,
                                       BranchForm::Near, 1 << 20));
}

// ---------------------------------------------------------------------
// Relaxation.

TEST(Relax, FixedWordIsTheWordModelTimesInstrBytes)
{
    const Program program = emitBase();
    for (const AlignerKind kind : allAlignerKindsExtended()) {
        const ProgramLayout layout = alignedBase(program, kind);
        const RelaxedLayout relaxed = relaxLayout(
            program, layout, encodingModel(EncodingModelKind::FixedWord));
        EXPECT_TRUE(relaxed.converged);
        EXPECT_EQ(relaxed.iterations, 1u);
        EXPECT_EQ(relaxed.totalBytes, layout.totalInstrs * kInstrBytes);
        EXPECT_EQ(relaxed.nearBranches, 0u);
        EXPECT_EQ(relaxed.shortBranches, 0u);
        for (const RelaxedInstr &instr : relaxed.instrs) {
            EXPECT_EQ(instr.byteAddr,
                      static_cast<std::uint64_t>(instr.wordAddr) *
                          kInstrBytes);
        }
    }
}

TEST(Relax, ChainCorpusNeedsExactlyThreeSweeps)
{
    const Program program = loadCorpusProgram("relax-chain.balign");
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Original);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    const RelaxedLayout relaxed = relaxLayout(program, layout, model);
    EXPECT_TRUE(relaxed.converged) << relaxed.diagnostic;
    // Sweep 1 grows block 1's branch, sweep 2 grows block 0's (pushed
    // out of range by the first growth), sweep 3 is clean.
    EXPECT_EQ(relaxed.iterations, 3u);
    EXPECT_EQ(relaxed.nearBranches, 2u);
    EXPECT_EQ(relaxed.shortBranches, 0u);
    const VerifyResult proof =
        verifyRelaxedLayout(program, layout, relaxed, model);
    EXPECT_TRUE(proof.verified())
        << formatVerifyFailure(proof.failures.front());
}

TEST(Relax, IterationCapYieldsDiagnosticNotALoop)
{
    const Program program = loadCorpusProgram("relax-chain.balign");
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Original);
    RelaxOptions options;
    options.maxIterations = 1;  // the chain needs 3
    const RelaxedLayout relaxed =
        relaxLayout(program, layout,
                    encodingModel(EncodingModelKind::Variable), options);
    EXPECT_FALSE(relaxed.converged);
    EXPECT_NE(relaxed.diagnostic.find("stopped after"), std::string::npos)
        << relaxed.diagnostic;
    EXPECT_NE(relaxed.diagnostic.find("main"), std::string::npos)
        << relaxed.diagnostic;
}

TEST(Relax, FixpointIsDeterministicAcrossRunsAndThreads)
{
    const Program program = emitBase();
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Try15);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    const RelaxedLayout reference = relaxLayout(program, layout, model);
    EXPECT_TRUE(
        sameRelaxation(reference, relaxLayout(program, layout, model)));

    // Concurrent relaxations of the same layout agree byte for byte:
    // relaxation reads shared state but never writes it.
    ThreadPool pool(4);
    std::vector<RelaxedLayout> parallel(8);
    pool.parallelFor(parallel.size(), [&](std::size_t i) {
        parallel[i] = relaxLayout(program, layout, model);
    });
    for (const RelaxedLayout &relaxed : parallel)
        EXPECT_TRUE(sameRelaxation(reference, relaxed));
}

// ---------------------------------------------------------------------
// Relaxed-layout proof obligations.

TEST(RelaxVerify, CorruptedByteAddrBreaksRelaxContiguity)
{
    const Program program = emitBase();
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Greedy);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    RelaxedLayout relaxed = relaxLayout(program, layout, model);
    ASSERT_FALSE(relaxed.instrs.empty());
    relaxed.instrs[1].byteAddr += 1;
    const VerifyResult proof =
        verifyRelaxedLayout(program, layout, relaxed, model);
    ASSERT_FALSE(proof.verified());
    EXPECT_TRUE(
        failedObligations(proof).count(Obligation::RelaxContiguity));
}

TEST(RelaxVerify, CorruptedDisplacementBreaksDisplacementRange)
{
    const Program program = loadCorpusProgram("relax-chain.balign");
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Original);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    RelaxedLayout relaxed = relaxLayout(program, layout, model);
    bool corrupted = false;
    for (RelaxedInstr &instr : relaxed.instrs) {
        if (instr.cls == InstrClass::CondBranch) {
            instr.disp += 8;  // no longer target - (addr + size)
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    const VerifyResult proof =
        verifyRelaxedLayout(program, layout, relaxed, model);
    ASSERT_FALSE(proof.verified());
    EXPECT_TRUE(
        failedObligations(proof).count(Obligation::DisplacementRange));
}

TEST(RelaxVerify, ShrunkFormWhoseDisplacementEscapesIsRejected)
{
    const Program program = loadCorpusProgram("relax-chain.balign");
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Original);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    RelaxedLayout relaxed = relaxLayout(program, layout, model);
    // Force the first near branch back to short WITHOUT recomputing
    // addresses: the stale byte layout must fail verification (either
    // the size bookkeeping or the displacement range breaks).
    bool corrupted = false;
    for (RelaxedInstr &instr : relaxed.instrs) {
        if (instr.form == BranchForm::Near) {
            instr.form = BranchForm::Short;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    const VerifyResult proof =
        verifyRelaxedLayout(program, layout, relaxed, model);
    EXPECT_FALSE(proof.verified());
}

// ---------------------------------------------------------------------
// ELF object writer + self-contained reader.

TEST(Elf, ObjectRoundTripsThroughTheReader)
{
    const Program program = emitBase();
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Try15);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    const RelaxedLayout relaxed = relaxLayout(program, layout, model);
    const std::vector<std::uint8_t> object =
        buildElfObject(program, relaxed, model);

    const ParsedElf parsed = parseElfObject(object);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.type, 1u);      // ET_REL
    EXPECT_EQ(parsed.machine, 62u);  // EM_X86_64 for the variable model
    ASSERT_EQ(parsed.sectionNames.size(), 6u);
    EXPECT_EQ(parsed.sectionNames[1], ".text");
    EXPECT_EQ(parsed.sectionNames[2], ".rela.text");
    EXPECT_EQ(parsed.sectionNames[3], ".symtab");

    // .text is exactly the encoder's rendition of the relaxed layout.
    EXPECT_EQ(parsed.text, encodeText(relaxed, model));
    EXPECT_EQ(parsed.text.size(), relaxed.totalBytes);

    // Null + section symbol + one GLOBAL FUNC per procedure, with byte
    // bases and sizes from the relaxation.
    ASSERT_EQ(parsed.symbols.size(), 2u + program.numProcs());
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const ElfSymbolInfo &symbol = parsed.symbols[2 + p];
        EXPECT_EQ(symbol.name, program.proc(p).name());
        EXPECT_EQ(symbol.value, relaxed.procs[p].byteBase);
        EXPECT_EQ(symbol.size, relaxed.procs[p].byteSize);
    }

    // One PLT32 relocation per call site, at the rel32 field (opcode +1).
    std::size_t calls = 0;
    for (const RelaxedInstr &instr : relaxed.instrs) {
        if (instr.cls != InstrClass::Call)
            continue;
        ASSERT_LT(calls, parsed.relocations.size());
        const ElfRelocation &reloc = parsed.relocations[calls];
        EXPECT_EQ(reloc.offset, instr.byteAddr + 1);
        EXPECT_EQ(reloc.type, 4u);  // R_X86_64_PLT32
        EXPECT_EQ(reloc.symbol, 2u + instr.callee);
        EXPECT_EQ(reloc.addend, -4);
        ++calls;
    }
    EXPECT_EQ(calls, parsed.relocations.size());
}

TEST(Elf, FixedWordObjectUsesMachineNone)
{
    const Program program = emitBase();
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Original);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::FixedWord);
    const RelaxedLayout relaxed = relaxLayout(program, layout, model);
    const ParsedElf parsed =
        parseElfObject(buildElfObject(program, relaxed, model));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.machine, 0u);  // EM_NONE: synthetic encoding
    EXPECT_EQ(parsed.text.size(), layout.totalInstrs * kInstrBytes);
}

TEST(Elf, ReaderRejectsMalformedObjects)
{
    const Program program = emitBase();
    const ProgramLayout layout =
        alignedBase(program, AlignerKind::Original);
    const EncodingModel &model =
        encodingModel(EncodingModelKind::Variable);
    const std::vector<std::uint8_t> object = buildElfObject(
        program, relaxLayout(program, layout, model), model);

    EXPECT_FALSE(parseElfObject({}).ok);
    EXPECT_FALSE(
        parseElfObject(std::vector<std::uint8_t>(16, 0x7f)).ok);

    // Truncations anywhere must be caught, never read out of bounds.
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{63}, object.size() / 2,
          object.size() - 1}) {
        const std::vector<std::uint8_t> truncated(
            object.begin(), object.begin() + keep);
        const ParsedElf parsed = parseElfObject(truncated);
        EXPECT_FALSE(parsed.ok) << "kept " << keep << " bytes";
        EXPECT_FALSE(parsed.error.empty());
    }

    // A corrupted magic is rejected outright.
    std::vector<std::uint8_t> bad_magic = object;
    bad_magic[0] = 0x7e;
    EXPECT_FALSE(parseElfObject(bad_magic).ok);
}

// ---------------------------------------------------------------------
// Size-aware objective.

TEST(SizeAware, PricesBytesOnTopOfTableCost)
{
    const Program program = emitBase();
    const CostModel model(Arch::BtFnt);
    const TableCostObjective table(model);
    const SizeAwareObjective sized(model);
    EXPECT_EQ(sized.kind(), ObjectiveKind::SizeAware);
    EXPECT_TRUE(sized.archDependent());

    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Greedy, &model);
    // layoutCost = table cost + encoded bytes: strictly above the table
    // price, by exactly the relaxed byte size.
    const double table_cost = table.layoutCost(program, layout);
    const double sized_cost = sized.layoutCost(program, layout);
    const RelaxedLayout relaxed = relaxLayout(
        program, layout, encodingModel(EncodingModelKind::Variable));
    const double expected =
        table_cost + static_cast<double>(relaxed.totalBytes);
    EXPECT_NEAR(sized_cost, expected, 1e-9 * expected);
}

TEST(SizeAware, RegistryParsesAndBuildsIt)
{
    EXPECT_EQ(parseObjectiveKind("size-aware"), ObjectiveKind::SizeAware);
    EXPECT_EQ(parseObjectiveKind("size"), ObjectiveKind::SizeAware);
    EXPECT_TRUE(objectiveArchDependent(ObjectiveKind::SizeAware));
    const CostModel model(Arch::Fallthrough);
    const auto objective =
        makeObjective(ObjectiveKind::SizeAware, &model);
    ASSERT_NE(objective, nullptr);
    EXPECT_EQ(objective->name(), "size-aware");

    bool listed = false;
    for (const ObjectiveKind kind : allObjectiveKinds())
        listed |= kind == ObjectiveKind::SizeAware;
    EXPECT_TRUE(listed);
}

TEST(SizeAware, EveryAlignerProducesVerifiableLayouts)
{
    const Program program = emitBase();
    const CostModel model(Arch::BtFnt);
    AlignOptions options;
    options.objective = ObjectiveKind::SizeAware;
    for (const AlignerKind kind : allAlignerKindsExtended()) {
        const ProgramLayout layout =
            alignProgram(program, kind, &model, options);
        const VerifyResult proof = verifyLayout(program, layout);
        EXPECT_TRUE(proof.verified())
            << alignerKindName(kind) << ": "
            << (proof.failures.empty()
                    ? std::string()
                    : formatVerifyFailure(proof.failures.front()));
    }
}

// ---------------------------------------------------------------------
// Fuzzer emission gate.

TEST(EmitGate, CleanProgramPassesAndChainCorpusPasses)
{
    EXPECT_FALSE(emitGateCheck(emitBase()).has_value());
    EXPECT_FALSE(
        emitGateCheck(loadCorpusProgram("relax-chain.balign"))
            .has_value());
}

TEST(EmitGate, DivergenceKindHasAStableName)
{
    EXPECT_STREQ(divergenceKindName(DivergenceKind::Emit), "emit");
}
