/**
 * @file
 * Tests for the deterministic trace walker: reproducibility, budgets,
 * bias-driven edge selection, call/return sequencing, depth caps,
 * restart-on-exit, deterministic outcome patterns and branch correlation.
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "trace/path.h"
#include "trace/profiler.h"
#include "trace/walker.h"

using namespace balign;

namespace {

/// Loop program: entry -> loop block (cond, self-taken) -> exit(return).
Program
loopProgram(double continue_bias)
{
    Program program("loop");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId loop = b.block(4, Terminator::CondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, loop, 0, 1.0);
    b.taken(loop, loop, 0, continue_bias);
    b.fallThrough(loop, exit, 0, 1.0 - continue_bias);
    return program;
}

/// Caller/callee pair: main calls "leaf" from its only block.
Program
callProgram()
{
    Program program("calls");
    const ProcId main_id = program.addProc("main");
    const ProcId leaf_id = program.addProc("leaf");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId blk = b.block(5, Terminator::Return);
        b.call(blk, leaf_id, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_id));
        b.block(3, Terminator::Return);
    }
    return program;
}

}  // namespace

TEST(Walker, DeterministicForSeed)
{
    const Program program = loopProgram(0.9);
    WalkOptions options;
    options.seed = 99;
    options.instrBudget = 10'000;

    PathRecorder a, b;
    walk(program, options, a);
    walk(program, options, b);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.events(), b.events());
}

TEST(Walker, DifferentSeedsDiffer)
{
    const Program program = loopProgram(0.5);
    WalkOptions options;
    options.instrBudget = 10'000;
    options.seed = 1;
    PathRecorder a;
    walk(program, options, a);
    options.seed = 2;
    PathRecorder b;
    walk(program, options, b);
    EXPECT_NE(a.events(), b.events());
}

TEST(Walker, RespectsInstrBudget)
{
    const Program program = loopProgram(0.95);
    WalkOptions options;
    options.instrBudget = 5'000;
    NullSink sink;
    const WalkResult result = walk(program, options, sink);
    EXPECT_GE(result.instrs, options.instrBudget);
    // Overshoot bounded by one block.
    EXPECT_LT(result.instrs, options.instrBudget + 10);
}

TEST(Walker, BiasControlsEdgeFrequencies)
{
    Program program = loopProgram(0.8);
    WalkOptions options;
    options.instrBudget = 400'000;
    Profiler profiler(program);
    walk(program, options, profiler);

    const Procedure &proc = program.proc(0);
    const Weight taken =
        proc.edge(static_cast<std::uint32_t>(proc.takenEdge(1))).weight;
    const Weight fall =
        proc.edge(static_cast<std::uint32_t>(proc.fallThroughEdge(1)))
            .weight;
    const double frac =
        static_cast<double>(taken) / static_cast<double>(taken + fall);
    EXPECT_NEAR(frac, 0.8, 0.02);
}

TEST(Walker, RestartOnExitProducesMultipleRuns)
{
    const Program program = loopProgram(0.5);
    WalkOptions options;
    options.instrBudget = 20'000;
    NullSink sink;
    const WalkResult result = walk(program, options, sink);
    EXPECT_GT(result.runs, 1u);
}

TEST(Walker, NoRestartStopsAtFirstExit)
{
    const Program program = loopProgram(0.5);
    WalkOptions options;
    options.instrBudget = 1'000'000;
    options.restartOnExit = false;
    NullSink sink;
    const WalkResult result = walk(program, options, sink);
    EXPECT_EQ(result.runs, 1u);
    EXPECT_LT(result.instrs, options.instrBudget);
}

TEST(Walker, CallAndReturnSequencing)
{
    const Program program = callProgram();
    WalkOptions options;
    options.instrBudget = 8;  // exactly one run: 5 + 3 instructions
    options.restartOnExit = false;
    PathRecorder recorder;
    const WalkResult result = walk(program, options, recorder);
    EXPECT_EQ(result.calls, 1u);
    EXPECT_EQ(result.instrs, 8u);

    // Expected event order: Block(main), Call, Block(leaf), Return, Exit.
    const auto &events = recorder.events();
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].kind, PathEvent::Kind::Block);
    EXPECT_EQ(events[0].proc, 0u);
    EXPECT_EQ(events[1].kind, PathEvent::Kind::Call);
    EXPECT_EQ(events[2].kind, PathEvent::Kind::Block);
    EXPECT_EQ(events[2].proc, 1u);
    EXPECT_EQ(events[3].kind, PathEvent::Kind::Return);
    EXPECT_EQ(events[4].kind, PathEvent::Kind::Exit);
}

TEST(Walker, DepthCapSkipsCalls)
{
    // Self-recursive procedure: main calls itself.
    Program program("recursive");
    const ProcId main_id = program.addProc("main");
    {
        CfgBuilder b(program.proc(main_id));
        const BlockId blk = b.block(4, Terminator::Return);
        b.call(blk, main_id, 1);
    }
    WalkOptions options;
    options.instrBudget = 10'000;
    options.maxCallDepth = 8;
    NullSink sink;
    const WalkResult result = walk(program, options, sink);
    EXPECT_GT(result.skippedCalls, 0u);
    EXPECT_GT(result.calls, 0u);
}

TEST(Walker, PatternedBranchFollowsMask)
{
    Program program = loopProgram(0.5);
    // Fixed trip count of 4: taken, taken, taken, not-taken.
    BasicBlock &loop = program.proc(0).block(1);
    loop.patternLength = 4;
    loop.patternMask = 0b0111;

    WalkOptions options;
    options.instrBudget = 100'000;
    Profiler profiler(program);
    walk(program, options, profiler);

    const Procedure &proc = program.proc(0);
    const Weight taken =
        proc.edge(static_cast<std::uint32_t>(proc.takenEdge(1))).weight;
    const Weight fall =
        proc.edge(static_cast<std::uint32_t>(proc.fallThroughEdge(1)))
            .weight;
    EXPECT_NEAR(static_cast<double>(taken) /
                    static_cast<double>(taken + fall),
                0.75, 0.01);
}

TEST(Walker, CorrelatedBranchTracksController)
{
    // Two conditionals in sequence; the second repeats the first outcome.
    Program program("corr");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId first = b.block(2, Terminator::CondBranch);
    const BlockId mid = b.block(2, Terminator::CondBranch);
    const BlockId t1 = b.block(1, Terminator::FallThrough);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(first, mid, 0, 0.5);
    b.taken(first, mid, 0, 0.5);  // both sides reach mid... (not allowed:
                                  // taken edge to same as fall is fine)
    b.fallThrough(mid, t1, 0, 0.5);
    b.taken(mid, exit, 0, 0.5);
    b.fallThrough(t1, exit, 0, 1.0);
    proc.block(mid).correlatedWith = first;
    proc.block(mid).correlatedInvert = false;

    // Count agreement between the two branches over a long walk.
    struct AgreeSink : NullSink
    {
        const Procedure &proc;
        BlockId first, mid;
        int firstTaken = -1;
        std::uint64_t agree = 0, total = 0;
        AgreeSink(const Procedure &p, BlockId f, BlockId m)
            : proc(p), first(f), mid(m)
        {
        }
        void
        onEdge(ProcId, std::uint32_t index) override
        {
            const Edge &edge = proc.edge(index);
            const bool taken = edge.kind == EdgeKind::Taken;
            if (edge.src == first) {
                firstTaken = taken;
            } else if (edge.src == mid && firstTaken >= 0) {
                ++total;
                agree += (firstTaken == 1) == taken;
            }
        }
    } sink(proc, first, mid);

    WalkOptions options;
    options.instrBudget = 50'000;
    walk(program, options, sink);
    ASSERT_GT(sink.total, 100u);
    EXPECT_EQ(sink.agree, sink.total);  // perfect correlation
}

TEST(Walker, IndirectJumpFollowsBiases)
{
    Program program("switch");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId sw = b.block(2, Terminator::IndirectJump);
    const BlockId c0 = b.block(1, Terminator::Return);
    const BlockId c1 = b.block(1, Terminator::Return);
    b.other(sw, c0, 0, 3.0);
    b.other(sw, c1, 0, 1.0);

    Profiler profiler(program);
    WalkOptions options;
    options.instrBudget = 40'000;
    walk(program, options, profiler);
    const Weight w0 = proc.edge(proc.block(sw).outEdges[0]).weight;
    const Weight w1 = proc.edge(proc.block(sw).outEdges[1]).weight;
    EXPECT_NEAR(static_cast<double>(w0) / static_cast<double>(w0 + w1),
                0.75, 0.02);
}

TEST(Walker, DeadEndFallThroughUnwinds)
{
    // A fall-through block with no successor behaves as a procedure exit.
    Program program("deadend");
    Procedure &proc = program.proc(program.addProc("main"));
    proc.addBlock(3, Terminator::FallThrough);  // no out-edge
    WalkOptions options;
    options.instrBudget = 100;
    NullSink sink;
    const WalkResult result = walk(program, options, sink);
    EXPECT_GT(result.runs, 1u);  // restarted repeatedly
    EXPECT_GE(result.instrs, 100u);
}
