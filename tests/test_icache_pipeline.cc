/**
 * @file
 * Tests for the instruction cache model and the Alpha 21064 pipeline
 * timing model.
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "core/align_program.h"
#include "layout/materialize.h"
#include "sim/icache.h"
#include "sim/pipeline.h"
#include "trace/profiler.h"
#include "trace/walker.h"

using namespace balign;

// ---- ICache ------------------------------------------------------------------

TEST(ICache, ColdMissThenHit)
{
    ICache cache(1024, 32);  // 32 lines of 8 instructions
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(7));   // same line
    EXPECT_FALSE(cache.access(8));  // next line
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(ICache, DirectMappedConflict)
{
    ICache cache(1024, 32);  // 32 lines => addresses 0 and 256 conflict
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(256));  // evicts line 0
    EXPECT_FALSE(cache.access(0));    // miss again
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(ICache, AccessRangeCountsLineMisses)
{
    ICache cache(1024, 32);
    // 20 instructions starting at 4 span lines 0, 1, 2 (8 instrs each).
    EXPECT_EQ(cache.accessRange(4, 20), 3u);
    EXPECT_EQ(cache.accessRange(4, 20), 0u);  // all hits now
    EXPECT_EQ(cache.accessRange(0, 0), 0u);   // empty range
}

TEST(ICache, Geometry)
{
    ICache cache(8192, 32);
    EXPECT_EQ(cache.numLines(), 256u);
    EXPECT_EQ(cache.instrsPerLine(), 8u);
}

TEST(ICacheDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(ICache(1000, 32), "power of two");
    EXPECT_DEATH(ICache(32, 64), "bad geometry");
}

// ---- Alpha 21064 model ----------------------------------------------------------

namespace {

/// Deterministic loop (pattern T,T,T,N) as in the evaluator tests.
Program
patternedLoop()
{
    Program program("ploop");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId loop = b.block(4, Terminator::CondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, loop, 1);
    b.taken(loop, loop, 3);
    b.fallThrough(loop, exit, 1);
    proc.block(loop).patternLength = 4;
    proc.block(loop).patternMask = 0b0111;
    return program;
}

}  // namespace

TEST(Alpha21064, CycleArithmetic)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    PipelineParams params;
    params.icacheMissPenalty = 0.0;       // isolate branch effects
    params.misfetchSquashFraction = 0.0;  // full misfetch cost
    Alpha21064Model model(program, layout, params);

    WalkOptions options;
    options.instrBudget = 1000;
    options.restartOnExit = false;
    walk(program, options, model.sink());

    EXPECT_EQ(model.instrs(), 19u);
    // Line predictor: all slots cold after the single line fill; the loop
    // branch is backward => BT/FNT static predicts taken. Iterations:
    // T (cold: predicted taken, correct, misfetch), then slot=Taken:
    // T, T correct (misfetch x2), N mispredict.
    EXPECT_EQ(model.condMispredicts(), 1u);
    EXPECT_EQ(model.misfetches(), 3u);
    // cycles = ceil(19/2) + 1*5 + 3*1 + 0 = 10 + 5 + 3.
    EXPECT_DOUBLE_EQ(model.cycles(), 18.0);
}

TEST(Alpha21064, MisfetchSquashReducesCost)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    PipelineParams params;
    params.icacheMissPenalty = 0.0;
    params.misfetchSquashFraction = 0.30;
    Alpha21064Model model(program, layout, params);
    WalkOptions options;
    options.instrBudget = 1000;
    options.restartOnExit = false;
    walk(program, options, model.sink());
    // 3 misfetches now cost 3 * 0.7 = 2.1 cycles.
    EXPECT_DOUBLE_EQ(model.cycles(), 10.0 + 5.0 + 2.1);
}

TEST(Alpha21064, ICacheMissesChargePenalty)
{
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    PipelineParams params;
    params.icacheMissPenalty = 10.0;
    Alpha21064Model model(program, layout, params);
    WalkOptions options;
    options.instrBudget = 1000;
    options.restartOnExit = false;
    walk(program, options, model.sink());
    // The static footprint is 7 instructions (addresses 0..6): one
    // 32-byte line, filled once.
    EXPECT_EQ(model.icacheMisses(), 1u);
}

TEST(Alpha21064, LinePredictorLearnsLoopDirection)
{
    // Long-running loop: after the first cold prediction, the 1-bit line
    // predictor follows the previous outcome: with pattern TTTN each
    // period mispredicts the exit and the re-entry (classic 1-bit
    // behaviour), except the very first iteration.
    const Program program = patternedLoop();
    const ProgramLayout layout = originalLayout(program);
    PipelineParams params;
    Alpha21064Model model(program, layout, params);
    WalkOptions options;
    options.instrBudget = 19 * 10;  // ten runs
    walk(program, options, model.sink());
    // Each run of 4 executions: N mispredicted (bit was T) and next run's
    // first T mispredicted (bit left N)... but each run re-enters after a
    // fresh walk restart with the bit preserved (same cache line, no
    // eviction): expect ~2 mispredicts per run.
    EXPECT_NEAR(static_cast<double>(model.condMispredicts()),
                2.0 * 10 - 1.0, 2.0);
}

TEST(Alpha21064, AlignmentNeverIncreasesCyclesOnSkewedDiamond)
{
    // A diamond with a hot taken side: alignment inverts it; the aligned
    // layout must not be slower under the pipeline model.
    Program program("diamond");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId cold = b.block(6, Terminator::UncondBranch);
    const BlockId hot = b.block(6, Terminator::FallThrough);
    const BlockId join = b.block(2, Terminator::Return);
    b.fallThrough(head, cold, 0, 0.1);
    b.taken(head, hot, 0, 0.9);
    b.taken(cold, join, 0, 1.0);
    b.fallThrough(hot, join, 0, 1.0);

    WalkOptions options;
    options.seed = 3;
    options.instrBudget = 50'000;

    // Profile, then align.
    {
        Profiler profiler(program);
        walk(program, options, profiler);
    }
    const CostModel model(Arch::PhtDirect);
    const ProgramLayout orig = originalLayout(program);
    const ProgramLayout aligned =
        alignProgram(program, AlignerKind::Try15, &model);

    Alpha21064Model orig_model(program, orig);
    Alpha21064Model aligned_model(program, aligned);
    MultiSink fanout;
    fanout.add(&orig_model.sink());
    fanout.add(&aligned_model.sink());
    walk(program, options, fanout);
    EXPECT_LE(aligned_model.cycles(), orig_model.cycles());
}
