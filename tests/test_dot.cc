/**
 * @file
 * Tests for the Graphviz exporter (paper-figure styling).
 */

#include <gtest/gtest.h>

#include "cfg/builder.h"
#include "cfg/dot.h"
#include "workload/paper_figures.h"

using namespace balign;

TEST(Dot, ContainsAllNodesAndEdges)
{
    const Program program = figure3Loop();
    const std::string dot = toDot(program.proc(0));
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    for (BlockId id = 0; id < program.proc(0).numBlocks(); ++id) {
        EXPECT_NE(dot.find("n" + std::to_string(id) + " ["),
                  std::string::npos)
            << "node " << id;
    }
    // One arrow per edge.
    std::size_t arrows = 0, pos = 0;
    while ((pos = dot.find("->", pos)) != std::string::npos) {
        ++arrows;
        pos += 2;
    }
    EXPECT_EQ(arrows, program.proc(0).numEdges());
}

TEST(Dot, StylesMatchPaperConventions)
{
    const Program program = figure3Loop();
    const std::string dot = toDot(program.proc(0));
    // Fall-through edges bold, taken edges dashed.
    EXPECT_NE(dot.find("style=bold"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    // Entry gets a double border.
    EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
    // Return block annotated.
    EXPECT_NE(dot.find("\\nret"), std::string::npos);
}

TEST(Dot, PercentLabelsRespectThreshold)
{
    const Program program = figure3Loop();
    DotOptions options;
    options.minLabelPct = 1.0;
    const std::string dot = toDot(program.proc(0), options);
    // The three hot edges carry 9000 of 27002 transitions each = 33%.
    EXPECT_NE(dot.find("label=\"33\""), std::string::npos);
    // The weight-1 edges are below 1% and stay unlabelled: count EDGE
    // labels (node labels are "[label="; edge labels follow a style).
    std::size_t labels = 0, pos = 0;
    while ((pos = dot.find(", label=", pos)) != std::string::npos) {
        ++labels;
        pos += 8;
    }
    EXPECT_EQ(labels, 3u);
}

TEST(Dot, RawWeightsOption)
{
    const Program program = figure3Loop();
    DotOptions options;
    options.percentLabels = false;
    options.rawWeights = true;
    const std::string dot = toDot(program.proc(0), options);
    EXPECT_NE(dot.find("9,000"), std::string::npos);
}

TEST(Dot, IndirectEdgesDotted)
{
    Program program("sw");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId sw = b.block(2, Terminator::IndirectJump);
    const BlockId c0 = b.block(1, Terminator::Return);
    b.other(sw, c0, 5);
    const std::string dot = toDot(proc);
    EXPECT_NE(dot.find("style=dotted"), std::string::npos);
    EXPECT_NE(dot.find("\\nijmp"), std::string::npos);
}
