/**
 * @file
 * Fuzzer tests: degenerate shapes are valid and diff clean, campaigns are
 * deterministic, repro files round-trip with their walk parameters, and
 * the shrinker minimizes to the smallest program a predicate pins.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cfg/builder.h"
#include "cfg/serialize.h"
#include "cfg/validate.h"
#include "check/differ.h"
#include "check/fuzz.h"

using namespace balign;

namespace {

/// Main diamond (cond head, two arms, join) calling two leaf procedures —
/// plenty of material for the shrinker to throw away.
Program
shrinkableProgram()
{
    Program program("shrinkable");
    const ProcId main = program.addProc("main");
    const ProcId leaf_a = program.addProc("leaf_a");
    const ProcId leaf_b = program.addProc("leaf_b");
    {
        CfgBuilder b(program.proc(main));
        const BlockId head = b.block(4, Terminator::CondBranch);
        const BlockId arm_a = b.block(3, Terminator::UncondBranch);
        const BlockId arm_b = b.block(5, Terminator::FallThrough);
        const BlockId join = b.block(2, Terminator::Return);
        b.taken(head, arm_a, 0, 0.5);
        b.fallThrough(head, arm_b, 0, 0.5);
        b.taken(arm_a, join, 0);
        b.fallThrough(arm_b, join, 0);
        b.call(head, leaf_a, 0);
        b.call(arm_b, leaf_b, 1);
    }
    {
        CfgBuilder b(program.proc(leaf_a));
        b.block(2, Terminator::Return);
    }
    {
        CfgBuilder b(program.proc(leaf_b));
        b.block(3, Terminator::Return);
    }
    validateOrDie(program);
    return program;
}

bool
mainHasCondBlock(const Repro &repro)
{
    const auto &main = repro.program.proc(repro.program.mainProc());
    for (const auto &block : main.blocks()) {
        if (block.term == Terminator::CondBranch)
            return true;
    }
    return false;
}

}  // namespace

TEST(Fuzz, DegenerateShapesAreValidAndDiffClean)
{
    DiffOptions first_only;
    first_only.maxDivergences = 1;
    ASSERT_GE(numDegenerateKinds(), 10u);
    for (std::size_t kind = 0; kind < numDegenerateKinds(); ++kind) {
        for (const std::uint64_t seed : {0u, 5u}) {
            Program program = degenerateProgram(kind, seed);
            EXPECT_TRUE(validate(program).empty())
                << degenerateKindName(kind) << " seed " << seed;
            const WalkOptions walk =
                walkForSeed(kind * 97 + seed + 1, 3'000);
            const auto divergences =
                diffProgram(std::move(program), walk, first_only);
            for (const auto &divergence : divergences)
                ADD_FAILURE() << degenerateKindName(kind) << " seed "
                              << seed << "\n"
                              << formatDivergence(divergence);
        }
    }
}

TEST(Fuzz, ProgramForSeedIsDeterministic)
{
    for (const std::uint64_t seed : {1u, 3u, 7u, 12u}) {
        const std::string once = programToString(programForSeed(seed));
        const std::string again = programToString(programForSeed(seed));
        EXPECT_EQ(once, again) << "seed " << seed;
        EXPECT_EQ(walkForSeed(seed, 5'000).seed,
                  walkForSeed(seed, 5'000).seed);
    }
    // Different seeds produce different walks (programs may rarely
    // collide; the walk seed never should).
    EXPECT_NE(walkForSeed(1, 5'000).seed, walkForSeed(2, 5'000).seed);
}

TEST(Fuzz, SmokeCampaignFindsNoDivergences)
{
    FuzzOptions options;
    options.seeds = 15;
    options.walkInstrs = 4'000;
    const FuzzReport report = runFuzz(options);
    EXPECT_EQ(report.programsRun, 15u);
    // 8 architectures x 5 aligners (incl. ExtTsp) x 3 objectives.
    EXPECT_EQ(report.configsChecked, 15u * 8u * 5u * 3u);
    for (const auto &divergence : report.divergences)
        ADD_FAILURE() << formatDivergence(divergence);
}

TEST(Fuzz, CampaignIsDeterministicAcrossRuns)
{
    FuzzOptions options;
    options.seeds = 6;
    options.walkInstrs = 2'000;
    const FuzzReport a = runFuzz(options);
    const FuzzReport b = runFuzz(options);
    EXPECT_EQ(a.programsRun, b.programsRun);
    EXPECT_EQ(a.configsChecked, b.configsChecked);
    EXPECT_EQ(a.divergences.size(), b.divergences.size());
}

TEST(Fuzz, ShrinkerMinimizesToThePredicate)
{
    Repro repro;
    repro.program = shrinkableProgram();
    repro.walk.seed = 99;
    repro.walk.instrBudget = 4'000;
    ASSERT_TRUE(mainHasCondBlock(repro));

    const Repro shrunk = shrinkRepro(repro, mainHasCondBlock);

    // The predicate survives, the program is valid, and everything the
    // predicate does not need is gone: both leaf procedures, the join
    // block (unreachable once the arms return), every spare instruction
    // and most of the trace budget.
    EXPECT_TRUE(mainHasCondBlock(shrunk));
    EXPECT_TRUE(validate(shrunk.program).empty());
    EXPECT_EQ(shrunk.program.numProcs(), 1u);
    const auto &main = shrunk.program.proc(shrunk.program.mainProc());
    EXPECT_LE(main.numBlocks(), 3u);
    for (const auto &block : main.blocks())
        EXPECT_EQ(block.numInstrs, 1u) << "block " << block.id;
    EXPECT_LE(shrunk.walk.instrBudget, 64u);
}

TEST(Fuzz, ShrinkerKeepsOriginalWhenNothingCanGo)
{
    // A minimal repro (single return block, floor budget) is a fixpoint.
    Repro repro;
    Program program("minimal");
    const ProcId main = program.addProc("main");
    CfgBuilder(program.proc(main)).block(1, Terminator::Return);
    validateOrDie(program);
    repro.program = std::move(program);
    repro.walk.instrBudget = 64;

    const Repro shrunk =
        shrinkRepro(repro, [](const Repro &) { return true; });
    EXPECT_EQ(shrunk.program.numProcs(), 1u);
    EXPECT_EQ(shrunk.program.proc(0).numBlocks(), 1u);
    EXPECT_EQ(shrunk.program.proc(0).block(0).numInstrs, 1u);
    EXPECT_EQ(shrunk.walk.instrBudget, 64u);
}

TEST(Fuzz, ReproFilesRoundTripWalkAndProgram)
{
    Repro repro;
    repro.program = shrinkableProgram();
    repro.walk.seed = 123456789;
    repro.walk.instrBudget = 77'000;

    const std::string path = testing::TempDir() + "balign-repro-rt.balign";
    saveRepro(repro, path);
    const auto loaded = loadRepro(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->walk.seed, repro.walk.seed);
    EXPECT_EQ(loaded->walk.instrBudget, repro.walk.instrBudget);
    EXPECT_EQ(programToString(loaded->program),
              programToString(repro.program));
}

TEST(Fuzz, PlainProgramFilesLoadWithDefaultWalk)
{
    // A corpus file without the magic comment is still a repro; it gets
    // default walk options.
    const std::string path = testing::TempDir() + "balign-plain.balign";
    saveProgram(shrinkableProgram(), path);
    const auto loaded = loadRepro(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->walk.seed, WalkOptions{}.seed);
}
