/**
 * @file
 * Objective-layer tests (label: objective).
 *
 * The centerpiece is a behaviour-preservation golden: the layouts the
 * refactored objective-based pipeline produces for every benchmark-suite
 * program under the default Table-1 objective are hashed and compared
 * against hashes captured from the pre-refactor tree (one combined hash
 * per (program, aligner) across all eight architectures, BT/FNT with its
 * chain-order override). Any pricing or plumbing change that alters even
 * one block address, realization flag, or inserted jump flips a hash.
 *
 * The rest covers the interface itself: kind/name round-trips, ExtTspParams
 * serialization, makeObjective contracts, ExtTSP scoring identities, the
 * ExtTSP aligner's determinism, and its fallthrough-dominance guarantee.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/differ.h"
#include "core/align_program.h"
#include "core/exttsp_align.h"
#include "objective/exttsp.h"
#include "objective/objective.h"
#include "objective/table_cost.h"
#include "trace/profiler.h"
#include "trace/walker.h"
#include "workload/generator.h"
#include "workload/suite.h"

namespace balign {
namespace {

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xFF;
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t
hashLayout(const ProgramLayout &layout)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const ProcLayout &proc : layout.procs) {
        hash = fnv1a(hash, proc.base);
        hash = fnv1a(hash, proc.totalInstrs);
        hash = fnv1a(hash, proc.jumpsInserted);
        hash = fnv1a(hash, proc.jumpsRemoved);
        hash = fnv1a(hash, proc.sensesInverted);
        for (BlockId id : proc.order)
            hash = fnv1a(hash, id);
        for (const BlockLayout &block : proc.blocks) {
            hash = fnv1a(hash, block.addr);
            hash = fnv1a(hash, block.finalInstrs);
            hash = fnv1a(hash, static_cast<std::uint64_t>(block.cond));
            hash = fnv1a(hash, block.jumpInserted ? 1 : 2);
            hash = fnv1a(hash, block.jumpRemoved ? 1 : 2);
            hash = fnv1a(hash, block.branchAddr);
            hash = fnv1a(hash, block.jumpAddr);
        }
    }
    return hash;
}

/// Suite program with its profile attached (the goldens were captured with
/// traceInstrs pinned to 50'000 so the test is budget-setting-proof).
Program
profiledProgram(ProgramSpec spec)
{
    spec.traceInstrs = 50'000;
    Program program = generateProgram(spec);
    program.clearWeights();
    Profiler profiler(program);
    WalkOptions walk_options;
    walk_options.seed = traceSeed(spec);
    walk_options.instrBudget = spec.traceInstrs;
    walk(program, walk_options, profiler);
    return program;
}

struct GoldenRow
{
    const char *program;
    const char *aligner;
    std::uint64_t hash;
};

// Captured from the pre-refactor tree (commit 3cd64d5) with the dumper
// described in the file comment. 24 programs x 4 aligners. The cost and
// try15 rows were re-captured when DirOracle learned to resolve
// same-chain directions from the live ChainSet (definitive evidence the
// id-based fallback got wrong on rotated loops); original and greedy
// never consult the oracle and still match the pre-refactor seed.
const GoldenRow kGoldenRows[] = {
    {"alvinn", "original", 0xd73849b8910e9365ull},
    {"alvinn", "greedy", 0xd73849b8910e9365ull},
    {"alvinn", "cost", 0x983cc47ff278a25aull},
    {"alvinn", "try15", 0xd217f2203047b32aull},
    {"doduc", "original", 0x88787fefc51ac355ull},
    {"doduc", "greedy", 0x75c49446b68a7fb4ull},
    {"doduc", "cost", 0xc302d1ec89d54bd3ull},
    {"doduc", "try15", 0x943a8899bc4c8f1cull},
    {"ear", "original", 0x38cf138ff3b5bb75ull},
    {"ear", "greedy", 0x3bb640bc541731bcull},
    {"ear", "cost", 0xed6718d8f4bac298ull},
    {"ear", "try15", 0xc921717c3c24ccc1ull},
    {"fpppp", "original", 0xb884ff7a277d0485ull},
    {"fpppp", "greedy", 0x19c12b1aa29282e5ull},
    {"fpppp", "cost", 0x82fe5d2a01497838ull},
    {"fpppp", "try15", 0x31bd9b6db44bbe47ull},
    {"hydro2d", "original", 0xb5db12af29ba7f45ull},
    {"hydro2d", "greedy", 0xe48844201cf2f2ecull},
    {"hydro2d", "cost", 0xd4267a9b1648950dull},
    {"hydro2d", "try15", 0xfb30c717831dba3aull},
    {"mdljsp2", "original", 0x2324fb165fd5ae15ull},
    {"mdljsp2", "greedy", 0xb5da9314492051a5ull},
    {"mdljsp2", "cost", 0x854775c98b3f058full},
    {"mdljsp2", "try15", 0xb2a2956927756990ull},
    {"nasa7", "original", 0xd96dc5b2ecffa015ull},
    {"nasa7", "greedy", 0xacea69f472a81fdeull},
    {"nasa7", "cost", 0xf6274a6f71848a52ull},
    {"nasa7", "try15", 0xe6f0f6a55c37290eull},
    {"ora", "original", 0xdaa7a8ef2e6770d5ull},
    {"ora", "greedy", 0x3ed37333af7440a1ull},
    {"ora", "cost", 0xac7be2b5ab816f2cull},
    {"ora", "try15", 0x952abd8adaa32cd3ull},
    {"spice", "original", 0xf107b1dd1244efd5ull},
    {"spice", "greedy", 0x777cd4df6bd1fc90ull},
    {"spice", "cost", 0xfe9438b927e6b41full},
    {"spice", "try15", 0xeff91ef91150a4ccull},
    {"su2cor", "original", 0x22c14511686338e5ull},
    {"su2cor", "greedy", 0x3559bc450cbbb216ull},
    {"su2cor", "cost", 0xb771390211c2795full},
    {"su2cor", "try15", 0xac7ab2836a6daeceull},
    {"swm256", "original", 0x35fce9334e29fee5ull},
    {"swm256", "greedy", 0x34ccac0d3402d136ull},
    {"swm256", "cost", 0x980361db1e7a41faull},
    {"swm256", "try15", 0xc73eb1974faccb07ull},
    {"tomcatv", "original", 0xa8e32e71a87a2965ull},
    {"tomcatv", "greedy", 0xa8e32e71a87a2965ull},
    {"tomcatv", "cost", 0xf7411bec4c5e8dc2ull},
    {"tomcatv", "try15", 0x81479889d8e68db9ull},
    {"wave5", "original", 0xfac80cdf26557d75ull},
    {"wave5", "greedy", 0xbc08b13e1dd26f65ull},
    {"wave5", "cost", 0xe2d5a3059d736f73ull},
    {"wave5", "try15", 0x53a4466802e5c69eull},
    {"compress", "original", 0x6872f2fc7fce37a5ull},
    {"compress", "greedy", 0x3d098326a407371aull},
    {"compress", "cost", 0x9c8e3296917607f3ull},
    {"compress", "try15", 0xd1d219db20d25e8bull},
    {"eqntott", "original", 0xfb2631d5ce43a265ull},
    {"eqntott", "greedy", 0x823e121217f26ae1ull},
    {"eqntott", "cost", 0xa484de10a77dca18ull},
    {"eqntott", "try15", 0xdeaef7515113740cull},
    {"espresso", "original", 0x3ff0fa05bef4f555ull},
    {"espresso", "greedy", 0xcb5f698ceb3d33fcull},
    {"espresso", "cost", 0x9e0e2d89544ad964ull},
    {"espresso", "try15", 0x7167a189e43029e7ull},
    {"gcc", "original", 0x3deefd2f2484b315ull},
    {"gcc", "greedy", 0x54b07515c346c27dull},
    {"gcc", "cost", 0x0b13af0e17ac76c3ull},
    {"gcc", "try15", 0x7ab2afa60a219a17ull},
    {"li", "original", 0xb54ecefb31b7cf65ull},
    {"li", "greedy", 0x6df81cc3fdb88072ull},
    {"li", "cost", 0xb1cedeeb205e3c44ull},
    {"li", "try15", 0xeb4b1bb7f13feb08ull},
    {"sc", "original", 0x850e729722b0b5c5ull},
    {"sc", "greedy", 0x918b52fbf8fdf4a1ull},
    {"sc", "cost", 0xd67932c6a204adc7ull},
    {"sc", "try15", 0xc1bf96b3e22ce46full},
    {"cfront", "original", 0x6bbc0072a65242c5ull},
    {"cfront", "greedy", 0x3a59b504bce295d4ull},
    {"cfront", "cost", 0x54ef6ae4c5106e42ull},
    {"cfront", "try15", 0x499f137234a73b19ull},
    {"db++", "original", 0x2f9c3791595a6975ull},
    {"db++", "greedy", 0x8cf41b3ff04262a1ull},
    {"db++", "cost", 0x7f3b2ab0eae001f0ull},
    {"db++", "try15", 0xbbe8a2f569bb7295ull},
    {"groff", "original", 0x7d0ac20bf546e0c5ull},
    {"groff", "greedy", 0x8326b338d6e0eab4ull},
    {"groff", "cost", 0xdffcb21d172a7c12ull},
    {"groff", "try15", 0x3f150d6215359ef5ull},
    {"idl", "original", 0x5530503f02cb2b25ull},
    {"idl", "greedy", 0x7f9158fb58fcb25eull},
    {"idl", "cost", 0x4acdc732c9de0feeull},
    {"idl", "try15", 0xcb593ae85fa6213aull},
    {"tex", "original", 0x4b6fd11e598f95a5ull},
    {"tex", "greedy", 0xc759960a710254daull},
    {"tex", "cost", 0x9977432c06c5c19cull},
    {"tex", "try15", 0x0601fd4f60ccb4dbull},
};

AlignerKind
kindFromName(const std::string &name)
{
    for (const AlignerKind kind :
         {AlignerKind::Original, AlignerKind::Greedy, AlignerKind::Cost,
          AlignerKind::Try15, AlignerKind::ExtTsp}) {
        if (name == alignerKindName(kind))
            return kind;
    }
    ADD_FAILURE() << "unknown aligner name " << name;
    return AlignerKind::Original;
}

std::uint64_t
combinedHash(const Program &program, AlignerKind kind)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const Arch arch : allArchs()) {
        const CostModel model(arch);
        AlignOptions options;
        if (arch == Arch::BtFnt)
            options.chainOrder = ChainOrderPolicy::BtFntPrecedence;
        const ProgramLayout layout =
            alignProgram(program, kind, &model, options);
        hash = fnv1a(hash, hashLayout(layout));
    }
    return hash;
}

TEST(ObjectiveGolden, TableCostLayoutsMatchPreRefactorSeed)
{
    std::size_t checked = 0;
    for (const ProgramSpec &spec : benchmarkSuite()) {
        const Program program = profiledProgram(spec);
        for (const GoldenRow &row : kGoldenRows) {
            if (spec.name != row.program)
                continue;
            EXPECT_EQ(combinedHash(program, kindFromName(row.aligner)),
                      row.hash)
                << spec.name << " / " << row.aligner;
            ++checked;
        }
    }
    EXPECT_EQ(checked, std::size(kGoldenRows));
}

TEST(ObjectiveKindTest, NamesRoundTrip)
{
    for (const ObjectiveKind kind : allObjectiveKinds()) {
        const auto parsed = parseObjectiveKind(objectiveKindName(kind));
        ASSERT_TRUE(parsed.has_value()) << objectiveKindName(kind);
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_EQ(parseObjectiveKind("table"), ObjectiveKind::TableCost);
    EXPECT_EQ(parseObjectiveKind("cost"), ObjectiveKind::TableCost);
    EXPECT_EQ(parseObjectiveKind("ext-tsp"), ObjectiveKind::ExtTsp);
    EXPECT_FALSE(parseObjectiveKind("tsp").has_value());
    EXPECT_FALSE(parseObjectiveKind("").has_value());
}

TEST(ObjectiveKindTest, ArchDependenceMatchesObjects)
{
    const CostModel model(Arch::Fallthrough);
    for (const ObjectiveKind kind : allObjectiveKinds()) {
        const auto objective = makeObjective(kind, &model);
        ASSERT_NE(objective, nullptr);
        EXPECT_EQ(objective->kind(), kind);
        EXPECT_EQ(objective->name(), objectiveKindName(kind));
        EXPECT_EQ(objective->archDependent(), objectiveArchDependent(kind));
        // Arch-dependent objectives drive cost-model materialization;
        // arch-independent ones must not.
        EXPECT_EQ(objective->materializationModel() != nullptr,
                  objective->archDependent());
    }
}

TEST(ObjectiveKindDeath, TableCostRequiresModel)
{
    EXPECT_DEATH(makeObjective(ObjectiveKind::TableCost, nullptr),
                 "needs a cost model");
}

TEST(ObjectiveKindTest, ExtTspNeedsNoModel)
{
    const auto objective = makeObjective(ObjectiveKind::ExtTsp, nullptr);
    ASSERT_NE(objective, nullptr);
    EXPECT_FALSE(objective->archDependent());
    EXPECT_EQ(objective->materializationModel(), nullptr);
}

TEST(ObjectiveConfigTest, ExtTspParamsRoundTrip)
{
    ExtTspParams params;
    params.fallthroughWeight = 1.25;
    params.forwardJumpWeight = 0.05;
    params.backwardJumpWeight = 0.125;
    params.forwardWindow = 2048;
    params.backwardWindow = 320;
    const auto parsed = ExtTspParams::fromString(params.toString());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == params);
    // Defaults round-trip too, and garbage is rejected.
    EXPECT_TRUE(ExtTspParams::fromString(ExtTspParams().toString())
                    .has_value());
    EXPECT_FALSE(ExtTspParams::fromString("fallthrough=1.0").has_value());
    EXPECT_FALSE(ExtTspParams::fromString("").has_value());
}

TEST(ExtTspScoreTest, JumpScoreShape)
{
    const ExtTspParams params;
    // Fallthrough-distance forward jump of 0 words scores the full bonus.
    EXPECT_DOUBLE_EQ(extTspJumpScore(params, 100, 100, 10), 1.0);
    // Linear decay to zero at the window edge.
    EXPECT_DOUBLE_EQ(extTspJumpScore(params, 100, 100 + 512, 10),
                     10 * 0.1 * 0.5);
    EXPECT_DOUBLE_EQ(extTspJumpScore(params, 100, 100 + 1024, 10), 0.0);
    EXPECT_DOUBLE_EQ(extTspJumpScore(params, 1000, 1000 - 320, 10),
                     10 * 0.1 * 0.5);
    EXPECT_DOUBLE_EQ(extTspJumpScore(params, 1000, 1000 - 640, 10), 0.0);
}

TEST(ExtTspScoreTest, ProgramScoreIsProcedureSum)
{
    const ProgramSpec spec = benchmarkSuite().front();
    const Program program = profiledProgram(spec);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Greedy, nullptr);
    double per_proc = 0.0;
    for (const auto &proc : program.procs())
        per_proc += extTspScore(proc, layout.procs[proc.id()]);
    EXPECT_DOUBLE_EQ(extTspScore(program, layout), per_proc);
    // And the objective's price is the negated score.
    const ExtTspObjective objective;
    EXPECT_DOUBLE_EQ(objective.layoutCost(program, layout), -per_proc);
}

TEST(ExtTspAlignerTest, DeterministicAcrossRuns)
{
    const ProgramSpec spec = benchmarkSuite().front();
    const Program program = profiledProgram(spec);
    const ProgramLayout a =
        alignProgram(program, AlignerKind::ExtTsp, nullptr);
    const ProgramLayout b =
        alignProgram(program, AlignerKind::ExtTsp, nullptr);
    EXPECT_EQ(hashLayout(a), hashLayout(b));
}

TEST(ExtTspAlignerTest, ScoresAtLeastGreedyOnSuite)
{
    // Under its own objective the ExtTSP aligner can never score below
    // Greedy: the merge loop usually wins outright, and where a greedy
    // max-gain commitment blocks a heavier fallthrough the driver's
    // per-procedure fallback splice (priced by the active objective)
    // keeps the Greedy procedure instead.
    AlignOptions options;
    options.objective = ObjectiveKind::ExtTsp;
    for (const ProgramSpec &spec : benchmarkSuite()) {
        const Program program = profiledProgram(spec);
        const ProgramLayout greedy =
            alignProgram(program, AlignerKind::Greedy, nullptr, options);
        const ProgramLayout exttsp =
            alignProgram(program, AlignerKind::ExtTsp, nullptr, options);
        EXPECT_GE(extTspScore(program, exttsp),
                  extTspScore(program, greedy))
            << spec.name;
    }
}

TEST(ExtTspAlignerTest, ObjectiveGuidedButCostBlind)
{
    const ExtTspAligner aligner;
    EXPECT_FALSE(aligner.wantsCostModelMaterialization());
    EXPECT_TRUE(aligner.objectiveGuided());
    EXPECT_EQ(aligner.name(), "exttsp");
    EXPECT_EQ(std::string(alignerKindName(AlignerKind::ExtTsp)), "exttsp");
}

TEST(ObjectiveOptionTest, ExtTspObjectiveSharesLayoutAcrossArchs)
{
    // Under the arch-independent ExtTSP objective, Cost-aligned layouts
    // are identical for every architecture (no cost-model consultation
    // anywhere in the pipeline).
    const ProgramSpec spec = benchmarkSuite().front();
    const Program program = profiledProgram(spec);
    AlignOptions options;
    options.objective = ObjectiveKind::ExtTsp;
    std::uint64_t first = 0;
    bool have_first = false;
    for (const Arch arch : allArchs()) {
        if (arch == Arch::BtFnt)
            continue;  // BT/FNT overrides chain order, not the objective
        const CostModel model(arch);
        const std::uint64_t hash = hashLayout(
            alignProgram(program, AlignerKind::Cost, &model, options));
        if (!have_first) {
            first = hash;
            have_first = true;
        }
        EXPECT_EQ(hash, first) << archName(arch);
    }
}

}  // namespace
}  // namespace balign
