/**
 * @file
 * Tests for the three alignment algorithms: Greedy (Pettis–Hansen), Cost
 * and Try15 — chain formation rules, the paper's worked examples, and the
 * algorithm-ranking properties the paper reports.
 */

#include <gtest/gtest.h>

#include "bpred/evaluator.h"
#include "cfg/builder.h"
#include "core/align_program.h"
#include "core/cost_align.h"
#include "core/greedy.h"
#include "core/try15.h"
#include "layout/materialize.h"
#include "trace/walker.h"
#include "workload/paper_figures.h"

using namespace balign;

// ---- edge ordering -----------------------------------------------------------

TEST(AlignableEdges, SortedByWeightStably)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId a = b.block(2, Terminator::CondBranch);
    const BlockId c = b.block(2, Terminator::FallThrough);
    const BlockId d = b.block(1, Terminator::Return);
    b.fallThrough(a, c, 50);
    b.taken(a, d, 100);
    b.fallThrough(c, d, 50);

    const auto edges = alignableEdgesByWeight(proc);
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(proc.edge(edges[0]).weight, 100u);
    // Equal-weight edges keep insertion order (stability).
    EXPECT_EQ(proc.edge(edges[1]).weight, 50u);
    EXPECT_LT(edges[1], edges[2]);
}

TEST(AlignableEdges, ExcludesIndirectTargets)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId sw = b.block(2, Terminator::IndirectJump);
    const BlockId c0 = b.block(1, Terminator::Return);
    b.other(sw, c0, 1000);
    EXPECT_TRUE(alignableEdgesByWeight(proc).empty());
}

// ---- Greedy -----------------------------------------------------------------

TEST(Greedy, LinksHeaviestEdgesFirst)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId cold = b.block(2, Terminator::FallThrough);
    const BlockId hot = b.block(3, Terminator::FallThrough);
    const BlockId join = b.block(1, Terminator::Return);
    b.fallThrough(head, cold, 100);
    b.taken(head, hot, 900);
    b.fallThrough(cold, join, 100);
    b.fallThrough(hot, join, 900);

    GreedyAligner aligner;
    const ChainSet chains = aligner.alignProc(proc);
    // head->hot (900) links first, then hot->join (900), cold loses both.
    EXPECT_EQ(chains.next(head), hot);
    EXPECT_EQ(chains.next(hot), join);
    EXPECT_EQ(chains.next(cold), kNoBlock);
}

TEST(Greedy, Figure3LeavesLoopUnchanged)
{
    // The paper's Figure 3: Greedy links A->B and B->C first (the ties are
    // processed in edge order), so C->A would close a cycle and the code
    // is left in its original layout.
    const Program program = figure3Loop();
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Greedy, nullptr);
    EXPECT_EQ(layout.procs[0].order,
              (std::vector<BlockId>{0, 1, 2, 3, 4}));
    EXPECT_EQ(layout.procs[0].jumpsInserted, 0u);
    EXPECT_EQ(layout.procs[0].jumpsRemoved, 0u);
}

TEST(Greedy, DoesNotWantCostModel)
{
    GreedyAligner aligner;
    EXPECT_FALSE(aligner.wantsCostModelMaterialization());
    EXPECT_EQ(aligner.name(), "greedy");
}

// ---- blockAlignCost -----------------------------------------------------------

TEST(BlockAlignCost, CondRealizationSelection)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId head = b.block(2, Terminator::CondBranch);
    const BlockId cold = b.block(2, Terminator::Return);
    const BlockId hot = b.block(3, Terminator::Return);
    b.fallThrough(head, cold, 10);
    b.taken(head, hot, 90);

    const CostModel model(Arch::Fallthrough);
    // Linked to the fall successor: taken edge (90) mispredicts.
    const double fall_adj = blockAlignCost(proc, model, head, cold);
    EXPECT_DOUBLE_EQ(fall_adj, 90 * 5.0 + 10 * 1.0);
    // Linked to the taken successor (inverted): only 10 mispredicts.
    const double taken_adj = blockAlignCost(proc, model, head, hot);
    EXPECT_DOUBLE_EQ(taken_adj, 10 * 5.0 + 90 * 1.0);
    // Unlinked: best branch-plus-jump realization.
    const double unlinked = blockAlignCost(proc, model, head, kNoBlock);
    EXPECT_DOUBLE_EQ(unlinked,
                     std::min(90 * 5.0 + 10 * 1.0 + 10 * 2.0,
                              10 * 5.0 + 90 * 1.0 + 90 * 2.0));
}

TEST(BlockAlignCost, SingleExitBlocks)
{
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId u = b.block(2, Terminator::UncondBranch);
    const BlockId f = b.block(2, Terminator::FallThrough);
    const BlockId r = b.block(1, Terminator::Return);
    b.taken(u, r, 40);
    b.fallThrough(f, r, 60);

    const CostModel model(Arch::Likely);
    EXPECT_DOUBLE_EQ(blockAlignCost(proc, model, u, r), 0.0);
    EXPECT_DOUBLE_EQ(blockAlignCost(proc, model, u, kNoBlock), 80.0);
    EXPECT_DOUBLE_EQ(blockAlignCost(proc, model, f, r), 0.0);
    EXPECT_DOUBLE_EQ(blockAlignCost(proc, model, f, kNoBlock), 120.0);
    EXPECT_DOUBLE_EQ(blockAlignCost(proc, model, r, kNoBlock), 0.0);
}

// ---- Cost aligner -------------------------------------------------------------

TEST(CostAligner, RefusesHotSelfLoopLinkOnFallthrough)
{
    // A hot self-loop cannot be linked anyway (self links are cycles), but
    // the Cost aligner must also refuse to link the loop's cold EXIT edge
    // as the fall-through when the loop transformation is cheaper... the
    // exit edge costs nothing extra, so instead verify the decisive case:
    // linking the exit must not prevent the materializer's loop
    // transformation, and the hot edge S->D where linking hurts is
    // refused.
    Program program("loop");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId loop = b.block(4, Terminator::CondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, loop, 10);
    b.taken(loop, loop, 990);
    b.fallThrough(loop, exit, 10);

    const CostModel model(Arch::Fallthrough);
    CostAligner aligner(model);
    const ChainSet chains = aligner.alignProc(proc);
    // Linking loop->exit (FallAdjacent) costs 990*5 + 10*1; leaving the
    // loop unlinked costs 990*3 + 10*5 — unlinked wins, so the Cost
    // aligner must NOT link the exit edge.
    EXPECT_EQ(chains.next(loop), kNoBlock);

    // End-to-end: the materializer then applies the jump transformation.
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Cost, &model);
    EXPECT_EQ(layout.procs[0].blocks[loop].cond,
              CondRealization::NeitherJumpToTaken);
}

TEST(CostAligner, LeavesSlotForBetterPredecessor)
{
    // Two predecessors of d with equal edge weight 100: s is a
    // conditional whose best unlinked realization already avoids most of
    // the jump cost (benefit 160), p is an unconditional branch whose
    // link removes the jump outright (benefit 200). s->d is processed
    // first (lower edge index), but the predecessor check must leave the
    // slot for p.
    Program program("pred");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId x = b.block(1, Terminator::Return);        // 0 = entry
    const BlockId s_blk = b.block(2, Terminator::CondBranch);  // 1
    const BlockId p_blk = b.block(2, Terminator::UncondBranch);  // 2
    const BlockId d = b.block(3, Terminator::Return);        // 3
    b.fallThrough(s_blk, d, 100);
    b.taken(s_blk, x, 120);
    b.taken(p_blk, d, 100);

    const CostModel model(Arch::Fallthrough);
    // Sanity of the hand-computed benefits.
    const double s_unlinked = blockAlignCost(proc, model, s_blk, kNoBlock);
    const double s_linked = blockAlignCost(proc, model, s_blk, d);
    EXPECT_DOUBLE_EQ(s_unlinked, 860.0);  // jump-to-taken variant
    EXPECT_DOUBLE_EQ(s_linked, 700.0);
    const double p_benefit =
        blockAlignCost(proc, model, p_blk, kNoBlock) -
        blockAlignCost(proc, model, p_blk, d);
    EXPECT_DOUBLE_EQ(p_benefit, 200.0);

    CostAligner aligner(model);
    const ChainSet chains = aligner.alignProc(proc);
    EXPECT_EQ(chains.next(s_blk), kNoBlock);
    EXPECT_EQ(chains.next(p_blk), d);
}

// ---- Try15 ---------------------------------------------------------------------

TEST(Try15, Figure3RotatesLoop)
{
    const Program program = figure3Loop();
    const CostModel model(Arch::Likely);
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Try15, &model);
    // Rotation E,B,C,A,D: the loop-closing jump is gone and A's sense is
    // inverted (paper Figure 3).
    EXPECT_EQ(layout.procs[0].order,
              (std::vector<BlockId>{0, 2, 3, 1, 4}));
    EXPECT_EQ(layout.procs[0].jumpsRemoved, 1u);
    EXPECT_EQ(layout.procs[0].sensesInverted, 1u);
}

TEST(Try15, GroupSizeOneStillBeatsNothing)
{
    const Program program = figure3Loop();
    const CostModel model(Arch::Likely);
    AlignOptions options;
    options.groupSize = 1;
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Try15, &model, options);
    // With one edge at a time the search degenerates to a cost-greedy
    // pass; the layout must still be a valid permutation.
    std::vector<bool> seen(program.proc(0).numBlocks(), false);
    for (BlockId id : layout.procs[0].order) {
        EXPECT_FALSE(seen[id]);
        seen[id] = true;
    }
}

TEST(Try15, MinWeightFiltersColdEdges)
{
    // All edges weight 1: with the paper's minEdgeWeight=2 none are
    // searched, but the tidy pass still links beneficial cold edges.
    Program program("cold");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId a = b.block(2, Terminator::FallThrough);
    const BlockId c = b.block(1, Terminator::Return);
    b.fallThrough(a, c, 1);

    const CostModel model(Arch::Likely);
    Try15Aligner aligner(model, AlignOptions{});
    const ChainSet chains = aligner.alignProc(proc);
    EXPECT_EQ(chains.next(a), c);  // tidy pass keeps the fall-through
}

TEST(Try15, NameReflectsGroupSize)
{
    const CostModel model(Arch::Likely);
    AlignOptions options;
    options.groupSize = 10;
    Try15Aligner aligner(model, options);
    EXPECT_EQ(aligner.name(), "try10");
    EXPECT_TRUE(aligner.wantsCostModelMaterialization());
}

TEST(Try15, TidyPassDoesNotUndoLoopTransformation)
{
    // Hot self-loop on FALLTHROUGH: the search decides "align neither";
    // the tidy pass must not link the cold exit edge if that would make
    // the modelled cost worse. (Linking the exit edge is actually
    // harmless — FallAdjacent vs NeitherJumpToTaken is decided by the
    // materializer — but the invariant that tidy never increases modelled
    // cost must hold.)
    Program program("loop");
    Procedure &proc = program.proc(program.addProc("main"));
    CfgBuilder b(proc);
    const BlockId entry = b.block(2, Terminator::FallThrough);
    const BlockId loop = b.block(4, Terminator::CondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(entry, loop, 10);
    b.taken(loop, loop, 990);
    b.fallThrough(loop, exit, 10);

    const CostModel model(Arch::Fallthrough);
    Try15Aligner aligner(model, AlignOptions{});
    const ChainSet chains = aligner.alignProc(proc);

    double cost = 0.0;
    for (BlockId id = 0; id < proc.numBlocks(); ++id)
        cost += blockAlignCost(proc, model, id, chains.next(id));
    // The unlinked loop block costs 990*3 + 10*5 = 3020; entry linked = 0.
    EXPECT_LE(cost, 3020.0 + 1e-9);
}

// ---- program-level driver --------------------------------------------------------

TEST(AlignProgram, OriginalKindReturnsIdentity)
{
    const Program program = figure3Loop();
    const ProgramLayout layout =
        alignProgram(program, AlignerKind::Original, nullptr);
    EXPECT_EQ(layout.procs[0].order,
              (std::vector<BlockId>{0, 1, 2, 3, 4}));
    EXPECT_EQ(layout.totalInstrs, program.totalInstrs());
}

TEST(AlignProgram, KindNames)
{
    EXPECT_STREQ(alignerKindName(AlignerKind::Original), "original");
    EXPECT_STREQ(alignerKindName(AlignerKind::Greedy), "greedy");
    EXPECT_STREQ(alignerKindName(AlignerKind::Cost), "cost");
    EXPECT_STREQ(alignerKindName(AlignerKind::Try15), "try15");
}

TEST(AlignProgramDeath, CostAlignerRequiresModel)
{
    const Program program = figure3Loop();
    EXPECT_DEATH(alignProgram(program, AlignerKind::Cost, nullptr),
                 "needs a cost model");
}

TEST(AlignProgram, DirectionIterationsConverge)
{
    // Multiple direction-refinement iterations must yield a valid layout
    // and never a worse modelled cost than a single pass on BT/FNT.
    const Program program = figure3Loop();
    const CostModel model(Arch::BtFnt);
    AlignOptions one;
    one.directionIterations = 1;
    AlignOptions three;
    three.directionIterations = 3;
    const ProgramLayout a =
        alignProgram(program, AlignerKind::Try15, &model, one);
    const ProgramLayout b =
        alignProgram(program, AlignerKind::Try15, &model, three);
    EXPECT_EQ(a.procs[0].order.size(), b.procs[0].order.size());
    // Iterations are deterministic; repeated runs agree.
    const ProgramLayout c =
        alignProgram(program, AlignerKind::Try15, &model, three);
    EXPECT_EQ(b.procs[0].order, c.procs[0].order);
}

TEST(BlockAlignCost, PrevContextMakesChainPredecessorBackward)
{
    // loop: taken -> exit (forward), fall -> latch. With latch as the
    // chain predecessor of loop, the inverted realization's branch to
    // latch is backward and BT/FNT predicts it taken.
    Procedure proc(0, "p");
    CfgBuilder b(proc);
    const BlockId loop = b.block(4, Terminator::CondBranch);
    const BlockId latch = b.block(2, Terminator::UncondBranch);
    const BlockId exit = b.block(1, Terminator::Return);
    b.fallThrough(loop, latch, 1000);
    b.taken(loop, exit, 10);
    b.taken(latch, loop, 990);

    const CostModel model(Arch::BtFnt);
    // Without prev context: branching to latch looks forward (latch id >
    // loop id) -> predicted NT -> 1000 mispredicts in the best "neither"
    // estimate.
    const double without =
        blockAlignCost(proc, model, loop, kNoBlock);
    // With latch as chain predecessor the same branch is backward ->
    // predicted taken -> cost 2 per iteration plus the cold exit jump.
    const double with_prev =
        blockAlignCost(proc, model, loop, kNoBlock, DirOracle(), latch);
    EXPECT_LT(with_prev, without);
    // NeitherJumpToTaken with a backward hot branch: 1000*2 + 10*5 + 10*2.
    EXPECT_DOUBLE_EQ(with_prev, 1000 * 2.0 + 10 * 5.0 + 10 * 2.0);
}
