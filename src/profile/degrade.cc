#include "profile/degrade.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

#include "support/log.h"
#include "support/rng.h"
#include "trace/profiler.h"

namespace balign {

const char *
degradeKindName(DegradeKind kind)
{
    switch (kind) {
      case DegradeKind::None: return "none";
      case DegradeKind::Sample: return "sample";
      case DegradeKind::Stale: return "stale";
      case DegradeKind::Perturb: return "perturb";
      case DegradeKind::Merge: return "merge";
      case DegradeKind::Drift: return "drift";
    }
    panic("degradeKindName: bad kind");
}

std::optional<DegradeKind>
parseDegradeKind(std::string_view name)
{
    for (const DegradeKind kind : allDegradeKinds()) {
        if (name == degradeKindName(kind))
            return kind;
    }
    return std::nullopt;
}

const std::vector<DegradeKind> &
allDegradeKinds()
{
    static const std::vector<DegradeKind> kinds = {
        DegradeKind::None,    DegradeKind::Sample, DegradeKind::Stale,
        DegradeKind::Perturb, DegradeKind::Merge,  DegradeKind::Drift,
    };
    return kinds;
}

namespace {

std::string
formatParam(const char *prefix, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s%g", prefix, value);
    return buf;
}

}  // namespace

std::string
DegradeSpec::severityLabel() const
{
    switch (kind) {
      case DegradeKind::None: return "-";
      case DegradeKind::Sample: return "1/" + std::to_string(n);
      case DegradeKind::Stale: return "seed=" + std::to_string(seed);
      case DegradeKind::Perturb: return formatParam("eps=", param);
      case DegradeKind::Merge: return "k=" + std::to_string(n);
      case DegradeKind::Drift: return formatParam("t=", param);
    }
    panic("DegradeSpec::severityLabel: bad kind");
}

bool
DegradeSpec::operator==(const DegradeSpec &other) const
{
    return kind == other.kind && n == other.n && param == other.param &&
           seed == other.seed;
}

bool
DegradeSpec::operator<(const DegradeSpec &other) const
{
    return std::tie(kind, n, param, seed) <
           std::tie(other.kind, other.n, other.param, other.seed);
}

std::string
degradeSpecLabel(const DegradeSpec &spec)
{
    if (spec.kind == DegradeKind::None)
        return "none";
    return std::string(degradeKindName(spec.kind)) + "(" +
           spec.severityLabel() + ")";
}

namespace {

/// Binomial(w, p) via geometric gap skipping: expected O(w * p) draws.
Weight
binomialThin(Weight w, double p, Rng &rng)
{
    if (p >= 1.0 || w == 0)
        return w == 0 ? 0 : w;
    if (p <= 0.0)
        return 0;
    Weight kept = 0;
    std::uint64_t i = rng.nextGeometric(p, w);
    while (i < w) {
        ++kept;
        i += 1 + rng.nextGeometric(p, w);
    }
    return kept;
}

/**
 * Flow-decomposition thinning of one procedure's profile.
 *
 * The recorded weights are decomposed into flow units — simple cycles and
 * simple paths whose start has no remaining inflow and whose end has no
 * remaining outflow — and each unit of weight w is independently thinned
 * to Binomial(w, keep_p). Because a unit adds the same count to every one
 * of its edges, cycles stay balanced at every block and paths only move
 * the imbalances the original profile already had (procedure entries,
 * sinks, truncated-walk stragglers), scaled down. That is exactly the
 * argument for why a prof.flow-clean input yields a prof.flow-clean
 * sample; tests/test_profile_degrade.cc checks it over the whole suite.
 */
class FlowSampler
{
  public:
    FlowSampler(Procedure &proc, double keep_p, Rng &rng)
        : proc_(proc), keepP_(keep_p), rng_(rng),
          residual_(proc.numEdges()), output_(proc.numEdges(), 0),
          stamp_(proc.numBlocks(), 0), pos_(proc.numBlocks(), 0)
    {
        for (std::uint32_t i = 0; i < proc.numEdges(); ++i)
            residual_[i] = proc.edge(i).weight;
    }

    void
    run()
    {
        for (std::uint32_t start = 0; start < proc_.numEdges(); ++start) {
            const Edge &edge = proc_.edge(start);
            // Malformed endpoints never carry walker flow; copy verbatim
            // so lint keeps seeing (and reporting) them unchanged.
            if (edge.src >= proc_.numBlocks() ||
                edge.dst >= proc_.numBlocks()) {
                output_[start] = residual_[start];
                residual_[start] = 0;
                continue;
            }
            while (residual_[start] > 0)
                extractUnitFrom(start);
        }
        for (std::uint32_t i = 0; i < proc_.numEdges(); ++i)
            proc_.edge(i).weight = output_[i];
    }

  private:
    /// Best (max-residual, then lowest-index) out-edge of @p b, or -1.
    std::int64_t
    pickOut(BlockId b) const
    {
        std::int64_t best = -1;
        for (const std::uint32_t index : proc_.block(b).outEdges) {
            if (index >= proc_.numEdges() || residual_[index] == 0)
                continue;
            const Edge &edge = proc_.edge(index);
            if (edge.dst >= proc_.numBlocks())
                continue;
            if (best < 0 || residual_[index] > residual_[best])
                best = index;
        }
        return best;
    }

    /// Best in-edge of @p b with remaining residual, or -1.
    std::int64_t
    pickIn(BlockId b) const
    {
        std::int64_t best = -1;
        for (const std::uint32_t index : proc_.block(b).inEdges) {
            if (index >= proc_.numEdges() || residual_[index] == 0)
                continue;
            const Edge &edge = proc_.edge(index);
            if (edge.src >= proc_.numBlocks())
                continue;
            if (best < 0 || residual_[index] > residual_[best])
                best = index;
        }
        return best;
    }

    /// Thins one unit and commits it to the output profile.
    void
    extract(const std::vector<std::uint32_t> &unit)
    {
        Weight w = residual_[unit.front()];
        for (const std::uint32_t e : unit)
            w = std::min(w, residual_[e]);
        const Weight kept = binomialThin(w, keepP_, rng_);
        for (const std::uint32_t e : unit) {
            residual_[e] -= w;
            output_[e] += kept;
        }
    }

    /// Edge at signed path position @p p (see extractUnitFrom).
    std::uint32_t
    edgeAt(std::int32_t p) const
    {
        return p >= 0 ? fwd_[static_cast<std::size_t>(p)]
                      : bwd_[static_cast<std::size_t>(-p - 1)];
    }

    bool
    onPath(BlockId b) const
    {
        return stamp_[b] == epoch_;
    }

    void
    place(BlockId b, std::int32_t p)
    {
        stamp_[b] = epoch_;
        pos_[b] = p;
    }

    /**
     * Grows a simple path through @p start and extracts one unit from it.
     * Blocks are indexed by signed positions: the start edge runs from
     * position 0 to 1; forward extension appends positions 2, 3, ...;
     * backward extension prepends -1, -2, .... The edge leaving position p
     * toward p+1 is edgeAt(p). When an extension step reaches a block
     * already on the path, the edges between its two visits form a simple
     * cycle, which is extracted alone.
     */
    void
    extractUnitFrom(std::uint32_t start)
    {
        ++epoch_;
        fwd_.assign(1, start);
        bwd_.clear();

        const Edge &first = proc_.edge(start);
        std::int32_t lo = 0;  // front block position
        std::int32_t hi = 1;  // back block position
        BlockId front = first.src;
        BlockId back = first.dst;
        place(front, 0);
        if (back == front) {
            extract(fwd_);  // self-loop: a one-edge cycle
            return;
        }
        place(back, 1);

        // Forward: extend from the back until a sink or a cycle.
        while (true) {
            const std::int64_t next = pickOut(back);
            if (next < 0)
                break;
            const BlockId dst = proc_.edge(next).dst;
            if (onPath(dst)) {
                // Cycle: dst's position .. back, plus the closing edge.
                std::vector<std::uint32_t> cycle;
                for (std::int32_t p = pos_[dst]; p < hi; ++p)
                    cycle.push_back(edgeAt(p));
                cycle.push_back(static_cast<std::uint32_t>(next));
                extract(cycle);
                return;
            }
            fwd_.push_back(static_cast<std::uint32_t>(next));
            back = dst;
            place(back, ++hi);
        }

        // Backward: extend from the front until a source or a cycle.
        while (true) {
            const std::int64_t prev = pickIn(front);
            if (prev < 0)
                break;
            const BlockId src = proc_.edge(prev).src;
            if (onPath(src)) {
                // Cycle: the closing edge, then front .. src's position.
                std::vector<std::uint32_t> cycle;
                cycle.push_back(static_cast<std::uint32_t>(prev));
                for (std::int32_t p = lo; p < pos_[src]; ++p)
                    cycle.push_back(edgeAt(p));
                extract(cycle);
                return;
            }
            bwd_.push_back(static_cast<std::uint32_t>(prev));
            front = src;
            place(front, --lo);
        }

        // Open path from a flow source to a flow sink.
        std::vector<std::uint32_t> unit;
        unit.reserve(bwd_.size() + fwd_.size());
        for (auto it = bwd_.rbegin(); it != bwd_.rend(); ++it)
            unit.push_back(*it);
        unit.insert(unit.end(), fwd_.begin(), fwd_.end());
        extract(unit);
    }

    Procedure &proc_;
    double keepP_;
    Rng &rng_;
    std::vector<Weight> residual_;
    std::vector<Weight> output_;
    std::vector<std::uint32_t> stamp_;
    std::vector<std::int32_t> pos_;
    std::uint32_t epoch_ = 0;
    std::vector<std::uint32_t> fwd_;
    std::vector<std::uint32_t> bwd_;
};

/// Derives an independent walker seed from the base walk and a transform
/// seed (plus a per-input index for merge).
std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t seed, std::uint64_t index)
{
    SplitMix64 mix(base ^ (seed * 0x9E3779B97F4A7C15ull) ^
                   (index * 0xBF58476D1CE4E5B9ull));
    return mix.next();
}

}  // namespace

void
sampleProfile(Program &program, std::uint32_t n, std::uint64_t seed)
{
    if (n <= 1)
        return;
    const double keep_p = 1.0 / static_cast<double>(n);
    Rng rng(deriveSeed(0x5a6d7e8f90a1b2c3ull, seed, n));
    for (Procedure &proc : program.procs())
        FlowSampler(proc, keep_p, rng).run();
}

void
staleProfile(Program &program, const WalkOptions &walk, std::uint64_t seed)
{
    WalkOptions alt = walk;
    alt.seed = deriveSeed(walk.seed, seed, 0);
    program.clearWeights();
    Profiler profiler(program);
    balign::walk(program, alt, profiler);
}

void
perturbProfile(Program &program, double eps, std::uint64_t seed)
{
    if (eps <= 0.0)
        return;
    const double lo = std::max(0.0, 1.0 - eps);
    const double hi = 1.0 + eps;
    Rng rng(deriveSeed(0xc3b2a1908f7e6d5aull, seed, 0));
    for (Procedure &proc : program.procs()) {
        for (Edge &edge : proc.edges()) {
            const double factor = lo + rng.nextDouble() * (hi - lo);
            edge.weight = static_cast<Weight>(std::llround(
                static_cast<double>(edge.weight) * factor));
        }
    }
}

void
mergeProfiles(Program &program, const WalkOptions &walk,
              std::uint32_t extra_inputs, std::uint64_t seed)
{
    // The profiler increments weights in place, so each extra walk's
    // profile sums onto the existing one. No division: integer weights
    // stay flow-conserving and every consumer is scale-invariant.
    for (std::uint32_t i = 0; i < extra_inputs; ++i) {
        WalkOptions alt = walk;
        alt.seed = deriveSeed(walk.seed, seed, i + 1);
        Profiler profiler(program);
        balign::walk(program, alt, profiler);
    }
}

void
driftProfile(Program &program, double t)
{
    if (t <= 0.0)
        return;
    t = std::min(t, 1.0);
    // Moves round(t * (w_other - w)) between paired out-edges of the same
    // block: an exact convex interpolation that conserves the block's
    // total outflow for any t.
    auto shift = [t](Edge &a, Edge &b) {
        const auto wa = static_cast<std::int64_t>(a.weight);
        const auto wb = static_cast<std::int64_t>(b.weight);
        const auto delta = static_cast<std::int64_t>(
            std::llround(t * static_cast<double>(wb - wa)));
        a.weight = static_cast<Weight>(wa + delta);
        b.weight = static_cast<Weight>(wb - delta);
    };
    for (Procedure &proc : program.procs()) {
        for (const BasicBlock &block : proc.blocks()) {
            if (block.term == Terminator::CondBranch) {
                const std::int64_t taken = proc.takenEdge(block.id);
                const std::int64_t fall = proc.fallThroughEdge(block.id);
                if (taken < 0 || fall < 0)
                    continue;
                shift(proc.edge(static_cast<std::uint32_t>(taken)),
                      proc.edge(static_cast<std::uint32_t>(fall)));
            } else if (block.term == Terminator::IndirectJump) {
                // Reverse the weight ranking across the sorted targets.
                std::vector<std::uint32_t> indices;
                for (const std::uint32_t index : block.outEdges) {
                    if (index < proc.numEdges() &&
                        proc.edge(index).kind == EdgeKind::Other)
                        indices.push_back(index);
                }
                std::sort(indices.begin(), indices.end(),
                          [&proc](std::uint32_t a, std::uint32_t b) {
                              const Weight wa = proc.edge(a).weight;
                              const Weight wb = proc.edge(b).weight;
                              if (wa != wb)
                                  return wa > wb;
                              return a < b;
                          });
                for (std::size_t i = 0, j = indices.size();
                     j > 1 && i < j - 1; ++i, --j) {
                    shift(proc.edge(indices[i]),
                          proc.edge(indices[j - 1]));
                }
            }
        }
    }
}

void
degradeProfile(Program &program, const WalkOptions &walk,
               const DegradeSpec &spec)
{
    switch (spec.kind) {
      case DegradeKind::None:
        return;
      case DegradeKind::Sample:
        sampleProfile(program, spec.n, spec.seed);
        break;
      case DegradeKind::Stale:
        staleProfile(program, walk, spec.seed);
        break;
      case DegradeKind::Perturb:
        perturbProfile(program, spec.param, spec.seed);
        break;
      case DegradeKind::Merge:
        mergeProfiles(program, walk, spec.n, spec.seed);
        break;
      case DegradeKind::Drift:
        driftProfile(program, spec.param);
        break;
      default:
        panic("degradeProfile: bad kind");
    }
    // After the transform: Stale/Merge re-profile internally, which
    // re-tags Measured — the degraded result must override that.
    program.setProfileProvenance(ProfileProvenance::Degraded);
}

}  // namespace balign
