/**
 * @file
 * Profile degradation: deterministic, seeded transforms over a recorded
 * edge profile.
 *
 * Every experiment in the paper aligns a program with the exact walk it is
 * later measured on — the best-case assumption. Production profiles are
 * sampled, stale, merged across inputs, or simply wrong. This library
 * models those failure modes as reproducible transforms of the edge
 * weights (the CFG structure is never modified), so the experiment matrix
 * can run *align-on-degraded / measure-on-true* and chart each aligner's
 * CPI degradation curve (bench_robustness).
 *
 * Flow-conservation contract (lint/profile_rules.cc):
 *  - `sample` preserves the prof.* flow invariants of its input: it thins
 *    whole flow units (paths/cycles from a flow decomposition), so a
 *    lint-clean profile stays lint-clean.
 *  - `stale` is a genuine profile (a fresh walk), clean by construction.
 *  - `merge` sums profiles of independent walks; each walk may strand up
 *    to flowSlack activations, so a merged profile is clean under a slack
 *    scaled by the number of constituent walks.
 *  - `perturb` and `drift` make no promise. Perturb's per-edge noise is
 *    exactly the inconsistency prof.flow exists to catch; drift conserves
 *    each block's total outflow (and hence total program weight) but
 *    reroutes it between successors, so downstream in/out balances —
 *    an impossible execution is the point of the anti-profile.
 */

#ifndef BALIGN_PROFILE_DEGRADE_H
#define BALIGN_PROFILE_DEGRADE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cfg/program.h"
#include "trace/walker.h"

namespace balign {

/// The degradation families (ROADMAP item 3).
enum class DegradeKind : std::uint8_t {
    None,     ///< identity: align on the measurement profile
    Sample,   ///< keep ~1/N of the recorded events (binomial thinning)
    Stale,    ///< profile from a different input (re-walk, other seed)
    Perturb,  ///< multiplicative per-edge weight noise
    Merge,    ///< average across several inputs (summed extra walks)
    Drift,    ///< adversarial interpolation toward the anti-profile
};

/// Printable kind name ("none", "sample", ...).
const char *degradeKindName(DegradeKind kind);

/// Inverse of degradeKindName; nullopt for unknown names.
std::optional<DegradeKind> parseDegradeKind(std::string_view name);

/// Every degradation kind including None, in enum order.
const std::vector<DegradeKind> &allDegradeKinds();

/**
 * One point on a degradation axis. The severity field used depends on the
 * kind: Sample reads `n` (keep 1/n), Merge reads `n` (number of extra
 * walks merged in), Perturb reads `param` (noise half-width eps), Drift
 * reads `param` (interpolation t in [0, 1]), Stale and None read neither.
 * `seed` feeds the transform's own RNG (Sample/Perturb) or selects the
 * alternate input (Stale/Merge); it never touches the measurement walk.
 */
struct DegradeSpec
{
    DegradeKind kind = DegradeKind::None;
    std::uint32_t n = 0;
    double param = 0.0;
    std::uint64_t seed = 1;

    static DegradeSpec none() { return {}; }
    bool isNone() const { return kind == DegradeKind::None; }

    /// Severity label for curves/JSON: "1/8", "eps=0.5", "t=0.25", ...
    std::string severityLabel() const;

    bool operator==(const DegradeSpec &other) const;
    bool operator<(const DegradeSpec &other) const;
};

/// "none", "sample(1/8)", "perturb(eps=0.5)" — for logs and JSON.
std::string degradeSpecLabel(const DegradeSpec &spec);

/**
 * Binomial event thinning: replaces the profile with one that keeps each
 * recorded flow unit independently with probability 1/n. The profile is
 * first decomposed into flow units (simple paths and cycles); each unit's
 * weight w is thinned to Binomial(w, 1/n). Thinning whole units rather
 * than individual edges is what preserves per-block, loop-boundary, and
 * program-wide flow conservation (see file comment). n == 0 or 1 is the
 * identity.
 */
void sampleProfile(Program &program, std::uint32_t n, std::uint64_t seed);

/**
 * Stale profile: clears all weights and re-profiles with a walker seed
 * derived from (walk.seed, seed) — the "aligned against last week's
 * input" scenario. The walk budget and knobs are taken from @p walk.
 */
void staleProfile(Program &program, const WalkOptions &walk,
                  std::uint64_t seed);

/**
 * Multiplicative noise: each edge weight w becomes round(w * f) with f
 * drawn uniformly from [max(0, 1-eps), 1+eps], independently per edge.
 * Deliberately violates flow conservation (that is the scenario).
 */
void perturbProfile(Program &program, double eps, std::uint64_t seed);

/**
 * Cross-input merge: adds the profiles of @p extra_inputs additional
 * walks (seeds derived from (walk.seed, seed, input index)) onto the
 * existing weights. Summing rather than dividing keeps the weights
 * integral and flow-conserving; every aligner and objective is invariant
 * under uniform profile scaling, so the sum behaves as the average.
 */
void mergeProfiles(Program &program, const WalkOptions &walk,
                   std::uint32_t extra_inputs, std::uint64_t seed);

/**
 * Adversarial drift: interpolates the profile a fraction @p t of the way
 * toward its anti-profile — the weight assignment that inverts every
 * placement decision (conditional taken/fall-through weights swapped;
 * indirect-target weights reversed across the sorted targets). t = 0 is
 * the identity, t = 1 the full adversary. Deterministic (no RNG), and
 * exchanges weight only between out-edges of the same block, so each
 * block's total outflow — and the program's total weight — is preserved
 * exactly (successor inflows are not; see the file comment).
 */
void driftProfile(Program &program, double t);

/**
 * Applies @p spec to @p program's profile. @p walk describes the walk the
 * profile was recorded with (Stale and Merge re-walk with its budget).
 * None is the identity.
 */
void degradeProfile(Program &program, const WalkOptions &walk,
                    const DegradeSpec &spec);

}  // namespace balign

#endif  // BALIGN_PROFILE_DEGRADE_H
