/**
 * @file
 * Fluent builder for constructing procedure CFGs by hand (tests, the paper's
 * figure examples) or programmatically (the workload generator).
 *
 * Usage:
 * @code
 *   CfgBuilder b(proc);
 *   auto head = b.block(4, Terminator::CondBranch);
 *   auto body = b.block(11, Terminator::UncondBranch);
 *   auto exit = b.block(2, Terminator::Return);
 *   b.taken(head, body, 9000);       // weight 9000
 *   b.fallThrough(head, exit, 1000);
 *   b.taken(body, head, 9000);
 * @endcode
 *
 * The builder checks structural rules as edges are added (a CondBranch block
 * gets exactly one taken and one fall-through edge, etc.); full validation
 * lives in cfg/validate.h.
 */

#ifndef BALIGN_CFG_BUILDER_H
#define BALIGN_CFG_BUILDER_H

#include "cfg/procedure.h"

namespace balign {

class CfgBuilder
{
  public:
    /// Builds into an existing (typically empty) procedure.
    explicit CfgBuilder(Procedure &proc) : proc_(proc) {}

    /// Adds a block of @p num_instrs instructions ending with @p term.
    BlockId block(std::uint32_t num_instrs, Terminator term);

    /// Adds a taken edge with a profile weight and optional walk bias.
    CfgBuilder &taken(BlockId src, BlockId dst, Weight weight = 0,
                      double bias = 0.0);

    /// Adds a fall-through edge with a profile weight and optional bias.
    CfgBuilder &fallThrough(BlockId src, BlockId dst, Weight weight = 0,
                            double bias = 0.0);

    /// Adds an indirect-target edge (weight ignored by alignment).
    CfgBuilder &other(BlockId src, BlockId dst, Weight weight = 0,
                      double bias = 0.0);

    /// Records a call site at @p offset instructions into @p src.
    CfgBuilder &call(BlockId src, ProcId callee, std::uint32_t offset = 0);

    /// Marks the entry block (defaults to block 0).
    CfgBuilder &entry(BlockId entry);

    Procedure &proc() { return proc_; }

  private:
    void checkEdge(BlockId src, EdgeKind kind) const;

    Procedure &proc_;
};

}  // namespace balign

#endif  // BALIGN_CFG_BUILDER_H
