/**
 * @file
 * Table-2-style program attributes, computed from a CFG plus the dynamic
 * statistics collected during tracing.
 *
 * The dynamic fields are filled by trace::Profiler / the evaluator; this
 * header defines the record and the static-side computation (conditional
 * branch-site counts, Q-coverage of executed conditional branches).
 */

#ifndef BALIGN_CFG_CFG_STATS_H
#define BALIGN_CFG_CFG_STATS_H

#include <cstdint>

#include "cfg/program.h"

namespace balign {

/**
 * Measured attributes of a traced program (paper Table 2).
 */
struct ProgramStats
{
    /// Total instructions executed during tracing.
    std::uint64_t instrsTraced = 0;

    /// Dynamic counts of each break-in-control-flow category.
    std::uint64_t condBranches = 0;       ///< executed conditional branches
    std::uint64_t takenCondBranches = 0;  ///< of which taken
    std::uint64_t uncondBranches = 0;     ///< executed unconditional branches
    std::uint64_t indirectJumps = 0;
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;

    /// Branch-site skew: #hottest conditional sites covering X% of executed
    /// conditional branches.
    std::size_t q50 = 0;
    std::size_t q90 = 0;
    std::size_t q99 = 0;
    std::size_t q100 = 0;

    /// Static number of conditional branch sites in the binary.
    std::size_t staticCondSites = 0;

    std::uint64_t
    totalBreaks() const
    {
        return condBranches + uncondBranches + indirectJumps + calls +
               returns;
    }

    /// Percentage of traced instructions that break control flow.
    double pctBreaks() const;

    /// Percentage of executed conditional branches that were taken.
    double pctTaken() const;

    /// Break-type mix percentages (of all breaks).
    double pctCondOfBreaks() const;
    double pctIndirectOfBreaks() const;
    double pctUncondOfBreaks() const;
    double pctCallOfBreaks() const;
    double pctReturnOfBreaks() const;
};

/**
 * Computes the static and skew fields of @p stats from a profiled program:
 * staticCondSites and the Q-coverage metrics derive from per-site executed
 * conditional-branch counts (sum of both out-edge weights of each
 * conditional block).
 *
 * The purely dynamic fields (instrsTraced, break counts) must have been
 * filled by the profiler already; this only adds the CFG-derived ones.
 */
void fillStaticStats(const Program &program, ProgramStats &stats);

}  // namespace balign

#endif  // BALIGN_CFG_CFG_STATS_H
