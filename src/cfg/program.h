/**
 * @file
 * Program: a collection of procedures plus program-level profile counters.
 */

#ifndef BALIGN_CFG_PROGRAM_H
#define BALIGN_CFG_PROGRAM_H

#include <string>
#include <vector>

#include "cfg/procedure.h"
#include "support/types.h"

namespace balign {

/**
 * Where a Program's edge weights came from. Measured profiles are
 * recorded by the trace walker (trace/profiler.h), degraded ones passed
 * through profile/degrade.h afterwards, estimated ones synthesized from
 * the CFG alone by estimate/estimate.h. Serialized alongside the profile
 * and surfaced in `balign lint` so goldens and certificates record which
 * profile kind produced a layout.
 */
enum class ProfileProvenance : std::uint8_t {
    Measured,
    Degraded,
    Estimated,
};

/// Stable lowercase tag ("measured" / "degraded" / "estimated").
const char *profileProvenanceName(ProfileProvenance provenance);

/// Inverse of profileProvenanceName; false on unknown tags.
bool profileProvenanceFromName(const std::string &name,
                               ProfileProvenance &provenance);

/**
 * A whole program. Procedure 0 is "main" (the walk root) unless overridden.
 * Procedures are laid out in id order; the layout engine assigns each
 * procedure a contiguous address range in that order (the paper reorders
 * blocks within procedures only — no procedure splitting or reordering).
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    ProcId mainProc() const { return main_; }
    void setMainProc(ProcId main) { main_ = main; }

    std::size_t numProcs() const { return procs_.size(); }

    const Procedure &proc(ProcId id) const { return procs_[id]; }
    Procedure &proc(ProcId id) { return procs_[id]; }

    const std::vector<Procedure> &procs() const { return procs_; }
    std::vector<Procedure> &procs() { return procs_; }

    /// Adds an empty procedure; returns its id.
    ProcId addProc(std::string name);

    /// Total static instructions across all procedures.
    std::uint64_t totalInstrs() const;

    /// Resets all edge weights across all procedures.
    void clearWeights();

    /// Provenance of the current edge weights (Measured by default; the
    /// profiler, degrader and estimator re-tag as they run).
    ProfileProvenance profileProvenance() const { return provenance_; }
    void setProfileProvenance(ProfileProvenance provenance)
    {
        provenance_ = provenance;
    }

  private:
    std::string name_;
    ProcId main_ = 0;
    ProfileProvenance provenance_ = ProfileProvenance::Measured;
    std::vector<Procedure> procs_;
};

}  // namespace balign

#endif  // BALIGN_CFG_PROGRAM_H
