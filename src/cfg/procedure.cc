#include "cfg/procedure.h"

#include "support/log.h"

namespace balign {

const char *
terminatorName(Terminator term)
{
    switch (term) {
      case Terminator::FallThrough: return "fallthrough";
      case Terminator::CondBranch: return "cond";
      case Terminator::UncondBranch: return "uncond";
      case Terminator::IndirectJump: return "indirect";
      case Terminator::Return: return "return";
    }
    return "?";
}

BlockId
Procedure::addBlock(std::uint32_t num_instrs, Terminator term)
{
    BasicBlock block;
    block.id = static_cast<BlockId>(blocks_.size());
    block.numInstrs = num_instrs;
    block.term = term;
    blocks_.push_back(std::move(block));
    return blocks_.back().id;
}

std::uint32_t
Procedure::addEdge(BlockId src, BlockId dst, EdgeKind kind, Weight weight,
                   double bias)
{
    if (src >= blocks_.size() || dst >= blocks_.size())
        panic("addEdge: block out of range (src=%u dst=%u n=%zu)", src, dst,
              blocks_.size());
    Edge edge;
    edge.src = src;
    edge.dst = dst;
    edge.kind = kind;
    edge.weight = weight;
    edge.bias = bias;
    const auto index = static_cast<std::uint32_t>(edges_.size());
    edges_.push_back(edge);
    blocks_[src].outEdges.push_back(index);
    blocks_[dst].inEdges.push_back(index);
    return index;
}

std::int64_t
Procedure::findOutEdge(BlockId src, EdgeKind kind) const
{
    for (auto index : blocks_[src].outEdges) {
        if (edges_[index].kind == kind)
            return index;
    }
    return -1;
}

std::uint64_t
Procedure::totalInstrs() const
{
    std::uint64_t total = 0;
    for (const auto &block : blocks_)
        total += block.numInstrs;
    return total;
}

Weight
Procedure::totalEdgeWeight() const
{
    Weight total = 0;
    for (const auto &edge : edges_)
        total += edge.weight;
    return total;
}

void
Procedure::clearWeights()
{
    for (auto &edge : edges_)
        edge.weight = 0;
}

Weight
Procedure::blockWeight(BlockId id) const
{
    Weight total = 0;
    for (auto index : blocks_[id].inEdges)
        total += edges_[index].weight;
    return total;
}

}  // namespace balign
