#include "cfg/dot.h"

#include <sstream>

#include "support/stats.h"
#include "support/table.h"

namespace balign {

void
writeDot(const Procedure &proc, std::ostream &os, const DotOptions &options)
{
    os << "digraph \"" << proc.name() << "\" {\n";
    os << "  node [shape=box, fontname=\"Helvetica\"];\n";
    for (const auto &block : proc.blocks()) {
        os << "  n" << block.id << " [label=\"" << block.id << " ("
           << block.numInstrs << ")";
        if (block.term == Terminator::Return)
            os << "\\nret";
        else if (block.term == Terminator::IndirectJump)
            os << "\\nijmp";
        os << "\"";
        if (block.id == proc.entry())
            os << ", peripheries=2";
        os << "];\n";
    }
    const double total = static_cast<double>(proc.totalEdgeWeight());
    for (const auto &edge : proc.edges()) {
        os << "  n" << edge.src << " -> n" << edge.dst << " [";
        switch (edge.kind) {
          case EdgeKind::FallThrough:
            os << "style=bold";
            break;
          case EdgeKind::Taken:
            os << "style=dashed";
            break;
          case EdgeKind::Other:
            os << "style=dotted";
            break;
        }
        std::string label;
        if (options.percentLabels && total > 0) {
            const double percent =
                pct(static_cast<double>(edge.weight), total);
            if (percent >= options.minLabelPct)
                label = fixed(percent, 0);
        }
        if (options.rawWeights) {
            if (!label.empty())
                label += " / ";
            label += withCommas(edge.weight);
        }
        if (!label.empty())
            os << ", label=\"" << label << "\"";
        os << "];\n";
    }
    os << "}\n";
}

std::string
toDot(const Procedure &proc, const DotOptions &options)
{
    std::ostringstream os;
    writeDot(proc, os, options);
    return os.str();
}

}  // namespace balign
