#include "cfg/validate.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "support/log.h"

namespace balign {

namespace {

void
addError(std::vector<ValidationError> &errors, ProcId proc, BlockId block,
         std::string message)
{
    errors.push_back(ValidationError{proc, block, std::move(message)});
}

std::string
format(const char *fmt, ...)
{
    char buf[256];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

}  // namespace

std::vector<ValidationError>
validate(const Procedure &proc)
{
    std::vector<ValidationError> errors;
    const ProcId pid = proc.id();

    if (proc.numBlocks() == 0) {
        addError(errors, pid, kNoBlock, "procedure has no blocks");
        return errors;
    }
    if (proc.entry() >= proc.numBlocks()) {
        addError(errors, pid, kNoBlock,
                 format("entry block %u out of range", proc.entry()));
    }

    // Edge endpoint sanity and cross-index consistency.
    for (std::size_t i = 0; i < proc.numEdges(); ++i) {
        const Edge &edge = proc.edge(static_cast<std::uint32_t>(i));
        if (edge.src >= proc.numBlocks() || edge.dst >= proc.numBlocks()) {
            addError(errors, pid, edge.src,
                     format("edge %zu endpoint out of range", i));
            continue;
        }
        const auto &outs = proc.block(edge.src).outEdges;
        if (std::find(outs.begin(), outs.end(), i) == outs.end()) {
            addError(errors, pid, edge.src,
                     format("edge %zu missing from src outEdges", i));
        }
        const auto &ins = proc.block(edge.dst).inEdges;
        if (std::find(ins.begin(), ins.end(), i) == ins.end()) {
            addError(errors, pid, edge.dst,
                     format("edge %zu missing from dst inEdges", i));
        }
    }

    // Per-block terminator arity rules.
    for (const auto &block : proc.blocks()) {
        unsigned taken = 0, fall = 0, other = 0;
        for (auto index : block.outEdges) {
            if (index >= proc.numEdges()) {
                addError(errors, pid, block.id,
                         format("out-edge index %u out of range", index));
                continue;
            }
            const Edge &edge = proc.edge(index);
            if (edge.src != block.id) {
                addError(errors, pid, block.id,
                         format("out-edge %u has src %u", index, edge.src));
            }
            switch (edge.kind) {
              case EdgeKind::Taken: ++taken; break;
              case EdgeKind::FallThrough: ++fall; break;
              case EdgeKind::Other: ++other; break;
            }
        }
        switch (block.term) {
          case Terminator::FallThrough:
            if (taken != 0 || other != 0 || fall > 1) {
                addError(errors, pid, block.id,
                         "fallthrough block must have <=1 fall-through edge "
                         "and nothing else");
            }
            break;
          case Terminator::CondBranch:
            if (taken != 1 || fall != 1 || other != 0) {
                addError(errors, pid, block.id,
                         format("cond block needs taken=1 fall=1 (got %u/%u)",
                                taken, fall));
            }
            break;
          case Terminator::UncondBranch:
            if (taken != 1 || fall != 0 || other != 0) {
                addError(errors, pid, block.id,
                         format("uncond block needs exactly one taken edge "
                                "(got taken=%u fall=%u other=%u)",
                                taken, fall, other));
            }
            break;
          case Terminator::IndirectJump:
            if (taken != 0 || fall != 0 || other == 0) {
                addError(errors, pid, block.id,
                         "indirect block needs >=1 Other edge and no "
                         "taken/fall-through edges");
            }
            break;
          case Terminator::Return:
            if (!block.outEdges.empty()) {
                addError(errors, pid, block.id,
                         "return block may not have out-edges");
            }
            break;
        }
        if (block.numInstrs == 0)
            addError(errors, pid, block.id, "block has zero instructions");
        for (const auto &site : block.calls) {
            // The terminator occupies the final slot; a call must precede it.
            const std::uint32_t limit =
                block.hasBranchInstr() ? block.numInstrs - 1 : block.numInstrs;
            if (site.offset >= limit) {
                addError(errors, pid, block.id,
                         format("call at offset %u overlaps terminator",
                                site.offset));
            }
        }
    }
    return errors;
}

std::vector<ValidationError>
validate(const Program &program)
{
    std::vector<ValidationError> errors;
    for (const auto &proc : program.procs()) {
        auto proc_errors = validate(proc);
        errors.insert(errors.end(), proc_errors.begin(), proc_errors.end());
        for (const auto &block : proc.blocks()) {
            for (const auto &site : block.calls) {
                if (site.callee >= program.numProcs()) {
                    addError(errors, proc.id(), block.id,
                             format("call to unknown procedure %u",
                                    site.callee));
                }
            }
        }
    }
    if (program.numProcs() == 0) {
        addError(errors, kNoProc, kNoBlock, "program has no procedures");
    } else if (program.mainProc() >= program.numProcs()) {
        addError(errors, kNoProc, kNoBlock, "main procedure out of range");
    }
    return errors;
}

void
validateOrDie(const Program &program)
{
    const auto errors = validate(program);
    if (errors.empty())
        return;
    for (const auto &error : errors) {
        warn("validate: proc=%d block=%d: %s",
             error.proc == kNoProc ? -1 : static_cast<int>(error.proc),
             error.block == kNoBlock ? -1 : static_cast<int>(error.block),
             error.message.c_str());
    }
    panic("program %s failed validation with %zu errors",
          program.name().c_str(), errors.size());
}

}  // namespace balign
