/**
 * validate() is a thin severity filter over the lint engine's cfg.* rules
 * (lint/cfg_rules.cc) — one implementation of the structural invariants
 * instead of two drifting copies. Errors become ValidationErrors; the
 * advisory findings (unreachable blocks, dead ends, irreducible regions)
 * are lint-only and never fail validation.
 */

#include "cfg/validate.h"

#include "lint/rules.h"
#include "support/log.h"

namespace balign {

namespace {

std::vector<ValidationError>
errorsFromDiagnostics(const std::vector<Diagnostic> &diagnostics)
{
    std::vector<ValidationError> errors;
    for (const Diagnostic &diagnostic : diagnostics) {
        if (diagnostic.severity != Severity::Error)
            continue;
        errors.push_back(ValidationError{diagnostic.loc.proc,
                                         diagnostic.loc.block,
                                         diagnostic.message});
    }
    return errors;
}

}  // namespace

std::vector<ValidationError>
validate(const Procedure &proc)
{
    std::vector<Diagnostic> diagnostics;
    lintCfgProc(proc, nullptr, diagnostics);
    return errorsFromDiagnostics(diagnostics);
}

std::vector<ValidationError>
validate(const Program &program)
{
    std::vector<Diagnostic> diagnostics;
    lintCfg(program, diagnostics);
    return errorsFromDiagnostics(diagnostics);
}

void
validateOrDie(const Program &program)
{
    const auto errors = validate(program);
    if (errors.empty())
        return;
    for (const auto &error : errors) {
        warn("validate: proc=%d block=%d: %s",
             error.proc == kNoProc ? -1 : static_cast<int>(error.proc),
             error.block == kNoBlock ? -1 : static_cast<int>(error.block),
             error.message.c_str());
    }
    panic("program %s failed validation with %zu errors",
          program.name().c_str(), errors.size());
}

}  // namespace balign
