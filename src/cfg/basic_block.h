/**
 * @file
 * Basic block and edge definitions for the control-flow graph IR.
 *
 * Following the paper (§4), blocks end in one of: nothing (pure
 * fall-through), a conditional branch (taken + fall-through successors), an
 * unconditional branch (one taken successor), an indirect jump (several
 * "other" successors with zero alignment weight), or a return. Procedure
 * calls do NOT end a block: control returns to the next instruction, so the
 * continuation cannot be moved independently — calls are recorded as
 * intra-block events instead.
 */

#ifndef BALIGN_CFG_BASIC_BLOCK_H
#define BALIGN_CFG_BASIC_BLOCK_H

#include <vector>

#include "support/types.h"

namespace balign {

/// The control transfer terminating a basic block.
enum class Terminator : std::uint8_t {
    FallThrough,   ///< no branch; execution continues at the successor
    CondBranch,    ///< conditional: taken target + fall-through successor
    UncondBranch,  ///< unconditional direct branch
    IndirectJump,  ///< computed jump (switch tables, virtual dispatch)
    Return,        ///< procedure return
};

/// Printable name of a terminator kind.
const char *terminatorName(Terminator term);

/// How an edge leaves its source block.
enum class EdgeKind : std::uint8_t {
    FallThrough,  ///< the not-taken / sequential successor
    Taken,        ///< the branch-taken successor
    Other,        ///< indirect-jump target; weight ignored by alignment
};

/**
 * A directed control-flow edge with its profile weight (dynamic traversal
 * count). Edges are stored in the owning Procedure; blocks index into that
 * store.
 */
struct Edge
{
    BlockId src = kNoBlock;
    BlockId dst = kNoBlock;
    EdgeKind kind = EdgeKind::FallThrough;
    Weight weight = 0;

    /**
     * Static likelihood of traversing this edge out of its source block,
     * used only by the trace walker (ground truth of the modelled program).
     * Profile weights are then *measured* from the walk, as the paper
     * measures them with ATOM.
     */
    double bias = 0.0;
};

/// A call site embedded within a block.
struct CallSite
{
    ProcId callee = kNoProc;
    /// Instruction offset of the call within the block (0-based).
    std::uint32_t offset = 0;
};

/**
 * A basic block: straight-line code of @c numInstrs instructions (including
 * the terminating branch instruction, when the terminator is a branch,
 * indirect jump or return) plus any embedded call sites.
 */
struct BasicBlock
{
    BlockId id = kNoBlock;
    std::uint32_t numInstrs = 1;
    Terminator term = Terminator::FallThrough;
    std::vector<CallSite> calls;

    /**
     * Deterministic outcome pattern for conditional branches (0 = none,
     * outcomes drawn stochastically from the edge biases). When nonzero,
     * successive executions of this branch cycle through the pattern:
     * execution k is taken iff bit (k mod patternLength) of patternMask is
     * set. This models fixed trip-count loops and periodic data patterns —
     * the behaviour that makes correlated (two-level) predictors beat
     * per-site counters on real programs.
     */
    std::uint8_t patternLength = 0;
    std::uint32_t patternMask = 0;

    /**
     * Outcome correlation for conditional branches: when set, this
     * branch's outcome equals (or, with correlatedInvert, negates) the
     * most recent outcome of the referenced block in the same procedure —
     * the classic two-level-predictor-friendly behaviour of Pan et al.
     * Falls back to the pattern/stochastic rule until the referenced
     * branch has executed.
     */
    BlockId correlatedWith = kNoBlock;
    bool correlatedInvert = false;

    /// Out-edge indices into Procedure::edges(), in no particular order.
    std::vector<std::uint32_t> outEdges;
    /// In-edge indices into Procedure::edges().
    std::vector<std::uint32_t> inEdges;

    /// True if the terminator occupies an instruction slot.
    bool
    hasBranchInstr() const
    {
        return term != Terminator::FallThrough;
    }
};

}  // namespace balign

#endif  // BALIGN_CFG_BASIC_BLOCK_H
