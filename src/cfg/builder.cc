#include "cfg/builder.h"

#include "support/log.h"

namespace balign {

BlockId
CfgBuilder::block(std::uint32_t num_instrs, Terminator term)
{
    if (num_instrs == 0)
        panic("CfgBuilder: block must have at least one instruction");
    return proc_.addBlock(num_instrs, term);
}

void
CfgBuilder::checkEdge(BlockId src, EdgeKind kind) const
{
    const BasicBlock &block = proc_.block(src);
    switch (block.term) {
      case Terminator::FallThrough:
        if (kind != EdgeKind::FallThrough)
            panic("block %u (fallthrough) may only have a fall-through edge",
                  src);
        if (proc_.fallThroughEdge(src) >= 0)
            panic("block %u already has a fall-through edge", src);
        break;
      case Terminator::CondBranch:
        if (kind == EdgeKind::Other)
            panic("block %u (cond) may not have indirect edges", src);
        if (proc_.findOutEdge(src, kind) >= 0)
            panic("block %u already has a %s edge", src,
                  kind == EdgeKind::Taken ? "taken" : "fall-through");
        break;
      case Terminator::UncondBranch:
        if (kind != EdgeKind::Taken)
            panic("block %u (uncond) may only have a taken edge", src);
        if (proc_.takenEdge(src) >= 0)
            panic("block %u already has a taken edge", src);
        break;
      case Terminator::IndirectJump:
        if (kind != EdgeKind::Other)
            panic("block %u (indirect) may only have Other edges", src);
        break;
      case Terminator::Return:
        panic("block %u (return) may not have out-edges", src);
    }
}

CfgBuilder &
CfgBuilder::taken(BlockId src, BlockId dst, Weight weight, double bias)
{
    checkEdge(src, EdgeKind::Taken);
    proc_.addEdge(src, dst, EdgeKind::Taken, weight, bias);
    return *this;
}

CfgBuilder &
CfgBuilder::fallThrough(BlockId src, BlockId dst, Weight weight, double bias)
{
    checkEdge(src, EdgeKind::FallThrough);
    proc_.addEdge(src, dst, EdgeKind::FallThrough, weight, bias);
    return *this;
}

CfgBuilder &
CfgBuilder::other(BlockId src, BlockId dst, Weight weight, double bias)
{
    checkEdge(src, EdgeKind::Other);
    proc_.addEdge(src, dst, EdgeKind::Other, weight, bias);
    return *this;
}

CfgBuilder &
CfgBuilder::call(BlockId src, ProcId callee, std::uint32_t offset)
{
    BasicBlock &block = proc_.block(src);
    if (offset >= block.numInstrs)
        panic("call offset %u beyond block %u (size %u)", offset, src,
              block.numInstrs);
    block.calls.push_back(CallSite{callee, offset});
    return *this;
}

CfgBuilder &
CfgBuilder::entry(BlockId entry)
{
    proc_.setEntry(entry);
    return *this;
}

}  // namespace balign
