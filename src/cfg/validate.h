/**
 * @file
 * Structural validation for procedures and programs.
 *
 * A thin wrapper over the lint engine's cfg.* rules (lint/rules.h): the
 * Error-severity diagnostics become ValidationErrors, while advisory
 * findings (unreachable blocks, dead ends, irreducible loop regions) stay
 * lint-only. Invariants enforced (beyond the incremental checks in
 * CfgBuilder):
 *  - every block's out-edges match its terminator's arity and kinds;
 *  - edge endpoints are in range and the in/out index lists are consistent;
 *  - the entry block exists;
 *  - call sites reference existing procedures (program-level);
 *  - conditional blocks have exactly two out-edges (taken + fall-through);
 *  - call sites sit strictly before the terminator instruction slot.
 */

#ifndef BALIGN_CFG_VALIDATE_H
#define BALIGN_CFG_VALIDATE_H

#include <string>
#include <vector>

#include "cfg/program.h"

namespace balign {

/// One validation failure.
struct ValidationError
{
    ProcId proc = kNoProc;
    BlockId block = kNoBlock;
    std::string message;
};

/// Collects all structural problems in @p proc. Empty result == valid.
std::vector<ValidationError> validate(const Procedure &proc);

/// Collects all structural problems across @p program.
std::vector<ValidationError> validate(const Program &program);

/// Convenience: panics with the first error if invalid.
void validateOrDie(const Program &program);

}  // namespace balign

#endif  // BALIGN_CFG_VALIDATE_H
