/**
 * @file
 * Graphviz export of procedure CFGs, in the visual style of the paper's
 * figures: fall-through edges solid/bold, taken edges dashed, indirect
 * edges dotted; nodes labelled "id (numInstrs)"; edges labelled with their
 * percentage of all edge transitions in the procedure.
 */

#ifndef BALIGN_CFG_DOT_H
#define BALIGN_CFG_DOT_H

#include <ostream>
#include <string>

#include "cfg/procedure.h"

namespace balign {

/// Options controlling dot output.
struct DotOptions
{
    /// Label edges with percent-of-procedure-transitions (paper style).
    bool percentLabels = true;
    /// Suppress labels for edges below this percentage (paper: < 1%).
    double minLabelPct = 1.0;
    /// Include raw weights in edge labels.
    bool rawWeights = false;
};

/// Writes @p proc as a dot digraph to @p os.
void writeDot(const Procedure &proc, std::ostream &os,
              const DotOptions &options = {});

/// Renders @p proc as a dot digraph string.
std::string toDot(const Procedure &proc, const DotOptions &options = {});

}  // namespace balign

#endif  // BALIGN_CFG_DOT_H
