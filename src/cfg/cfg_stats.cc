#include "cfg/cfg_stats.h"

#include <vector>

#include "support/stats.h"

namespace balign {

double
ProgramStats::pctBreaks() const
{
    return pct(static_cast<double>(totalBreaks()),
               static_cast<double>(instrsTraced));
}

double
ProgramStats::pctTaken() const
{
    return pct(static_cast<double>(takenCondBranches),
               static_cast<double>(condBranches));
}

double
ProgramStats::pctCondOfBreaks() const
{
    return pct(static_cast<double>(condBranches),
               static_cast<double>(totalBreaks()));
}

double
ProgramStats::pctIndirectOfBreaks() const
{
    return pct(static_cast<double>(indirectJumps),
               static_cast<double>(totalBreaks()));
}

double
ProgramStats::pctUncondOfBreaks() const
{
    return pct(static_cast<double>(uncondBranches),
               static_cast<double>(totalBreaks()));
}

double
ProgramStats::pctCallOfBreaks() const
{
    return pct(static_cast<double>(calls),
               static_cast<double>(totalBreaks()));
}

double
ProgramStats::pctReturnOfBreaks() const
{
    return pct(static_cast<double>(returns),
               static_cast<double>(totalBreaks()));
}

void
fillStaticStats(const Program &program, ProgramStats &stats)
{
    std::vector<std::uint64_t> site_counts;
    std::size_t static_sites = 0;
    for (const auto &proc : program.procs()) {
        for (const auto &block : proc.blocks()) {
            if (block.term != Terminator::CondBranch)
                continue;
            ++static_sites;
            Weight executed = 0;
            for (auto index : block.outEdges)
                executed += proc.edge(index).weight;
            site_counts.push_back(executed);
        }
    }
    stats.staticCondSites = static_sites;
    stats.q50 = coverageCount(site_counts, 0.50);
    stats.q90 = coverageCount(site_counts, 0.90);
    stats.q99 = coverageCount(site_counts, 0.99);
    stats.q100 = coverageCount(site_counts, 1.00);
}

}  // namespace balign
