/**
 * @file
 * Text serialization of programs (CFG + profile), enabling the command
 * line tools and interchange of profiled program models.
 *
 * Format (line oriented, '#' comments):
 *
 *   balign-program v1
 *   program <name>
 *   main <proc-id>
 *   proc <id> <name> entry <block-id>
 *   block <id> <instrs> <terminator> [pattern <len> <mask>]
 *         [corr <block-id> <invert>]
 *   call <block-id> <offset> <callee-proc>
 *   edge <src> <dst> <kind> <weight> <bias>
 *   endproc
 *
 * Terminators: fall | cond | uncond | indirect | return.
 * Edge kinds: fall | taken | other.
 * Block/call/edge lines belong to the most recent proc line; blocks must
 * appear in id order (ids are dense). Bias is a decimal double.
 */

#ifndef BALIGN_CFG_SERIALIZE_H
#define BALIGN_CFG_SERIALIZE_H

#include <iosfwd>
#include <optional>
#include <string>

#include "cfg/program.h"

namespace balign {

/// Writes @p program (including profile weights and biases) to @p os.
void writeProgram(const Program &program, std::ostream &os);

/// Serializes to a string.
std::string programToString(const Program &program);

/// Parse outcome: the program, or an error with a 1-based line number.
struct ParseResult
{
    std::optional<Program> program;
    std::string error;
    std::size_t errorLine = 0;

    bool ok() const { return program.has_value(); }
};

/// Parses a program from @p is. The result validates before returning;
/// structural problems are reported as parse errors.
ParseResult readProgram(std::istream &is);

/// Parses from a string.
ParseResult programFromString(const std::string &text);

/// File helpers: fatal() on I/O failure, parse errors reported in-band.
void saveProgram(const Program &program, const std::string &path);
ParseResult loadProgram(const std::string &path);

}  // namespace balign

#endif  // BALIGN_CFG_SERIALIZE_H
