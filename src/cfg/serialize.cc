#include "cfg/serialize.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "cfg/validate.h"
#include "support/log.h"

namespace balign {

namespace {

const char *
termToken(Terminator term)
{
    switch (term) {
      case Terminator::FallThrough: return "fall";
      case Terminator::CondBranch: return "cond";
      case Terminator::UncondBranch: return "uncond";
      case Terminator::IndirectJump: return "indirect";
      case Terminator::Return: return "return";
    }
    return "?";
}

bool
termFromToken(const std::string &token, Terminator &term)
{
    if (token == "fall")
        term = Terminator::FallThrough;
    else if (token == "cond")
        term = Terminator::CondBranch;
    else if (token == "uncond")
        term = Terminator::UncondBranch;
    else if (token == "indirect")
        term = Terminator::IndirectJump;
    else if (token == "return")
        term = Terminator::Return;
    else
        return false;
    return true;
}

const char *
kindToken(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::FallThrough: return "fall";
      case EdgeKind::Taken: return "taken";
      case EdgeKind::Other: return "other";
    }
    return "?";
}

bool
kindFromToken(const std::string &token, EdgeKind &kind)
{
    if (token == "fall")
        kind = EdgeKind::FallThrough;
    else if (token == "taken")
        kind = EdgeKind::Taken;
    else if (token == "other")
        kind = EdgeKind::Other;
    else
        return false;
    return true;
}

}  // namespace

void
writeProgram(const Program &program, std::ostream &os)
{
    // Biases must survive the round trip bit-for-bit.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "balign-program v1\n";
    os << "program " << program.name() << "\n";
    os << "main " << program.mainProc() << "\n";
    // Provenance line only when it deviates from the Measured default,
    // so pre-existing serialized programs stay byte-identical.
    if (program.profileProvenance() != ProfileProvenance::Measured) {
        os << "profile " << profileProvenanceName(program.profileProvenance())
           << "\n";
    }
    for (const auto &proc : program.procs()) {
        os << "proc " << proc.id() << " " << proc.name() << " entry "
           << proc.entry() << "\n";
        for (const auto &block : proc.blocks()) {
            os << "block " << block.id << " " << block.numInstrs << " "
               << termToken(block.term);
            if (block.patternLength > 0) {
                os << " pattern " << unsigned(block.patternLength) << " "
                   << block.patternMask;
            }
            if (block.correlatedWith != kNoBlock) {
                os << " corr " << block.correlatedWith << " "
                   << (block.correlatedInvert ? 1 : 0);
            }
            os << "\n";
            for (const auto &site : block.calls) {
                os << "call " << block.id << " " << site.offset << " "
                   << site.callee << "\n";
            }
        }
        for (const auto &edge : proc.edges()) {
            os << "edge " << edge.src << " " << edge.dst << " "
               << kindToken(edge.kind) << " " << edge.weight << " "
               << edge.bias << "\n";
        }
        os << "endproc\n";
    }
}

std::string
programToString(const Program &program)
{
    std::ostringstream os;
    writeProgram(program, os);
    return os.str();
}

ParseResult
readProgram(std::istream &is)
{
    ParseResult result;
    Program program;
    Procedure *proc = nullptr;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;

    auto fail = [&](const std::string &message) {
        result.program.reset();
        result.error = message;
        result.errorLine = line_no;
        return result;
    };

    while (std::getline(is, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ss(line);
        std::string keyword;
        if (!(ss >> keyword))
            continue;

        if (!saw_header) {
            if (keyword != "balign-program")
                return fail("missing 'balign-program v1' header");
            std::string version;
            ss >> version;
            if (version != "v1")
                return fail("unsupported version '" + version + "'");
            saw_header = true;
            continue;
        }

        if (keyword == "program") {
            std::string name;
            ss >> name;
            program.setName(name);
        } else if (keyword == "main") {
            ProcId main = 0;
            if (!(ss >> main))
                return fail("bad main line");
            program.setMainProc(main);
        } else if (keyword == "profile") {
            std::string tag;
            ProfileProvenance provenance;
            if (!(ss >> tag) || !profileProvenanceFromName(tag, provenance))
                return fail("unknown profile provenance '" + tag + "'");
            program.setProfileProvenance(provenance);
        } else if (keyword == "proc") {
            ProcId id;
            std::string name, entry_kw;
            BlockId entry;
            if (!(ss >> id >> name >> entry_kw >> entry) ||
                entry_kw != "entry")
                return fail("bad proc line");
            if (id != program.numProcs())
                return fail("proc ids must be dense and in order");
            program.addProc(name);
            proc = &program.proc(id);
            proc->setEntry(entry);
        } else if (keyword == "block") {
            if (proc == nullptr)
                return fail("block outside proc");
            BlockId id;
            std::uint32_t instrs;
            std::string term_token;
            if (!(ss >> id >> instrs >> term_token))
                return fail("bad block line");
            Terminator term;
            if (!termFromToken(term_token, term))
                return fail("unknown terminator '" + term_token + "'");
            if (id != proc->numBlocks())
                return fail("block ids must be dense and in order");
            if (instrs == 0)
                return fail("block must have at least one instruction");
            const BlockId added = proc->addBlock(instrs, term);
            // Optional attributes.
            std::string attr;
            while (ss >> attr) {
                if (attr == "pattern") {
                    unsigned len;
                    std::uint32_t mask;
                    if (!(ss >> len >> mask) || len == 0 || len > 32)
                        return fail("bad pattern attribute");
                    proc->block(added).patternLength =
                        static_cast<std::uint8_t>(len);
                    proc->block(added).patternMask = mask;
                } else if (attr == "corr") {
                    BlockId controller;
                    int invert;
                    if (!(ss >> controller >> invert))
                        return fail("bad corr attribute");
                    proc->block(added).correlatedWith = controller;
                    proc->block(added).correlatedInvert = invert != 0;
                } else {
                    return fail("unknown block attribute '" + attr + "'");
                }
            }
        } else if (keyword == "call") {
            if (proc == nullptr)
                return fail("call outside proc");
            BlockId block;
            std::uint32_t offset;
            ProcId callee;
            if (!(ss >> block >> offset >> callee))
                return fail("bad call line");
            if (block >= proc->numBlocks())
                return fail("call references unknown block");
            proc->block(block).calls.push_back(CallSite{callee, offset});
        } else if (keyword == "edge") {
            if (proc == nullptr)
                return fail("edge outside proc");
            BlockId src, dst;
            std::string kind_token;
            Weight weight;
            double bias;
            if (!(ss >> src >> dst >> kind_token >> weight >> bias))
                return fail("bad edge line");
            EdgeKind kind;
            if (!kindFromToken(kind_token, kind))
                return fail("unknown edge kind '" + kind_token + "'");
            if (src >= proc->numBlocks() || dst >= proc->numBlocks())
                return fail("edge references unknown block");
            proc->addEdge(src, dst, kind, weight, bias);
        } else if (keyword == "endproc") {
            if (proc == nullptr)
                return fail("endproc outside proc");
            proc = nullptr;
        } else {
            return fail("unknown keyword '" + keyword + "'");
        }
    }

    if (!saw_header)
        return fail("empty input");
    if (proc != nullptr)
        return fail("missing endproc");

    const auto errors = validate(program);
    if (!errors.empty()) {
        line_no = 0;
        return fail("program failed validation: " +
                    errors.front().message);
    }
    result.program = std::move(program);
    return result;
}

ParseResult
programFromString(const std::string &text)
{
    std::istringstream is(text);
    return readProgram(is);
}

void
saveProgram(const Program &program, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeProgram(program, os);
    if (!os)
        fatal("error writing '%s'", path.c_str());
}

ParseResult
loadProgram(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        ParseResult result;
        result.error = "cannot open '" + path + "'";
        return result;
    }
    return readProgram(is);
}

}  // namespace balign
