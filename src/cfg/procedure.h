/**
 * @file
 * Procedure: a control-flow graph of basic blocks with weighted edges.
 */

#ifndef BALIGN_CFG_PROCEDURE_H
#define BALIGN_CFG_PROCEDURE_H

#include <string>
#include <vector>

#include "cfg/basic_block.h"
#include "support/types.h"

namespace balign {

/**
 * A procedure's control-flow graph.
 *
 * Blocks are stored densely; the block vector order is the ORIGINAL layout
 * order (the order a compiler emitted them), which defines the baseline the
 * alignment algorithms improve on. Block 0 is the entry unless overridden.
 */
class Procedure
{
  public:
    Procedure() = default;
    Procedure(ProcId id, std::string name) : id_(id), name_(std::move(name)) {}

    ProcId id() const { return id_; }
    const std::string &name() const { return name_; }
    void setId(ProcId id) { id_ = id; }
    void setName(std::string name) { name_ = std::move(name); }

    BlockId entry() const { return entry_; }
    void setEntry(BlockId entry) { entry_ = entry; }

    std::size_t numBlocks() const { return blocks_.size(); }
    std::size_t numEdges() const { return edges_.size(); }

    const BasicBlock &block(BlockId id) const { return blocks_[id]; }
    BasicBlock &block(BlockId id) { return blocks_[id]; }

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    std::vector<BasicBlock> &blocks() { return blocks_; }

    const Edge &edge(std::uint32_t index) const { return edges_[index]; }
    Edge &edge(std::uint32_t index) { return edges_[index]; }

    const std::vector<Edge> &edges() const { return edges_; }
    std::vector<Edge> &edges() { return edges_; }

    /// Appends a block; returns its id.
    BlockId addBlock(std::uint32_t num_instrs, Terminator term);

    /// Appends an edge and wires it into both endpoint blocks.
    std::uint32_t addEdge(BlockId src, BlockId dst, EdgeKind kind,
                          Weight weight = 0, double bias = 0.0);

    /**
     * Index of the outgoing edge of @p src with the given kind, or -1 if
     * absent. CondBranch blocks have exactly one Taken and one FallThrough
     * edge; UncondBranch one Taken; FallThrough-terminated one FallThrough.
     */
    std::int64_t findOutEdge(BlockId src, EdgeKind kind) const;

    /// Taken-edge index of @p src or -1.
    std::int64_t takenEdge(BlockId src) const
    {
        return findOutEdge(src, EdgeKind::Taken);
    }

    /// Fall-through-edge index of @p src or -1.
    std::int64_t fallThroughEdge(BlockId src) const
    {
        return findOutEdge(src, EdgeKind::FallThrough);
    }

    /// Total static instruction count over all blocks (original layout).
    std::uint64_t totalInstrs() const;

    /// Sum of all edge weights (dynamic transition count).
    Weight totalEdgeWeight() const;

    /// Resets every edge weight to zero (before re-profiling).
    void clearWeights();

    /// Number of executions of a block = sum of in-edge weights
    /// (entry blocks also count calls; see Program-level accounting).
    Weight blockWeight(BlockId id) const;

  private:
    ProcId id_ = kNoProc;
    std::string name_;
    BlockId entry_ = 0;
    std::vector<BasicBlock> blocks_;
    std::vector<Edge> edges_;
};

}  // namespace balign

#endif  // BALIGN_CFG_PROCEDURE_H
