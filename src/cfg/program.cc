#include "cfg/program.h"

namespace balign {

ProcId
Program::addProc(std::string name)
{
    const auto id = static_cast<ProcId>(procs_.size());
    procs_.emplace_back(id, std::move(name));
    return id;
}

std::uint64_t
Program::totalInstrs() const
{
    std::uint64_t total = 0;
    for (const auto &proc : procs_)
        total += proc.totalInstrs();
    return total;
}

void
Program::clearWeights()
{
    for (auto &proc : procs_)
        proc.clearWeights();
}

}  // namespace balign
