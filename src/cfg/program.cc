#include "cfg/program.h"

namespace balign {

const char *
profileProvenanceName(ProfileProvenance provenance)
{
    switch (provenance) {
      case ProfileProvenance::Measured: return "measured";
      case ProfileProvenance::Degraded: return "degraded";
      case ProfileProvenance::Estimated: return "estimated";
    }
    return "?";
}

bool
profileProvenanceFromName(const std::string &name,
                          ProfileProvenance &provenance)
{
    if (name == "measured")
        provenance = ProfileProvenance::Measured;
    else if (name == "degraded")
        provenance = ProfileProvenance::Degraded;
    else if (name == "estimated")
        provenance = ProfileProvenance::Estimated;
    else
        return false;
    return true;
}

ProcId
Program::addProc(std::string name)
{
    const auto id = static_cast<ProcId>(procs_.size());
    procs_.emplace_back(id, std::move(name));
    return id;
}

std::uint64_t
Program::totalInstrs() const
{
    std::uint64_t total = 0;
    for (const auto &proc : procs_)
        total += proc.totalInstrs();
    return total;
}

void
Program::clearWeights()
{
    for (auto &proc : procs_)
        proc.clearWeights();
}

}  // namespace balign
