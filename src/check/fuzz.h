/**
 * @file
 * Structured CFG fuzzer with automatic shrinking.
 *
 * Each fuzz seed deterministically produces a program — either a random
 * compiler-shaped CFG (wide parameter ranges over the workload generator)
 * or one of the hand-built degenerate shapes (single-block loops, dense
 * indirect jumps, 1-instruction blocks, call chains past the walker's
 * depth cap, ...) — and drives every aligner x architecture pair through
 * the differential harness (check/differ.h).
 *
 * When a divergence is found, the shrinker minimizes the repro in the
 * issue's order — drop procedures, drop blocks (truncate-to-return +
 * unreachable-block GC), halve weights (trace budget and block sizes) —
 * while the divergence persists, then serializes it into tests/corpus/
 * with the walk parameters embedded as '#' comments (the serializer
 * ignores comments, so corpus files stay plain loadProgram-compatible).
 */

#ifndef BALIGN_CHECK_FUZZ_H
#define BALIGN_CHECK_FUZZ_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/differ.h"
#include "trace/walker.h"
#include "verify/driver.h"

namespace balign {

/// A self-contained reproduction: the program plus the walk that drives it.
struct Repro
{
    Program program;
    WalkOptions walk;
};

/// Number of hand-built degenerate program shapes.
std::size_t numDegenerateKinds();

/// Printable name of degenerate shape @p kind.
const char *degenerateKindName(std::size_t kind);

/**
 * Builds degenerate shape @p kind (< numDegenerateKinds()), lightly
 * perturbed by @p seed (block sizes, biases). Valid by construction.
 */
Program degenerateProgram(std::size_t kind, std::uint64_t seed);

/// Random compiler-shaped program for one fuzz seed (valid by
/// construction; wide parameter ranges over the workload generator).
Program fuzzProgram(std::uint64_t seed);

/// The program a fuzz seed maps to: every few seeds a degenerate shape,
/// otherwise a random program.
Program programForSeed(std::uint64_t seed);

/// The walk driving a fuzz seed.
WalkOptions walkForSeed(std::uint64_t seed, std::uint64_t instr_budget);

/// Fuzzing campaign configuration.
struct FuzzOptions
{
    std::uint64_t seeds = 100;      ///< number of seeds to run
    std::uint64_t firstSeed = 1;    ///< first seed value
    std::uint64_t walkInstrs = 20'000;  ///< per-seed instruction budget
    /// Configurations to sweep. Unlike diffPrepared, empty kinds /
    /// objectives here widen to allAlignerKindsExtended() and every
    /// objective — the fuzzer's job is the full matrix.
    DiffOptions diff;
    /// Directory for shrunk repro files (empty = do not save).
    std::string corpusDir;
    /// Parallelize seeds across this pool (null = serial).
    ThreadPool *pool = nullptr;
    /// Per-seed progress lines on stderr.
    bool verbose = false;
    /// Run the static linter (lint/lint.h) over the profiled program and
    /// every layout BEFORE the differential oracle. A lint error is a
    /// finding of its own (DivergenceKind::Lint) and shrinks exactly like
    /// a divergence.
    bool lintGate = true;
    /// Run the translation-validating layout verifier (verify/verify.h)
    /// over every layout alongside the lint gate. An undischarged proof
    /// obligation is a finding of its own (DivergenceKind::Verify) and
    /// shrinks exactly like a divergence.
    bool verifyGate = true;
    /// Test hook: corrupts each layout between alignment and
    /// verification (see verify/driver.h), proving the gate catches
    /// injected bugs end to end.
    LayoutMutator layoutMutator;
    /// Perturb the profile and run incremental realignment
    /// (core/realign.h) against a full realignment: threshold 0 must be
    /// byte-identical to the full layout, threshold infinity to the old
    /// one, and a mid-threshold splice must verify. A violation is a
    /// finding of its own (DivergenceKind::Realign) and shrinks exactly
    /// like a divergence.
    bool realignGate = true;
    /// Estimate a static profile for the program (estimate/estimate.h)
    /// and check it passes the prof.*/est.* invariants and that every
    /// aligner x objective pair produces a verifiable layout from it. A
    /// violation is a finding of its own (DivergenceKind::Estimate) and
    /// shrinks exactly like a divergence.
    bool estimateGate = true;
    /// Relax every aligner's layout under every encoding model
    /// (emit/relax.h) and check the emission contract: convergence, the
    /// relaxed-layout proof obligations, fixpoint determinism (a second
    /// relaxation is byte-identical), and an ELF object that round-trips
    /// through the self-contained reader with text bytes matching the
    /// encoder. A violation is a finding of its own (DivergenceKind::Emit)
    /// and shrinks exactly like a divergence.
    bool emitGate = true;
    /// Emit every aligner's layout under every encoding model, decode
    /// the object with the independent disassembler (disasm/disasm.h)
    /// and discharge the byte-level obligations (disasm/checkobj.h):
    /// decode totality, branch targets, relocation correctness, CFG
    /// isomorphism and size accounting. A violation is a finding of its
    /// own (DivergenceKind::Disasm) and shrinks exactly like a
    /// divergence.
    bool disasmGate = true;
};

/// Campaign outcome.
struct FuzzReport
{
    std::uint64_t programsRun = 0;
    std::uint64_t configsChecked = 0;
    /// Findings of kind DivergenceKind::Lint among `divergences`.
    std::uint64_t lintHits = 0;
    /// Findings of kind DivergenceKind::Verify among `divergences`.
    std::uint64_t verifyHits = 0;
    /// Findings of kind DivergenceKind::Batch among `divergences`
    /// (batched replay engine vs per-cell evaluator).
    std::uint64_t batchHits = 0;
    /// Findings of kind DivergenceKind::Realign among `divergences`
    /// (incremental vs full realignment).
    std::uint64_t realignHits = 0;
    /// Findings of kind DivergenceKind::Estimate among `divergences`
    /// (static estimator broke an invariant or produced an unalignable
    /// profile).
    std::uint64_t estimateHits = 0;
    /// Findings of kind DivergenceKind::Emit among `divergences`
    /// (relaxation or ELF emission broke its contract).
    std::uint64_t emitHits = 0;
    /// Findings of kind DivergenceKind::Disasm among `divergences`
    /// (an emitted object failed the byte-level translation validator).
    std::uint64_t disasmHits = 0;
    /// First divergence per diverging seed, AFTER shrinking.
    std::vector<Divergence> divergences;
    /// Repro files written (parallel to divergences; empty string when
    /// corpusDir was not set).
    std::vector<std::string> reproPaths;
};

/**
 * The fuzzer's lint pre-gate: lints @p program (already profiled — the
 * prof.* rules read its recorded weights) and the layouts of every
 * configuration in @p options, mirroring the differ's sweep. Returns a
 * DivergenceKind::Lint finding carrying the error diagnostics, or nullopt
 * for a clean bill.
 */
std::optional<Divergence> lintGateCheck(const Program &program,
                                        const DiffOptions &options = {});

/**
 * The fuzzer's verify pre-gate: aligns @p program under every
 * configuration in @p options and proves each layout semantically
 * equivalent (verify/driver.h). @p mutate, when set, corrupts each layout
 * first. Returns a DivergenceKind::Verify finding carrying the failed
 * proof obligations, or nullopt when every layout verifies.
 */
std::optional<Divergence> verifyGateCheck(const Program &program,
                                          const DiffOptions &options = {},
                                          const LayoutMutator &mutate = {});

/**
 * The fuzzer's incremental-realignment gate: perturbs @p program's
 * profile deterministically, then for every configured (aligner,
 * objective) pair checks realignProgram's differential contract — the
 * threshold-0 incremental layout is byte-identical to a full
 * alignProgram of the perturbed profile, the threshold-infinity layout
 * byte-identical to the old one, and a mid-threshold splice passes the
 * translation validator. Returns a DivergenceKind::Realign finding, or
 * nullopt when the contract holds. @p walk feeds walk-based degradations.
 */
std::optional<Divergence> realignGateCheck(const Program &program,
                                           const WalkOptions &walk,
                                           const DiffOptions &options = {});

/**
 * The fuzzer's static-estimator gate: estimates a profile for a copy of
 * @p program, checks the synthesized weights against the prof.* and
 * est.* invariants, then aligns the estimated copy under every
 * configured (aligner, objective) pair and proves each layout with the
 * translation validator. Returns a DivergenceKind::Estimate finding, or
 * nullopt when the estimator holds up.
 */
std::optional<Divergence> estimateGateCheck(const Program &program,
                                            const DiffOptions &options = {});

/**
 * The fuzzer's emission gate: aligns @p program under every configured
 * (aligner, objective) pair, relaxes each layout under every encoding
 * model, and checks the full emission contract — convergence, the
 * relaxed-layout proof obligations (verify/verify.h), a byte-identical
 * second relaxation, the fixed-word byteAddr == wordAddr * kInstrBytes
 * identity, and an ELF object (emit/elf.h) that parses back with text
 * bytes equal to the encoder's. Returns a DivergenceKind::Emit finding,
 * or nullopt when the backend holds up.
 */
std::optional<Divergence> emitGateCheck(const Program &program,
                                        const DiffOptions &options = {});

/**
 * The fuzzer's binary-validation gate: aligns @p program under every
 * configured (aligner, objective) pair, emits an ELF object under every
 * encoding model, decodes it with the independent disassembler and
 * discharges the byte-level obligation family (disasm/checkobj.h)
 * against the relaxed layout. Unconverged relaxations are skipped — the
 * emit gate owns that finding. Returns a DivergenceKind::Disasm finding
 * carrying the first failed obligation, or nullopt when every object
 * validates.
 */
std::optional<Divergence> disasmGateCheck(const Program &program,
                                          const DiffOptions &options = {});

/// Runs the campaign: seeds -> programs -> differ -> shrink -> corpus.
FuzzReport runFuzz(const FuzzOptions &options);

/**
 * Shrinks @p repro while @p stillFails keeps returning true. The
 * predicate must be deterministic; it is never called on an invalid
 * program. Returns the smallest failing repro found.
 */
Repro shrinkRepro(Repro repro,
                  const std::function<bool(const Repro &)> &stillFails);

/// Writes a repro file: walk parameters as magic comments + the program.
void saveRepro(const Repro &repro, const std::string &path);

/**
 * Loads a repro file. Walk parameters are read from the magic comment
 * (`# balign-fuzz-walk seed=<S> budget=<B>`); files without one (plain
 * serialized programs) get default walk options. Returns nullopt with a
 * message on stderr for unparsable files.
 */
std::optional<Repro> loadRepro(const std::string &path);

}  // namespace balign

#endif  // BALIGN_CHECK_FUZZ_H
