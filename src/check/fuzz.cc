#include "check/fuzz.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cfg/serialize.h"
#include "cfg/validate.h"
#include "core/realign.h"
#include "disasm/checkobj.h"
#include "emit/elf.h"
#include "emit/relax.h"
#include "estimate/estimate.h"
#include "layout/layout_diff.h"
#include "lint/lint.h"
#include "profile/degrade.h"
#include "support/log.h"
#include "support/rng.h"
#include "verify/verify.h"
#include "workload/generator.h"

namespace balign {

namespace {

// -----------------------------------------------------------------------
// Degenerate shapes. Each is the smallest program exhibiting one walker /
// materializer / evaluator corner; seeds only perturb sizes and biases so
// every fuzz run still covers every corner.

/// 1..cap, perturbed by seed.
std::uint32_t
vary(std::uint64_t seed, std::uint32_t cap)
{
    return 1 + static_cast<std::uint32_t>(seed % cap);
}

Program
shapeMinimalReturn(std::uint64_t seed)
{
    Program program("degen-minimal-return");
    const ProcId p = program.addProc("main");
    program.proc(p).addBlock(vary(seed, 3), Terminator::Return);
    return program;
}

Program
shapeTightLoop(std::uint64_t seed)
{
    Program program("degen-tight-loop");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId head = proc.addBlock(vary(seed, 4), Terminator::CondBranch);
    const BlockId exit = proc.addBlock(1, Terminator::Return);
    proc.addEdge(head, head, EdgeKind::Taken, 0, 0.9);
    proc.addEdge(head, exit, EdgeKind::FallThrough, 0, 0.1);
    if (seed % 2 == 1) {
        // Fixed-trip variant: taken-taken-taken-fall cycle.
        proc.block(head).patternLength = 4;
        proc.block(head).patternMask = 0b0111;
    }
    return program;
}

Program
shapeUncondChain(std::uint64_t seed)
{
    // A permuted unconditional chain: every block jumps to a non-adjacent
    // successor, so reordering aligners can delete every jump (the
    // jump-removal feast) while the original layout keeps them all.
    Program program("degen-uncond-chain");
    Procedure &proc = program.proc(program.addProc("main"));
    for (int i = 0; i < 4; ++i)
        proc.addBlock(vary(seed + i, 3), Terminator::UncondBranch);
    proc.addBlock(1, Terminator::Return);
    proc.addEdge(0, 3, EdgeKind::Taken, 0, 1.0);
    proc.addEdge(3, 1, EdgeKind::Taken, 0, 1.0);
    proc.addEdge(1, 2, EdgeKind::Taken, 0, 1.0);
    proc.addEdge(2, 4, EdgeKind::Taken, 0, 1.0);
    return program;
}

Program
shapeDenseIndirect(std::uint64_t seed)
{
    Program program("degen-dense-indirect");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId hub = proc.addBlock(vary(seed, 2), Terminator::IndirectJump);
    for (int i = 0; i < 5; ++i) {
        const BlockId leaf = proc.addBlock(1, Terminator::Return);
        // Half the runs leave all biases zero (uniform fallback).
        const double bias = seed % 2 == 0 ? 0.0 : 0.1 * (i + 1);
        proc.addEdge(hub, leaf, EdgeKind::Other, 0, bias);
    }
    return program;
}

Program
shapeManyTinyProcs(std::uint64_t seed)
{
    Program program("degen-many-tiny-procs");
    const ProcId main_id = program.addProc("main");
    const unsigned callees = 4;
    for (unsigned i = 0; i < callees; ++i) {
        const ProcId callee =
            program.addProc("leaf" + std::to_string(i));
        program.proc(callee).addBlock(vary(seed + i, 2),
                                      Terminator::Return);
    }
    Procedure &main_proc = program.proc(main_id);
    const BlockId body =
        main_proc.addBlock(callees + 2, Terminator::Return);
    for (unsigned i = 0; i < callees; ++i)
        main_proc.block(body).calls.push_back(
            CallSite{static_cast<ProcId>(main_id + 1 + i), i});
    return program;
}

Program
shapeOneInstrDiamond(std::uint64_t seed)
{
    // Every block is a single instruction — the branch itself.
    Program program("degen-one-instr-diamond");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId top = proc.addBlock(1, Terminator::CondBranch);
    const BlockId left = proc.addBlock(1, Terminator::UncondBranch);
    const BlockId right = proc.addBlock(1, Terminator::FallThrough);
    const BlockId join = proc.addBlock(1, Terminator::Return);
    const double p = 0.2 + 0.15 * static_cast<double>(seed % 5);
    proc.addEdge(top, left, EdgeKind::Taken, 0, p);
    proc.addEdge(top, right, EdgeKind::FallThrough, 0, 1.0 - p);
    proc.addEdge(left, join, EdgeKind::Taken, 0, 1.0);
    proc.addEdge(right, join, EdgeKind::FallThrough, 0, 1.0);
    return program;
}

Program
shapeHotLoop(std::uint64_t seed)
{
    // Maximally hot loop edge: nearly the whole budget traverses one edge.
    Program program("degen-hot-loop");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId pre = proc.addBlock(vary(seed, 3), Terminator::FallThrough);
    const BlockId body = proc.addBlock(vary(seed + 1, 6),
                                       Terminator::CondBranch);
    const BlockId exit = proc.addBlock(1, Terminator::Return);
    proc.addEdge(pre, body, EdgeKind::FallThrough, 0, 1.0);
    proc.addEdge(body, body, EdgeKind::Taken, 0, 0.9999);
    proc.addEdge(body, exit, EdgeKind::FallThrough, 0, 0.0001);
    return program;
}

Program
shapeDeepCalls(std::uint64_t seed)
{
    // A call chain longer than the walker's depth cap (64): the deepest
    // calls are skipped, exercising the cap and wrapping the return stack.
    Program program("degen-deep-calls");
    const unsigned depth = 70;
    for (unsigned i = 0; i < depth; ++i)
        program.addProc("f" + std::to_string(i));
    for (unsigned i = 0; i < depth; ++i) {
        Procedure &proc = program.proc(i);
        const BlockId body =
            proc.addBlock(2 + (seed + i) % 2, Terminator::Return);
        if (i + 1 < depth)
            proc.block(body).calls.push_back(CallSite{i + 1, 0});
    }
    return program;
}

Program
shapeSelfRecursion(std::uint64_t seed)
{
    Program program("degen-self-recursion");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId body = proc.addBlock(2 + seed % 2, Terminator::Return);
    proc.block(body).calls.push_back(CallSite{0, 0});
    return program;
}

Program
shapePatternedCorrelated(std::uint64_t seed)
{
    // A patterned branch and a second branch correlated (inverted) with
    // it — the two-level-predictor-friendly behaviour.
    Program program("degen-patterned-correlated");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId first = proc.addBlock(2, Terminator::CondBranch);
    const BlockId a = proc.addBlock(1, Terminator::FallThrough);
    const BlockId b = proc.addBlock(1, Terminator::FallThrough);
    const BlockId second = proc.addBlock(2, Terminator::CondBranch);
    const BlockId c = proc.addBlock(1, Terminator::FallThrough);
    const BlockId d = proc.addBlock(1, Terminator::FallThrough);
    const BlockId out = proc.addBlock(1, Terminator::Return);
    proc.block(first).patternLength = 3;
    proc.block(first).patternMask = 0b101;
    proc.block(second).correlatedWith = first;
    proc.block(second).correlatedInvert = seed % 2 == 1;
    proc.addEdge(first, a, EdgeKind::Taken, 0, 0.5);
    proc.addEdge(first, b, EdgeKind::FallThrough, 0, 0.5);
    proc.addEdge(a, second, EdgeKind::FallThrough, 0, 1.0);
    proc.addEdge(b, second, EdgeKind::FallThrough, 0, 1.0);
    proc.addEdge(second, c, EdgeKind::Taken, 0, 0.5);
    proc.addEdge(second, d, EdgeKind::FallThrough, 0, 0.5);
    proc.addEdge(c, out, EdgeKind::FallThrough, 0, 1.0);
    proc.addEdge(d, out, EdgeKind::FallThrough, 0, 1.0);
    return program;
}

Program
shapeDeadEndFall(std::uint64_t seed)
{
    // A fall-through block with no successor: the walk dead-ends and
    // unwinds without a Return event.
    Program program("degen-dead-end-fall");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId top = proc.addBlock(vary(seed, 3), Terminator::CondBranch);
    const BlockId dead = proc.addBlock(1, Terminator::FallThrough);
    const BlockId out = proc.addBlock(1, Terminator::Return);
    proc.addEdge(top, dead, EdgeKind::Taken, 0, 0.3);
    proc.addEdge(top, out, EdgeKind::FallThrough, 0, 0.7);
    return program;
}

Program
shapeUnreachableBlocks(std::uint64_t seed)
{
    Program program("degen-unreachable-blocks");
    Procedure &proc = program.proc(program.addProc("main"));
    const BlockId top = proc.addBlock(vary(seed, 3),
                                      Terminator::UncondBranch);
    const BlockId orphan = proc.addBlock(2, Terminator::FallThrough);
    const BlockId out = proc.addBlock(1, Terminator::Return);
    proc.addBlock(1, Terminator::Return);  // second orphan, no edges
    proc.addEdge(top, out, EdgeKind::Taken, 0, 1.0);
    proc.addEdge(orphan, out, EdgeKind::FallThrough, 0, 1.0);
    return program;
}

using ShapeFn = Program (*)(std::uint64_t);

struct Shape
{
    const char *name;
    ShapeFn build;
};

const Shape kShapes[] = {
    {"minimal-return", shapeMinimalReturn},
    {"tight-loop", shapeTightLoop},
    {"uncond-chain", shapeUncondChain},
    {"dense-indirect", shapeDenseIndirect},
    {"many-tiny-procs", shapeManyTinyProcs},
    {"one-instr-diamond", shapeOneInstrDiamond},
    {"hot-loop", shapeHotLoop},
    {"deep-calls", shapeDeepCalls},
    {"self-recursion", shapeSelfRecursion},
    {"patterned-correlated", shapePatternedCorrelated},
    {"dead-end-fall", shapeDeadEndFall},
    {"unreachable-blocks", shapeUnreachableBlocks},
};

constexpr std::size_t kNumShapes = sizeof(kShapes) / sizeof(kShapes[0]);

}  // namespace

std::size_t
numDegenerateKinds()
{
    return kNumShapes;
}

const char *
degenerateKindName(std::size_t kind)
{
    if (kind >= kNumShapes)
        fatal("degenerateKindName: kind %zu out of range", kind);
    return kShapes[kind].name;
}

Program
degenerateProgram(std::size_t kind, std::uint64_t seed)
{
    if (kind >= kNumShapes)
        fatal("degenerateProgram: kind %zu out of range", kind);
    Program program = kShapes[kind].build(seed);
    validateOrDie(program);
    return program;
}

Program
fuzzProgram(std::uint64_t seed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
    ProgramSpec spec;
    spec.name = "fuzz-" + std::to_string(seed);
    spec.seed = rng.nextU64();
    spec.numProcs = 1 + static_cast<unsigned>(rng.nextBounded(6));
    spec.minBlocksPerProc = 1 + static_cast<unsigned>(rng.nextBounded(4));
    spec.maxBlocksPerProc =
        spec.minBlocksPerProc + static_cast<unsigned>(rng.nextBounded(28));
    spec.avgBlockInstrs = 1 + static_cast<unsigned>(rng.nextBounded(9));
    spec.maxLoopDepth = static_cast<unsigned>(rng.nextBounded(4));
    spec.loopProb = rng.nextDouble() * 0.5;
    spec.whileLoopProb = rng.nextDouble();
    spec.tightLoopProb = rng.nextDouble() * 0.6;
    spec.loopContinueProb = 0.5 + rng.nextDouble() * 0.49;
    spec.fixedTripProb = rng.nextDouble();
    spec.minTripCount = 1 + static_cast<unsigned>(rng.nextBounded(4));
    spec.maxTripCount =
        spec.minTripCount + static_cast<unsigned>(rng.nextBounded(30));
    spec.patternedIfProb = rng.nextDouble() * 0.4;
    spec.correlatedIfProb = rng.nextDouble() * 0.4;
    spec.ifProb = 0.1 + rng.nextDouble() * 0.5;
    spec.elseProb = rng.nextDouble();
    spec.ifSkewHot = 0.5 + rng.nextDouble() * 0.5;
    spec.balancedIfProb = rng.nextDouble() * 0.5;
    spec.hotSideFallProb = rng.nextDouble();
    spec.switchProb = rng.nextDouble() * 0.15;
    spec.maxSwitchCases = 2 + static_cast<unsigned>(rng.nextBounded(8));
    spec.callProb = rng.nextDouble() * 0.3;
    spec.earlyReturnProb = rng.nextDouble() * 0.15;
    Program program = generateProgram(spec);
    validateOrDie(program);
    return program;
}

Program
programForSeed(std::uint64_t seed)
{
    // Every third seed replays a degenerate shape so each corner is
    // covered many times per campaign; the rest are random CFGs.
    if (seed % 3 == 0)
        return degenerateProgram((seed / 3) % kNumShapes, seed / 3);
    return fuzzProgram(seed);
}

WalkOptions
walkForSeed(std::uint64_t seed, std::uint64_t instr_budget)
{
    WalkOptions walk;
    walk.seed = seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull;
    walk.instrBudget = instr_budget;
    return walk;
}

// -----------------------------------------------------------------------
// Shrinker. Every transformation rebuilds the program from scratch so the
// dense-id and index invariants hold by construction.

namespace {

/// Copies a block's payload (sizes, pattern, correlation, calls) without
/// its edges.
void
copyBlockPayload(const BasicBlock &from, BasicBlock &to)
{
    to.numInstrs = from.numInstrs;
    to.patternLength = from.patternLength;
    to.patternMask = from.patternMask;
    to.correlatedWith = from.correlatedWith;
    to.correlatedInvert = from.correlatedInvert;
    to.calls = from.calls;
}

/// Drops call sites that would overlap the terminator slot.
void
clampCalls(BasicBlock &block)
{
    const std::uint32_t limit =
        block.hasBranchInstr() ? block.numInstrs - 1 : block.numInstrs;
    std::vector<CallSite> kept;
    for (const CallSite &site : block.calls) {
        if (site.offset < limit)
            kept.push_back(site);
    }
    block.calls = std::move(kept);
}

/// @p victim removed; calls into it dropped, ids above it shifted down.
Program
dropProcedure(const Program &program, ProcId victim)
{
    Program out(program.name());
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        if (p == victim)
            continue;
        const Procedure &old = program.proc(p);
        Procedure &proc = out.proc(out.addProc(old.name()));
        for (const BasicBlock &block : old.blocks()) {
            const BlockId id = proc.addBlock(block.numInstrs, block.term);
            copyBlockPayload(block, proc.block(id));
            std::vector<CallSite> calls;
            for (const CallSite &site : proc.block(id).calls) {
                if (site.callee == victim)
                    continue;
                CallSite kept = site;
                if (kept.callee > victim)
                    --kept.callee;
                calls.push_back(kept);
            }
            proc.block(id).calls = std::move(calls);
        }
        for (const Edge &edge : old.edges())
            proc.addEdge(edge.src, edge.dst, edge.kind, edge.weight,
                         edge.bias);
        proc.setEntry(old.entry());
    }
    ProcId main_id = program.mainProc();
    if (main_id > victim)
        --main_id;
    out.setMainProc(main_id);
    return out;
}

/**
 * Truncates block @p target of procedure @p victim to a plain return,
 * then garbage-collects blocks no longer reachable from the entry
 * (remapping ids densely).
 */
Program
truncateBlock(const Program &program, ProcId victim, BlockId target)
{
    Program out(program.name());
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const Procedure &old = program.proc(p);
        Procedure &proc = out.proc(out.addProc(old.name()));
        if (p != victim) {
            for (const BasicBlock &block : old.blocks()) {
                const BlockId id =
                    proc.addBlock(block.numInstrs, block.term);
                copyBlockPayload(block, proc.block(id));
            }
            for (const Edge &edge : old.edges())
                proc.addEdge(edge.src, edge.dst, edge.kind, edge.weight,
                             edge.bias);
            proc.setEntry(old.entry());
            continue;
        }

        // Reachability from the entry, with the target's out-edges cut.
        std::vector<bool> reachable(old.numBlocks(), false);
        std::vector<BlockId> work{old.entry()};
        reachable[old.entry()] = true;
        while (!work.empty()) {
            const BlockId id = work.back();
            work.pop_back();
            if (id == target)
                continue;
            for (const std::uint32_t index : old.block(id).outEdges) {
                const BlockId dst = old.edge(index).dst;
                if (!reachable[dst]) {
                    reachable[dst] = true;
                    work.push_back(dst);
                }
            }
        }

        std::vector<BlockId> remap(old.numBlocks(), kNoBlock);
        for (const BasicBlock &block : old.blocks()) {
            if (!reachable[block.id])
                continue;
            const bool truncated = block.id == target;
            const BlockId id = proc.addBlock(
                block.numInstrs,
                truncated ? Terminator::Return : block.term);
            remap[block.id] = id;
            copyBlockPayload(block, proc.block(id));
            clampCalls(proc.block(id));
        }
        for (const BasicBlock &block : old.blocks()) {
            const BlockId id = remap[block.id];
            if (id == kNoBlock)
                continue;
            BlockId &corr = proc.block(id).correlatedWith;
            corr = corr == kNoBlock ? kNoBlock : remap[corr];
        }
        for (const Edge &edge : old.edges()) {
            if (edge.src == target)
                continue;
            if (remap[edge.src] == kNoBlock || remap[edge.dst] == kNoBlock)
                continue;
            proc.addEdge(remap[edge.src], remap[edge.dst], edge.kind,
                         edge.weight, edge.bias);
        }
        proc.setEntry(remap[old.entry()]);
    }
    out.setMainProc(program.mainProc());
    return out;
}

/// Halves every block's instruction count (floor 1), dropping call sites
/// that no longer fit. Returns nullopt when nothing changed.
std::optional<Program>
halveBlockSizes(const Program &program)
{
    Program out = program;
    bool changed = false;
    for (Procedure &proc : out.procs()) {
        for (BasicBlock &block : proc.blocks()) {
            if (block.numInstrs <= 1)
                continue;
            block.numInstrs = std::max(1u, block.numInstrs / 2);
            clampCalls(block);
            changed = true;
        }
    }
    if (!changed)
        return std::nullopt;
    return out;
}

}  // namespace

Repro
shrinkRepro(Repro repro,
            const std::function<bool(const Repro &)> &stillFails)
{
    auto try_candidate = [&](Repro &&candidate) {
        if (!validate(candidate.program).empty())
            return false;
        if (!stillFails(candidate))
            return false;
        repro = std::move(candidate);
        return true;
    };

    bool changed = true;
    while (changed) {
        changed = false;

        // 1. Drop whole procedures (never main).
        for (ProcId p = 0; p < repro.program.numProcs();) {
            if (repro.program.numProcs() <= 1 ||
                p == repro.program.mainProc()) {
                ++p;
                continue;
            }
            if (try_candidate(
                    Repro{dropProcedure(repro.program, p), repro.walk})) {
                changed = true;  // ids shifted; re-examine the same index
            } else {
                ++p;
            }
        }

        // 2. Truncate blocks to returns (unreachable blocks fall away).
        for (ProcId p = 0; p < repro.program.numProcs(); ++p) {
            for (BlockId b = 0; b < repro.program.proc(p).numBlocks();) {
                if (repro.program.proc(p).block(b).term ==
                    Terminator::Return) {
                    ++b;
                    continue;
                }
                if (try_candidate(Repro{
                        truncateBlock(repro.program, p, b), repro.walk})) {
                    changed = true;
                    b = 0;  // ids were remapped
                } else {
                    ++b;
                }
            }
        }

        // 3. Halve the trace budget.
        while (repro.walk.instrBudget > 64) {
            Repro candidate = repro;
            candidate.walk.instrBudget /= 2;
            if (!try_candidate(std::move(candidate)))
                break;
            changed = true;
        }

        // 4. Halve block weights (instruction counts).
        while (true) {
            std::optional<Program> halved =
                halveBlockSizes(repro.program);
            if (!halved.has_value() ||
                !try_candidate(Repro{std::move(*halved), repro.walk}))
                break;
            changed = true;
        }
    }
    return repro;
}

void
saveRepro(const Repro &repro, const std::string &path)
{
    std::ofstream file(path);
    if (!file)
        fatal("saveRepro: cannot open %s", path.c_str());
    file << "# balign-fuzz-walk seed=" << repro.walk.seed
         << " budget=" << repro.walk.instrBudget << "\n";
    file << programToString(repro.program);
    if (!file)
        fatal("saveRepro: write to %s failed", path.c_str());
}

std::optional<Repro>
loadRepro(const std::string &path)
{
    std::ifstream file(path);
    if (!file) {
        warn("loadRepro: cannot open %s", path.c_str());
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();

    Repro repro;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        unsigned long long seed = 0, budget = 0;
        if (std::sscanf(line.c_str(),
                        "# balign-fuzz-walk seed=%llu budget=%llu", &seed,
                        &budget) == 2) {
            repro.walk.seed = seed;
            repro.walk.instrBudget = budget;
            break;
        }
    }

    ParseResult parsed = programFromString(text);
    if (!parsed.ok()) {
        warn("loadRepro: %s:%zu: %s", path.c_str(), parsed.errorLine,
             parsed.error.c_str());
        return std::nullopt;
    }
    repro.program = std::move(*parsed.program);
    return repro;
}

std::optional<Divergence>
lintGateCheck(const Program &program, const DiffOptions &options)
{
    const std::vector<ObjectiveKind> objectives =
        options.objectives.empty()
            ? std::vector<ObjectiveKind>{options.align.objective}
            : options.objectives;
    for (const ObjectiveKind objective : objectives) {
        LintRunOptions run;
        run.archs = options.archs;
        run.kinds = options.kinds;
        run.align = options.align;
        run.align.objective = objective;
        const LintReport report = lintProgram(program, run);
        if (report.clean())
            continue;

        Divergence divergence;
        divergence.kind = DivergenceKind::Lint;
        divergence.objective = objective;
        divergence.program = program.name();
        std::ostringstream detail;
        for (const Diagnostic &diagnostic : report.diagnostics) {
            if (diagnostic.severity == Severity::Error)
                detail << "  " << formatDiagnostic(diagnostic) << "\n";
        }
        divergence.detail = detail.str();
        return divergence;
    }
    return std::nullopt;
}

std::optional<Divergence>
verifyGateCheck(const Program &program, const DiffOptions &options,
                const LayoutMutator &mutate)
{
    VerifyRunOptions run;
    run.archs = options.archs;
    run.kinds = options.kinds;
    run.objectives = options.objectives;
    run.align = options.align;
    run.mutate = mutate;
    const VerifyRunReport report = verifyProgramLayouts(program, run);
    if (report.verified())
        return std::nullopt;

    Divergence divergence;
    divergence.kind = DivergenceKind::Verify;
    divergence.program = program.name();
    // Pin the divergence to the first failing configuration so the repro
    // names a concrete (arch, aligner, objective) triple.
    for (const VerifyCertificate &certificate : report.certificates) {
        if (certificate.result.verified())
            continue;
        for (const Arch arch : allArchs()) {
            if (certificate.arch == archName(arch))
                divergence.arch = arch;
        }
        for (const AlignerKind kind : allAlignerKindsExtended()) {
            if (certificate.aligner == alignerKindName(kind))
                divergence.aligner = kind;
        }
        if (const auto objective = parseObjectiveKind(certificate.objective))
            divergence.objective = *objective;
        break;
    }
    divergence.detail = formatVerifyReport(report, program.name());
    return divergence;
}

std::optional<Divergence>
realignGateCheck(const Program &program, const WalkOptions &walk,
                 const DiffOptions &options)
{
    // Deterministic profile mutation: multiplicative noise moves some
    // procedures past any mid-range divergence threshold while others
    // stay below it, so the mid-threshold check splices a genuine mix of
    // old and fresh procedure layouts.
    Program degraded = program;
    DegradeSpec spec;
    spec.kind = DegradeKind::Perturb;
    spec.param = 0.5;
    spec.seed = 0x5EED5EEDull;
    degradeProfile(degraded, walk, spec);

    const std::vector<AlignerKind> kinds =
        options.kinds.empty() ? allAlignerKindsExtended() : options.kinds;
    const std::vector<ObjectiveKind> objectives =
        options.objectives.empty()
            ? std::vector<ObjectiveKind>{options.align.objective}
            : options.objectives;
    const CostModel model(Arch::Fallthrough);

    for (const AlignerKind kind : kinds) {
        for (const ObjectiveKind objective : objectives) {
            AlignOptions align = options.align;
            align.objective = objective;
            // Verification failures must become findings, not panics.
            align.verify = false;

            auto report = [&](const std::string &what,
                              const std::string &detail) {
                Divergence divergence;
                divergence.kind = DivergenceKind::Realign;
                divergence.aligner = kind;
                divergence.objective = objective;
                divergence.program = program.name();
                divergence.detail = "  " + what + ": " + detail + "\n";
                return divergence;
            };

            const ProgramLayout old_layout =
                alignProgram(program, kind, &model, align);
            const ProgramLayout full =
                alignProgram(degraded, kind, &model, align);

            const ProgramLayout incremental = realignProgram(
                program, old_layout, degraded, kind, &model, align, 0.0);
            std::string mismatch =
                describeLayoutDifference(full, incremental);
            if (!mismatch.empty())
                return report("threshold 0 differs from full alignProgram",
                              mismatch);

            const ProgramLayout kept =
                realignProgram(program, old_layout, degraded, kind, &model,
                               align, kNeverRealign);
            mismatch = describeLayoutDifference(old_layout, kept);
            if (!mismatch.empty())
                return report(
                    "threshold infinity differs from the old layout",
                    mismatch);

            RealignStats stats;
            const ProgramLayout spliced =
                realignProgram(program, old_layout, degraded, kind, &model,
                               align, 0.25, &stats);
            const VerifyResult proof = verifyLayout(degraded, spliced);
            if (!proof.verified()) {
                std::ostringstream detail;
                detail << "spliced " << stats.procsRealigned << "/"
                       << stats.procsTotal << " procedures; "
                       << formatVerifyFailure(proof.failures.front());
                return report("mid-threshold splice failed verification",
                              detail.str());
            }
        }
    }
    return std::nullopt;
}

std::optional<Divergence>
estimateGateCheck(const Program &program, const DiffOptions &options)
{
    // Estimate once; every check below runs against this copy.
    Program estimated = program;
    const EstimateReport estimate = estimateProfile(estimated);
    (void)estimate;

    auto report = [&](const std::string &what, const std::string &detail) {
        Divergence divergence;
        divergence.kind = DivergenceKind::Estimate;
        divergence.program = program.name();
        divergence.detail = "  " + what + ": " + detail + "\n";
        return divergence;
    };

    // The synthesized profile must satisfy the same static invariants a
    // measured profile does (prof.*), plus the estimator's own (est.*).
    {
        LintRunOptions lint_run;
        lint_run.layoutRules = false;
        const LintReport lint = lintProgram(estimated, lint_run);
        if (!lint.clean()) {
            std::ostringstream detail;
            for (const Diagnostic &diagnostic : lint.diagnostics) {
                if (diagnostic.severity == Severity::Error)
                    detail << formatDiagnostic(diagnostic) << "; ";
            }
            return report("estimated profile fails static lint",
                          detail.str());
        }
    }

    // Every aligner must produce a verifiable layout from the estimate.
    const std::vector<AlignerKind> kinds =
        options.kinds.empty() ? allAlignerKindsExtended() : options.kinds;
    const std::vector<ObjectiveKind> objectives =
        options.objectives.empty()
            ? std::vector<ObjectiveKind>{options.align.objective}
            : options.objectives;
    const CostModel model(Arch::Fallthrough);
    for (const AlignerKind kind : kinds) {
        for (const ObjectiveKind objective : objectives) {
            AlignOptions align = options.align;
            align.objective = objective;
            align.verify = false;  // failures become findings, not panics
            const ProgramLayout layout =
                alignProgram(estimated, kind, &model, align);
            const VerifyResult proof = verifyLayout(estimated, layout);
            if (!proof.verified()) {
                Divergence divergence = report(
                    "layout aligned on the estimated profile failed "
                    "verification",
                    formatVerifyFailure(proof.failures.front()));
                divergence.aligner = kind;
                divergence.objective = objective;
                return divergence;
            }
        }
    }
    return std::nullopt;
}

std::optional<Divergence>
emitGateCheck(const Program &program, const DiffOptions &options)
{
    const std::vector<AlignerKind> kinds =
        options.kinds.empty() ? allAlignerKindsExtended() : options.kinds;
    const std::vector<ObjectiveKind> objectives =
        options.objectives.empty()
            ? std::vector<ObjectiveKind>{options.align.objective}
            : options.objectives;
    const CostModel model(Arch::Fallthrough);

    for (const AlignerKind kind : kinds) {
        for (const ObjectiveKind objective : objectives) {
            AlignOptions align = options.align;
            align.objective = objective;
            align.verify = false;  // failures become findings, not panics
            const ProgramLayout layout =
                alignProgram(program, kind, &model, align);

            auto report = [&](EncodingModelKind encoding,
                              const std::string &what,
                              const std::string &detail) {
                Divergence divergence;
                divergence.kind = DivergenceKind::Emit;
                divergence.aligner = kind;
                divergence.objective = objective;
                divergence.program = program.name();
                divergence.detail = std::string("  ") +
                                    encodingModelKindName(encoding) +
                                    ": " + what + ": " + detail + "\n";
                return divergence;
            };

            for (const EncodingModelKind encoding :
                 allEncodingModelKinds()) {
                const EncodingModel &em = encodingModel(encoding);
                const RelaxedLayout relaxed =
                    relaxLayout(program, layout, em);
                if (!relaxed.converged)
                    return report(encoding,
                                  "relaxation did not converge",
                                  relaxed.diagnostic);

                const VerifyResult proof =
                    verifyRelaxedLayout(program, layout, relaxed, em);
                if (!proof.verified())
                    return report(
                        encoding, "relaxed layout failed verification",
                        formatVerifyFailure(proof.failures.front()));

                // Fixpoint determinism: relaxation keeps no hidden
                // state, so a second run must reproduce every byte.
                const RelaxedLayout again =
                    relaxLayout(program, layout, em);
                if (again.totalBytes != relaxed.totalBytes ||
                    again.iterations != relaxed.iterations ||
                    again.instrs.size() != relaxed.instrs.size()) {
                    std::ostringstream detail;
                    detail << "bytes " << relaxed.totalBytes << " vs "
                           << again.totalBytes << ", sweeps "
                           << relaxed.iterations << " vs "
                           << again.iterations;
                    return report(encoding, "second relaxation diverged",
                                  detail.str());
                }
                for (std::size_t i = 0; i < relaxed.instrs.size(); ++i) {
                    const RelaxedInstr &a = relaxed.instrs[i];
                    const RelaxedInstr &b = again.instrs[i];
                    if (a.byteAddr != b.byteAddr || a.form != b.form ||
                        a.size != b.size || a.disp != b.disp) {
                        std::ostringstream detail;
                        detail << "slot " << i << " ("
                               << instrClassName(a.cls) << " at word "
                               << a.wordAddr << ") byte " << a.byteAddr
                               << "/" << branchFormName(a.form) << " vs "
                               << b.byteAddr << "/"
                               << branchFormName(b.form);
                        return report(encoding,
                                      "second relaxation diverged",
                                      detail.str());
                    }
                }

                const std::vector<std::uint8_t> object =
                    buildElfObject(program, relaxed, em);
                const ParsedElf parsed = parseElfObject(object);
                if (!parsed.ok)
                    return report(encoding,
                                  "emitted object failed to parse",
                                  parsed.error);
                if (parsed.text != encodeText(relaxed, em)) {
                    std::ostringstream detail;
                    detail << "parsed " << parsed.text.size()
                           << " text byte(s), encoder produced "
                           << relaxed.totalBytes;
                    return report(
                        encoding,
                        "parsed .text differs from the encoder output",
                        detail.str());
                }
            }
        }
    }
    return std::nullopt;
}

std::optional<Divergence>
disasmGateCheck(const Program &program, const DiffOptions &options)
{
    const std::vector<AlignerKind> kinds =
        options.kinds.empty() ? allAlignerKindsExtended() : options.kinds;
    const std::vector<ObjectiveKind> objectives =
        options.objectives.empty()
            ? std::vector<ObjectiveKind>{options.align.objective}
            : options.objectives;
    const CostModel model(Arch::Fallthrough);

    for (const AlignerKind kind : kinds) {
        for (const ObjectiveKind objective : objectives) {
            AlignOptions align = options.align;
            align.objective = objective;
            align.verify = false;  // failures become findings, not panics
            const ProgramLayout layout =
                alignProgram(program, kind, &model, align);

            for (const EncodingModelKind encoding :
                 allEncodingModelKinds()) {
                const EncodingModel &em = encodingModel(encoding);
                const RelaxedLayout relaxed =
                    relaxLayout(program, layout, em);
                // Unconverged relaxations are the emit gate's finding;
                // there is no trustworthy byte layout to validate.
                if (!relaxed.converged)
                    continue;

                const std::vector<std::uint8_t> object =
                    buildElfObject(program, relaxed, em);
                const ObjCheckResult result =
                    checkObject(program, relaxed, object);
                if (result.verified())
                    continue;

                Divergence divergence;
                divergence.kind = DivergenceKind::Disasm;
                divergence.aligner = kind;
                divergence.objective = objective;
                divergence.program = program.name();
                std::ostringstream detail;
                detail << "  " << encodingModelKindName(encoding) << ": "
                       << result.totalFailures() << " of "
                       << result.totalChecks()
                       << " byte-level obligation checks failed: "
                       << formatObjFailure(result.failures.front())
                       << "\n";
                divergence.detail = detail.str();
                return divergence;
            }
        }
    }
    return std::nullopt;
}

FuzzReport
runFuzz(const FuzzOptions &options)
{
    FuzzReport report;

    // The fuzzer sweeps wider than the paper-scoped defaults: every
    // aligner including ExtTsp, under every objective, so a finding
    // records which objective shaped the diverging layout.
    DiffOptions first_only = options.diff;
    first_only.maxDivergences = 1;
    if (first_only.kinds.empty())
        first_only.kinds = allAlignerKindsExtended();
    if (first_only.objectives.empty())
        first_only.objectives = allObjectiveKinds();

    const std::size_t archs = first_only.archs.empty()
                                  ? allArchs().size()
                                  : first_only.archs.size();
    const std::size_t kinds = first_only.kinds.size();
    const std::size_t objectives = first_only.objectives.size();

    // One seed's full check: profile once, lint first (cheap, static),
    // then the differential oracle on the same prepared program.
    auto check = [&](Program program,
                     const WalkOptions &walk) -> std::optional<Divergence> {
        const PreparedProgram prepared =
            prepareProgram(std::move(program), walk);
        if (options.lintGate) {
            std::optional<Divergence> hit =
                lintGateCheck(prepared.program, first_only);
            if (hit.has_value())
                return hit;
        }
        if (options.verifyGate) {
            std::optional<Divergence> hit = verifyGateCheck(
                prepared.program, first_only, options.layoutMutator);
            if (hit.has_value())
                return hit;
        }
        if (options.realignGate) {
            std::optional<Divergence> hit = realignGateCheck(
                prepared.program, prepared.walk, first_only);
            if (hit.has_value())
                return hit;
        }
        if (options.estimateGate) {
            std::optional<Divergence> hit =
                estimateGateCheck(prepared.program, first_only);
            if (hit.has_value())
                return hit;
        }
        if (options.emitGate) {
            std::optional<Divergence> hit =
                emitGateCheck(prepared.program, first_only);
            if (hit.has_value())
                return hit;
        }
        if (options.disasmGate) {
            std::optional<Divergence> hit =
                disasmGateCheck(prepared.program, first_only);
            if (hit.has_value())
                return hit;
        }
        std::vector<Divergence> divergences =
            diffPrepared(prepared, first_only);
        if (divergences.empty())
            return std::nullopt;
        return std::move(divergences.front());
    };

    std::vector<std::optional<Divergence>> found(options.seeds);
    auto run_seed = [&](std::size_t i) {
        const std::uint64_t seed = options.firstSeed + i;
        const WalkOptions walk = walkForSeed(seed, options.walkInstrs);
        found[i] = check(programForSeed(seed), walk);
        if (options.verbose && options.pool == nullptr) {
            std::fprintf(stderr, "fuzz seed %llu: %s\n",
                         static_cast<unsigned long long>(seed),
                         found[i].has_value() ? "DIVERGED" : "ok");
        }
    };
    if (options.pool != nullptr) {
        options.pool->parallelFor(options.seeds, run_seed);
    } else {
        for (std::size_t i = 0; i < options.seeds; ++i)
            run_seed(i);
    }
    report.programsRun = options.seeds;
    report.configsChecked = options.seeds * archs * kinds * objectives;

    for (std::size_t i = 0; i < options.seeds; ++i) {
        if (!found[i].has_value())
            continue;
        const std::uint64_t seed = options.firstSeed + i;
        Repro repro{programForSeed(seed),
                    walkForSeed(seed, options.walkInstrs)};
        auto still_fails = [&](const Repro &candidate) {
            Program copy = candidate.program;
            return check(std::move(copy), candidate.walk).has_value();
        };
        repro = shrinkRepro(std::move(repro), still_fails);

        Program copy = repro.program;
        std::optional<Divergence> final_divergence =
            check(std::move(copy), repro.walk);
        report.divergences.push_back(final_divergence.has_value()
                                         ? std::move(*final_divergence)
                                         : std::move(*found[i]));
        if (report.divergences.back().kind == DivergenceKind::Lint)
            ++report.lintHits;
        if (report.divergences.back().kind == DivergenceKind::Verify)
            ++report.verifyHits;
        if (report.divergences.back().kind == DivergenceKind::Batch)
            ++report.batchHits;
        if (report.divergences.back().kind == DivergenceKind::Realign)
            ++report.realignHits;
        if (report.divergences.back().kind == DivergenceKind::Estimate)
            ++report.estimateHits;
        if (report.divergences.back().kind == DivergenceKind::Emit)
            ++report.emitHits;
        if (report.divergences.back().kind == DivergenceKind::Disasm)
            ++report.disasmHits;

        std::string path;
        if (!options.corpusDir.empty()) {
            path = options.corpusDir + "/shrunk-seed-" +
                   std::to_string(seed) + ".balign";
            saveRepro(repro, path);
        }
        report.reproPaths.push_back(path);
    }
    return report;
}

}  // namespace balign
