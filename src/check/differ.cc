#include "check/differ.h"

#include <cstdio>
#include <sstream>

#include "sim/batch_replay.h"
#include "support/log.h"
#include "trace/walker.h"

namespace balign {

const char *
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
      case DivergenceKind::Structural: return "structural";
      case DivergenceKind::Event: return "event";
      case DivergenceKind::Counters: return "counters";
      case DivergenceKind::Lint: return "lint";
      case DivergenceKind::Verify: return "verify";
      case DivergenceKind::Batch: return "batch";
      case DivergenceKind::Realign: return "realign";
      case DivergenceKind::Estimate: return "estimate";
      case DivergenceKind::Emit: return "emit";
      case DivergenceKind::Disasm: return "disasm";
    }
    return "?";
}

const std::vector<Arch> &
allArchs()
{
    static const std::vector<Arch> archs = {
        Arch::Fallthrough, Arch::BtFnt,     Arch::Likely,
        Arch::PhtDirect,   Arch::PhtCorrelated, Arch::PhtLocal,
        Arch::BtbSmall,    Arch::BtbLarge,
    };
    return archs;
}

const std::vector<AlignerKind> &
allAlignerKinds()
{
    static const std::vector<AlignerKind> kinds = {
        AlignerKind::Original,
        AlignerKind::Greedy,
        AlignerKind::Cost,
        AlignerKind::Try15,
    };
    return kinds;
}

const std::vector<AlignerKind> &
allAlignerKindsExtended()
{
    static const std::vector<AlignerKind> kinds = {
        AlignerKind::Original, AlignerKind::Greedy, AlignerKind::Cost,
        AlignerKind::Try15,    AlignerKind::ExtTsp,
    };
    return kinds;
}

std::string
formatDivergence(const Divergence &divergence)
{
    std::ostringstream out;
    out << "DIVERGENCE [" << divergenceKindName(divergence.kind) << "] "
        << archName(divergence.arch) << "/"
        << alignerKindName(divergence.aligner)
        << " objective=" << objectiveKindName(divergence.objective);
    if (!divergence.program.empty())
        out << " program=" << divergence.program;
    out << "\n" << divergence.detail;
    return out.str();
}

std::string
compareSamples(const std::vector<BranchSample> &oracle,
               const std::vector<BranchSample> &production,
               std::size_t context)
{
    const std::size_t common = std::min(oracle.size(), production.size());
    std::size_t first = common;
    for (std::size_t i = 0; i < common; ++i) {
        if (!(oracle[i] == production[i])) {
            first = i;
            break;
        }
    }
    if (first == common && oracle.size() == production.size())
        return {};

    std::ostringstream out;
    if (first == common) {
        out << "sample streams differ in length: oracle has "
            << oracle.size() << " events, production has "
            << production.size() << " (first " << common << " agree)\n";
    } else {
        out << "first divergence at branch event " << first << " of "
            << common << ":\n";
        out << "  oracle:     " << formatSample(oracle[first]) << "\n";
        out << "  production: " << formatSample(production[first]) << "\n";
    }
    const std::size_t from = first > context ? first - context : 0;
    for (std::size_t i = from; i < first; ++i)
        out << "  [" << i << "] " << formatSample(oracle[i]) << "\n";
    if (first < common) {
        out << "  [" << first << "] <- diverges here";
    } else if (common > 0) {
        out << "  [" << (common - 1) << "] last common event";
    }
    return out.str();
}

namespace {

/**
 * Taps the production BranchEventAdapter -> ArchEvaluator chain: forwards
 * every callback unchanged while recording each branch event together
 * with the penalty the evaluator attributed to it (observed as counter
 * deltas around the call).
 */
class ProductionTap : public BranchEventHandler
{
  public:
    explicit ProductionTap(ArchEvaluator &evaluator) : evaluator_(evaluator)
    {
    }

    void
    onInstrs(std::uint64_t count) override
    {
        evaluator_.onInstrs(count);
    }

    void
    onFetchRange(Addr addr, std::uint32_t count) override
    {
        evaluator_.onFetchRange(addr, count);
    }

    void
    onBranch(const BranchEvent &event) override
    {
        const EvalResult &result = evaluator_.result();
        const std::uint64_t instrs_before = result.instrs;
        const std::uint64_t mf_before = result.misfetches;
        const std::uint64_t mp_before = result.mispredicts;
        evaluator_.onBranch(event);
        BranchSample sample;
        sample.type = event.type;
        sample.site = event.site;
        sample.target = event.target;
        sample.taken = event.taken;
        sample.proc = event.proc;
        sample.block = event.block;
        sample.misfetches =
            static_cast<std::uint8_t>(result.misfetches - mf_before);
        sample.mispredicts =
            static_cast<std::uint8_t>(result.mispredicts - mp_before);
        sample.instrsBefore = instrs_before;
        samples_.push_back(sample);
    }

    const std::vector<BranchSample> &samples() const { return samples_; }

  private:
    ArchEvaluator &evaluator_;
    std::vector<BranchSample> samples_;
};

void
feedEvents(const PreparedProgram &prepared, EventSink &sink)
{
    if (prepared.trace != nullptr)
        prepared.trace->replay(prepared.program, sink);
    else
        walk(prepared.program, prepared.walk, sink);
}

/// Appends "name: oracle=X production=Y" for each mismatching counter.
void
compareCounter(std::ostringstream &out, const char *name,
               std::uint64_t oracle, std::uint64_t production)
{
    if (oracle == production)
        return;
    out << "  " << name << ": oracle=" << oracle
        << " production=" << production << "\n";
}

std::string
compareResults(const EvalResult &oracle, const EvalResult &production)
{
    std::ostringstream out;
    compareCounter(out, "instrs", oracle.instrs, production.instrs);
    compareCounter(out, "misfetches", oracle.misfetches,
                   production.misfetches);
    compareCounter(out, "mispredicts", oracle.mispredicts,
                   production.mispredicts);
    compareCounter(out, "condExec", oracle.condExec, production.condExec);
    compareCounter(out, "condTaken", oracle.condTaken,
                   production.condTaken);
    compareCounter(out, "condMispredicts", oracle.condMispredicts,
                   production.condMispredicts);
    compareCounter(out, "uncondExec", oracle.uncondExec,
                   production.uncondExec);
    compareCounter(out, "callExec", oracle.callExec, production.callExec);
    compareCounter(out, "returnExec", oracle.returnExec,
                   production.returnExec);
    compareCounter(out, "returnMispredicts", oracle.returnMispredicts,
                   production.returnMispredicts);
    compareCounter(out, "indirectExec", oracle.indirectExec,
                   production.indirectExec);
    compareCounter(out, "btbLookups", oracle.btbLookups,
                   production.btbLookups);
    compareCounter(out, "btbHits", oracle.btbHits, production.btbHits);
    if (oracle.bep() != production.bep()) {
        out << "  bep: oracle=" << oracle.bep()
            << " production=" << production.bep() << "\n";
    }
    return out.str();
}

}  // namespace

std::optional<Divergence>
diffLayout(const PreparedProgram &prepared, const ProgramLayout &layout,
           Arch arch, AlignerKind kind)
{
    const Program &program = prepared.program;
    Divergence divergence;
    divergence.arch = arch;
    divergence.aligner = kind;
    divergence.program = program.name();

    // 1. The materializer's bookkeeping vs. the oracle's derivation.
    const std::vector<std::string> structural =
        crossCheckLayout(program, layout);
    if (!structural.empty()) {
        divergence.kind = DivergenceKind::Structural;
        std::ostringstream out;
        for (const std::string &message : structural)
            out << "  " << message << "\n";
        divergence.detail = out.str();
        return divergence;
    }

    // 2. One shared event stream, both consumers.
    const EvalParams params = EvalParams::forArch(arch);
    OracleEvaluator oracle(program, layout, params);
    ArchEvaluator production(program, layout, params);
    ProductionTap tap(production);
    BranchEventAdapter adapter(program, layout, tap);
    MultiSink fanout;
    fanout.add(&adapter);
    fanout.add(&oracle);
    feedEvents(prepared, fanout);

    const std::string events = compareSamples(oracle.samples(),
                                              tap.samples());
    if (!events.empty()) {
        divergence.kind = DivergenceKind::Event;
        divergence.detail = events;
        return divergence;
    }

    // 3. Accumulated totals.
    const std::string counters =
        compareResults(oracle.result(), production.result());
    if (!counters.empty()) {
        divergence.kind = DivergenceKind::Counters;
        divergence.detail = counters;
        return divergence;
    }

    // 4. The batched replay engine vs. the (just-validated) per-cell
    // evaluator: same layout, one single-lane batched sweep. In the
    // comparison below "oracle" is the per-cell ArchEvaluator and
    // "production" is the batched lane.
    if (prepared.batch != nullptr) {
        const std::vector<EvalResult> lanes =
            runBatchReplay(program, layout, *prepared.batch, {params});
        const std::string batch =
            compareResults(production.result(), lanes[0]);
        if (!batch.empty()) {
            divergence.kind = DivergenceKind::Batch;
            divergence.detail =
                "batched engine vs per-cell evaluator "
                "(oracle=per-cell, production=batched):\n" + batch;
            return divergence;
        }
    }
    return std::nullopt;
}

std::vector<Divergence>
diffPrepared(const PreparedProgram &prepared, const DiffOptions &options)
{
    const std::vector<Arch> &archs =
        options.archs.empty() ? allArchs() : options.archs;
    const std::vector<AlignerKind> &kinds =
        options.kinds.empty() ? allAlignerKinds() : options.kinds;
    const std::vector<ObjectiveKind> objectives =
        options.objectives.empty()
            ? std::vector<ObjectiveKind>{options.align.objective}
            : options.objectives;

    std::vector<Divergence> divergences;
    for (const ObjectiveKind objective : objectives) {
        for (const AlignerKind kind : kinds) {
            for (const Arch arch : archs) {
                // Mirror runConfigs: per-architecture cost model, and the
                // BT/FNT chain-ordering override that makes even Greedy
                // layouts architecture-specific under BT/FNT.
                const CostModel model(arch);
                AlignOptions arch_options = options.align;
                arch_options.objective = objective;
                // The differ wants layout bugs surfaced as divergences it
                // can shrink, not as verifier panics.
                arch_options.verify = false;
                if (arch == Arch::BtFnt)
                    arch_options.chainOrder =
                        ChainOrderPolicy::BtFntPrecedence;
                const ProgramLayout layout = alignProgram(
                    prepared.program, kind, &model, arch_options);
                std::optional<Divergence> divergence =
                    diffLayout(prepared, layout, arch, kind);
                if (divergence.has_value()) {
                    divergence->objective = objective;
                    divergences.push_back(std::move(*divergence));
                    if (options.maxDivergences != 0 &&
                        divergences.size() >= options.maxDivergences)
                        return divergences;
                }
            }
        }
    }
    return divergences;
}

std::vector<Divergence>
diffProgram(Program program, const WalkOptions &walk,
            const DiffOptions &options)
{
    return diffPrepared(prepareProgram(std::move(program), walk), options);
}

}  // namespace balign
