#include "check/oracle.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <deque>

#include "support/log.h"

namespace balign {

namespace {

std::string
strprintf(const char *fmt, ...)
{
    char buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

const char *
sampleTypeName(BranchEvent::Type type)
{
    switch (type) {
      case BranchEvent::Type::Cond: return "cond";
      case BranchEvent::Type::Uncond: return "uncond";
      case BranchEvent::Type::Indirect: return "indirect";
      case BranchEvent::Type::Call: return "call";
      case BranchEvent::Type::Return: return "return";
    }
    return "?";
}

/// The edge kind the realized branch targets, written out longhand.
EdgeKind
naiveBranchTargetKind(CondRealization realization)
{
    if (realization == CondRealization::FallAdjacent)
        return EdgeKind::Taken;
    if (realization == CondRealization::NeitherJumpToFall)
        return EdgeKind::Taken;
    // Sense inverted: the branch instruction targets the CFG fall-through
    // successor.
    return EdgeKind::FallThrough;
}

/// Realized branch direction + whether the inserted jump runs, for a
/// traversal of the given CFG edge kind.
struct NaiveOutcome
{
    bool branchTaken;
    bool jumpExecuted;
};

NaiveOutcome
naiveCondOutcome(CondRealization realization, EdgeKind kind)
{
    const bool via_taken = kind == EdgeKind::Taken;
    switch (realization) {
      case CondRealization::FallAdjacent:
        // Branch keeps its sense: taken edge -> branch taken.
        return {via_taken, false};
      case CondRealization::TakenAdjacent:
        // Sense inverted: the CFG taken edge is now the fall-through path.
        return {!via_taken, false};
      case CondRealization::NeitherJumpToFall:
        // Branch targets the taken successor; reaching the fall successor
        // means not-taken, then the inserted jump.
        if (via_taken)
            return {true, false};
        return {false, true};
      case CondRealization::NeitherJumpToTaken:
        // Inverted: branch targets the fall successor; reaching the taken
        // successor means not-taken, then the inserted jump.
        if (via_taken)
            return {false, true};
        return {true, false};
    }
    panic("naiveCondOutcome: bad realization");
}

}  // namespace

std::string
formatSample(const BranchSample &sample)
{
    return strprintf("%-8s site=%llu target=%lld taken=%d proc=%u block=%u "
                     "mf=%u mp=%u instrs-before=%llu",
                     sampleTypeName(sample.type),
                     static_cast<unsigned long long>(sample.site),
                     sample.target == kNoAddr
                         ? -1ll
                         : static_cast<long long>(sample.target),
                     sample.taken ? 1 : 0, sample.proc, sample.block,
                     sample.misfetches, sample.mispredicts,
                     static_cast<unsigned long long>(sample.instrsBefore));
}

OracleLayout
deriveOracleLayout(const Program &program, const ProgramLayout &layout)
{
    OracleLayout derived;
    derived.procs.resize(program.numProcs());
    auto oops = [&](ProcId p, const char *fmt, auto... args) {
        derived.structuralErrors.push_back(
            strprintf("proc %u: ", p) + strprintf(fmt, args...));
    };

    if (layout.procs.size() != program.numProcs()) {
        derived.structuralErrors.push_back(strprintf(
            "layout has %zu procedures, program has %zu",
            layout.procs.size(), program.numProcs()));
        return derived;
    }

    Addr base = 0;
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const Procedure &proc = program.proc(p);
        const ProcLayout &pl = layout.procs[p];
        OracleLayout::Proc &out = derived.procs[p];
        const std::size_t n = proc.numBlocks();

        out.base = base;
        out.addr.assign(n, kNoAddr);
        out.branchAddr.assign(n, kNoAddr);
        out.jumpAddr.assign(n, kNoAddr);
        out.baseInstrs.assign(n, 0);
        out.finalInstrs.assign(n, 0);
        out.jumpInserted.assign(n, false);
        out.jumpRemoved.assign(n, false);

        if (pl.order.size() != n) {
            oops(p, "order lists %zu of %zu blocks", pl.order.size(), n);
            continue;
        }
        if (n > 0 && pl.order.front() != proc.entry()) {
            oops(p, "order starts at block %u, entry is %u",
                 pl.order.front(), proc.entry());
        }
        std::vector<unsigned> appearances(n, 0);
        for (BlockId id : pl.order) {
            if (id >= n) {
                oops(p, "order names unknown block %u", id);
                continue;
            }
            ++appearances[id];
        }
        for (BlockId id = 0; id < n; ++id) {
            if (appearances[id] != 1)
                oops(p, "block %u appears %u times in the order", id,
                     appearances[id]);
        }

        // Walk the order, deciding one block at a time what the binary
        // holds: which jumps exist, how big each block is, and (second
        // loop) where everything lands.
        for (std::size_t i = 0; i < pl.order.size(); ++i) {
            const BlockId id = pl.order[i];
            if (id >= n)
                continue;
            const BasicBlock &block = proc.block(id);
            const BlockId next = i + 1 < pl.order.size()
                                     ? pl.order[i + 1]
                                     : kNoBlock;

            bool inserted = false;
            bool removed = false;
            switch (block.term) {
              case Terminator::CondBranch: {
                const std::int64_t taken_index = proc.takenEdge(id);
                const std::int64_t fall_index = proc.fallThroughEdge(id);
                if (taken_index < 0 || fall_index < 0) {
                    oops(p, "cond block %u lacks taken/fall edges", id);
                    break;
                }
                const BlockId taken_dst =
                    proc.edge(static_cast<std::uint32_t>(taken_index)).dst;
                const BlockId fall_dst =
                    proc.edge(static_cast<std::uint32_t>(fall_index)).dst;
                const CondRealization real = pl.blocks[id].cond;
                // The realization's fall-through path must actually be the
                // next block of the layout.
                if (real == CondRealization::FallAdjacent &&
                    fall_dst != next) {
                    oops(p,
                         "block %u realized FallAdjacent but fall "
                         "successor %u is not adjacent (next is %d)",
                         id, fall_dst, static_cast<int>(next));
                }
                if (real == CondRealization::TakenAdjacent &&
                    taken_dst != next) {
                    oops(p,
                         "block %u realized TakenAdjacent but taken "
                         "successor %u is not adjacent (next is %d)",
                         id, taken_dst, static_cast<int>(next));
                }
                inserted = real == CondRealization::NeitherJumpToFall ||
                           real == CondRealization::NeitherJumpToTaken;
                break;
              }
              case Terminator::UncondBranch: {
                const std::int64_t taken_index = proc.takenEdge(id);
                if (taken_index < 0) {
                    oops(p, "uncond block %u lacks a taken edge", id);
                    break;
                }
                const BlockId dst =
                    proc.edge(static_cast<std::uint32_t>(taken_index)).dst;
                removed = dst == next;
                break;
              }
              case Terminator::FallThrough: {
                const std::int64_t fall_index = proc.fallThroughEdge(id);
                if (fall_index >= 0) {
                    const BlockId dst =
                        proc.edge(static_cast<std::uint32_t>(fall_index))
                            .dst;
                    inserted = dst != next;
                }
                break;
              }
              case Terminator::IndirectJump:
              case Terminator::Return:
                break;
            }

            out.jumpInserted[id] = inserted;
            out.jumpRemoved[id] = removed;
            out.baseInstrs[id] = block.numInstrs - (removed ? 1u : 0u);
            out.finalInstrs[id] = out.baseInstrs[id] + (inserted ? 1u : 0u);
        }

        Addr addr = base;
        for (BlockId id : pl.order) {
            if (id >= n)
                continue;
            const BasicBlock &block = proc.block(id);
            out.addr[id] = addr;
            if (block.hasBranchInstr() && !out.jumpRemoved[id])
                out.branchAddr[id] = addr + block.numInstrs - 1;
            if (out.jumpInserted[id])
                out.jumpAddr[id] = addr + block.numInstrs;
            addr += out.finalInstrs[id];
        }
        out.totalInstrs = addr - base;
        if (n > 0 && pl.order.front() < n)
            out.entryAddr = out.addr[pl.order.front()];
        base = addr;
    }
    return derived;
}

std::vector<std::string>
crossCheckLayout(const Program &program, const ProgramLayout &layout)
{
    const OracleLayout derived = deriveOracleLayout(program, layout);
    std::vector<std::string> mismatches = derived.structuralErrors;
    if (layout.procs.size() != program.numProcs())
        return mismatches;

    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const ProcLayout &pl = layout.procs[p];
        const OracleLayout::Proc &out = derived.procs[p];
        auto bad = [&](BlockId b, const char *field, std::uint64_t expect,
                       std::uint64_t got) {
            mismatches.push_back(strprintf(
                "proc %u block %u: %s is %llu, independent derivation "
                "says %llu",
                p, b, field, static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(expect)));
        };
        if (pl.base != out.base) {
            mismatches.push_back(strprintf(
                "proc %u: base is %llu, independent derivation says %llu",
                p, static_cast<unsigned long long>(pl.base),
                static_cast<unsigned long long>(out.base)));
        }
        if (pl.totalInstrs != out.totalInstrs) {
            mismatches.push_back(strprintf(
                "proc %u: totalInstrs is %llu, independent derivation "
                "says %llu",
                p, static_cast<unsigned long long>(pl.totalInstrs),
                static_cast<unsigned long long>(out.totalInstrs)));
        }
        const std::size_t n = std::min(pl.blocks.size(), out.addr.size());
        for (BlockId b = 0; b < n; ++b) {
            const BlockLayout &bl = pl.blocks[b];
            if (bl.addr != out.addr[b])
                bad(b, "addr", out.addr[b], bl.addr);
            if (bl.baseInstrs != out.baseInstrs[b])
                bad(b, "baseInstrs", out.baseInstrs[b], bl.baseInstrs);
            if (bl.finalInstrs != out.finalInstrs[b])
                bad(b, "finalInstrs", out.finalInstrs[b], bl.finalInstrs);
            if (bl.branchAddr != out.branchAddr[b])
                bad(b, "branchAddr", out.branchAddr[b], bl.branchAddr);
            if (bl.jumpAddr != out.jumpAddr[b])
                bad(b, "jumpAddr", out.jumpAddr[b], bl.jumpAddr);
            if (bl.jumpInserted != out.jumpInserted[b])
                bad(b, "jumpInserted", out.jumpInserted[b], bl.jumpInserted);
            if (bl.jumpRemoved != out.jumpRemoved[b])
                bad(b, "jumpRemoved", out.jumpRemoved[b], bl.jumpRemoved);
        }
    }
    return mismatches;
}

// ---------------------------------------------------------------------------
// Naive predictor models. Plain containers, modulo indexing, linear scans.

namespace {

/// An n-bit saturating counter as three lines of arithmetic.
struct NaiveCounter
{
    unsigned value = 0;
    unsigned top = 3;

    explicit NaiveCounter(unsigned bits = 2)
        : value(((1u << bits) - 1) / 2), top((1u << bits) - 1)
    {
    }

    bool taken() const { return value > top / 2; }

    void
    train(bool was_taken)
    {
        if (was_taken && value < top)
            ++value;
        if (!was_taken && value > 0)
            --value;
    }
};

struct NaivePht
{
    std::vector<NaiveCounter> counters;

    NaivePht(std::size_t entries, unsigned bits)
        : counters(entries, NaiveCounter(bits))
    {
    }

    bool predict(Addr site) const
    {
        return counters[site % counters.size()].taken();
    }

    void train(Addr site, bool taken)
    {
        counters[site % counters.size()].train(taken);
    }
};

struct NaiveGshare
{
    std::vector<NaiveCounter> counters;
    std::uint64_t history = 0;
    std::uint64_t historySize;

    NaiveGshare(std::size_t entries, unsigned history_bits, unsigned bits)
        : counters(entries, NaiveCounter(bits)),
          historySize(std::uint64_t{1} << history_bits)
    {
    }

    bool predict(Addr site) const
    {
        return counters[(site ^ history) % counters.size()].taken();
    }

    void
    train(Addr site, bool taken)
    {
        counters[(site ^ history) % counters.size()].train(taken);
        history = (history * 2 + (taken ? 1 : 0)) % historySize;
    }
};

struct NaiveLocal
{
    std::vector<std::uint64_t> histories;
    std::vector<NaiveCounter> patterns;
    std::uint64_t historySize;

    NaiveLocal(std::size_t history_entries, unsigned history_bits,
               unsigned bits)
        : histories(history_entries, 0),
          patterns(std::size_t{1} << history_bits, NaiveCounter(bits)),
          historySize(std::uint64_t{1} << history_bits)
    {
    }

    bool
    predict(Addr site) const
    {
        return patterns[histories[site % histories.size()]].taken();
    }

    void
    train(Addr site, bool taken)
    {
        std::uint64_t &history = histories[site % histories.size()];
        patterns[history].train(taken);
        history = (history * 2 + (taken ? 1 : 0)) % historySize;
    }
};

struct NaiveBtb
{
    struct Entry
    {
        bool valid = false;
        Addr site = 0;
        Addr target = 0;
        NaiveCounter counter;
        std::uint64_t stamp = 0;
    };

    std::vector<std::vector<Entry>> sets;
    unsigned counterBits;
    std::uint64_t clock = 0;

    NaiveBtb(std::size_t entries, std::size_t ways, unsigned bits)
        : sets(entries / ways, std::vector<Entry>(ways)), counterBits(bits)
    {
    }

    Entry *
    find(Addr site)
    {
        std::vector<Entry> &set = sets[site % sets.size()];
        for (Entry &entry : set) {
            if (entry.valid && entry.site == site)
                return &entry;
        }
        return nullptr;
    }

    void
    train(Addr site, bool taken, Addr target)
    {
        ++clock;
        if (Entry *entry = find(site)) {
            entry->counter.train(taken);
            if (taken)
                entry->target = target;
            entry->stamp = clock;
            return;
        }
        if (!taken)
            return;  // not-taken branches are never inserted
        std::vector<Entry> &set = sets[site % sets.size()];
        Entry *victim = &set[0];
        for (Entry &entry : set) {
            if (!entry.valid) {
                victim = &entry;
                break;
            }
            if (entry.stamp < victim->stamp)
                victim = &entry;
        }
        victim->valid = true;
        victim->site = site;
        victim->target = target;
        victim->counter = NaiveCounter(counterBits);
        victim->counter.value = victim->counter.top / 2 + 1;  // weakly taken
        victim->stamp = clock;
    }
};

/// Bounded LIFO return stack: keeps the newest N return addresses.
struct NaiveRas
{
    std::deque<Addr> stack;
    std::size_t cap;

    explicit NaiveRas(std::size_t entries) : cap(entries) {}

    void
    push(Addr return_addr)
    {
        if (stack.size() == cap)
            stack.pop_front();
        stack.push_back(return_addr);
    }

    Addr
    pop()
    {
        if (stack.empty())
            return kNoAddr;
        const Addr addr = stack.back();
        stack.pop_back();
        return addr;
    }
};

}  // namespace

struct OracleEvaluator::Predictors
{
    std::unique_ptr<NaivePht> pht;
    std::unique_ptr<NaiveGshare> gshare;
    std::unique_ptr<NaiveLocal> local;
    std::unique_ptr<NaiveBtb> btb;
    NaiveRas ras;
    /// Profile-majority likely bit per (proc offset + block).
    std::vector<std::size_t> likelyOffsets;
    std::vector<bool> likelyBits;

    explicit Predictors(std::size_t ras_entries) : ras(ras_entries) {}
};

OracleEvaluator::OracleEvaluator(const Program &program,
                                 const ProgramLayout &layout,
                                 const EvalParams &params)
    : program_(program),
      layout_(layout),
      params_(params),
      derived_(deriveOracleLayout(program, layout)),
      pred_(std::make_unique<Predictors>(params.rasEntries))
{
    result_.penalties = params.penalties;
    switch (params.arch) {
      case Arch::PhtDirect:
        pred_->pht = std::make_unique<NaivePht>(params.phtEntries,
                                                params.counterBits);
        break;
      case Arch::PhtCorrelated:
        pred_->gshare = std::make_unique<NaiveGshare>(
            params.phtEntries, params.historyBits, params.counterBits);
        break;
      case Arch::PhtLocal:
        pred_->local = std::make_unique<NaiveLocal>(
            params.phtEntries, params.historyBits, params.counterBits);
        break;
      case Arch::BtbSmall:
      case Arch::BtbLarge:
        pred_->btb = std::make_unique<NaiveBtb>(
            params.btbEntries, params.btbWays, params.counterBits);
        break;
      case Arch::Likely: {
        // The likely bit is the majority realized direction of each
        // conditional branch under this layout's senses.
        pred_->likelyOffsets.resize(program.numProcs());
        std::size_t total = 0;
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            pred_->likelyOffsets[p] = total;
            total += program.proc(p).numBlocks();
        }
        pred_->likelyBits.assign(total, false);
        for (ProcId p = 0; p < program.numProcs(); ++p) {
            const Procedure &proc = program.proc(p);
            for (const BasicBlock &block : proc.blocks()) {
                if (block.term != Terminator::CondBranch)
                    continue;
                const std::int64_t ti = proc.takenEdge(block.id);
                const std::int64_t fi = proc.fallThroughEdge(block.id);
                if (ti < 0 || fi < 0)
                    continue;
                const Weight w_taken =
                    proc.edge(static_cast<std::uint32_t>(ti)).weight;
                const Weight w_fall =
                    proc.edge(static_cast<std::uint32_t>(fi)).weight;
                const EdgeKind branch_kind = naiveBranchTargetKind(
                    layout.procs[p].blocks[block.id].cond);
                Weight w_branch = w_taken;
                Weight w_through = w_fall;
                if (branch_kind == EdgeKind::FallThrough) {
                    w_branch = w_fall;
                    w_through = w_taken;
                }
                pred_->likelyBits[pred_->likelyOffsets[p] + block.id] =
                    w_branch > w_through;
            }
        }
        break;
      }
      case Arch::Fallthrough:
      case Arch::BtFnt:
        break;
    }
}

OracleEvaluator::~OracleEvaluator() = default;

void
OracleEvaluator::onBlock(ProcId proc, BlockId block)
{
    instrs_ += derived_.procs[proc].baseInstrs[block];
    result_.instrs = instrs_;
    curProc_ = proc;
    curBlock_ = block;
}

void
OracleEvaluator::onCall(ProcId proc, BlockId block, const CallSite &site)
{
    const Addr call_addr = derived_.procs[proc].addr[block] + site.offset;
    const Addr target = derived_.procs[site.callee].entryAddr;
    branchEvent(BranchEvent::Type::Call, call_addr, target, true, proc,
                block);
}

void
OracleEvaluator::resolvePendingReturn(Addr actual_target)
{
    if (curProc_ == kNoProc)
        return;
    const BasicBlock &block = program_.proc(curProc_).block(curBlock_);
    if (block.term != Terminator::Return)
        return;  // dead-end unwind: no return instruction executed
    const Addr site = derived_.procs[curProc_].branchAddr[curBlock_];
    branchEvent(BranchEvent::Type::Return, site, actual_target, true,
                curProc_, curBlock_);
}

void
OracleEvaluator::onReturn(ProcId proc, BlockId block, const CallSite &site)
{
    const Addr resume =
        derived_.procs[proc].addr[block] + site.offset + 1;
    resolvePendingReturn(resume);
    curProc_ = proc;
    curBlock_ = block;
}

void
OracleEvaluator::onExit()
{
    resolvePendingReturn(kNoAddr);
    curProc_ = kNoProc;
    curBlock_ = kNoBlock;
}

void
OracleEvaluator::onEdge(ProcId proc, std::uint32_t edge_index)
{
    const Procedure &procedure = program_.proc(proc);
    const Edge &edge = procedure.edge(edge_index);
    const BasicBlock &block = procedure.block(edge.src);
    const OracleLayout::Proc &pl = derived_.procs[proc];

    switch (block.term) {
      case Terminator::CondBranch: {
        const CondRealization real = layout_.procs[proc].blocks[edge.src].cond;
        const NaiveOutcome outcome = naiveCondOutcome(real, edge.kind);
        const EdgeKind target_kind = naiveBranchTargetKind(real);
        const std::int64_t target_index =
            target_kind == EdgeKind::Taken
                ? procedure.takenEdge(edge.src)
                : procedure.fallThroughEdge(edge.src);
        const BlockId target_block =
            procedure.edge(static_cast<std::uint32_t>(target_index)).dst;
        branchEvent(BranchEvent::Type::Cond, pl.branchAddr[edge.src],
                    pl.addr[target_block], outcome.branchTaken, proc,
                    edge.src);
        if (outcome.jumpExecuted) {
            instrs_ += 1;
            result_.instrs = instrs_;
            branchEvent(BranchEvent::Type::Uncond, pl.jumpAddr[edge.src],
                        pl.addr[edge.dst], true, proc, edge.src);
        }
        break;
      }
      case Terminator::UncondBranch:
        if (!pl.jumpRemoved[edge.src]) {
            branchEvent(BranchEvent::Type::Uncond, pl.branchAddr[edge.src],
                        pl.addr[edge.dst], true, proc, edge.src);
        }
        break;
      case Terminator::FallThrough:
        if (pl.jumpInserted[edge.src]) {
            instrs_ += 1;
            result_.instrs = instrs_;
            branchEvent(BranchEvent::Type::Uncond, pl.jumpAddr[edge.src],
                        pl.addr[edge.dst], true, proc, edge.src);
        }
        break;
      case Terminator::IndirectJump:
        branchEvent(BranchEvent::Type::Indirect, pl.branchAddr[edge.src],
                    pl.addr[edge.dst], true, proc, edge.src);
        break;
      case Terminator::Return:
        derived_.structuralErrors.push_back(
            strprintf("proc %u: edge %u leaves a return block", proc,
                      edge_index));
        break;
    }
}

void
OracleEvaluator::branchEvent(BranchEvent::Type type, Addr site, Addr target,
                             bool taken, ProcId proc, BlockId block)
{
    BranchSample sample;
    sample.type = type;
    sample.site = site;
    sample.target = target;
    sample.taken = taken;
    sample.proc = proc;
    sample.block = block;
    sample.instrsBefore = instrs_;

    unsigned misfetch = 0;
    unsigned mispredict = 0;
    NaiveBtb *btb = pred_->btb.get();

    switch (type) {
      case BranchEvent::Type::Cond: {
        ++result_.condExec;
        if (taken)
            ++result_.condTaken;
        if (btb != nullptr) {
            ++result_.btbLookups;
            NaiveBtb::Entry *hit = btb->find(site);
            if (hit != nullptr)
                ++result_.btbHits;
            const bool predicted =
                hit != nullptr && hit->counter.taken();
            if (predicted != taken) {
                mispredict = 1;
            } else if (taken && hit->target != target) {
                mispredict = 1;
            }
            // A correctly predicted taken branch whose stored target is
            // right redirected fetch in time: no bubble at all.
            btb->train(site, taken, target);
            result_.condMispredicts += mispredict;
            break;
        }
        bool predicted = false;
        switch (params_.arch) {
          case Arch::Fallthrough:
            predicted = false;
            break;
          case Arch::BtFnt:
            predicted = target <= site;
            break;
          case Arch::Likely:
            predicted =
                pred_->likelyBits[pred_->likelyOffsets[proc] + block];
            break;
          case Arch::PhtDirect:
            predicted = pred_->pht->predict(site);
            pred_->pht->train(site, taken);
            break;
          case Arch::PhtCorrelated:
            predicted = pred_->gshare->predict(site);
            pred_->gshare->train(site, taken);
            break;
          case Arch::PhtLocal:
            predicted = pred_->local->predict(site);
            pred_->local->train(site, taken);
            break;
          default:
            panic("oracle: unexpected arch for cond branch");
        }
        if (predicted != taken)
            mispredict = 1;
        else if (taken)
            misfetch = 1;  // right direction; target known only at decode
        result_.condMispredicts += mispredict;
        break;
      }
      case BranchEvent::Type::Uncond:
      case BranchEvent::Type::Call: {
        if (type == BranchEvent::Type::Call) {
            ++result_.callExec;
            pred_->ras.push(site + 1);
        } else {
            ++result_.uncondExec;
        }
        if (btb != nullptr) {
            ++result_.btbLookups;
            NaiveBtb::Entry *hit = btb->find(site);
            if (hit != nullptr) {
                ++result_.btbHits;
                if (!(hit->counter.taken() && hit->target == target))
                    misfetch = 1;  // stale entry: redirect after decode
            } else {
                misfetch = 1;
            }
            btb->train(site, true, target);
        } else {
            misfetch = 1;  // always-taken break, target known at decode
        }
        break;
      }
      case BranchEvent::Type::Indirect: {
        ++result_.indirectExec;
        if (btb != nullptr) {
            ++result_.btbLookups;
            NaiveBtb::Entry *hit = btb->find(site);
            if (hit != nullptr) {
                ++result_.btbHits;
                if (!(hit->counter.taken() && hit->target == target))
                    mispredict = 1;
            } else {
                mispredict = 1;
            }
            btb->train(site, true, target);
        } else {
            mispredict = 1;  // computed target: unpredictable without a BTB
        }
        break;
      }
      case BranchEvent::Type::Return: {
        ++result_.returnExec;
        const Addr predicted = pred_->ras.pop();
        if (target == kNoAddr)
            break;  // program exit: no resume address, no penalty
        const bool ras_correct = predicted == target;
        if (btb != nullptr) {
            ++result_.btbLookups;
            NaiveBtb::Entry *hit = btb->find(site);
            if (hit != nullptr) {
                ++result_.btbHits;
                // The hit identifies the return at fetch; a correct stack
                // then costs nothing.
                if (!ras_correct)
                    mispredict = 1;
            } else {
                if (ras_correct)
                    misfetch = 1;
                else
                    mispredict = 1;
            }
            btb->train(site, true, target);
        } else {
            if (ras_correct)
                misfetch = 1;
            else
                mispredict = 1;
        }
        result_.returnMispredicts += mispredict;
        break;
      }
    }

    result_.misfetches += misfetch;
    result_.mispredicts += mispredict;
    sample.misfetches = static_cast<std::uint8_t>(misfetch);
    sample.mispredicts = static_cast<std::uint8_t>(mispredict);
    samples_.push_back(sample);
}

}  // namespace balign
