/**
 * @file
 * Reference oracle: a deliberately naive, obviously-correct re-derivation
 * of everything the production evaluation pipeline computes.
 *
 * The production path is optimized for speed (record-once traces, shared
 * adapters, masked table indexing, pooled replays); this oracle is
 * optimized for being checkable by eye. Given the same (program, layout,
 * architecture) triple it independently:
 *
 *  - re-derives every block address, block size, branch address and
 *    inserted-jump address from nothing but the layout's block order and
 *    conditional realizations (the materializer's address bookkeeping is
 *    NOT trusted — crossCheckLayout() compares the two derivations);
 *  - re-maps CFG-level walk events to concrete branch events with its own
 *    straight-line logic (sense inversion, inserted/deleted jumps,
 *    pending-return resolution);
 *  - re-predicts every branch with straight-line predictor models (plain
 *    vectors, modulo indexing, linear scans) written independently of
 *    src/bpred/;
 *  - re-accumulates instruction counts, misfetches, mispredicts, BEP and
 *    relative CPI.
 *
 * The differential harness (check/differ.h) runs this oracle in lockstep
 * with the production evaluator and reports the first diverging branch
 * event. Keep this file boring: no caching, no bit tricks, no sharing —
 * every optimization added here weakens the oracle.
 */

#ifndef BALIGN_CHECK_ORACLE_H
#define BALIGN_CHECK_ORACLE_H

#include <memory>
#include <string>
#include <vector>

#include "bpred/evaluator.h"
#include "cfg/program.h"
#include "layout/layout_result.h"
#include "trace/branch_events.h"
#include "trace/event.h"

namespace balign {

/**
 * One resolved, classified branch execution, as derived by either side of
 * the differential harness. Two streams agree only if every field of
 * every sample matches.
 */
struct BranchSample
{
    BranchEvent::Type type = BranchEvent::Type::Cond;
    Addr site = kNoAddr;
    Addr target = kNoAddr;
    bool taken = false;
    ProcId proc = kNoProc;
    BlockId block = kNoBlock;
    /// Penalty attributed to this branch (0 or 1 each).
    std::uint8_t misfetches = 0;
    std::uint8_t mispredicts = 0;
    /// Instructions executed before this branch (the branch's own block
    /// already counted; an inserted jump counts itself first).
    std::uint64_t instrsBefore = 0;

    bool operator==(const BranchSample &other) const = default;
};

/// Human-readable one-line rendering of a sample.
std::string formatSample(const BranchSample &sample);

/**
 * Independently derived address bookkeeping for one layout. Only the
 * layout's per-procedure block orders and conditional realizations are
 * consumed; every address and size is recomputed from the CFG.
 */
struct OracleLayout
{
    struct Proc
    {
        Addr base = 0;
        Addr entryAddr = kNoAddr;
        std::uint64_t totalInstrs = 0;
        /// All indexed by BlockId.
        std::vector<Addr> addr;
        std::vector<Addr> branchAddr;  ///< kNoAddr when none
        std::vector<Addr> jumpAddr;    ///< kNoAddr when none
        std::vector<std::uint32_t> baseInstrs;
        std::vector<std::uint32_t> finalInstrs;
        std::vector<bool> jumpInserted;
        std::vector<bool> jumpRemoved;
    };

    std::vector<Proc> procs;

    /// Inconsistencies between the layout's decisions and the CFG (e.g. a
    /// FallAdjacent realization whose fall successor is not adjacent).
    /// A non-empty list means the layout is structurally broken.
    std::vector<std::string> structuralErrors;
};

/// Re-derives addresses and sizes from (program, layout decisions).
OracleLayout deriveOracleLayout(const Program &program,
                                const ProgramLayout &layout);

/**
 * Compares the production materializer's bookkeeping (addresses, sizes,
 * flags) against the oracle's independent derivation. Returns one message
 * per mismatch; empty means the materializer's arithmetic checks out.
 */
std::vector<std::string> crossCheckLayout(const Program &program,
                                          const ProgramLayout &layout);

/**
 * The oracle evaluator: an EventSink fed with CFG-level walk events
 * (directly from walk() or from a RecordedTrace replay) that derives the
 * branch-event stream and all metrics on its own.
 */
class OracleEvaluator : public EventSink
{
  public:
    OracleEvaluator(const Program &program, const ProgramLayout &layout,
                    const EvalParams &params);
    ~OracleEvaluator() override;

    /// Only references are kept; temporaries would dangle.
    OracleEvaluator(const Program &, ProgramLayout &&,
                    const EvalParams &) = delete;
    OracleEvaluator(Program &&, const ProgramLayout &,
                    const EvalParams &) = delete;

    void onBlock(ProcId proc, BlockId block) override;
    void onCall(ProcId proc, BlockId block, const CallSite &site) override;
    void onReturn(ProcId proc, BlockId block, const CallSite &site) override;
    void onEdge(ProcId proc, std::uint32_t edge_index) override;
    void onExit() override;

    /// Accumulated metrics (same record the production evaluator fills).
    const EvalResult &result() const { return result_; }

    /// Every branch execution, in order.
    const std::vector<BranchSample> &samples() const { return samples_; }

    /// Structural problems found while deriving the layout.
    const std::vector<std::string> &
    structuralErrors() const
    {
        return derived_.structuralErrors;
    }

    /// The independently derived address bookkeeping.
    const OracleLayout &derivedLayout() const { return derived_; }

  private:
    struct Predictors;  // naive predictor state, defined in oracle.cc

    void branchEvent(BranchEvent::Type type, Addr site, Addr target,
                     bool taken, ProcId proc, BlockId block);
    void resolvePendingReturn(Addr actual_target);

    const Program &program_;
    const ProgramLayout &layout_;
    EvalParams params_;
    OracleLayout derived_;
    EvalResult result_;
    std::vector<BranchSample> samples_;
    std::unique_ptr<Predictors> pred_;

    ProcId curProc_ = kNoProc;
    BlockId curBlock_ = kNoBlock;
    std::uint64_t instrs_ = 0;
};

}  // namespace balign

#endif  // BALIGN_CHECK_ORACLE_H
