/**
 * @file
 * Differential harness: oracle vs. the production evaluation pipeline.
 *
 * One recorded event stream is fanned out to both sides at once — the
 * production BranchEventAdapter -> ArchEvaluator chain (the exact code the
 * experiments run) and the naive OracleEvaluator — and the two resulting
 * branch-event streams are compared sample by sample. Four things can
 * diverge, checked in order:
 *
 *  1. Structural: the materializer's address/size bookkeeping disagrees
 *     with the oracle's independent derivation (crossCheckLayout).
 *  2. Event: the streams differ at some branch execution — wrong site,
 *     target, direction or penalty classification. The report pins the
 *     first diverging event with both sides' renderings and the
 *     surrounding context.
 *  3. Counters: the streams matched but the accumulated EvalResult
 *     totals do not (an accounting bug outside the per-event path).
 *  4. Batch: the batched replay engine (sim/batch_replay.h) run as a
 *     single lane over the same layout disagrees with the per-cell
 *     evaluator it is pinned to.
 *
 * diffPrepared() mirrors runConfigs() layout construction exactly
 * (per-architecture cost models, the BT/FNT chain-ordering override) so
 * what gets diffed is what the experiments actually evaluate.
 */

#ifndef BALIGN_CHECK_DIFFER_H
#define BALIGN_CHECK_DIFFER_H

#include <optional>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "core/align_program.h"
#include "sim/cpi.h"

namespace balign {

/// Which layer of the comparison disagreed.
enum class DivergenceKind : std::uint8_t {
    Structural,  ///< materializer bookkeeping vs. independent derivation
    Event,       ///< branch-event streams differ
    Counters,    ///< streams agree but accumulated totals do not
    Lint,        ///< static lint rules (lint/lint.h) rejected the inputs
                 ///< before any trace was replayed
    Verify,      ///< the layout verifier (verify/verify.h) could not prove
                 ///< a layout semantically equivalent to its program
    Batch,       ///< the batched replay engine (sim/batch_replay.h)
                 ///< disagrees with the per-cell ArchEvaluator on some
                 ///< EvalResult counter
    Realign,     ///< incremental realignment (core/realign.h) broke its
                 ///< contract: threshold-0 differs from a full
                 ///< alignProgram, threshold-infinity differs from the old
                 ///< layout, or a spliced layout failed verification
    Estimate,    ///< the static profile estimator (estimate/estimate.h)
                 ///< synthesized a profile that breaks the prof.*/est.*
                 ///< invariants, or a layout aligned on it failed the
                 ///< translation validator
    Emit,        ///< the emission backend (emit/relax.h, emit/elf.h) broke
                 ///< its contract: relaxation failed to converge, the
                 ///< relaxed layout failed verification or re-relaxed to
                 ///< different bytes, or the ELF object did not round-trip
                 ///< through the self-contained reader
    Disasm,      ///< the binary-level translation validator
                 ///< (disasm/checkobj.h) could not prove an emitted
                 ///< object's decoded instructions and control-flow graph
                 ///< equal to the relaxed layout that produced it
};

/// Printable kind name.
const char *divergenceKindName(DivergenceKind kind);

/// One detected oracle/production disagreement.
struct Divergence
{
    DivergenceKind kind = DivergenceKind::Event;
    Arch arch = Arch::Fallthrough;
    AlignerKind aligner = AlignerKind::Original;
    /// Alignment objective that was active when the finding was made
    /// (layouts differ per objective, so a repro needs it).
    ObjectiveKind objective = ObjectiveKind::TableCost;
    std::string program;  ///< program name (may be empty)
    std::string detail;   ///< full context, multi-line
};

/// Multi-line report for one divergence.
std::string formatDivergence(const Divergence &divergence);

/// Configurations a diff sweeps.
struct DiffOptions
{
    /// Architectures to check (empty = all eight).
    std::vector<Arch> archs;
    /// Aligners to check (empty = Original, Greedy, Cost, Try15).
    std::vector<AlignerKind> kinds;
    /// Alignment objectives to sweep; each objective realigns every
    /// configured (architecture, aligner) pair under its own prices
    /// (empty = just align.objective).
    std::vector<ObjectiveKind> objectives;
    /// Alignment options (the BT/FNT chain-order override is applied on
    /// top, exactly as runConfigs does; the objective field is overridden
    /// by the `objectives` sweep).
    AlignOptions align;
    /// Stop after this many divergences (0 = collect all).
    std::size_t maxDivergences = 1;
};

/// Every architecture the simulator knows.
const std::vector<Arch> &allArchs();

/// The aligners the paper studies (including the identity layout).
const std::vector<AlignerKind> &allAlignerKinds();

/// allAlignerKinds() plus the post-paper ExtTsp aligner — the sweep the
/// fuzzer and corpus replay use. Kept separate so the paper-scoped suite
/// goldens (lint reports, experiment tables) stay pinned to four kinds.
const std::vector<AlignerKind> &allAlignerKindsExtended();

/**
 * Compares two branch-sample streams. Returns an empty string when they
 * are identical, else a multi-line description of the first mismatch
 * (index, both renderings, and up to @p context preceding samples).
 */
std::string compareSamples(const std::vector<BranchSample> &oracle,
                           const std::vector<BranchSample> &production,
                           std::size_t context = 3);

/**
 * Diffs one (prepared program, layout, architecture) triple. The layout
 * must have been materialized for @p prepared.program.
 */
std::optional<Divergence> diffLayout(const PreparedProgram &prepared,
                                     const ProgramLayout &layout, Arch arch,
                                     AlignerKind kind);

/// Diffs every configured (architecture, aligner) pair of @p options.
std::vector<Divergence> diffPrepared(const PreparedProgram &prepared,
                                     const DiffOptions &options = {});

/// Convenience: profile @p program with @p walk, then diffPrepared.
std::vector<Divergence> diffProgram(Program program, const WalkOptions &walk,
                                    const DiffOptions &options = {});

}  // namespace balign

#endif  // BALIGN_CHECK_DIFFER_H
