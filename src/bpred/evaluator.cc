#include "bpred/evaluator.h"

#include "support/log.h"

namespace balign {

EvalParams
EvalParams::forArch(Arch arch)
{
    EvalParams params;
    params.arch = arch;
    switch (arch) {
      case Arch::BtbSmall:
        params.btbEntries = 64;
        params.btbWays = 2;
        break;
      case Arch::BtbLarge:
        params.btbEntries = 256;
        params.btbWays = 4;
        break;
      default:
        break;
    }
    return params;
}

ArchEvaluator::ArchEvaluator(const Program &program,
                             const ProgramLayout &layout,
                             const EvalParams &params)
    : params_(params),
      adapter_(program, layout, *this),
      ras_(params.rasEntries)
{
    result_.penalties = params.penalties;
    switch (params.arch) {
      case Arch::PhtDirect:
        pht_ = std::make_unique<PhtDirect>(params.phtEntries,
                                           params.counterBits);
        break;
      case Arch::PhtCorrelated:
        gshare_ = std::make_unique<Gshare>(
            params.phtEntries, params.historyBits, params.counterBits);
        break;
      case Arch::PhtLocal:
        local_ = std::make_unique<LocalTwoLevel>(
            params.phtEntries, params.historyBits, params.counterBits);
        break;
      case Arch::BtbSmall:
      case Arch::BtbLarge:
        btb_ = std::make_unique<Btb>(params.btbEntries, params.btbWays,
                                     params.counterBits);
        break;
      case Arch::Likely:
        likely_ = std::make_unique<LikelyBits>(program, layout);
        break;
      case Arch::Fallthrough:
      case Arch::BtFnt:
        break;
    }
}

void
ArchEvaluator::onInstrs(std::uint64_t count)
{
    result_.instrs += count;
}

void
ArchEvaluator::onBranch(const BranchEvent &event)
{
    switch (event.type) {
      case BranchEvent::Type::Cond:
        condBranch(event);
        break;
      case BranchEvent::Type::Uncond:
        ++result_.uncondExec;
        uncondBreak(event);
        break;
      case BranchEvent::Type::Call:
        ++result_.callExec;
        ras_.push(event.site + 1);
        uncondBreak(event);
        break;
      case BranchEvent::Type::Indirect:
        indirectJump(event);
        break;
      case BranchEvent::Type::Return:
        returnBranch(event);
        break;
    }
}

void
ArchEvaluator::condBranch(const BranchEvent &event)
{
    ++result_.condExec;
    if (event.taken)
        ++result_.condTaken;

    if (btb_ != nullptr) {
        ++result_.btbLookups;
        const auto hit = btb_->lookup(event.site);
        if (hit.has_value())
            ++result_.btbHits;
        const bool predicted_taken = hit.has_value() && hit->counterTaken;
        if (predicted_taken != event.taken) {
            ++result_.mispredicts;
            ++result_.condMispredicts;
        } else if (event.taken && hit->target != event.target) {
            // Conditional targets are fixed, so this only fires under
            // partial-tag aliasing (not modelled); kept for safety.
            ++result_.mispredicts;
            ++result_.condMispredicts;
        }
        // Correctly predicted taken through the BTB: the stored target
        // redirected fetch, so no bubble at all.
        btb_->update(event.site, event.taken, event.target);
        return;
    }

    bool predicted_taken = false;
    switch (params_.arch) {
      case Arch::Fallthrough:
        predicted_taken = fallthroughPredictsTaken();
        break;
      case Arch::BtFnt:
        predicted_taken = btFntPredictsTaken(event.site, event.target);
        break;
      case Arch::Likely:
        predicted_taken = likely_->taken(event.proc, event.block);
        break;
      case Arch::PhtDirect:
        predicted_taken = pht_->predict(event.site);
        pht_->update(event.site, event.taken);
        break;
      case Arch::PhtCorrelated:
        predicted_taken = gshare_->predict(event.site);
        gshare_->update(event.site, event.taken);
        break;
      case Arch::PhtLocal:
        predicted_taken = local_->predict(event.site);
        local_->update(event.site, event.taken);
        break;
      default:
        panic("condBranch: unexpected arch");
    }

    if (predicted_taken != event.taken) {
        ++result_.mispredicts;
        ++result_.condMispredicts;
    } else if (event.taken) {
        // Correct direction, but the target is only known after decode.
        ++result_.misfetches;
    }
}

void
ArchEvaluator::uncondBreak(const BranchEvent &event)
{
    if (btb_ != nullptr) {
        ++result_.btbLookups;
        const auto hit = btb_->lookup(event.site);
        if (hit.has_value()) {
            ++result_.btbHits;
            if (!(hit->counterTaken && hit->target == event.target)) {
                // Stale direction or target: redirect after decode.
                ++result_.misfetches;
            }
        } else {
            ++result_.misfetches;
        }
        btb_->update(event.site, true, event.target);
        return;
    }
    ++result_.misfetches;
}

void
ArchEvaluator::indirectJump(const BranchEvent &event)
{
    ++result_.indirectExec;
    if (btb_ != nullptr) {
        ++result_.btbLookups;
        const auto hit = btb_->lookup(event.site);
        if (hit.has_value()) {
            ++result_.btbHits;
            if (!(hit->counterTaken && hit->target == event.target))
                ++result_.mispredicts;
        } else {
            ++result_.mispredicts;
        }
        btb_->update(event.site, true, event.target);
        return;
    }
    // Static and PHT architectures cannot predict computed targets.
    ++result_.mispredicts;
}

void
ArchEvaluator::returnBranch(const BranchEvent &event)
{
    ++result_.returnExec;
    const Addr predicted = ras_.pop();
    if (event.target == kNoAddr) {
        // Program exit: no in-program resume address; assess no penalty.
        return;
    }
    const bool ras_correct = predicted == event.target;

    if (btb_ != nullptr) {
        ++result_.btbLookups;
        const auto hit = btb_->lookup(event.site);
        if (hit.has_value()) {
            ++result_.btbHits;
            // A hit identifies the return at fetch; the return stack
            // supplies the target, so a correct stack costs nothing.
            if (!ras_correct) {
                ++result_.mispredicts;
                ++result_.returnMispredicts;
            }
        } else {
            if (ras_correct) {
                ++result_.misfetches;  // redirect after decode
            } else {
                ++result_.mispredicts;
                ++result_.returnMispredicts;
            }
        }
        btb_->update(event.site, true, event.target);
        return;
    }

    if (ras_correct) {
        ++result_.misfetches;  // a taken break with a decode-time target
    } else {
        ++result_.mispredicts;
        ++result_.returnMispredicts;
    }
}

}  // namespace balign
