/**
 * @file
 * Profile-weighted modelled branch cost of a concrete layout — the
 * quantity the paper quotes for its worked examples (e.g. Figure 3's
 * 36,002 vs 27,004 cycles): each branch site's expected cycles under the
 * architecture cost model, using the realized directions from final
 * addresses, summed over the CFG weighted by the edge profile.
 *
 * This is the aligners' objective function evaluated exactly (with true
 * directions instead of hints), so it also serves as the oracle for
 * optimality testing: enumerating all layouts of a small procedure and
 * minimizing this cost bounds how far a heuristic is from optimal.
 */

#ifndef BALIGN_BPRED_STATIC_COST_H
#define BALIGN_BPRED_STATIC_COST_H

#include "bpred/cost_model.h"
#include "cfg/program.h"
#include "layout/layout_result.h"

namespace balign {

/// Modelled branch cost (cycles) of @p proc under @p layout.
double modeledBranchCost(const Procedure &proc, const ProcLayout &layout,
                         const CostModel &model);

/// Modelled branch cost of the whole program.
double modeledBranchCost(const Program &program,
                         const ProgramLayout &layout,
                         const CostModel &model);

/**
 * Brute-force reference: materializes every block order of @p proc (entry
 * first) with the cost-model-aware materializer and returns the minimum
 * modelled cost. Only feasible for small procedures; panics above
 * @p max_blocks (default 9 -> at most 8! = 40,320 permutations).
 */
double optimalBranchCost(const Procedure &proc, const CostModel &model,
                         std::size_t max_blocks = 9);

}  // namespace balign

#endif  // BALIGN_BPRED_STATIC_COST_H
