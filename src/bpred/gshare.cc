#include "bpred/gshare.h"

#include "support/log.h"

namespace balign {

Gshare::Gshare(std::size_t entries, unsigned history_bits,
               unsigned counter_bits)
    : table_(entries, SaturatingCounter(counter_bits)),
      mask_(entries - 1),
      historyMask_((1ull << history_bits) - 1)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        panic("Gshare: entries must be a power of two");
    if (history_bits == 0 || history_bits > 63)
        panic("Gshare: bad history length %u", history_bits);
}

bool
Gshare::predict(Addr site) const
{
    return table_[index(site)].taken();
}

void
Gshare::update(Addr site, bool taken)
{
    table_[index(site)].update(taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;
}

}  // namespace balign
