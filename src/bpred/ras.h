/**
 * @file
 * Return address stack (paper §6): a 32-entry circular stack, "very
 * accurate at predicting the destination for return instructions". Present
 * in every simulated configuration.
 */

#ifndef BALIGN_BPRED_RAS_H
#define BALIGN_BPRED_RAS_H

#include <vector>

#include "support/types.h"

namespace balign {

class ReturnStack
{
  public:
    explicit ReturnStack(std::size_t entries = 32);

    /// Pushes the return address of a call (call site + 1 instruction).
    void push(Addr return_addr);

    /**
     * Pops the predicted return target. Returns kNoAddr when the stack is
     * empty (underflow: the prediction will miss).
     */
    Addr pop();

    /// Current live depth (0..entries; stops growing at capacity although
    /// pushes wrap and overwrite).
    std::size_t depth() const { return depth_; }

    std::size_t capacity() const { return stack_.size(); }

  private:
    std::vector<Addr> stack_;
    std::size_t top_ = 0;    ///< index of the next free slot
    std::size_t depth_ = 0;  ///< live entries (capped at capacity)
};

}  // namespace balign

#endif  // BALIGN_BPRED_RAS_H
