#include "bpred/pht.h"

#include "support/log.h"

namespace balign {

PhtDirect::PhtDirect(std::size_t entries, unsigned counter_bits)
    : table_(entries, SaturatingCounter(counter_bits)),
      mask_(entries - 1)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        panic("PhtDirect: entries must be a power of two");
}

bool
PhtDirect::predict(Addr site) const
{
    return table_[index(site)].taken();
}

void
PhtDirect::update(Addr site, bool taken)
{
    table_[index(site)].update(taken);
}

}  // namespace balign
