/**
 * @file
 * Branch target buffer (paper §3).
 *
 * Set-associative cache of branch sites. Only taken branches are inserted
 * (as in the Intel Pentium the paper cites); each entry stores the branch
 * target and a two-bit saturating counter used to predict conditional
 * branch direction. On a miss, the fall-through path is predicted. The BTB
 * holds every break type: conditional and unconditional branches, indirect
 * jumps, calls and returns. The paper simulates a 64-entry 2-way and a
 * 256-entry 4-way (Pentium-like) configuration.
 */

#ifndef BALIGN_BPRED_BTB_H
#define BALIGN_BPRED_BTB_H

#include <optional>
#include <vector>

#include "support/saturating_counter.h"
#include "support/types.h"

namespace balign {

class Btb
{
  public:
    /// Result of a lookup hit.
    struct Hit
    {
        Addr target;         ///< stored target address
        bool counterTaken;   ///< 2-bit counter's direction prediction
    };

    /**
     * @param entries total entries (power of two)
     * @param ways associativity (divides entries)
     * @param counter_bits counter width (paper: 2)
     */
    Btb(std::size_t entries, std::size_t ways, unsigned counter_bits = 2);

    /// Looks up @p site; does not modify replacement state.
    std::optional<Hit> lookup(Addr site) const;

    /**
     * Trains the BTB after a branch resolves.
     *
     * @param site branch address
     * @param taken whether the branch was taken (unconditional breaks,
     *        calls, returns and indirect jumps are always taken)
     * @param target the actual destination when taken
     *
     * Taken branches are inserted on a miss and refreshed on a hit (LRU
     * update, counter increment, target update for indirect branches).
     * Not-taken branches merely decrement the counter of an existing
     * entry; they are never inserted.
     */
    void update(Addr site, bool taken, Addr target);

    std::size_t numEntries() const { return entries_.size(); }
    std::size_t numWays() const { return ways_; }
    std::size_t numSets() const { return sets_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        SaturatingCounter counter;
        std::uint64_t lastUse = 0;
    };

    std::size_t setIndex(Addr site) const { return site & setMask_; }
    Entry *findEntry(Addr site);
    const Entry *findEntry(Addr site) const;

    std::vector<Entry> entries_;
    std::size_t ways_;
    std::size_t sets_;
    std::size_t setMask_;
    unsigned counterBits_;
    std::uint64_t tick_ = 0;
};

}  // namespace balign

#endif  // BALIGN_BPRED_BTB_H
