/**
 * @file
 * Architectural branch cost model (paper Table 1 and §6).
 *
 * Costs are cycles per branch execution and INCLUDE the branch instruction
 * itself, so that inserting or deleting unconditional jumps is priced
 * correctly:
 *
 *   unconditional branch            2  (instruction + misfetch)
 *   correctly predicted fall-through 1  (instruction)
 *   correctly predicted taken        2  (instruction + misfetch)
 *   mispredicted                     5  (instruction + mispredict)
 *
 * For the dynamic architectures the model uses the paper's §6 assumptions:
 * PHT conditionals mispredict 10% of the time; BTBs additionally miss 10%
 * of the time, so taken branches pay the misfetch penalty only on the 10%
 * of executions that miss.
 */

#ifndef BALIGN_BPRED_COST_MODEL_H
#define BALIGN_BPRED_COST_MODEL_H

#include "bpred/arch.h"
#include "layout/realization.h"
#include "support/types.h"

namespace balign {

class CostModel
{
  public:
    struct Params
    {
        Penalties penalties{};
        /// Assumed conditional mispredict rate for PHT/BTB architectures.
        double dynMispredictRate = 0.10;
        /// Assumed BTB miss rate (taken branches pay misfetch on a miss).
        double btbMissRate = 0.10;
    };

    explicit CostModel(Arch arch) : CostModel(arch, Params{}) {}
    CostModel(Arch arch, const Params &params);

    Arch arch() const { return arch_; }
    const Params &params() const { return params_; }

    /// Expected cost, in cycles, of one unconditional branch execution.
    double uncondCost() const;

    /**
     * Expected total cost of a conditional branch site whose realized-taken
     * outcome executes @p w_taken times and whose realized fall-through
     * outcome executes @p w_fall times. @p taken_dir is the (estimated)
     * direction of the branch target, used by BT/FNT.
     *
     * For the LIKELY architecture the likely bit is assumed set to the
     * majority realized outcome (profile-based, as in the paper).
     */
    double condCost(double w_taken, double w_fall, DirHint taken_dir) const;

    /**
     * Expected total branch cost of a conditional block under a given
     * realization.
     *
     * @param w_taken_edge weight of the block's CFG Taken edge
     * @param w_fall_edge weight of the block's CFG FallThrough edge
     * @param realization how the layout realizes the block
     * @param dir_taken direction hint for the CFG taken target
     * @param dir_fall direction hint for the CFG fall-through target
     */
    double condRealizationCost(Weight w_taken_edge, Weight w_fall_edge,
                               CondRealization realization, DirHint dir_taken,
                               DirHint dir_fall) const;

    /**
     * The cheapest realization for a conditional block when neither or
     * either successor could be made adjacent; used by the materializer to
     * pick between NeitherJumpToFall and NeitherJumpToTaken.
     */
    CondRealization bestNeitherRealization(Weight w_taken_edge,
                                           Weight w_fall_edge,
                                           DirHint dir_taken,
                                           DirHint dir_fall) const;

    /// Cost of a single-exit block (unconditional or fall-through
    /// terminator) whose successor IS layout-adjacent: the jump is deleted
    /// or never needed.
    double singleExitAdjacentCost() const { return 0.0; }

    /// Cost of a single-exit block whose successor is NOT adjacent: an
    /// unconditional jump executes @p weight times.
    double
    singleExitJumpCost(Weight weight) const
    {
        return static_cast<double>(weight) * uncondCost();
    }

  private:
    /// Per-execution cost of a realized-taken conditional under a static
    /// prediction of @p predicted_taken.
    double staticCondCost(bool realized_taken, bool predicted_taken) const;

    Arch arch_;
    Params params_;
};

}  // namespace balign

#endif  // BALIGN_BPRED_COST_MODEL_H
