/**
 * @file
 * Static branch prediction (paper §3).
 *
 *  - FALLTHROUGH: the sequential path is always predicted.
 *  - BT/FNT: backward branches predicted taken, forward not taken (HP
 *    PA-RISC / Alpha AXP 21064 style).
 *  - LIKELY: a per-branch likely/unlikely bit set from profile information
 *    (Tera style); here computed from the realized majority direction of
 *    each conditional branch under a given layout, exactly the profile the
 *    alignment used.
 */

#ifndef BALIGN_BPRED_STATIC_PRED_H
#define BALIGN_BPRED_STATIC_PRED_H

#include <vector>

#include "cfg/program.h"
#include "layout/layout_result.h"
#include "support/types.h"

namespace balign {

/// FALLTHROUGH model: never predicts taken.
inline bool
fallthroughPredictsTaken()
{
    return false;
}

/// BT/FNT model: a branch to an earlier (or equal) address is predicted
/// taken.
inline bool
btFntPredictsTaken(Addr site, Addr target)
{
    return target <= site;
}

/**
 * Profile-set likely bits for every conditional branch under a given
 * layout. The bit is the majority *realized* direction: alignment changes
 * branch senses, and the compiler (or post-processor) would set the bit
 * after transformation.
 */
class LikelyBits
{
  public:
    LikelyBits(const Program &program, const ProgramLayout &layout);

    /// Likely direction of the conditional branch ending @p block.
    bool
    taken(ProcId proc, BlockId block) const
    {
        return bits_[offsets_[proc] + block];
    }

  private:
    std::vector<std::size_t> offsets_;  ///< per-proc offset into bits_
    std::vector<bool> bits_;
};

}  // namespace balign

#endif  // BALIGN_BPRED_STATIC_PRED_H
