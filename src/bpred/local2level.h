/**
 * @file
 * Two-level adaptive predictor with per-branch history (Yeh & Patt's PAg
 * organization, cited in paper §3): a branch-history table keeps an
 * N-bit shift register per branch site; the register indexes a shared
 * pattern table of 2-bit counters. Captures per-branch periodic behaviour
 * (fixed trip counts) without polluting a global history.
 *
 * The paper's Table 4 evaluates the degenerate global scheme; this
 * predictor is provided as an extension point (Arch::PhtLocal) for the
 * hardware sweeps and the prediction-accuracy study.
 */

#ifndef BALIGN_BPRED_LOCAL2LEVEL_H
#define BALIGN_BPRED_LOCAL2LEVEL_H

#include <vector>

#include "support/saturating_counter.h"
#include "support/types.h"

namespace balign {

class LocalTwoLevel
{
  public:
    /**
     * @param history_entries branch-history table size (power of two)
     * @param history_bits local history length (and log2 of the pattern
     *        table size)
     * @param counter_bits pattern-table counter width
     */
    explicit LocalTwoLevel(std::size_t history_entries = 1024,
                           unsigned history_bits = 10,
                           unsigned counter_bits = 2);

    /// Predicted direction for the conditional branch at @p site.
    bool predict(Addr site) const;

    /// Trains the pattern counter and shifts the branch's local history.
    void update(Addr site, bool taken);

    std::size_t numHistoryEntries() const { return histories_.size(); }
    std::size_t numPatternEntries() const { return patterns_.size(); }

  private:
    std::size_t historyIndex(Addr site) const { return site & histMask_; }

    std::vector<std::uint32_t> histories_;
    std::vector<SaturatingCounter> patterns_;
    std::size_t histMask_;
    std::uint32_t patternMask_;
};

}  // namespace balign

#endif  // BALIGN_BPRED_LOCAL2LEVEL_H
