/**
 * @file
 * Correlation (two-level) pattern history table, the "degenerate" global
 * scheme of Pan et al. combined with McFarling's XOR indexing (paper §3):
 * a global history register of the last N conditional branch outcomes is
 * XORed with the branch address to index a table of 2-bit counters. The
 * paper simulates a 4096-entry table with a 12-bit history.
 */

#ifndef BALIGN_BPRED_GSHARE_H
#define BALIGN_BPRED_GSHARE_H

#include <vector>

#include "support/saturating_counter.h"
#include "support/types.h"

namespace balign {

class Gshare
{
  public:
    /**
     * @param entries table size; power of two (paper: 4096)
     * @param history_bits global history length (paper: 12)
     * @param counter_bits counter width (paper: 2)
     */
    explicit Gshare(std::size_t entries = 4096, unsigned history_bits = 12,
                    unsigned counter_bits = 2);

    /// Predicted direction for the conditional branch at @p site.
    bool predict(Addr site) const;

    /// Trains the indexed counter and shifts the outcome into the history.
    void update(Addr site, bool taken);

    std::size_t numEntries() const { return table_.size(); }
    std::uint64_t history() const { return history_; }

  private:
    std::size_t
    index(Addr site) const
    {
        return (site ^ history_) & mask_;
    }

    std::vector<SaturatingCounter> table_;
    std::size_t mask_;
    std::uint64_t historyMask_;
    std::uint64_t history_ = 0;
};

}  // namespace balign

#endif  // BALIGN_BPRED_GSHARE_H
