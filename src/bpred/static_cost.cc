#include "bpred/static_cost.h"

#include <algorithm>
#include <limits>

#include "layout/materialize.h"
#include "support/log.h"

namespace balign {

double
modeledBranchCost(const Procedure &proc, const ProcLayout &layout,
                  const CostModel &model)
{
    double total = 0.0;
    for (const auto &block : proc.blocks()) {
        const BlockLayout &bl = layout.blocks[block.id];
        switch (block.term) {
          case Terminator::CondBranch: {
            const Edge &taken = proc.edge(
                static_cast<std::uint32_t>(proc.takenEdge(block.id)));
            const Edge &fall = proc.edge(static_cast<std::uint32_t>(
                proc.fallThroughEdge(block.id)));
            const EdgeKind branch_kind = branchTargetKind(bl.cond);
            const Edge &branch_edge =
                branch_kind == EdgeKind::Taken ? taken : fall;
            const Edge &through_edge =
                branch_kind == EdgeKind::Taken ? fall : taken;
            const Addr target = layout.blocks[branch_edge.dst].addr;
            const DirHint dir = target <= bl.branchAddr
                                    ? DirHint::Backward
                                    : DirHint::Forward;
            total += model.condCost(
                static_cast<double>(branch_edge.weight),
                static_cast<double>(through_edge.weight), dir);
            if (bl.cond == CondRealization::NeitherJumpToFall ||
                bl.cond == CondRealization::NeitherJumpToTaken) {
                total += static_cast<double>(through_edge.weight) *
                         model.uncondCost();
            }
            break;
          }
          case Terminator::UncondBranch:
            if (!bl.jumpRemoved) {
                total += model.singleExitJumpCost(
                    proc.edge(static_cast<std::uint32_t>(
                                  proc.takenEdge(block.id)))
                        .weight);
            }
            break;
          case Terminator::FallThrough:
            if (bl.jumpInserted) {
                total += model.singleExitJumpCost(
                    proc.edge(static_cast<std::uint32_t>(
                                  proc.fallThroughEdge(block.id)))
                        .weight);
            }
            break;
          case Terminator::IndirectJump:
          case Terminator::Return:
            break;
        }
    }
    return total;
}

double
modeledBranchCost(const Program &program, const ProgramLayout &layout,
                  const CostModel &model)
{
    double total = 0.0;
    for (const auto &proc : program.procs())
        total += modeledBranchCost(proc, layout.procs[proc.id()], model);
    return total;
}

double
optimalBranchCost(const Procedure &proc, const CostModel &model,
                  std::size_t max_blocks)
{
    const std::size_t n = proc.numBlocks();
    if (n > max_blocks)
        panic("optimalBranchCost: %zu blocks exceeds the brute-force cap",
              n);

    // Permute the non-entry blocks; the entry stays first.
    std::vector<BlockId> rest;
    for (BlockId b = 0; b < n; ++b) {
        if (b != proc.entry())
            rest.push_back(b);
    }
    std::sort(rest.begin(), rest.end());

    MaterializeOptions options;
    options.costModel = &model;
    double best = std::numeric_limits<double>::infinity();
    do {
        std::vector<BlockId> order{proc.entry()};
        order.insert(order.end(), rest.begin(), rest.end());
        const ProcLayout layout =
            materializeProc(proc, std::move(order), 0, options);
        best = std::min(best, modeledBranchCost(proc, layout, model));
    } while (std::next_permutation(rest.begin(), rest.end()));
    return best;
}

}  // namespace balign
