/**
 * @file
 * Direct-mapped pattern history table (paper §3).
 *
 * A table of two-bit saturating up/down counters indexed by the branch site
 * address. The paper simulates a 4096-entry table (1 KByte of 2-bit
 * counters, with the correlated variant alongside).
 */

#ifndef BALIGN_BPRED_PHT_H
#define BALIGN_BPRED_PHT_H

#include <vector>

#include "support/saturating_counter.h"
#include "support/types.h"

namespace balign {

class PhtDirect
{
  public:
    /**
     * @param entries table size; must be a power of two
     * @param counter_bits counter width (paper: 2)
     */
    explicit PhtDirect(std::size_t entries = 4096, unsigned counter_bits = 2);

    /// Predicted direction for the conditional branch at @p site.
    bool predict(Addr site) const;

    /// Trains the counter with the observed outcome.
    void update(Addr site, bool taken);

    std::size_t numEntries() const { return table_.size(); }

  private:
    std::size_t index(Addr site) const { return site & mask_; }

    std::vector<SaturatingCounter> table_;
    std::size_t mask_;
};

}  // namespace balign

#endif  // BALIGN_BPRED_PHT_H
