/**
 * @file
 * Branch-architecture identifiers and penalty parameters.
 *
 * The paper evaluates three static and four dynamic configurations, all
 * with a one-cycle misfetch penalty and a four-cycle mispredict penalty
 * (paper §6), plus a 32-entry return stack.
 */

#ifndef BALIGN_BPRED_ARCH_H
#define BALIGN_BPRED_ARCH_H

#include <cstdint>

namespace balign {

/// The branch prediction architectures studied in the paper.
enum class Arch : std::uint8_t {
    Fallthrough,    ///< always predict the fall-through path
    BtFnt,          ///< backward taken, forward not taken
    Likely,         ///< profile-set likely/unlikely bit per branch
    PhtDirect,      ///< 4096-entry direct-mapped PHT, 2-bit counters
    PhtCorrelated,  ///< 4096-entry gshare PHT (addr XOR 12-bit history)
    PhtLocal,       ///< two-level per-branch history (Yeh-Patt PAg),
                    ///< an extension beyond the paper's Table 4
    BtbSmall,       ///< 64-entry 2-way BTB, 2-bit counters
    BtbLarge,       ///< 256-entry 4-way BTB, 2-bit counters (Pentium-like)
};

/// Printable architecture name.
const char *archName(Arch arch);

/// True for the table-based direction predictors.
inline bool
isPht(Arch arch)
{
    return arch == Arch::PhtDirect || arch == Arch::PhtCorrelated ||
           arch == Arch::PhtLocal;
}

/// True for the branch-target-buffer architectures.
inline bool
isBtb(Arch arch)
{
    return arch == Arch::BtbSmall || arch == Arch::BtbLarge;
}

/// True for the purely static architectures.
inline bool
isStatic(Arch arch)
{
    return arch == Arch::Fallthrough || arch == Arch::BtFnt ||
           arch == Arch::Likely;
}

/// Pipeline penalties (cycles), paper §6.
struct Penalties
{
    double misfetch = 1.0;
    double mispredict = 4.0;
};

}  // namespace balign

#endif  // BALIGN_BPRED_ARCH_H
