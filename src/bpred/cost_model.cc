#include "bpred/cost_model.h"

#include "support/log.h"

namespace balign {

const char *
archName(Arch arch)
{
    switch (arch) {
      case Arch::Fallthrough: return "FALLTHROUGH";
      case Arch::BtFnt: return "BT/FNT";
      case Arch::Likely: return "LIKELY";
      case Arch::PhtDirect: return "PHT-direct";
      case Arch::PhtCorrelated: return "PHT-correlated";
      case Arch::PhtLocal: return "PHT-local";
      case Arch::BtbSmall: return "BTB-64x2";
      case Arch::BtbLarge: return "BTB-256x4";
    }
    return "?";
}

const char *
condRealizationName(CondRealization realization)
{
    switch (realization) {
      case CondRealization::FallAdjacent: return "fall-adjacent";
      case CondRealization::TakenAdjacent: return "taken-adjacent";
      case CondRealization::NeitherJumpToFall: return "neither/jump-to-fall";
      case CondRealization::NeitherJumpToTaken:
        return "neither/jump-to-taken";
    }
    return "?";
}

CostModel::CostModel(Arch arch, const Params &params)
    : arch_(arch), params_(params)
{
}

double
CostModel::uncondCost() const
{
    // Base: the branch instruction itself.
    const double instr = 1.0;
    if (isBtb(arch_)) {
        // On a BTB hit the target is fetched without a bubble; only the
        // btbMissRate fraction pays the misfetch penalty.
        return instr + params_.btbMissRate * params_.penalties.misfetch;
    }
    return instr + params_.penalties.misfetch;
}

double
CostModel::staticCondCost(bool realized_taken, bool predicted_taken) const
{
    const double instr = 1.0;
    if (realized_taken != predicted_taken)
        return instr + params_.penalties.mispredict;
    // Correct prediction: a taken branch still misfetches (the sequential
    // instruction was fetched while the branch decoded).
    return realized_taken ? instr + params_.penalties.misfetch : instr;
}

double
CostModel::condCost(double w_taken, double w_fall, DirHint taken_dir) const
{
    switch (arch_) {
      case Arch::Fallthrough:
        // Always predicted not-taken.
        return w_taken * staticCondCost(true, false) +
               w_fall * staticCondCost(false, false);
      case Arch::BtFnt: {
        const bool predicted_taken = taken_dir == DirHint::Backward;
        return w_taken * staticCondCost(true, predicted_taken) +
               w_fall * staticCondCost(false, predicted_taken);
      }
      case Arch::Likely: {
        const bool likely_taken = w_taken > w_fall;
        return w_taken * staticCondCost(true, likely_taken) +
               w_fall * staticCondCost(false, likely_taken);
      }
      case Arch::PhtDirect:
      case Arch::PhtCorrelated:
      case Arch::PhtLocal: {
        // Paper §6: assume conditionals mispredict dynMispredictRate of the
        // time, regardless of layout; taken branches still pay the misfetch
        // when correctly predicted.
        const double good = 1.0 - params_.dynMispredictRate;
        const double taken_cost = good * staticCondCost(true, true) +
                                  params_.dynMispredictRate *
                                      staticCondCost(true, false);
        const double fall_cost = good * staticCondCost(false, false) +
                                 params_.dynMispredictRate *
                                     staticCondCost(false, true);
        return w_taken * taken_cost + w_fall * fall_cost;
      }
      case Arch::BtbSmall:
      case Arch::BtbLarge: {
        // Paper §6.1: correctly predicted taken branches misfetch only on
        // the btbMissRate fraction of executions.
        const double good = 1.0 - params_.dynMispredictRate;
        const double hit = 1.0 - params_.btbMissRate;
        const double taken_correct =
            1.0 + (1.0 - hit) * params_.penalties.misfetch;
        const double taken_cost =
            good * taken_correct +
            params_.dynMispredictRate * (1.0 + params_.penalties.mispredict);
        const double fall_cost =
            good * 1.0 +
            params_.dynMispredictRate * (1.0 + params_.penalties.mispredict);
        return w_taken * taken_cost + w_fall * fall_cost;
      }
    }
    panic("condCost: bad arch");
}

double
CostModel::condRealizationCost(Weight w_taken_edge, Weight w_fall_edge,
                               CondRealization realization, DirHint dir_taken,
                               DirHint dir_fall) const
{
    const auto wt = static_cast<double>(w_taken_edge);
    const auto wf = static_cast<double>(w_fall_edge);
    switch (realization) {
      case CondRealization::FallAdjacent:
        // CFG taken edge realized as branch-taken; fall edge falls through.
        return condCost(wt, wf, dir_taken);
      case CondRealization::TakenAdjacent:
        // Inverted: CFG fall edge realized as branch-taken.
        return condCost(wf, wt, dir_fall);
      case CondRealization::NeitherJumpToFall:
        // Branch to the taken target; jump (executed w_fall times) to the
        // fall target.
        return condCost(wt, wf, dir_taken) + wf * uncondCost();
      case CondRealization::NeitherJumpToTaken:
        // Inverted branch to the fall target; jump (executed w_taken
        // times) to the taken target.
        return condCost(wf, wt, dir_fall) + wt * uncondCost();
    }
    panic("condRealizationCost: bad realization");
}

CondRealization
CostModel::bestNeitherRealization(Weight w_taken_edge, Weight w_fall_edge,
                                  DirHint dir_taken, DirHint dir_fall) const
{
    const double to_fall =
        condRealizationCost(w_taken_edge, w_fall_edge,
                            CondRealization::NeitherJumpToFall, dir_taken,
                            dir_fall);
    const double to_taken =
        condRealizationCost(w_taken_edge, w_fall_edge,
                            CondRealization::NeitherJumpToTaken, dir_taken,
                            dir_fall);
    return to_taken < to_fall ? CondRealization::NeitherJumpToTaken
                              : CondRealization::NeitherJumpToFall;
}

}  // namespace balign
