#include "bpred/local2level.h"

#include "support/log.h"

namespace balign {

LocalTwoLevel::LocalTwoLevel(std::size_t history_entries,
                             unsigned history_bits, unsigned counter_bits)
    : histories_(history_entries, 0),
      patterns_(std::size_t{1} << history_bits,
                SaturatingCounter(counter_bits)),
      histMask_(history_entries - 1),
      patternMask_((1u << history_bits) - 1)
{
    if (history_entries == 0 ||
        (history_entries & (history_entries - 1)) != 0)
        panic("LocalTwoLevel: history entries must be a power of two");
    if (history_bits == 0 || history_bits > 24)
        panic("LocalTwoLevel: bad history length %u", history_bits);
}

bool
LocalTwoLevel::predict(Addr site) const
{
    const std::uint32_t history = histories_[historyIndex(site)];
    return patterns_[history & patternMask_].taken();
}

void
LocalTwoLevel::update(Addr site, bool taken)
{
    std::uint32_t &history = histories_[historyIndex(site)];
    patterns_[history & patternMask_].update(taken);
    history = ((history << 1) | (taken ? 1u : 0u)) & patternMask_;
}

}  // namespace balign
