/**
 * @file
 * Trace-driven branch-architecture evaluator.
 *
 * An ArchEvaluator consumes resolved branch events (trace/branch_events.h)
 * for one concrete layout, simulating one branch prediction architecture
 * and accumulating the paper's metrics:
 *
 *  - instructions executed under that layout (sense inversions do not
 *    change the count; inserted jumps add instructions when executed,
 *    deleted jumps remove them);
 *  - the branch execution penalty, BEP = misfetches * misfetch_penalty +
 *    mispredicts * mispredict_penalty (paper §6);
 *  - relative CPI = (aligned instructions + BEP) / original instructions;
 *  - the percentage of executed conditional branches that fall through.
 *
 * Penalty rules (paper §6): for the static and PHT architectures,
 * unconditional branches, correctly predicted taken conditional branches
 * and direct calls misfetch; mispredicted conditional branches,
 * mispredicted returns and all indirect jumps mispredict. The BTB
 * architectures avoid the misfetch for taken branches that hit in the BTB.
 * A 32-entry return stack predicts returns in every configuration.
 */

#ifndef BALIGN_BPRED_EVALUATOR_H
#define BALIGN_BPRED_EVALUATOR_H

#include <memory>

#include "bpred/arch.h"
#include "bpred/btb.h"
#include "bpred/gshare.h"
#include "bpred/local2level.h"
#include "bpred/pht.h"
#include "bpred/ras.h"
#include "bpred/static_pred.h"
#include "cfg/program.h"
#include "layout/layout_result.h"
#include "trace/branch_events.h"

namespace balign {

/// Evaluator configuration.
struct EvalParams
{
    Arch arch = Arch::BtFnt;
    Penalties penalties;
    std::size_t phtEntries = 4096;
    unsigned historyBits = 12;
    unsigned counterBits = 2;
    std::size_t btbEntries = 256;
    std::size_t btbWays = 4;
    std::size_t rasEntries = 32;

    /// Paper defaults for each architecture.
    static EvalParams forArch(Arch arch);
};

/// Accumulated metrics.
struct EvalResult
{
    std::uint64_t instrs = 0;
    std::uint64_t misfetches = 0;
    std::uint64_t mispredicts = 0;

    std::uint64_t condExec = 0;
    std::uint64_t condTaken = 0;  ///< realized-taken conditionals
    std::uint64_t condMispredicts = 0;
    std::uint64_t uncondExec = 0;
    std::uint64_t callExec = 0;
    std::uint64_t returnExec = 0;
    std::uint64_t returnMispredicts = 0;
    std::uint64_t indirectExec = 0;
    std::uint64_t btbHits = 0;
    std::uint64_t btbLookups = 0;

    Penalties penalties;

    /// Total branch execution penalty in cycles.
    double
    bep() const
    {
        return static_cast<double>(misfetches) * penalties.misfetch +
               static_cast<double>(mispredicts) * penalties.mispredict;
    }

    /// Relative CPI against the original program's instruction count.
    double
    relativeCpi(std::uint64_t original_instrs) const
    {
        return (static_cast<double>(instrs) + bep()) /
               static_cast<double>(original_instrs);
    }

    /// Percent of executed conditional branches that fell through.
    double
    pctFallThrough() const
    {
        if (condExec == 0)
            return 0.0;
        return 100.0 * static_cast<double>(condExec - condTaken) /
               static_cast<double>(condExec);
    }

    /// Conditional branch prediction accuracy (direction only).
    double
    condAccuracy() const
    {
        if (condExec == 0)
            return 0.0;
        return 100.0 *
               static_cast<double>(condExec - condMispredicts) /
               static_cast<double>(condExec);
    }
};

/**
 * Replays a walk against one (layout, architecture) pair. Register sink()
 * with the walker (use MultiSink to evaluate many configurations from one
 * walk).
 */
class ArchEvaluator : public BranchEventHandler
{
  public:
    /**
     * @param program the CFG (profile weights used only for LIKELY bits)
     * @param layout the materialized layout under evaluation; must outlive
     *        the evaluator
     * @param params architecture configuration
     */
    ArchEvaluator(const Program &program, const ProgramLayout &layout,
                  const EvalParams &params);

    /// Only references are kept; temporaries would dangle.
    ArchEvaluator(const Program &, ProgramLayout &&,
                  const EvalParams &) = delete;
    ArchEvaluator(Program &&, const ProgramLayout &,
                  const EvalParams &) = delete;

    /// The EventSink to drive with a walk.
    EventSink &sink() { return adapter_; }

    void onInstrs(std::uint64_t count) override;
    void onBranch(const BranchEvent &event) override;

    const EvalResult &result() const { return result_; }
    const EvalParams &params() const { return params_; }

  private:
    void condBranch(const BranchEvent &event);
    /// An always-taken break with a decode-time-known target (unconditional
    /// branch or direct call).
    void uncondBreak(const BranchEvent &event);
    void indirectJump(const BranchEvent &event);
    void returnBranch(const BranchEvent &event);

    EvalParams params_;
    EvalResult result_;
    BranchEventAdapter adapter_;

    // Predictor state (only the structures the architecture needs are
    // constructed).
    std::unique_ptr<PhtDirect> pht_;
    std::unique_ptr<Gshare> gshare_;
    std::unique_ptr<LocalTwoLevel> local_;
    std::unique_ptr<Btb> btb_;
    ReturnStack ras_;
    std::unique_ptr<LikelyBits> likely_;
};

}  // namespace balign

#endif  // BALIGN_BPRED_EVALUATOR_H
