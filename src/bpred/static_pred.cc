#include "bpred/static_pred.h"

#include "layout/materialize.h"

namespace balign {

LikelyBits::LikelyBits(const Program &program, const ProgramLayout &layout)
{
    offsets_.resize(program.numProcs());
    std::size_t total = 0;
    for (ProcId p = 0; p < program.numProcs(); ++p) {
        offsets_[p] = total;
        total += program.proc(p).numBlocks();
    }
    bits_.assign(total, false);

    for (ProcId p = 0; p < program.numProcs(); ++p) {
        const Procedure &proc = program.proc(p);
        const ProcLayout &proc_layout = layout.procs[p];
        for (const auto &block : proc.blocks()) {
            if (block.term != Terminator::CondBranch)
                continue;
            const Edge &taken =
                proc.edge(static_cast<std::uint32_t>(
                    proc.takenEdge(block.id)));
            const Edge &fall =
                proc.edge(static_cast<std::uint32_t>(
                    proc.fallThroughEdge(block.id)));
            const EdgeKind branch_kind =
                branchTargetKind(proc_layout.blocks[block.id].cond);
            // Weight of executions where the realized branch is taken.
            const Weight w_branch = branch_kind == EdgeKind::Taken
                                        ? taken.weight
                                        : fall.weight;
            const Weight w_through = branch_kind == EdgeKind::Taken
                                         ? fall.weight
                                         : taken.weight;
            bits_[offsets_[p] + block.id] = w_branch > w_through;
        }
    }
}

}  // namespace balign
