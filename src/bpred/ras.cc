#include "bpred/ras.h"

#include "support/log.h"

namespace balign {

ReturnStack::ReturnStack(std::size_t entries) : stack_(entries, kNoAddr)
{
    if (entries == 0)
        panic("ReturnStack: need at least one entry");
}

void
ReturnStack::push(Addr return_addr)
{
    stack_[top_] = return_addr;
    top_ = (top_ + 1) % stack_.size();
    if (depth_ < stack_.size())
        ++depth_;
}

Addr
ReturnStack::pop()
{
    if (depth_ == 0)
        return kNoAddr;
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --depth_;
    return stack_[top_];
}

}  // namespace balign
