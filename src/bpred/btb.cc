#include "bpred/btb.h"

#include "support/log.h"

namespace balign {

Btb::Btb(std::size_t entries, std::size_t ways, unsigned counter_bits)
    : entries_(entries),
      ways_(ways),
      sets_(entries / ways),
      setMask_(entries / ways - 1),
      counterBits_(counter_bits)
{
    if (entries == 0 || ways == 0 || entries % ways != 0)
        panic("Btb: bad geometry %zux%zu", entries, ways);
    if ((sets_ & (sets_ - 1)) != 0)
        panic("Btb: number of sets must be a power of two");
    for (auto &entry : entries_)
        entry.counter = SaturatingCounter(counter_bits);
}

const Btb::Entry *
Btb::findEntry(Addr site) const
{
    const std::size_t set = setIndex(site);
    for (std::size_t w = 0; w < ways_; ++w) {
        const Entry &entry = entries_[set * ways_ + w];
        if (entry.valid && entry.tag == site)
            return &entry;
    }
    return nullptr;
}

Btb::Entry *
Btb::findEntry(Addr site)
{
    return const_cast<Entry *>(
        static_cast<const Btb *>(this)->findEntry(site));
}

std::optional<Btb::Hit>
Btb::lookup(Addr site) const
{
    const Entry *entry = findEntry(site);
    if (entry == nullptr)
        return std::nullopt;
    return Hit{entry->target, entry->counter.taken()};
}

void
Btb::update(Addr site, bool taken, Addr target)
{
    ++tick_;
    Entry *entry = findEntry(site);
    if (entry != nullptr) {
        entry->counter.update(taken);
        if (taken)
            entry->target = target;  // retrain target (indirect branches)
        entry->lastUse = tick_;
        return;
    }
    if (!taken)
        return;  // only taken branches are inserted

    // Allocate: pick an invalid way, else the least recently used.
    const std::size_t set = setIndex(site);
    Entry *victim = &entries_[set * ways_];
    for (std::size_t w = 0; w < ways_; ++w) {
        Entry &candidate = entries_[set * ways_ + w];
        if (!candidate.valid) {
            victim = &candidate;
            break;
        }
        if (candidate.lastUse < victim->lastUse)
            victim = &candidate;
    }
    victim->valid = true;
    victim->tag = site;
    victim->target = target;
    victim->counter = SaturatingCounter(counterBits_);
    victim->counter.resetWeak(true);
    victim->lastUse = tick_;
}

}  // namespace balign
