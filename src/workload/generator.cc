#include "workload/generator.h"

#include <algorithm>

#include "cfg/validate.h"
#include "support/log.h"
#include "support/rng.h"

namespace balign {

namespace {

/**
 * Emits one procedure from the region grammar. Labels implement forward
 * references: an edge may target a label, and a label resolves to the next
 * block created after it is bound.
 */
class ProcEmitter
{
  public:
    ProcEmitter(Procedure &proc, Rng &rng, const ProgramSpec &spec,
                ProcId self, unsigned num_procs)
        : proc_(proc),
          rng_(rng),
          spec_(spec),
          self_(self),
          numProcs_(num_procs)
    {
    }

    void
    emit(unsigned block_budget)
    {
        budget_ = block_budget;
        const Label body_end = makeLabel();
        emitRegion(0, Exit{Exit::FallOff, 0, body_end});
        bind(body_end);
        // Final return block resolves all outstanding fall-off paths.
        newBlock(blockInstrs(), Terminator::Return);
        if (earlyReturnUsed_) {
            bind(earlyReturnLabel_);
            newBlock(1 + rng_.nextBounded(3), Terminator::Return);
        }
    }

  private:
    using Label = std::size_t;

    struct Pending
    {
        BlockId src;
        EdgeKind kind;
        double bias;
    };

    /// How a region's tail block leaves the region.
    struct Exit
    {
        enum Kind { FallOff, JumpToLabel, JumpToBlock } kind;
        BlockId block;  ///< for JumpToBlock
        Label label;    ///< for FallOff (the continuation) / JumpToLabel
    };

    Label
    makeLabel()
    {
        labels_.emplace_back();
        resolved_.push_back(kNoBlock);
        return labels_.size() - 1;
    }

    /// Binds @p label to the next block created.
    void bind(Label label) { bound_.push_back(label); }

    void
    deferEdge(BlockId src, EdgeKind kind, double bias, Label label)
    {
        if (resolved_[label] != kNoBlock) {
            proc_.addEdge(src, resolved_[label], kind, 0, bias);
            return;
        }
        labels_[label].push_back(Pending{src, kind, bias});
    }

    BlockId
    newBlock(std::uint32_t instrs, Terminator term)
    {
        const BlockId id = proc_.addBlock(instrs, term);
        if (budget_ > 0)
            --budget_;
        for (Label label : bound_) {
            resolved_[label] = id;
            for (const Pending &pending : labels_[label]) {
                proc_.addEdge(pending.src, id, pending.kind, 0,
                              pending.bias);
            }
            labels_[label].clear();
        }
        bound_.clear();
        return id;
    }

    std::uint32_t
    blockInstrs()
    {
        // 1 .. 2*avg - 1, mean ~avg.
        const auto span =
            static_cast<std::uint64_t>(2 * spec_.avgBlockInstrs - 1);
        return static_cast<std::uint32_t>(1 + rng_.nextBounded(span));
    }

    /// Adds a call site to a block when the dice say so. Call probability
    /// falls off steeply with loop depth: real programs rarely call inside
    /// their hottest inner loops, and a call there would swamp the
    /// break-type mix.
    void
    maybeCall(BlockId id, unsigned depth)
    {
        if (self_ + 1 >= numProcs_)
            return;  // leaf procedure
        double prob = spec_.callProb;
        for (unsigned d = 0; d < depth; ++d)
            prob *= 0.2;
        if (!rng_.nextBool(prob))
            return;
        BasicBlock &block = proc_.block(id);
        const std::uint32_t limit = block.hasBranchInstr()
                                        ? block.numInstrs - 1
                                        : block.numInstrs;
        if (limit == 0)
            return;
        // Callees have higher ids, keeping the call graph acyclic.
        const auto callee = static_cast<ProcId>(
            self_ + 1 + rng_.nextBounded(numProcs_ - self_ - 1));
        const auto offset =
            static_cast<std::uint32_t>(rng_.nextBounded(limit));
        block.calls.push_back(CallSite{callee, offset});
    }

    /// Emits a straight-line block falling off the end.
    void
    emitStraight(unsigned depth)
    {
        const BlockId id = newBlock(blockInstrs(), Terminator::FallThrough);
        const Label next = makeLabel();
        deferEdge(id, EdgeKind::FallThrough, 1.0, next);
        bind(next);
        maybeCall(id, depth);
    }

    /// Draws the probability of the fall-through side of an if.
    double
    ifFallBias()
    {
        if (rng_.nextBool(spec_.balancedIfProb))
            return 0.40 + 0.20 * rng_.nextDouble();
        // Skewed: the hot side falls through hotSideFallProb of the time;
        // otherwise the taken side is hot — headroom the aligners exploit.
        const bool hot_falls = rng_.nextBool(spec_.hotSideFallProb);
        return hot_falls ? spec_.ifSkewHot : 1.0 - spec_.ifSkewHot;
    }

    void
    emitIf(unsigned depth)
    {
        const BlockId cond = newBlock(blockInstrs(), Terminator::CondBranch);
        maybeCall(cond, depth);
        double p_fall = ifFallBias();
        if (lastCond_ != kNoBlock &&
            rng_.nextBool(spec_.correlatedIfProb)) {
            BasicBlock &block = proc_.block(cond);
            block.correlatedWith = lastCond_;
            block.correlatedInvert = rng_.nextBool(0.5);
            p_fall = 0.5;  // realized rate follows the controlling branch
        } else if (rng_.nextBool(spec_.patternedIfProb)) {
            // Periodic data pattern: length 2-6, mixed outcomes.
            const auto len =
                static_cast<unsigned>(2 + rng_.nextBounded(5));
            std::uint32_t mask;
            do {
                mask = static_cast<std::uint32_t>(
                    rng_.nextBounded(1u << len));
            } while (mask == 0 || mask == (1u << len) - 1u);
            BasicBlock &block = proc_.block(cond);
            block.patternLength = static_cast<std::uint8_t>(len);
            block.patternMask = mask;
            p_fall = 1.0 - static_cast<double>(__builtin_popcount(mask)) /
                               static_cast<double>(len);
        }
        lastCond_ = cond;
        const Label join = makeLabel();
        if (rng_.nextBool(spec_.elseProb)) {
            const Label else_head = makeLabel();
            deferEdge(cond, EdgeKind::Taken, 1.0 - p_fall, else_head);
            const Label then_head = makeLabel();
            deferEdge(cond, EdgeKind::FallThrough, p_fall, then_head);
            bind(then_head);
            emitRegion(depth + 1, Exit{Exit::JumpToLabel, 0, join});
            bind(else_head);
            emitRegion(depth + 1, Exit{Exit::FallOff, 0, join});
        } else {
            deferEdge(cond, EdgeKind::Taken, 1.0 - p_fall, join);
            const Label then_head = makeLabel();
            deferEdge(cond, EdgeKind::FallThrough, p_fall, then_head);
            bind(then_head);
            emitRegion(depth + 1, Exit{Exit::FallOff, 0, join});
        }
        bind(join);
    }

    /// Draws a fixed trip count, or 0 for a stochastic loop.
    unsigned
    drawTripCount()
    {
        if (!rng_.nextBool(spec_.fixedTripProb))
            return 0;
        const unsigned lo = std::max(2u, spec_.minTripCount);
        const unsigned hi = std::min(32u, std::max(lo, spec_.maxTripCount));
        return static_cast<unsigned>(
            lo + rng_.nextBounded(hi - lo + 1));
    }

    void
    emitLoop(unsigned depth)
    {
        double p_continue = spec_.loopContinueProb +
                            spec_.loopContinueJitter *
                                (2.0 * rng_.nextDouble() - 1.0);
        p_continue = std::clamp(p_continue, 0.05, 0.995);
        const unsigned trip = drawTripCount();
        if (trip != 0)
            p_continue = 1.0 - 1.0 / static_cast<double>(trip);

        if (rng_.nextBool(spec_.tightLoopProb)) {
            // Tight loop: one block branching back to itself (the shape
            // of ALVINN's input_hidden, paper Figure 2).
            const BlockId body =
                newBlock(blockInstrs(), Terminator::CondBranch);
            if (trip != 0) {
                BasicBlock &block = proc_.block(body);
                block.patternLength = static_cast<std::uint8_t>(trip);
                block.patternMask = (trip >= 32 ? ~0u : (1u << trip) - 1u) &
                                    ~(1u << (trip - 1));
            }
            proc_.addEdge(body, body, EdgeKind::Taken, 0, p_continue);
            const Label exit = makeLabel();
            deferEdge(body, EdgeKind::FallThrough, 1.0 - p_continue, exit);
            bind(exit);
            return;
        }

        if (rng_.nextBool(spec_.whileLoopProb)) {
            // while-style: test at the top, unconditional back branch.
            const BlockId head =
                newBlock(blockInstrs(), Terminator::CondBranch);
            if (trip != 0) {
                // Taken (the exit) only on the final test of each trip.
                BasicBlock &block = proc_.block(head);
                block.patternLength = static_cast<std::uint8_t>(trip);
                block.patternMask = 1u << (trip - 1);
            }
            const Label exit = makeLabel();
            deferEdge(head, EdgeKind::Taken, 1.0 - p_continue, exit);
            const Label body = makeLabel();
            deferEdge(head, EdgeKind::FallThrough, p_continue, body);
            bind(body);
            emitRegion(depth + 1, Exit{Exit::JumpToBlock, head, 0});
            bind(exit);
        } else {
            // do-while: body first, conditional back branch at the bottom.
            const BlockId head_id =
                static_cast<BlockId>(proc_.numBlocks());
            const Label latch_label = makeLabel();
            emitRegion(depth + 1, Exit{Exit::FallOff, 0, latch_label});
            bind(latch_label);
            const BlockId latch =
                newBlock(blockInstrs(), Terminator::CondBranch);
            if (trip != 0) {
                // Taken (continue) on every test but the trip's last.
                BasicBlock &block = proc_.block(latch);
                block.patternLength = static_cast<std::uint8_t>(trip);
                block.patternMask = (trip >= 32 ? ~0u : (1u << trip) - 1u) &
                                    ~(1u << (trip - 1));
            }
            proc_.addEdge(latch, head_id, EdgeKind::Taken, 0, p_continue);
            const Label exit = makeLabel();
            deferEdge(latch, EdgeKind::FallThrough, 1.0 - p_continue, exit);
            bind(exit);
        }
    }

    void
    emitSwitch(unsigned depth)
    {
        const BlockId sw = newBlock(blockInstrs(), Terminator::IndirectJump);
        const auto cases = static_cast<unsigned>(
            2 + rng_.nextBounded(std::max(1u, spec_.maxSwitchCases - 1)));
        const Label join = makeLabel();
        for (unsigned c = 0; c < cases; ++c) {
            const Label head = makeLabel();
            // Skewed case popularity: case c gets weight 1/(c+1).
            deferEdge(sw, EdgeKind::Other, 1.0 / (1.0 + c), head);
            bind(head);
            const bool last = c + 1 == cases;
            emitRegion(depth + 1, last ? Exit{Exit::FallOff, 0, join}
                                       : Exit{Exit::JumpToLabel, 0, join});
        }
        bind(join);
    }

    void
    emitEarlyReturn()
    {
        const BlockId cond = newBlock(blockInstrs(), Terminator::CondBranch);
        if (!earlyReturnUsed_) {
            earlyReturnUsed_ = true;
            earlyReturnLabel_ = makeLabel();
        }
        deferEdge(cond, EdgeKind::Taken, 0.05 + 0.10 * rng_.nextDouble(),
                  earlyReturnLabel_);
        const Label cont = makeLabel();
        deferEdge(cond, EdgeKind::FallThrough, 1.0, cont);
        bind(cont);
    }

    /**
     * Emits a sequence of items followed by a tail block realizing the
     * requested exit. Always creates at least the tail block.
     */
    void
    emitRegion(unsigned depth, Exit exit)
    {
        // Emit items while budget remains; deeper regions are shorter.
        const double continue_prob = depth == 0 ? 0.90 : 0.55;
        while (budget_ > depth + 2 && rng_.nextBool(continue_prob)) {
            const double can_nest = depth < spec_.maxLoopDepth ? 1.0 : 0.0;
            const double w_loop = spec_.loopProb * can_nest;
            const double w_if = spec_.ifProb;
            const double w_switch = spec_.switchProb * can_nest;
            const double w_ret = spec_.earlyReturnProb;
            const double w_straight =
                std::max(0.05, 1.0 - w_loop - w_if - w_switch - w_ret);
            const double weights[] = {w_straight, w_loop, w_if, w_switch,
                                      w_ret};
            switch (rng_.nextWeighted(weights, 5)) {
              case 0: emitStraight(depth); break;
              case 1: emitLoop(depth); break;
              case 2: emitIf(depth); break;
              case 3: emitSwitch(depth); break;
              case 4: emitEarlyReturn(); break;
            }
        }

        // Tail block.
        switch (exit.kind) {
          case Exit::FallOff: {
            const BlockId tail =
                newBlock(blockInstrs(), Terminator::FallThrough);
            maybeCall(tail, depth);
            deferEdge(tail, EdgeKind::FallThrough, 1.0, exit.label);
            bind(exit.label);
            break;
          }
          case Exit::JumpToLabel: {
            const BlockId tail =
                newBlock(blockInstrs(), Terminator::UncondBranch);
            maybeCall(tail, depth);
            deferEdge(tail, EdgeKind::Taken, 1.0, exit.label);
            break;
          }
          case Exit::JumpToBlock: {
            const BlockId tail =
                newBlock(blockInstrs(), Terminator::UncondBranch);
            maybeCall(tail, depth);
            proc_.addEdge(tail, exit.block, EdgeKind::Taken, 0, 1.0);
            break;
          }
        }
    }

    Procedure &proc_;
    Rng &rng_;
    const ProgramSpec &spec_;
    ProcId self_;
    unsigned numProcs_;
    unsigned budget_ = 0;

    std::vector<std::vector<Pending>> labels_;
    std::vector<BlockId> resolved_;
    std::vector<Label> bound_;

    bool earlyReturnUsed_ = false;
    Label earlyReturnLabel_ = 0;
    BlockId lastCond_ = kNoBlock;  ///< most recent if, for correlation
};

}  // namespace

std::uint64_t
traceSeed(const ProgramSpec &spec)
{
    SplitMix64 sm(spec.seed ^ 0x7261636553656564ull);  // "traceSeed"
    return sm.next();
}

Program
generateProgram(const ProgramSpec &spec)
{
    Program program(spec.name);
    Rng rng(spec.seed);

    for (unsigned p = 0; p < spec.numProcs; ++p) {
        const ProcId id =
            program.addProc(spec.name + "_proc" + std::to_string(p));
        const auto span = static_cast<std::uint64_t>(
            spec.maxBlocksPerProc - spec.minBlocksPerProc + 1);
        const auto budget = static_cast<unsigned>(
            spec.minBlocksPerProc + rng.nextBounded(span));
        Rng proc_rng = rng.split();
        ProcEmitter emitter(program.proc(id), proc_rng, spec, id,
                            spec.numProcs);
        emitter.emit(budget);
    }

    // Ensure every procedure is reachable: give uncalled procedures a call
    // site from an earlier procedure.
    std::vector<bool> called(spec.numProcs, false);
    called[program.mainProc()] = true;
    for (const auto &proc : program.procs()) {
        for (const auto &block : proc.blocks()) {
            for (const auto &site : block.calls)
                called[site.callee] = true;
        }
    }
    for (ProcId p = 0; p < spec.numProcs; ++p) {
        if (called[p])
            continue;
        // Find a block in an earlier procedure with room for a call.
        bool placed = false;
        for (ProcId caller = 0; caller < p && !placed; ++caller) {
            for (auto &block : program.proc(caller).blocks()) {
                const std::uint32_t limit = block.hasBranchInstr()
                                                ? block.numInstrs - 1
                                                : block.numInstrs;
                if (limit == 0)
                    continue;
                // Reuse an offset-free slot deterministically.
                const auto offset = static_cast<std::uint32_t>(
                    block.calls.size() % limit);
                block.calls.push_back(CallSite{p, offset});
                placed = true;
                break;
            }
        }
        if (!placed)
            panic("generateProgram(%s): cannot reach procedure %u",
                  spec.name.c_str(), p);
    }

    // Call sites must be in offset order for the walker.
    for (auto &proc : program.procs()) {
        for (auto &block : proc.blocks()) {
            std::stable_sort(block.calls.begin(), block.calls.end(),
                             [](const CallSite &a, const CallSite &b) {
                                 return a.offset < b.offset;
                             });
        }
    }

    validateOrDie(program);
    return program;
}

}  // namespace balign
