/**
 * @file
 * Structured synthetic-program generator.
 *
 * Generates compiler-shaped procedures from a region grammar (sequences,
 * if/then[/else] diamonds, while and do-while loops, switches via indirect
 * jumps, calls, early returns), emitting blocks in source order so that
 * every CFG fall-through edge targets the next block id — the invariant
 * that makes the identity layout an exact model of the original binary.
 *
 * The generator assigns per-edge biases (ground-truth probabilities) only;
 * execution weights come from profiling a walk, mirroring the paper's
 * ATOM-based methodology.
 */

#ifndef BALIGN_WORKLOAD_GENERATOR_H
#define BALIGN_WORKLOAD_GENERATOR_H

#include "cfg/program.h"
#include "workload/spec.h"

namespace balign {

/// Generates the program described by @p spec. The result validates and
/// every procedure is reachable from main.
Program generateProgram(const ProgramSpec &spec);

/// Derives the deterministic walk seed for a spec (kept distinct from the
/// generation seed).
std::uint64_t traceSeed(const ProgramSpec &spec);

}  // namespace balign

#endif  // BALIGN_WORKLOAD_GENERATOR_H
