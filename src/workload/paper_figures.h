/**
 * @file
 * Hand-built CFGs reconstructing the paper's worked examples:
 *
 *  - Figure 1: the fragment of ESPRESSO's elim_lowering routine used to
 *    show how each static architecture benefits from reordering;
 *  - Figure 2: ALVINN's input_hidden routine — a single-block inner loop
 *    accounting for ~64% of the program's branches;
 *  - Figure 3: the loop where the Greedy algorithm gets stuck (its chain
 *    rejects the profitable rotation) but Try15 removes the loop-closing
 *    unconditional branch, cutting branch cost by roughly a third.
 *
 * Edge weights follow the paper's published labels where legible; the
 * remainder are balanced reconstructions (flow-conserving) documented in
 * EXPERIMENTS.md.
 */

#ifndef BALIGN_WORKLOAD_PAPER_FIGURES_H
#define BALIGN_WORKLOAD_PAPER_FIGURES_H

#include "cfg/program.h"

namespace balign {

/**
 * Figure 1 fragment. Block ids map to the paper's labels:
 * 0 = entry stub, 1..8 = paper nodes 25..32. Profile weights are per-mille
 * of procedure transitions, scaled by 100. The hot taken edges of the
 * original layout are 25->31, 31->25 and 27->29, exactly the edges the
 * paper says FALLTHROUGH mispredicts.
 */
Program figure1Espresso();

/**
 * Figure 2: entry -> 11-instruction loop block (self-loop taken ~99% of
 * iterations) -> exit/return.
 */
Program figure2Alvinn();

/**
 * Figure 3 loop. Blocks: 0 = entry E, 1 = A (loop head, conditional with
 * a cold exit to D), 2 = B, 3 = C (unconditional back branch to A),
 * 4 = D (exit/return). Weights: E->A 1, A->B 9000 (fall), A->D 1 (taken),
 * B->C 9000 (fall), C->A 9000 (taken).
 *
 * Under the LIKELY cost model the original layout costs 27,005 cycles of
 * branch cost (the hot path pays for C's unconditional back branch every
 * iteration); Greedy links A->B and B->C first and then cannot close the
 * loop, leaving the code unchanged. Try15 rotates the loop (E,B,C,A,D),
 * removing the C->A jump and inverting A, for 18,007 cycles — a 33.3%
 * reduction, matching the paper's reported ~1/3 saving (its exact figures,
 * 36,002 -> 27,004, use a slightly different fragment whose text is
 * garbled in the source).
 */
Program figure3Loop();

}  // namespace balign

#endif  // BALIGN_WORKLOAD_PAPER_FIGURES_H
