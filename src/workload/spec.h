/**
 * @file
 * Parameters describing a synthetic program model.
 *
 * The reproduction cannot run the SPEC92 binaries the paper traced, so it
 * generates structured, compiler-shaped control-flow graphs whose static
 * and dynamic statistics are tuned to the paper's Table 2: branch density
 * (% of instructions that break control flow), taken bias, hot-site skew
 * (Q-50/90/99), break-type mix, and the FP-versus-integer differences that
 * drive the paper's results (FP codes: few, extremely hot, highly biased
 * inner loops in large blocks; integer codes: many small blocks, dense
 * branching, flatter site distribution).
 */

#ifndef BALIGN_WORKLOAD_SPEC_H
#define BALIGN_WORKLOAD_SPEC_H

#include <cstdint>
#include <string>

namespace balign {

struct ProgramSpec
{
    std::string name;
    /// Program class for the table groupings: "SPECfp92", "SPECint92",
    /// "Other".
    std::string group;

    /// Generator seed (also used to derive the trace seed).
    std::uint64_t seed = 1;

    /// Procedures, including main.
    unsigned numProcs = 12;

    /// Block-count range per procedure (paper §4: commonly 5-15, with some
    /// procedures containing hundreds).
    unsigned minBlocksPerProc = 6;
    unsigned maxBlocksPerProc = 40;

    /// Mean straight-line block size in instructions; controls the %breaks
    /// statistic (FP ~6.5% of instructions break, integer ~16%).
    unsigned avgBlockInstrs = 6;

    /// Maximum loop nesting depth.
    unsigned maxLoopDepth = 2;

    /// Probability that a region item is a loop.
    double loopProb = 0.25;

    /// Fraction of loops generated in while style (test at the top,
    /// unconditional back branch) versus do-while style (conditional back
    /// branch at the bottom).
    double whileLoopProb = 0.35;

    /// Fraction of loops that are TIGHT: a single basic block branching to
    /// itself (the ALVINN input_hidden shape of paper Figure 2). Checked
    /// before the while/do-while split.
    double tightLoopProb = 0.15;

    /// Mean probability of staying in a loop at its continuation test.
    double loopContinueProb = 0.85;

    /// Fraction of loops with a FIXED trip count (deterministic outcome
    /// pattern on the continuation test) instead of a geometric one. Fixed
    /// trips are what correlated predictors capture and per-site counters
    /// cannot; FORTRAN array loops are nearly all fixed-trip.
    double fixedTripProb = 0.3;

    /// Trip-count range for fixed-trip loops.
    unsigned minTripCount = 3;
    unsigned maxTripCount = 24;

    /// Fraction of ifs following a short periodic outcome pattern
    /// (alternating / data-periodic branches).
    double patternedIfProb = 0.10;

    /// Fraction of ifs whose outcome is correlated with a recent branch in
    /// the same procedure (testing related conditions), which two-level
    /// predictors capture and per-site counters cannot.
    double correlatedIfProb = 0.15;

    /// Uniform jitter applied to loopContinueProb per loop.
    double loopContinueJitter = 0.10;

    /// Probability that a region item is an if.
    double ifProb = 0.35;

    /// Probability an if has an else clause.
    double elseProb = 0.40;

    /// Probability of executing the hot side of a skewed if.
    double ifSkewHot = 0.80;

    /// Fraction of ifs that are roughly balanced instead of skewed.
    double balancedIfProb = 0.25;

    /// For skewed ifs: probability the HOT side is the fall-through one.
    /// 1993-era compilers laid code in source order, so hot taken sides
    /// (error-check skips, loop-internal gotos) were common — exactly the
    /// headroom branch alignment exploits.
    double hotSideFallProb = 0.55;

    /// Probability that a region item is a switch (indirect jump).
    double switchProb = 0.02;
    unsigned maxSwitchCases = 5;

    /// Probability a straight-line block contains a call.
    double callProb = 0.08;

    /// Probability of an early-return test in a region.
    double earlyReturnProb = 0.04;

    /// Instruction budget for the profiling / evaluation walk.
    std::uint64_t traceInstrs = 2'000'000;
};

}  // namespace balign

#endif  // BALIGN_WORKLOAD_SPEC_H
