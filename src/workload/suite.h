/**
 * @file
 * The benchmark suite: 24 synthetic program models named after the
 * programs the paper traced (Table 2) — 13 SPECfp92, 6 SPECint92 and 5
 * "Other" (C++/text) programs.
 *
 * Each model's generator parameters are tuned from the paper's measured
 * attributes: FP codes have large blocks (low %breaks), few and extremely
 * hot loop branches (tiny Q-50), and high taken percentages; the integer
 * and C++ codes have small blocks, dense branching, flatter branch-site
 * distributions, more calls/returns, and (for C++) more indirect jumps
 * (virtual dispatch).
 */

#ifndef BALIGN_WORKLOAD_SUITE_H
#define BALIGN_WORKLOAD_SUITE_H

#include <vector>

#include "workload/spec.h"

namespace balign {

/// All 24 program models, grouped SPECfp92 / SPECint92 / Other, in the
/// paper's Table 2 order.
std::vector<ProgramSpec> benchmarkSuite();

/// The SPEC92 C programs used for the paper's Figure 4 execution-time
/// experiment: alvinn, ear, compress, eqntott, espresso, gcc, li, sc.
std::vector<ProgramSpec> figure4Suite();

/// Looks up a suite spec by name; fatal() when absent.
ProgramSpec suiteSpec(const std::string &name);

}  // namespace balign

#endif  // BALIGN_WORKLOAD_SUITE_H
