#include "workload/suite.h"

#include "support/log.h"

namespace balign {

namespace {

/// Baseline for floating-point models: large blocks, deep loop nests with
/// very hot, highly biased inner loops, few calls.
ProgramSpec
fpBase(const char *name, std::uint64_t seed)
{
    ProgramSpec spec;
    spec.name = name;
    spec.group = "SPECfp92";
    spec.seed = seed;
    spec.numProcs = 10;
    spec.minBlocksPerProc = 5;
    spec.maxBlocksPerProc = 26;
    spec.avgBlockInstrs = 14;
    spec.maxLoopDepth = 3;
    spec.loopProb = 0.42;
    spec.whileLoopProb = 0.10;
    spec.tightLoopProb = 0.35;
    spec.loopContinueProb = 0.96;
    spec.loopContinueJitter = 0.03;
    spec.fixedTripProb = 0.75;
    spec.minTripCount = 8;
    spec.maxTripCount = 32;
    spec.patternedIfProb = 0.05;
    spec.correlatedIfProb = 0.10;
    spec.ifProb = 0.16;
    spec.elseProb = 0.30;
    spec.ifSkewHot = 0.88;
    spec.balancedIfProb = 0.10;
    spec.switchProb = 0.0;
    spec.callProb = 0.03;
    spec.earlyReturnProb = 0.02;
    return spec;
}

/// Baseline for integer models: small blocks, dense and flatter branching,
/// more calls.
ProgramSpec
intBase(const char *name, std::uint64_t seed)
{
    ProgramSpec spec;
    spec.name = name;
    spec.group = "SPECint92";
    spec.seed = seed;
    spec.numProcs = 22;
    spec.minBlocksPerProc = 8;
    spec.maxBlocksPerProc = 60;
    spec.avgBlockInstrs = 5;
    spec.maxLoopDepth = 2;
    spec.loopProb = 0.24;
    spec.whileLoopProb = 0.30;
    spec.tightLoopProb = 0.12;
    spec.loopContinueProb = 0.82;
    spec.loopContinueJitter = 0.12;
    spec.fixedTripProb = 0.50;
    spec.minTripCount = 3;
    spec.maxTripCount = 16;
    spec.patternedIfProb = 0.18;
    spec.correlatedIfProb = 0.35;
    spec.ifProb = 0.40;
    spec.elseProb = 0.45;
    spec.ifSkewHot = 0.78;
    spec.balancedIfProb = 0.15;
    spec.hotSideFallProb = 0.40;
    spec.switchProb = 0.02;
    spec.callProb = 0.10;
    spec.earlyReturnProb = 0.06;
    return spec;
}

/// Baseline for the C++/text "Other" programs: integer-like but with more
/// indirect jumps (virtual dispatch) and calls.
ProgramSpec
otherBase(const char *name, std::uint64_t seed)
{
    ProgramSpec spec = intBase(name, seed);
    spec.group = "Other";
    spec.numProcs = 30;
    spec.switchProb = 0.05;
    spec.callProb = 0.14;
    spec.earlyReturnProb = 0.08;
    return spec;
}

}  // namespace

std::vector<ProgramSpec>
benchmarkSuite()
{
    std::vector<ProgramSpec> suite;

    // ---- SPECfp92 ----------------------------------------------------
    {
        // alvinn: a neural-net trainer; nearly all time in two tiny
        // single-block inner loops (paper Fig. 2).
        ProgramSpec s = fpBase("alvinn", 101);
        s.numProcs = 6;
        s.minBlocksPerProc = 4;
        s.maxBlocksPerProc = 10;
        s.avgBlockInstrs = 11;
        s.maxLoopDepth = 2;
        s.loopProb = 0.55;
        s.tightLoopProb = 0.80;
        s.loopContinueProb = 0.985;
        s.loopContinueJitter = 0.01;
        s.ifProb = 0.06;
        suite.push_back(s);
    }
    {
        // doduc: Monte-Carlo simulation; branchier than most FP codes.
        ProgramSpec s = fpBase("doduc", 102);
        s.numProcs = 16;
        s.maxBlocksPerProc = 44;
        s.avgBlockInstrs = 8;
        s.ifProb = 0.30;
        s.loopContinueProb = 0.90;
        suite.push_back(s);
    }
    {
        ProgramSpec s = fpBase("ear", 103);
        s.numProcs = 8;
        s.loopProb = 0.50;
        s.loopContinueProb = 0.97;
        suite.push_back(s);
    }
    {
        // fpppp: enormous straight-line blocks, almost no branches.
        ProgramSpec s = fpBase("fpppp", 104);
        s.numProcs = 6;
        s.avgBlockInstrs = 24;
        s.loopProb = 0.30;
        s.ifProb = 0.08;
        suite.push_back(s);
    }
    {
        ProgramSpec s = fpBase("hydro2d", 105);
        s.numProcs = 14;
        s.loopProb = 0.48;
        suite.push_back(s);
    }
    {
        ProgramSpec s = fpBase("mdljsp2", 106);
        s.numProcs = 12;
        s.loopContinueProb = 0.93;
        s.ifProb = 0.22;
        suite.push_back(s);
    }
    {
        ProgramSpec s = fpBase("nasa7", 107);
        s.numProcs = 12;
        s.loopProb = 0.50;
        s.maxLoopDepth = 3;
        suite.push_back(s);
    }
    {
        // ora: tiny kernel, one dominant loop.
        ProgramSpec s = fpBase("ora", 108);
        s.numProcs = 4;
        s.minBlocksPerProc = 4;
        s.maxBlocksPerProc = 14;
        s.loopProb = 0.5;
        s.loopContinueProb = 0.98;
        suite.push_back(s);
    }
    {
        // spice: FP code with integer-like control flow.
        ProgramSpec s = fpBase("spice", 109);
        s.numProcs = 20;
        s.maxBlocksPerProc = 70;
        s.avgBlockInstrs = 7;
        s.ifProb = 0.34;
        s.loopContinueProb = 0.88;
        suite.push_back(s);
    }
    {
        ProgramSpec s = fpBase("su2cor", 110);
        s.numProcs = 12;
        suite.push_back(s);
    }
    {
        // swm256: stencil loops, huge iteration counts.
        ProgramSpec s = fpBase("swm256", 111);
        s.numProcs = 6;
        s.loopProb = 0.55;
        s.loopContinueProb = 0.99;
        s.loopContinueJitter = 0.005;
        s.ifProb = 0.05;
        suite.push_back(s);
    }
    {
        ProgramSpec s = fpBase("tomcatv", 112);
        s.numProcs = 3;
        s.loopProb = 0.55;
        s.loopContinueProb = 0.985;
        s.ifProb = 0.06;
        suite.push_back(s);
    }
    {
        ProgramSpec s = fpBase("wave5", 113);
        s.numProcs = 14;
        s.loopProb = 0.46;
        suite.push_back(s);
    }

    // ---- SPECint92 ---------------------------------------------------
    {
        // compress: one hot loop with data-dependent (balanced) branches.
        ProgramSpec s = intBase("compress", 201);
        s.numProcs = 8;
        s.minBlocksPerProc = 6;
        s.maxBlocksPerProc = 30;
        s.balancedIfProb = 0.45;
        s.loopContinueProb = 0.90;
        suite.push_back(s);
    }
    {
        // eqntott: dominated by a few very hot comparison branches.
        ProgramSpec s = intBase("eqntott", 202);
        s.numProcs = 10;
        s.loopProb = 0.34;
        s.loopContinueProb = 0.92;
        s.ifSkewHot = 0.85;
        s.balancedIfProb = 0.15;
        suite.push_back(s);
    }
    {
        ProgramSpec s = intBase("espresso", 203);
        s.numProcs = 24;
        s.maxBlocksPerProc = 60;
        suite.push_back(s);
    }
    {
        // gcc: very many procedures and blocks, flat site distribution.
        ProgramSpec s = intBase("gcc", 204);
        s.numProcs = 48;
        s.minBlocksPerProc = 10;
        s.maxBlocksPerProc = 120;
        s.switchProb = 0.04;
        s.balancedIfProb = 0.35;
        s.loopContinueProb = 0.75;
        suite.push_back(s);
    }
    {
        // li: lisp interpreter; call/return heavy.
        ProgramSpec s = intBase("li", 205);
        s.numProcs = 26;
        s.callProb = 0.16;
        s.earlyReturnProb = 0.10;
        s.loopProb = 0.18;
        suite.push_back(s);
    }
    {
        ProgramSpec s = intBase("sc", 206);
        s.numProcs = 20;
        s.switchProb = 0.03;
        suite.push_back(s);
    }

    // ---- Other (C++ / text) -------------------------------------------
    {
        ProgramSpec s = otherBase("cfront", 301);
        s.numProcs = 40;
        s.maxBlocksPerProc = 80;
        suite.push_back(s);
    }
    {
        ProgramSpec s = otherBase("db++", 302);
        s.numProcs = 18;
        s.callProb = 0.18;
        suite.push_back(s);
    }
    {
        ProgramSpec s = otherBase("groff", 303);
        s.numProcs = 34;
        suite.push_back(s);
    }
    {
        ProgramSpec s = otherBase("idl", 304);
        s.numProcs = 26;
        s.switchProb = 0.07;
        suite.push_back(s);
    }
    {
        // tex: text formatter; big procedures, many switches.
        ProgramSpec s = otherBase("tex", 305);
        s.numProcs = 24;
        s.maxBlocksPerProc = 100;
        s.switchProb = 0.05;
        s.callProb = 0.10;
        suite.push_back(s);
    }

    return suite;
}

std::vector<ProgramSpec>
figure4Suite()
{
    const char *names[] = {"alvinn", "ear",      "compress", "eqntott",
                           "espresso", "gcc",    "li",       "sc"};
    std::vector<ProgramSpec> result;
    for (const char *name : names)
        result.push_back(suiteSpec(name));
    return result;
}

ProgramSpec
suiteSpec(const std::string &name)
{
    for (const auto &spec : benchmarkSuite()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown suite program '%s'", name.c_str());
}

}  // namespace balign
