#include "workload/paper_figures.h"

#include "cfg/builder.h"
#include "cfg/validate.h"

namespace balign {

Program
figure1Espresso()
{
    Program program("espresso_elim_lowering");
    const ProcId pid = program.addProc("elim_lowering");
    Procedure &proc = program.proc(pid);
    CfgBuilder b(proc);

    // id 0: entry stub; ids 1..8 are the paper's nodes 25..32.
    const BlockId e = b.block(2, Terminator::FallThrough);    // entry
    const BlockId n25 = b.block(3, Terminator::CondBranch);
    const BlockId n26 = b.block(5, Terminator::CondBranch);
    const BlockId n27 = b.block(4, Terminator::CondBranch);
    const BlockId n28 = b.block(5, Terminator::CondBranch);
    const BlockId n29 = b.block(1, Terminator::FallThrough);
    const BlockId n30 = b.block(7, Terminator::FallThrough);
    const BlockId n31 = b.block(3, Terminator::CondBranch);
    const BlockId n32 = b.block(8, Terminator::Return);

    // Weights are percent-of-transitions x 100 (flow conserving:
    // entry 60 units in, 60 units out through node 32).
    b.fallThrough(e, n25, 6000, 1.0);

    b.fallThrough(n25, n26, 7000, 0.318);  // cold side
    b.taken(n25, n31, 15000, 0.682);       // hot skip to the loop test

    b.fallThrough(n26, n27, 6000, 0.857);
    b.taken(n26, n28, 1000, 0.143);

    b.fallThrough(n27, n28, 2000, 0.333);
    b.taken(n27, n29, 4000, 0.667);        // hot skip, mispredicted orig.

    b.fallThrough(n28, n29, 1500, 0.5);
    b.taken(n28, n30, 1500, 0.5);

    b.fallThrough(n29, n30, 5500, 1.0);
    b.fallThrough(n30, n31, 7000, 1.0);

    b.taken(n31, n25, 16000, 0.727);       // the paper's "16" hot edge
    b.fallThrough(n31, n32, 6000, 0.273);

    validateOrDie(program);
    return program;
}

Program
figure2Alvinn()
{
    Program program("alvinn_input_hidden");
    const ProcId pid = program.addProc("input_hidden");
    Procedure &proc = program.proc(pid);
    CfgBuilder b(proc);

    const BlockId entry = b.block(3, Terminator::FallThrough);
    const BlockId loop = b.block(11, Terminator::CondBranch);
    const BlockId exit = b.block(4, Terminator::Return);

    b.fallThrough(entry, loop, 1000, 1.0);
    b.taken(loop, loop, 99000, 0.99);   // ~99 iterations per activation
    b.fallThrough(loop, exit, 1000, 0.01);

    validateOrDie(program);
    return program;
}

Program
figure3Loop()
{
    Program program("figure3_loop");
    const ProcId pid = program.addProc("loop");
    Procedure &proc = program.proc(pid);
    CfgBuilder b(proc);

    const BlockId e = b.block(2, Terminator::FallThrough);   // entry
    const BlockId a = b.block(4, Terminator::CondBranch);    // A
    const BlockId bb = b.block(6, Terminator::FallThrough);  // B
    const BlockId c = b.block(5, Terminator::UncondBranch);  // C
    const BlockId d = b.block(3, Terminator::Return);        // D

    b.fallThrough(e, a, 1, 1.0);
    b.fallThrough(a, bb, 9000, 0.99989);  // hot loop path
    b.taken(a, d, 1, 0.00011);            // cold exit
    b.fallThrough(bb, c, 9000, 1.0);
    b.taken(c, a, 9000, 1.0);             // loop-closing jump

    validateOrDie(program);
    return program;
}

}  // namespace balign
