#include "objective/objective.h"

#include "objective/exttsp.h"
#include "objective/table_cost.h"
#include "support/log.h"

namespace balign {

const char *
objectiveKindName(ObjectiveKind kind)
{
    switch (kind) {
      case ObjectiveKind::TableCost: return "table-cost";
      case ObjectiveKind::ExtTsp: return "exttsp";
    }
    return "?";
}

std::optional<ObjectiveKind>
parseObjectiveKind(std::string_view name)
{
    if (name == "table-cost" || name == "table" || name == "cost")
        return ObjectiveKind::TableCost;
    if (name == "exttsp" || name == "ext-tsp")
        return ObjectiveKind::ExtTsp;
    return std::nullopt;
}

const std::vector<ObjectiveKind> &
allObjectiveKinds()
{
    static const std::vector<ObjectiveKind> kinds = {
        ObjectiveKind::TableCost,
        ObjectiveKind::ExtTsp,
    };
    return kinds;
}

bool
objectiveArchDependent(ObjectiveKind kind)
{
    return kind == ObjectiveKind::TableCost;
}

double
AlignmentObjective::layoutCost(const Program &program,
                               const ProgramLayout &layout) const
{
    double total = 0.0;
    for (const auto &proc : program.procs())
        total += layoutCost(proc, layout.procs[proc.id()]);
    return total;
}

std::unique_ptr<AlignmentObjective>
makeObjective(ObjectiveKind kind, const CostModel *model)
{
    switch (kind) {
      case ObjectiveKind::TableCost:
        if (model == nullptr)
            panic("makeObjective: table-cost objective needs a cost model");
        return std::make_unique<TableCostObjective>(*model);
      case ObjectiveKind::ExtTsp:
        return std::make_unique<ExtTspObjective>();
    }
    panic("makeObjective: bad kind");
}

}  // namespace balign
