#include "objective/objective.h"

#include "objective/exttsp.h"
#include "objective/size_aware.h"
#include "objective/table_cost.h"
#include "support/log.h"

namespace balign {

const char *
objectiveKindName(ObjectiveKind kind)
{
    switch (kind) {
      case ObjectiveKind::TableCost: return "table-cost";
      case ObjectiveKind::ExtTsp: return "exttsp";
      case ObjectiveKind::SizeAware: return "size-aware";
    }
    return "?";
}

std::optional<ObjectiveKind>
parseObjectiveKind(std::string_view name)
{
    if (name == "table-cost" || name == "table" || name == "cost")
        return ObjectiveKind::TableCost;
    if (name == "exttsp" || name == "ext-tsp")
        return ObjectiveKind::ExtTsp;
    if (name == "size-aware" || name == "size")
        return ObjectiveKind::SizeAware;
    return std::nullopt;
}

const std::vector<ObjectiveKind> &
allObjectiveKinds()
{
    static const std::vector<ObjectiveKind> kinds = {
        ObjectiveKind::TableCost,
        ObjectiveKind::ExtTsp,
        ObjectiveKind::SizeAware,
    };
    return kinds;
}

bool
objectiveArchDependent(ObjectiveKind kind)
{
    return kind == ObjectiveKind::TableCost ||
           kind == ObjectiveKind::SizeAware;
}

double
AlignmentObjective::layoutCost(const Program &program,
                               const ProgramLayout &layout) const
{
    double total = 0.0;
    for (const auto &proc : program.procs())
        total += layoutCost(proc, layout.procs[proc.id()]);
    return total;
}

std::unique_ptr<AlignmentObjective>
makeObjective(ObjectiveKind kind, const CostModel *model)
{
    switch (kind) {
      case ObjectiveKind::TableCost:
        if (model == nullptr)
            panic("makeObjective: table-cost objective needs a cost model");
        return std::make_unique<TableCostObjective>(*model);
      case ObjectiveKind::ExtTsp:
        return std::make_unique<ExtTspObjective>();
      case ObjectiveKind::SizeAware:
        if (model == nullptr)
            panic("makeObjective: size-aware objective needs a cost model");
        return std::make_unique<SizeAwareObjective>(*model);
    }
    panic("makeObjective: bad kind");
}

}  // namespace balign
