#include "objective/table_cost.h"

#include <algorithm>

#include "bpred/static_cost.h"
#include "support/log.h"

namespace balign {

double
TableCostObjective::blockCost(const Procedure &proc, BlockId id,
                              BlockId next, const DirOracle &oracle,
                              BlockId prev) const
{
    auto idDir = [&](BlockId target, BlockId src) {
        if (target == prev && prev != kNoBlock)
            return DirHint::Backward;  // chain predecessor: placed before
        return oracle.dir(target, src);
    };
    const BasicBlock &block = proc.block(id);
    switch (block.term) {
      case Terminator::CondBranch: {
        const Edge &taken =
            proc.edge(static_cast<std::uint32_t>(proc.takenEdge(id)));
        const Edge &fall =
            proc.edge(static_cast<std::uint32_t>(proc.fallThroughEdge(id)));
        const DirHint dir_taken = idDir(taken.dst, id);
        const DirHint dir_fall = idDir(fall.dst, id);
        if (next == fall.dst) {
            return model_.condRealizationCost(taken.weight, fall.weight,
                                              CondRealization::FallAdjacent,
                                              dir_taken, dir_fall);
        }
        if (next == taken.dst) {
            return model_.condRealizationCost(taken.weight, fall.weight,
                                              CondRealization::TakenAdjacent,
                                              dir_taken, dir_fall);
        }
        // Unlinked (or linked to a non-successor, which chains never do):
        // the materializer will pick the cheaper branch-plus-jump form.
        const double to_fall = model_.condRealizationCost(
            taken.weight, fall.weight, CondRealization::NeitherJumpToFall,
            dir_taken, dir_fall);
        const double to_taken = model_.condRealizationCost(
            taken.weight, fall.weight, CondRealization::NeitherJumpToTaken,
            dir_taken, dir_fall);
        return std::min(to_fall, to_taken);
      }
      case Terminator::UncondBranch: {
        const Edge &taken =
            proc.edge(static_cast<std::uint32_t>(proc.takenEdge(id)));
        if (next == taken.dst)
            return model_.singleExitAdjacentCost();
        return model_.singleExitJumpCost(taken.weight);
      }
      case Terminator::FallThrough: {
        const std::int64_t fall_index = proc.fallThroughEdge(id);
        if (fall_index < 0)
            return 0.0;
        const Edge &fall = proc.edge(static_cast<std::uint32_t>(fall_index));
        if (next == fall.dst)
            return model_.singleExitAdjacentCost();
        return model_.singleExitJumpCost(fall.weight);
      }
      case Terminator::IndirectJump:
      case Terminator::Return:
        return 0.0;  // alignment cannot change these
    }
    panic("TableCostObjective::blockCost: bad terminator");
}

double
TableCostObjective::layoutCost(const Procedure &proc,
                               const ProcLayout &layout) const
{
    return modeledBranchCost(proc, layout, model_);
}

}  // namespace balign
