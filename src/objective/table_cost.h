/**
 * @file
 * The paper's Table-1 objective behind the AlignmentObjective interface.
 *
 * Edge-decision prices are the architecture cost model's realization costs
 * (the body formerly inlined into core/aligner.cc's blockAlignCost, moved
 * here unchanged so the refactor is byte-for-byte behaviour-preserving);
 * layout prices delegate to bpred/static_cost.h, the independent
 * recomputation from final addresses that lint's cost.monotone rule and
 * the fallback splice always used.
 */

#ifndef BALIGN_OBJECTIVE_TABLE_COST_H
#define BALIGN_OBJECTIVE_TABLE_COST_H

#include "bpred/cost_model.h"
#include "objective/objective.h"

namespace balign {

class TableCostObjective : public AlignmentObjective
{
  public:
    explicit TableCostObjective(const CostModel &model) : model_(model) {}

    std::string name() const override { return "table-cost"; }
    ObjectiveKind kind() const override { return ObjectiveKind::TableCost; }
    bool archDependent() const override { return true; }
    const CostModel *materializationModel() const override
    {
        return &model_;
    }

    double blockCost(const Procedure &proc, BlockId id, BlockId next,
                     const DirOracle &oracle = DirOracle(),
                     BlockId prev = kNoBlock) const override;
    double layoutCost(const Procedure &proc,
                      const ProcLayout &layout) const override;
    using AlignmentObjective::layoutCost;

    const CostModel &model() const { return model_; }

  private:
    const CostModel &model_;
};

}  // namespace balign

#endif  // BALIGN_OBJECTIVE_TABLE_COST_H
