#include "objective/exttsp.h"

#include <cstdio>
#include <sstream>

#include "layout/materialize.h"

namespace balign {

std::string
ExtTspParams::toString() const
{
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "fallthrough=%.17g forward=%.17g backward=%.17g "
                  "fwd-window=%u bwd-window=%u",
                  fallthroughWeight, forwardJumpWeight, backwardJumpWeight,
                  forwardWindow, backwardWindow);
    return buffer;
}

std::optional<ExtTspParams>
ExtTspParams::fromString(std::string_view text)
{
    ExtTspParams params;
    unsigned fwd = 0;
    unsigned bwd = 0;
    if (std::sscanf(std::string(text).c_str(),
                    "fallthrough=%lg forward=%lg backward=%lg "
                    "fwd-window=%u bwd-window=%u",
                    &params.fallthroughWeight, &params.forwardJumpWeight,
                    &params.backwardJumpWeight, &fwd, &bwd) != 5)
        return std::nullopt;
    params.forwardWindow = fwd;
    params.backwardWindow = bwd;
    return params;
}

bool
operator==(const ExtTspParams &a, const ExtTspParams &b)
{
    return a.fallthroughWeight == b.fallthroughWeight &&
           a.forwardJumpWeight == b.forwardJumpWeight &&
           a.backwardJumpWeight == b.backwardJumpWeight &&
           a.forwardWindow == b.forwardWindow &&
           a.backwardWindow == b.backwardWindow;
}

double
extTspJumpScore(const ExtTspParams &params, Addr source, Addr target,
                Weight weight)
{
    const double w = static_cast<double>(weight);
    if (target >= source) {
        const Addr distance = target - source;
        if (distance >= params.forwardWindow)
            return 0.0;
        return w * params.forwardJumpWeight *
               (1.0 - static_cast<double>(distance) /
                          static_cast<double>(params.forwardWindow));
    }
    const Addr distance = source - target;
    if (distance >= params.backwardWindow)
        return 0.0;
    return w * params.backwardJumpWeight *
           (1.0 - static_cast<double>(distance) /
                      static_cast<double>(params.backwardWindow));
}

namespace {

/// Score of one realized transfer: fallthrough when adjacent, else the
/// distance-decayed jump bonus from the transfer instruction at
/// @p branch_addr to the edge's target block.
double
transferScore(const ExtTspParams &params, const ProcLayout &layout,
              bool adjacent, Addr branch_addr, BlockId dst, Weight weight)
{
    if (adjacent)
        return static_cast<double>(weight) * params.fallthroughWeight;
    return extTspJumpScore(params, branch_addr + 1,
                           layout.blocks[dst].addr, weight);
}

}  // namespace

double
extTspScore(const Procedure &proc, const ProcLayout &layout,
            const ExtTspParams &params)
{
    double score = 0.0;
    for (const auto &block : proc.blocks()) {
        const BlockLayout &bl = layout.blocks[block.id];
        switch (block.term) {
          case Terminator::CondBranch: {
            const Edge &taken = proc.edge(
                static_cast<std::uint32_t>(proc.takenEdge(block.id)));
            const Edge &fall = proc.edge(static_cast<std::uint32_t>(
                proc.fallThroughEdge(block.id)));
            const EdgeKind branch_kind = branchTargetKind(bl.cond);
            const Edge &branch_edge =
                branch_kind == EdgeKind::Taken ? taken : fall;
            const Edge &through_edge =
                branch_kind == EdgeKind::Taken ? fall : taken;
            // The branch instruction carries one edge; the other is a
            // fallthrough when adjacent (Fall/TakenAdjacent) or an
            // inserted jump (both Neither realizations).
            score += transferScore(params, layout, false, bl.branchAddr,
                                   branch_edge.dst, branch_edge.weight);
            const bool through_adjacent =
                bl.cond == CondRealization::FallAdjacent ||
                bl.cond == CondRealization::TakenAdjacent;
            score += transferScore(params, layout, through_adjacent,
                                   bl.jumpAddr, through_edge.dst,
                                   through_edge.weight);
            break;
          }
          case Terminator::UncondBranch: {
            const Edge &taken = proc.edge(
                static_cast<std::uint32_t>(proc.takenEdge(block.id)));
            score += transferScore(params, layout, bl.jumpRemoved,
                                   bl.branchAddr, taken.dst, taken.weight);
            break;
          }
          case Terminator::FallThrough: {
            const std::int64_t fall_index =
                proc.fallThroughEdge(block.id);
            if (fall_index < 0)
                break;  // dead-end block: nothing to realize
            const Edge &fall =
                proc.edge(static_cast<std::uint32_t>(fall_index));
            score += transferScore(params, layout, !bl.jumpInserted,
                                   bl.jumpAddr, fall.dst, fall.weight);
            break;
          }
          case Terminator::IndirectJump:
          case Terminator::Return:
            break;  // no direct transfer to score
        }
    }
    return score;
}

double
extTspScore(const Program &program, const ProgramLayout &layout,
            const ExtTspParams &params)
{
    double score = 0.0;
    for (const auto &proc : program.procs())
        score += extTspScore(proc, layout.procs[proc.id()], params);
    return score;
}

double
ExtTspObjective::blockCost(const Procedure &proc, BlockId id, BlockId next,
                           const DirOracle &oracle, BlockId prev) const
{
    (void)oracle;  // ExtTSP has no direction dependence
    (void)prev;
    if (next == kNoBlock)
        return 0.0;
    const BasicBlock &block = proc.block(id);
    auto linkGain = [&](std::int64_t edge_index) {
        if (edge_index < 0)
            return 0.0;
        const Edge &edge =
            proc.edge(static_cast<std::uint32_t>(edge_index));
        if (edge.dst != next)
            return 0.0;
        return -static_cast<double>(edge.weight) *
               params_.fallthroughWeight;
    };
    switch (block.term) {
      case Terminator::CondBranch:
        // Whichever out-edge the link realizes becomes a fallthrough.
        return linkGain(proc.takenEdge(id)) + linkGain(proc.fallThroughEdge(id));
      case Terminator::UncondBranch:
        return linkGain(proc.takenEdge(id));
      case Terminator::FallThrough:
        return linkGain(proc.fallThroughEdge(id));
      case Terminator::IndirectJump:
      case Terminator::Return:
        return 0.0;
    }
    return 0.0;
}

double
ExtTspObjective::layoutCost(const Procedure &proc,
                            const ProcLayout &layout) const
{
    return -extTspScore(proc, layout, params_);
}

}  // namespace balign
