#include "objective/size_aware.h"

#include "emit/relax.h"
#include "support/log.h"

namespace balign {

namespace {

/// The Variable model is what gives decisions a size dimension; the
/// FixedWord model prices every choice identically.
const EncodingModel &
sizeModel()
{
    return encodingModel(EncodingModelKind::Variable);
}

}  // namespace

double
SizeAwareObjective::blockCost(const Procedure &proc, BlockId id,
                              BlockId next, const DirOracle &oracle,
                              BlockId prev) const
{
    const double cycles = table_.blockCost(proc, id, next, oracle, prev);

    // Bytes this decision commits for the block's control transfer,
    // branches optimistically at their short form. Classes whose size
    // no decision can change (body, calls, returns, indirect jumps)
    // shift every candidate equally and are left out.
    const EncodingModel &model = sizeModel();
    const unsigned short_cond =
        model.instrBytes(InstrClass::CondBranch, BranchForm::Short);
    const unsigned short_jump =
        model.instrBytes(InstrClass::Jump, BranchForm::Short);

    const BasicBlock &block = proc.block(id);
    unsigned bytes = 0;
    switch (block.term) {
      case Terminator::CondBranch: {
        const Edge &taken =
            proc.edge(static_cast<std::uint32_t>(proc.takenEdge(id)));
        const Edge &fall =
            proc.edge(static_cast<std::uint32_t>(proc.fallThroughEdge(id)));
        // Adjacent successor: just the conditional branch. Neither
        // adjacent: the materializer must also insert a jump.
        bytes = next == fall.dst || next == taken.dst
                    ? short_cond
                    : short_cond + short_jump;
        break;
      }
      case Terminator::UncondBranch: {
        const Edge &taken =
            proc.edge(static_cast<std::uint32_t>(proc.takenEdge(id)));
        bytes = next == taken.dst ? 0 : short_jump;  // removable jump
        break;
      }
      case Terminator::FallThrough: {
        const std::int64_t fall_index = proc.fallThroughEdge(id);
        if (fall_index >= 0 &&
            proc.edge(static_cast<std::uint32_t>(fall_index)).dst != next)
            bytes = short_jump;  // jump must be inserted
        break;
      }
      case Terminator::IndirectJump:
      case Terminator::Return:
        break;
    }
    return cycles + bytesWeight_ * bytes;
}

double
SizeAwareObjective::layoutCost(const Procedure &proc,
                               const ProcLayout &layout) const
{
    const double cycles = table_.layoutCost(proc, layout);
    const ProcRelaxation relaxed = relaxProc(proc, layout, sizeModel());
    return cycles + bytesWeight_ * static_cast<double>(relaxed.byteSize);
}

}  // namespace balign
