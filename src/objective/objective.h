/**
 * @file
 * Pluggable alignment objectives.
 *
 * The paper's aligners optimize exactly one quantity — the Table-1
 * architectural branch cost — but that is a property of the *objective*,
 * not of the chaining algorithms. AlignmentObjective is the seam: it
 * prices a single edge-alignment decision (what the Cost and TryN chain
 * searches consult), prices a whole realized procedure layout (what the
 * greedy-fallback splice and lint's cost.monotone rule consult), and
 * reports whether those prices depend on the target architecture (what
 * the experiment matrix uses to share layouts across architectures).
 *
 * Two implementations exist:
 *
 *  - TableCostObjective (objective/table_cost.h): the paper's Table-1
 *    cost model, byte-for-byte the pre-refactor behaviour.
 *  - ExtTspObjective (objective/exttsp.h): the distance-aware ExtTSP
 *    score of Newell & Pupyrev, "Improved Basic Block Reordering"
 *    (arXiv:1809.04676), architecture-independent.
 *
 * Every objective is a COST (lower is better); score-maximizing
 * objectives return the negated score. Both prices are purely
 * intra-procedural (they read only same-procedure edges and addresses),
 * which is what makes the per-procedure fallback splice in
 * core/align_program.cc exact for any objective (DESIGN.md §9).
 */

#ifndef BALIGN_OBJECTIVE_OBJECTIVE_H
#define BALIGN_OBJECTIVE_OBJECTIVE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cfg/program.h"
#include "layout/chain.h"
#include "layout/layout_result.h"
#include "layout/realization.h"
#include "support/types.h"

namespace balign {

class CostModel;

/// The objectives an aligner can optimize.
enum class ObjectiveKind : std::uint8_t {
    TableCost,  ///< paper Table-1 architectural branch cost (cycles)
    ExtTsp,     ///< negated ExtTSP layout score (arXiv:1809.04676)
    SizeAware,  ///< Table-1 cost + encoded-byte pressure (emit/relax.h)
};

/// Printable kind name ("table-cost" / "exttsp" / "size-aware").
const char *objectiveKindName(ObjectiveKind kind);

/// Inverse of objectiveKindName; nullopt for unknown names.
std::optional<ObjectiveKind> parseObjectiveKind(std::string_view name);

/// Every objective the library knows.
const std::vector<ObjectiveKind> &allObjectiveKinds();

/// Whether layouts priced under @p kind depend on the architecture's cost
/// model (true for TableCost and SizeAware).
bool objectiveArchDependent(ObjectiveKind kind);

/**
 * Direction oracle for alignment-time cost estimation. Without a position
 * table it falls back to original block ids (approximate source order); a
 * position table from a previous layout iteration gives exact hints for
 * that layout.
 *
 * When a live ChainSet is attached (withChains), blocks already placed in
 * the same chain are resolved from their relative chain order, which is
 * definitive: links never reorder within a chain, so whatever the final
 * chain concatenation does, a same-chain target before its branch stays
 * backward. This is what lets the chain searches price a loop-rotation
 * decision correctly — the id/position fallbacks predate the rotation and
 * point the wrong way (paper §6: directions are circular until placed).
 */
class DirOracle
{
  public:
    DirOracle() = default;
    explicit DirOracle(const std::vector<std::uint32_t> *positions)
        : positions_(positions)
    {
    }

    /// A copy of this oracle that resolves same-chain queries from
    /// @p chains first. The ChainSet must outlive the returned oracle and
    /// may keep mutating (queries read its current state).
    DirOracle
    withChains(const ChainSet *chains) const
    {
        DirOracle oracle = *this;
        oracle.chains_ = chains;
        return oracle;
    }

    DirHint
    dir(BlockId target, BlockId src) const
    {
        if (chains_ != nullptr && target != src) {
            // Bounded walks keep a blockCost query O(1): beyond the
            // budget (long chains) this degrades to the fallback hint.
            constexpr unsigned kChainWalkBudget = 64;
            BlockId b = chains_->next(target);
            for (unsigned i = 0; i < kChainWalkBudget && b != kNoBlock;
                 ++i, b = chains_->next(b)) {
                if (b == src)
                    return DirHint::Backward;
            }
            b = chains_->next(src);
            for (unsigned i = 0; i < kChainWalkBudget && b != kNoBlock;
                 ++i, b = chains_->next(b)) {
                if (b == target)
                    return DirHint::Forward;
            }
        }
        if (positions_ == nullptr)
            return target <= src ? DirHint::Backward : DirHint::Forward;
        return (*positions_)[target] <= (*positions_)[src]
                   ? DirHint::Backward
                   : DirHint::Forward;
    }

  private:
    const std::vector<std::uint32_t> *positions_ = nullptr;
    const ChainSet *chains_ = nullptr;
};

/**
 * One alignment objective: prices edge-alignment decisions during chain
 * construction and whole realized layouts after materialization. Lower is
 * better for both prices; the two need not share units across objectives
 * (cycles for TableCost, negated score units for ExtTsp) — callers never
 * mix prices from different objectives.
 */
class AlignmentObjective
{
  public:
    virtual ~AlignmentObjective() = default;

    /// Human-readable name ("table-cost", "exttsp").
    virtual std::string name() const = 0;

    /// The enum tag of this objective.
    virtual ObjectiveKind kind() const = 0;

    /// True when prices depend on the architecture cost model, so layouts
    /// guided by this objective must be rebuilt per architecture.
    virtual bool archDependent() const = 0;

    /**
     * Cost model the materializer should use for realization decisions
     * under this objective, or null for the classic cost-blind
     * materializer (architecture-independent objectives).
     */
    virtual const CostModel *materializationModel() const { return nullptr; }

    /**
     * Price (lower is better) of block @p id given its current chain
     * successor @p next (kNoBlock when unlinked) and chain predecessor
     * @p prev, with direction hints from @p oracle. This is the quantity
     * the Cost and TryN chain searches sum and minimize.
     */
    virtual double blockCost(const Procedure &proc, BlockId id, BlockId next,
                             const DirOracle &oracle = DirOracle(),
                             BlockId prev = kNoBlock) const = 0;

    /**
     * Price of one procedure's realized layout, recomputed from final
     * addresses (independent of any aligner bookkeeping). Must be purely
     * intra-procedural: invariant under rebasing the procedure, so summing
     * per-procedure minima is exact (the fallback splice relies on this).
     */
    virtual double layoutCost(const Procedure &proc,
                              const ProcLayout &layout) const = 0;

    /// Whole-program price: the sum of the per-procedure prices.
    double layoutCost(const Program &program,
                      const ProgramLayout &layout) const;
};

/**
 * Creates the objective for @p kind. @p model is required for TableCost
 * (fatal when null) and ignored by architecture-independent objectives;
 * it must outlive the returned objective.
 */
std::unique_ptr<AlignmentObjective> makeObjective(ObjectiveKind kind,
                                                  const CostModel *model);

}  // namespace balign

#endif  // BALIGN_OBJECTIVE_OBJECTIVE_H
