/**
 * @file
 * Size-aware objective: Table-1 branch cost plus encoded-size pressure.
 *
 * The paper prices only dynamic branch cycles; on a machine with
 * variable-length encodings (emit/encoding.h) a layout decision also
 * changes static code size — an adjacent successor needs no jump bytes,
 * and a branch whose target lands within the short-displacement range
 * encodes smaller, packing denser icache lines (the intuition behind
 * ExtTSP's distance decay, arXiv:1809.04676 §2).
 *
 * SizeAwareObjective wraps TableCostObjective and adds
 * bytesWeight * encoded-bytes to both prices:
 *
 *  - blockCost adds the bytes the decision commits under the Variable
 *    model, branches optimistically priced at their short form (the
 *    relaxation pass, not the chain search, settles final forms);
 *  - layoutCost adds the procedure's relaxed byte size — the true
 *    fixpoint of emit/relax.h — which stays purely intra-procedural
 *    (relaxation never crosses procedures), preserving the
 *    rebase-invariance the greedy-fallback splice needs.
 *
 * With the default bytesWeight of 1.0, cycle terms (profile-weighted,
 * typically 1e3..1e8) dominate and bytes break ties toward denser code;
 * larger weights trade cycles for size.
 */

#ifndef BALIGN_OBJECTIVE_SIZE_AWARE_H
#define BALIGN_OBJECTIVE_SIZE_AWARE_H

#include "objective/table_cost.h"

namespace balign {

class SizeAwareObjective : public AlignmentObjective
{
  public:
    explicit SizeAwareObjective(const CostModel &model,
                                double bytesWeight = 1.0)
        : table_(model), bytesWeight_(bytesWeight)
    {
    }

    std::string name() const override { return "size-aware"; }
    ObjectiveKind kind() const override { return ObjectiveKind::SizeAware; }
    bool archDependent() const override { return true; }
    const CostModel *materializationModel() const override
    {
        return table_.materializationModel();
    }

    double blockCost(const Procedure &proc, BlockId id, BlockId next,
                     const DirOracle &oracle = DirOracle(),
                     BlockId prev = kNoBlock) const override;
    double layoutCost(const Procedure &proc,
                      const ProcLayout &layout) const override;
    using AlignmentObjective::layoutCost;

    double bytesWeight() const { return bytesWeight_; }

  private:
    TableCostObjective table_;
    double bytesWeight_;
};

}  // namespace balign

#endif  // BALIGN_OBJECTIVE_SIZE_AWARE_H
