/**
 * @file
 * The ExtTSP layout objective of Newell & Pupyrev, "Improved Basic Block
 * Reordering" (arXiv:1809.04676), behind the AlignmentObjective interface.
 *
 * ExtTSP generalizes the classic maximum-fallthrough TSP formulation: a
 * realized control transfer over edge (s, t) with weight w contributes
 *
 *   w * 1.0                           when t is layout-adjacent (fallthrough)
 *   w * 0.1 * (1 - d / 1024)          short forward jump, distance d < 1024
 *   w * 0.1 * (1 - d / 640)           short backward jump, distance d < 640
 *   0                                 otherwise
 *
 * where d is the distance from the end of the transfer instruction to the
 * target block's start. The paper measures d in bytes; this model has no
 * byte sizes, so d and the windows are in instruction words (every
 * instruction is one word here — the windows keep the paper's constants
 * and simply assume 1-byte instructions, preserving the shape of the
 * decay). The score is a MAXIMIZED quantity; the objective price is its
 * negation so that, like every AlignmentObjective, lower is better.
 *
 * ExtTSP reads only intra-procedural distances, so it is invariant under
 * procedure rebasing and architecture-independent: one ExtTSP-guided
 * layout serves all eight architectures (modulo the BT/FNT chain-order
 * override, which is a chain-ordering policy, not an objective).
 */

#ifndef BALIGN_OBJECTIVE_EXTTSP_H
#define BALIGN_OBJECTIVE_EXTTSP_H

#include <optional>
#include <string>
#include <string_view>

#include "objective/objective.h"

namespace balign {

/// Tunables of the ExtTSP score (defaults are the paper's).
struct ExtTspParams
{
    /// Weight of a realized fallthrough transfer.
    double fallthroughWeight = 1.0;
    /// Peak weight of a short forward jump (decays linearly with distance).
    double forwardJumpWeight = 0.1;
    /// Peak weight of a short backward jump.
    double backwardJumpWeight = 0.1;
    /// Forward jump window in instruction words (score is 0 at and beyond).
    std::uint32_t forwardWindow = 1024;
    /// Backward jump window in instruction words.
    std::uint32_t backwardWindow = 640;

    /// One-line key=value serialization (round-trips via fromString).
    std::string toString() const;
    /// Inverse of toString; nullopt on malformed input.
    static std::optional<ExtTspParams> fromString(std::string_view text);
};

bool operator==(const ExtTspParams &a, const ExtTspParams &b);

/**
 * Score of one realized jump (non-adjacent transfer) with weight @p weight
 * from the instruction END address @p source (branch address + 1) to block
 * start @p target. Adjacent fallthroughs are NOT priced here — callers
 * detect adjacency from the realization record and apply
 * fallthroughWeight.
 */
double extTspJumpScore(const ExtTspParams &params, Addr source, Addr target,
                       Weight weight);

/// ExtTSP score of one realized procedure layout (higher is better).
double extTspScore(const Procedure &proc, const ProcLayout &layout,
                   const ExtTspParams &params = {});

/// ExtTSP score of a whole program layout.
double extTspScore(const Program &program, const ProgramLayout &layout,
                   const ExtTspParams &params = {});

class ExtTspObjective : public AlignmentObjective
{
  public:
    ExtTspObjective() = default;
    explicit ExtTspObjective(const ExtTspParams &params) : params_(params) {}

    std::string name() const override { return "exttsp"; }
    ObjectiveKind kind() const override { return ObjectiveKind::ExtTsp; }
    bool archDependent() const override { return false; }

    /**
     * Decision price: the negated fallthrough gain of the realized link
     * (distance bonuses are unknowable before chains are placed, so an
     * unlinked block prices at 0). Direction hints are irrelevant to
     * ExtTSP and ignored.
     */
    double blockCost(const Procedure &proc, BlockId id, BlockId next,
                     const DirOracle &oracle = DirOracle(),
                     BlockId prev = kNoBlock) const override;

    /// Negated extTspScore of the realized layout.
    double layoutCost(const Procedure &proc,
                      const ProcLayout &layout) const override;
    using AlignmentObjective::layoutCost;

    const ExtTspParams &params() const { return params_; }

  private:
    ExtTspParams params_;
};

}  // namespace balign

#endif  // BALIGN_OBJECTIVE_EXTTSP_H
