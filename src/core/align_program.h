/**
 * @file
 * Program-level alignment driver: runs an alignment algorithm over every
 * procedure (the paper aligns each procedure independently; no procedure
 * splitting or reordering), orders the chains, and materializes the final
 * binary layout.
 */

#ifndef BALIGN_CORE_ALIGN_PROGRAM_H
#define BALIGN_CORE_ALIGN_PROGRAM_H

#include "cfg/program.h"
#include "core/aligner.h"
#include "layout/layout_result.h"

namespace balign {

/**
 * Aligns @p program for the architecture described by @p model.
 *
 * @param kind which algorithm (Original returns the identity layout)
 * @param model architecture cost model (unused by Original/Greedy)
 * @param options algorithm and chain-ordering options
 */
ProgramLayout alignProgram(const Program &program, AlignerKind kind,
                           const CostModel *model,
                           const AlignOptions &options = {});

/**
 * Aligns @p program with an existing aligner instance (for custom
 * configurations / ablations).
 */
ProgramLayout alignProgram(const Program &program, const Aligner &aligner,
                           const CostModel *model,
                           const AlignOptions &options = {});

}  // namespace balign

#endif  // BALIGN_CORE_ALIGN_PROGRAM_H
