#include "core/realign.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "layout/materialize.h"
#include "support/log.h"
#include "verify/verify.h"

namespace balign {

double
profileDivergence(const Procedure &old_proc, const Procedure &new_proc)
{
    if (old_proc.numEdges() != new_proc.numEdges())
        panic("profileDivergence(%s): edge count mismatch (%zu vs %zu)",
              new_proc.name().c_str(), old_proc.numEdges(),
              new_proc.numEdges());
    const auto old_total =
        static_cast<double>(old_proc.totalEdgeWeight());
    const auto new_total =
        static_cast<double>(new_proc.totalEdgeWeight());
    if (old_total == 0.0 && new_total == 0.0)
        return 0.0;
    if (old_total == 0.0 || new_total == 0.0)
        return 2.0;
    double l1 = 0.0;
    for (std::uint32_t i = 0; i < old_proc.numEdges(); ++i) {
        const double a =
            static_cast<double>(old_proc.edge(i).weight) / old_total;
        const double b =
            static_cast<double>(new_proc.edge(i).weight) / new_total;
        l1 += std::abs(a - b);
    }
    return l1;
}

namespace {

/**
 * Runs the alignProgram pipeline for a subset of procedures, each
 * materialized at base 0 (the caller re-bases). This mirrors
 * align_program.cc stage for stage — direction-refinement iterations,
 * chain ordering, cost-model materialization, and the per-procedure
 * greedy fallback under the active objective — because every one of
 * those stages is per-procedure and base-invariant, which is what makes
 * the incremental result byte-identical to the full one.
 */
std::vector<ProcLayout>
alignSelectedProcs(const Program &program, const std::vector<ProcId> &ids,
                   AlignerKind kind, const CostModel *model,
                   const AlignOptions &options)
{
    std::vector<ProcLayout> result(ids.size());
    if (ids.empty())
        return result;

    if (kind == AlignerKind::Original) {
        ProgramLayout original = originalLayout(program);
        for (std::size_t i = 0; i < ids.size(); ++i)
            result[i] = std::move(original.procs[ids[i]]);
        return result;
    }

    const auto aligner = makeAligner(kind, model, options);
    MaterializeOptions mat;
    if (aligner->wantsCostModelMaterialization()) {
        if (model == nullptr)
            panic("realignProgram: aligner %s needs a cost model",
                  aligner->name().c_str());
        mat.costModel = model;
    }
    const unsigned iterations = aligner->wantsCostModelMaterialization()
                                    ? std::max(1u, options.directionIterations)
                                    : 1;
    for (unsigned iter = 0; iter < iterations; ++iter) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const Procedure &proc = program.proc(ids[i]);
            std::vector<std::uint32_t> positions;
            DirOracle oracle;
            if (iter > 0) {
                const ProcLayout &prev = result[i];
                positions.resize(proc.numBlocks());
                for (BlockId b = 0; b < proc.numBlocks(); ++b)
                    positions[b] = prev.blocks[b].orderIndex;
                oracle = DirOracle(&positions);
            }
            const ChainSet chains = aligner->alignProc(proc, oracle);
            result[i] = materializeProc(
                proc, orderChains(proc, chains, options.chainOrder), 0, mat);
        }
    }

    // Per-procedure monotone fallback (align_program.cc): never worse
    // than Greedy under the active objective. Objective prices are
    // base-invariant, so comparing both candidates at base 0 decides
    // exactly as cheaperPerProc does on the contiguous layouts.
    const bool can_price =
        !objectiveArchDependent(options.objective) || model != nullptr;
    if (kind != AlignerKind::Greedy && aligner->objectiveGuided() &&
        can_price) {
        const auto objective = makeObjective(options.objective, model);
        std::vector<ProcLayout> greedy = alignSelectedProcs(
            program, ids, AlignerKind::Greedy, model, options);
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const Procedure &proc = program.proc(ids[i]);
            const double candidate_cost =
                objective->layoutCost(proc, result[i]);
            const double baseline_cost =
                objective->layoutCost(proc, greedy[i]);
            if (baseline_cost < candidate_cost)
                result[i] = std::move(greedy[i]);
        }
    }
    return result;
}

}  // namespace

ProgramLayout
realignProgram(const Program &old_program, const ProgramLayout &old_layout,
               const Program &new_program, AlignerKind kind,
               const CostModel *model, const AlignOptions &options,
               double threshold, RealignStats *stats)
{
    if (old_program.numProcs() != new_program.numProcs())
        panic("realignProgram: procedure count mismatch (%zu vs %zu)",
              old_program.numProcs(), new_program.numProcs());
    if (old_layout.procs.size() != old_program.numProcs())
        panic("realignProgram: old layout covers %zu of %zu procedures",
              old_layout.procs.size(), old_program.numProcs());

    RealignStats local;
    local.procsTotal = new_program.numProcs();
    std::vector<ProcId> moved;
    for (ProcId id = 0; id < new_program.numProcs(); ++id) {
        const double divergence =
            profileDivergence(old_program.proc(id), new_program.proc(id));
        local.maxDivergence = std::max(local.maxDivergence, divergence);
        if (divergence >= threshold)
            moved.push_back(id);
    }
    local.procsRealigned = moved.size();

    std::vector<ProcLayout> fresh =
        alignSelectedProcs(new_program, moved, kind, model, options);

    ProgramLayout layout;
    layout.procs.resize(new_program.numProcs());
    std::size_t next_moved = 0;
    Addr base = 0;
    for (ProcId id = 0; id < new_program.numProcs(); ++id) {
        if (next_moved < moved.size() && moved[next_moved] == id)
            layout.procs[id] = std::move(fresh[next_moved++]);
        else
            layout.procs[id] = old_layout.procs[id];  // verbatim splice
        rebaseProcLayout(layout.procs[id], base);
        base += layout.procs[id].totalInstrs;
    }
    layout.totalInstrs = base;

    // Every splice is discharged through the translation validator, same
    // as a full alignProgram: an incremental layout is never less proven
    // than a full one.
    if (options.verify) {
        const VerifyResult proof = verifyLayout(new_program, layout);
        if (!proof.verified())
            panic("realignProgram: %s spliced layout failed verification: %s",
                  alignerKindName(kind),
                  formatVerifyFailure(proof.failures.front()).c_str());
    }
    if (stats != nullptr)
        *stats = local;
    return layout;
}

}  // namespace balign
