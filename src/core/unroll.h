/**
 * @file
 * Single-block loop unrolling by basic-block duplication — the extension
 * the paper proposes in §3: "simply duplicating the basic block and then
 * inverting (aligning) the branch condition for the added conditional
 * branches ... would offer some performance improvement, even if the other
 * optimizations offered by loop unrolling were ignored."
 *
 * A self-loop block L (conditional whose taken edge targets itself) is
 * replaced by `factor` copies laid out consecutively. The first factor-1
 * copies continue by FALLING THROUGH to the next copy (their branch, taken
 * on loop exit, jumps forward past the chain); the last copy branches
 * backward to the first. One full pass through the chain executes `factor`
 * iterations with factor-1 fall-through branches and a single taken one,
 * cutting misfetches on every architecture and mispredictions on
 * FALLTHROUGH.
 *
 * The transformation is performed on the CFG before profiling; callers
 * re-profile afterwards (duplication invalidates old edge weights, which
 * are cleared). Deterministic outcome patterns on the loop branch are
 * replaced by the equivalent stochastic bias, since the copies partition
 * the original iteration sequence.
 */

#ifndef BALIGN_CORE_UNROLL_H
#define BALIGN_CORE_UNROLL_H

#include "cfg/program.h"

namespace balign {

struct UnrollOptions
{
    /// Copies of the loop block (>= 2).
    unsigned factor = 4;

    /// Only unroll loops whose self edge carries at least this weight
    /// (requires a profile; 0 unrolls every self loop).
    Weight minWeight = 0;

    /// Skip loop blocks bigger than this (code-size guard).
    std::uint32_t maxBlockInstrs = 48;

    /// Cap on unrolled loops per procedure (0 = unlimited).
    std::size_t maxLoopsPerProc = 0;
};

/**
 * Unrolls eligible self-loop blocks in @p proc, renumbering blocks as
 * needed (fall-through adjacency is preserved, so the identity layout
 * stays exact). All edge weights in the procedure are cleared.
 *
 * @return the number of loops unrolled.
 */
unsigned unrollSelfLoops(Procedure &proc, const UnrollOptions &options = {});

/// Program-wide driver; clears all weights, returns total loops unrolled.
unsigned unrollSelfLoops(Program &program,
                         const UnrollOptions &options = {});

}  // namespace balign

#endif  // BALIGN_CORE_UNROLL_H
