#include "core/exttsp_align.h"

#include <cmath>
#include <limits>

#include "core/greedy.h"

namespace balign {

namespace {

/**
 * Chain position bookkeeping beside a ChainSet: which chain (identified by
 * a representative block) each block belongs to, its instruction offset
 * within that chain, and each chain's block list and total size. ChainSet
 * remains the source of truth for link legality; this mirror only serves
 * distance computation.
 */
struct ChainTable
{
    std::vector<BlockId> rep;                  ///< block -> chain rep
    std::vector<std::uint64_t> offset;         ///< block -> offset in chain
    std::vector<std::vector<BlockId>> blocks;  ///< rep -> member blocks
    std::vector<std::uint64_t> size;           ///< rep -> total instrs

    explicit ChainTable(const Procedure &proc)
        : rep(proc.numBlocks()),
          offset(proc.numBlocks(), 0),
          blocks(proc.numBlocks()),
          size(proc.numBlocks(), 0)
    {
        for (BlockId b = 0; b < proc.numBlocks(); ++b) {
            rep[b] = b;
            blocks[b] = {b};
            size[b] = proc.block(b).numInstrs;
        }
    }

    /// Appends chain @p src_rep's blocks after chain @p dst_rep's.
    void
    merge(BlockId dst_rep, BlockId src_rep)
    {
        const std::uint64_t shift = size[dst_rep];
        for (const BlockId b : blocks[src_rep]) {
            rep[b] = dst_rep;
            offset[b] += shift;
            blocks[dst_rep].push_back(b);
        }
        blocks[src_rep].clear();
        size[dst_rep] += size[src_rep];
        size[src_rep] = 0;
    }
};

}  // namespace

ChainSet
ExtTspAligner::alignProc(const Procedure &proc, const DirOracle &oracle) const
{
    (void)oracle;  // ExtTSP has no direction dependence
    const std::size_t n = proc.numBlocks();
    ChainSet chains(n, proc.entry());
    ChainTable table(proc);

    // Candidate merges are seeded by alignable CFG edges in the shared
    // weight order; rank breaks every tie deterministically.
    const std::vector<std::uint32_t> candidates =
        alignableEdgesByWeight(proc);
    std::vector<std::size_t> rank(proc.numEdges(), candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
        rank[candidates[i]] = i;

    // ExtTSP gain of concatenating t's chain after s's: the new score of
    // every CFG edge crossing the two chains (cross edges score 0 while
    // the chains are apart; intra-chain distances are unchanged).
    auto mergeGain = [&](const Edge &seed) {
        const BlockId rep_a = table.rep[seed.src];
        const BlockId rep_b = table.rep[seed.dst];
        const std::uint64_t shift = table.size[rep_a];
        double gain = 0.0;
        auto crossEdges = [&](BlockId chain_rep, BlockId other_rep,
                              bool src_in_b) {
            for (const BlockId u : table.blocks[chain_rep]) {
                for (const std::uint32_t index : proc.block(u).outEdges) {
                    const Edge &edge = proc.edge(index);
                    if (edge.kind == EdgeKind::Other)
                        continue;
                    if (table.rep[edge.dst] != other_rep)
                        continue;
                    const std::uint64_t pos_u =
                        table.offset[u] + (src_in_b ? shift : 0);
                    const std::uint64_t pos_v =
                        table.offset[edge.dst] + (src_in_b ? 0 : shift);
                    const std::uint64_t end_u =
                        pos_u + proc.block(u).numInstrs;
                    if (pos_v == end_u) {
                        gain += static_cast<double>(edge.weight) *
                                params_.fallthroughWeight;
                    } else {
                        gain += extTspJumpScore(params_, end_u, pos_v,
                                                edge.weight);
                    }
                }
            }
        };
        crossEdges(rep_a, rep_b, false);
        crossEdges(rep_b, rep_a, true);
        return gain;
    };

    // Greedy max-gain loop with cached gains: a merge only changes the
    // gains of candidates touching the merged chain.
    std::vector<double> cached(candidates.size(),
                               std::numeric_limits<double>::quiet_NaN());
    while (true) {
        std::size_t best = candidates.size();
        double best_gain = -1.0;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const Edge &edge = proc.edge(candidates[i]);
            if (!chains.canLink(edge.src, edge.dst))
                continue;
            // A conditional source offers only its heavier out-edge while
            // both are still feasible (see file comment).
            if (proc.block(edge.src).term == Terminator::CondBranch) {
                const auto taken_index =
                    static_cast<std::uint32_t>(proc.takenEdge(edge.src));
                const auto fall_index = static_cast<std::uint32_t>(
                    proc.fallThroughEdge(edge.src));
                const std::uint32_t sibling_index =
                    candidates[i] == taken_index ? fall_index : taken_index;
                const Edge &sibling = proc.edge(sibling_index);
                if (rank[sibling_index] < rank[candidates[i]] &&
                    chains.canLink(edge.src, sibling.dst))
                    continue;
            }
            if (std::isnan(cached[i]))
                cached[i] = mergeGain(edge);
            if (cached[i] > best_gain) {
                best_gain = cached[i];
                best = i;
            }
        }
        if (best == candidates.size())
            break;

        const Edge &edge = proc.edge(candidates[best]);
        const BlockId rep_a = table.rep[edge.src];
        chains.link(edge.src, edge.dst);
        table.merge(rep_a, table.rep[edge.dst]);
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const Edge &candidate = proc.edge(candidates[i]);
            if (table.rep[candidate.src] == rep_a ||
                table.rep[candidate.dst] == rep_a)
                cached[i] = std::numeric_limits<double>::quiet_NaN();
        }
    }
    return chains;
}

}  // namespace balign
