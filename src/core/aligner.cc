#include "core/aligner.h"

#include <algorithm>

#include "core/cost_align.h"
#include "core/greedy.h"
#include "core/try15.h"
#include "support/log.h"

namespace balign {

const char *
alignerKindName(AlignerKind kind)
{
    switch (kind) {
      case AlignerKind::Original: return "original";
      case AlignerKind::Greedy: return "greedy";
      case AlignerKind::Cost: return "cost";
      case AlignerKind::Try15: return "try15";
    }
    return "?";
}

double
blockAlignCost(const Procedure &proc, const CostModel &model, BlockId id,
               BlockId next, const DirOracle &oracle, BlockId prev)
{
    auto idDir = [&](BlockId target, BlockId src) {
        if (target == prev && prev != kNoBlock)
            return DirHint::Backward;  // chain predecessor: placed before
        return oracle.dir(target, src);
    };
    const BasicBlock &block = proc.block(id);
    switch (block.term) {
      case Terminator::CondBranch: {
        const Edge &taken =
            proc.edge(static_cast<std::uint32_t>(proc.takenEdge(id)));
        const Edge &fall =
            proc.edge(static_cast<std::uint32_t>(proc.fallThroughEdge(id)));
        const DirHint dir_taken = idDir(taken.dst, id);
        const DirHint dir_fall = idDir(fall.dst, id);
        if (next == fall.dst) {
            return model.condRealizationCost(taken.weight, fall.weight,
                                             CondRealization::FallAdjacent,
                                             dir_taken, dir_fall);
        }
        if (next == taken.dst) {
            return model.condRealizationCost(taken.weight, fall.weight,
                                             CondRealization::TakenAdjacent,
                                             dir_taken, dir_fall);
        }
        // Unlinked (or linked to a non-successor, which chains never do):
        // the materializer will pick the cheaper branch-plus-jump form.
        const double to_fall = model.condRealizationCost(
            taken.weight, fall.weight, CondRealization::NeitherJumpToFall,
            dir_taken, dir_fall);
        const double to_taken = model.condRealizationCost(
            taken.weight, fall.weight, CondRealization::NeitherJumpToTaken,
            dir_taken, dir_fall);
        return std::min(to_fall, to_taken);
      }
      case Terminator::UncondBranch: {
        const Edge &taken =
            proc.edge(static_cast<std::uint32_t>(proc.takenEdge(id)));
        if (next == taken.dst)
            return model.singleExitAdjacentCost();
        return model.singleExitJumpCost(taken.weight);
      }
      case Terminator::FallThrough: {
        const std::int64_t fall_index = proc.fallThroughEdge(id);
        if (fall_index < 0)
            return 0.0;
        const Edge &fall = proc.edge(static_cast<std::uint32_t>(fall_index));
        if (next == fall.dst)
            return model.singleExitAdjacentCost();
        return model.singleExitJumpCost(fall.weight);
      }
      case Terminator::IndirectJump:
      case Terminator::Return:
        return 0.0;  // alignment cannot change these
    }
    panic("blockAlignCost: bad terminator");
}

std::unique_ptr<Aligner>
makeAligner(AlignerKind kind, const CostModel *model,
            const AlignOptions &options)
{
    switch (kind) {
      case AlignerKind::Original:
        return nullptr;  // handled by the driver (identity layout)
      case AlignerKind::Greedy:
        return std::make_unique<GreedyAligner>();
      case AlignerKind::Cost:
        if (model == nullptr)
            panic("makeAligner: Cost aligner needs a cost model");
        return std::make_unique<CostAligner>(*model);
      case AlignerKind::Try15:
        if (model == nullptr)
            panic("makeAligner: Try15 aligner needs a cost model");
        return std::make_unique<Try15Aligner>(*model, options);
    }
    panic("makeAligner: bad kind");
}

}  // namespace balign
