#include "core/aligner.h"

#include "core/cost_align.h"
#include "core/exttsp_align.h"
#include "core/greedy.h"
#include "core/try15.h"
#include "objective/table_cost.h"
#include "support/log.h"

namespace balign {

const char *
alignerKindName(AlignerKind kind)
{
    switch (kind) {
      case AlignerKind::Original: return "original";
      case AlignerKind::Greedy: return "greedy";
      case AlignerKind::Cost: return "cost";
      case AlignerKind::Try15: return "try15";
      case AlignerKind::ExtTsp: return "exttsp";
    }
    return "?";
}

const char *
profileSourceName(ProfileSource source)
{
    switch (source) {
      case ProfileSource::Measured: return "measured";
      case ProfileSource::Estimated: return "estimated";
    }
    return "?";
}

double
blockAlignCost(const Procedure &proc, const CostModel &model, BlockId id,
               BlockId next, const DirOracle &oracle, BlockId prev)
{
    return TableCostObjective(model).blockCost(proc, id, next, oracle, prev);
}

std::unique_ptr<Aligner>
makeAligner(AlignerKind kind, const CostModel *model,
            const AlignOptions &options)
{
    switch (kind) {
      case AlignerKind::Original:
        return nullptr;  // handled by the driver (identity layout)
      case AlignerKind::Greedy:
        return std::make_unique<GreedyAligner>();
      case AlignerKind::Cost:
        if (objectiveArchDependent(options.objective) && model == nullptr)
            panic("makeAligner: Cost aligner needs a cost model");
        return std::make_unique<CostAligner>(
            makeObjective(options.objective, model));
      case AlignerKind::Try15:
        if (objectiveArchDependent(options.objective) && model == nullptr)
            panic("makeAligner: Try15 aligner needs a cost model");
        return std::make_unique<Try15Aligner>(
            makeObjective(options.objective, model), options);
      case AlignerKind::ExtTsp:
        // ExtTSP chains by its own score regardless of options.objective,
        // which still governs materialization and the fallback splice.
        return std::make_unique<ExtTspAligner>();
    }
    panic("makeAligner: bad kind");
}

}  // namespace balign
