#include "core/cost_align.h"

#include <limits>
#include <utility>

#include "core/greedy.h"
#include "objective/table_cost.h"
#include "support/log.h"

namespace balign {

CostAligner::CostAligner(const CostModel &model)
    : objective_(std::make_unique<TableCostObjective>(model))
{
}

CostAligner::CostAligner(std::unique_ptr<AlignmentObjective> objective)
    : objective_(std::move(objective))
{
    if (objective_ == nullptr)
        panic("CostAligner: null objective");
}

ChainSet
CostAligner::alignProc(const Procedure &proc,
                       const DirOracle &base_oracle) const
{
    ChainSet chains(proc.numBlocks(), proc.entry());
    const AlignmentObjective &objective = *objective_;
    // Same-chain placements are definitive direction evidence; fall back
    // to the caller's hints (previous-iteration positions or block ids)
    // only for blocks not yet chained together.
    const DirOracle oracle = base_oracle.withChains(&chains);

    for (std::uint32_t index : alignableEdgesByWeight(proc)) {
        const Edge &edge = proc.edge(index);
        const BlockId src = edge.src;
        const BlockId dst = edge.dst;
        if (!chains.canLink(src, dst))
            continue;

        const BlockId src_prev = chains.prev(src);
        const double cost_unlinked =
            objective.blockCost(proc, src, kNoBlock, oracle, src_prev);
        // Linking also makes src the chain predecessor of dst.
        const double cost_linked =
            objective.blockCost(proc, src, dst, oracle, src_prev) +
            objective.blockCost(proc, dst, chains.next(dst), oracle, src) -
            objective.blockCost(proc, dst, chains.next(dst), oracle,
                                chains.prev(dst));

        // Option: link the sibling edge instead (conditional blocks only).
        double cost_sibling = std::numeric_limits<double>::infinity();
        if (proc.block(src).term == Terminator::CondBranch) {
            const auto taken_index =
                static_cast<std::uint32_t>(proc.takenEdge(src));
            const auto fall_index =
                static_cast<std::uint32_t>(proc.fallThroughEdge(src));
            const Edge &sibling = index == taken_index
                                      ? proc.edge(fall_index)
                                      : proc.edge(taken_index);
            if (chains.canLink(src, sibling.dst)) {
                cost_sibling = objective.blockCost(proc, src, sibling.dst,
                                                   oracle, src_prev);
            }
        }

        // Not linking (letting the materializer insert a jump, or leaving
        // the slot for the sibling) may be cheaper — e.g. a hot single-
        // block loop on the FALLTHROUGH architecture.
        if (cost_unlinked <= cost_linked || cost_sibling < cost_linked)
            continue;

        // Would another predecessor of D profit more from the slot?
        const double benefit = cost_unlinked - cost_linked;
        bool better_pred = false;
        for (std::uint32_t in_index : proc.block(dst).inEdges) {
            const Edge &in_edge = proc.edge(in_index);
            if (in_edge.src == src)
                continue;
            if (in_edge.kind == EdgeKind::Other)
                continue;
            if (!chains.canLink(in_edge.src, dst))
                continue;
            const BlockId pred_prev = chains.prev(in_edge.src);
            const double pred_unlinked = objective.blockCost(
                proc, in_edge.src, kNoBlock, oracle, pred_prev);
            const double pred_linked = objective.blockCost(
                proc, in_edge.src, dst, oracle, pred_prev);
            if (pred_unlinked - pred_linked > benefit) {
                better_pred = true;
                break;
            }
        }
        if (better_pred)
            continue;

        chains.link(src, dst);
    }
    return chains;
}

}  // namespace balign
