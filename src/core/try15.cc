#include "core/try15.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "core/greedy.h"
#include "objective/table_cost.h"
#include "support/log.h"

namespace balign {

Try15Aligner::Try15Aligner(const CostModel &model,
                           const AlignOptions &options)
    : objective_(std::make_unique<TableCostObjective>(model)),
      options_(options)
{
}

Try15Aligner::Try15Aligner(std::unique_ptr<AlignmentObjective> objective,
                           const AlignOptions &options)
    : objective_(std::move(objective)), options_(options)
{
    if (objective_ == nullptr)
        panic("Try15Aligner: null objective");
}

namespace {

/// One candidate edge in a search group.
struct GroupEdge
{
    BlockId src;
    BlockId dst;
};

/**
 * Backtracking search over the 2^N subsets of group edges, maintaining the
 * chain state and the summed cost incrementally. Each link recomputes the
 * modelled cost of BOTH endpoints with the current chain context, so
 * prev-link direction effects (loop rotations under BT/FNT) are priced.
 */
class GroupSearch
{
  public:
    GroupSearch(const Procedure &proc, const AlignmentObjective &objective,
                ChainSet &chains, const std::vector<GroupEdge> &group,
                const DirOracle &oracle)
        : proc_(proc),
          objective_(objective),
          chains_(chains),
          group_(group),
          oracle_(oracle)
    {
        // Baseline: the cost of every block touched by the group, given
        // its current (pre-group) link state.
        for (const auto &edge : group_) {
            for (BlockId block : {edge.src, edge.dst}) {
                if (cur_.count(block) == 0)
                    cur_[block] = costOf(block);
            }
        }
        double base = 0.0;
        for (const auto &[block, cost] : cur_)
            base += cost;
        bestCost_ = std::numeric_limits<double>::infinity();
        dfs(0, base, 0);
    }

    std::uint32_t bestMask() const { return bestMask_; }

  private:
    double
    costOf(BlockId block) const
    {
        return objective_.blockCost(proc_, block, chains_.next(block),
                                    oracle_, chains_.prev(block));
    }

    void
    dfs(std::size_t i, double cost, std::uint32_t mask)
    {
        if (i == group_.size()) {
            if (cost < bestCost_) {
                bestCost_ = cost;
                bestMask_ = mask;
            }
            return;
        }
        const GroupEdge &edge = group_[i];
        // Include: realize this edge as a fall-through link.
        if (chains_.link(edge.src, edge.dst)) {
            const double old_src = cur_[edge.src];
            const double old_dst = cur_[edge.dst];
            const double new_src = costOf(edge.src);
            const double new_dst = costOf(edge.dst);
            cur_[edge.src] = new_src;
            cur_[edge.dst] = new_dst;
            dfs(i + 1, cost + (new_src - old_src) + (new_dst - old_dst),
                mask | (1u << i));
            cur_[edge.src] = old_src;
            cur_[edge.dst] = old_dst;
            chains_.unlink(edge.src, edge.dst);
        }
        // Exclude.
        dfs(i + 1, cost, mask);
    }

    const Procedure &proc_;
    const AlignmentObjective &objective_;
    ChainSet &chains_;
    const std::vector<GroupEdge> &group_;
    const DirOracle &oracle_;
    std::map<BlockId, double> cur_;
    double bestCost_;
    std::uint32_t bestMask_ = 0;
};

}  // namespace

ChainSet
Try15Aligner::alignProc(const Procedure &proc,
                        const DirOracle &base_oracle) const
{
    ChainSet chains(proc.numBlocks(), proc.entry());
    // Same-chain placements are definitive direction evidence (they
    // survive any chain concatenation); the caller's hints cover the rest.
    const DirOracle oracle = base_oracle.withChains(&chains);

    // Candidate edges: alignable, hot enough, within the coverage cut.
    std::vector<std::uint32_t> ordered = alignableEdgesByWeight(proc);
    std::vector<std::uint32_t> candidates;
    candidates.reserve(ordered.size());
    Weight total = 0;
    for (std::uint32_t index : ordered) {
        if (proc.edge(index).weight >= options_.minEdgeWeight) {
            candidates.push_back(index);
            total += proc.edge(index).weight;
        }
    }
    if (options_.coverageFraction < 1.0 && total > 0) {
        const auto target = static_cast<Weight>(
            static_cast<double>(total) * options_.coverageFraction);
        Weight acc = 0;
        std::size_t keep = 0;
        while (keep < candidates.size() && acc < target)
            acc += proc.edge(candidates[keep++]).weight;
        candidates.resize(keep);
    }

    const std::size_t group_size = std::max<std::size_t>(
        1, std::min<std::size_t>(options_.groupSize, 20));

    std::size_t cursor = 0;
    std::size_t groups = 0;
    while (cursor < candidates.size()) {
        if (options_.maxGroups != 0 && groups >= options_.maxGroups)
            break;
        // Form the next group from still-linkable edges.
        std::vector<GroupEdge> group;
        group.reserve(group_size);
        while (cursor < candidates.size() && group.size() < group_size) {
            const Edge &edge = proc.edge(candidates[cursor]);
            ++cursor;
            if (!chains.canLink(edge.src, edge.dst))
                continue;
            group.push_back(GroupEdge{edge.src, edge.dst});
        }
        if (group.empty())
            break;
        ++groups;

        GroupSearch search(proc, *objective_, chains, group, oracle);
        const std::uint32_t mask = search.bestMask();
        for (std::size_t i = 0; i < group.size(); ++i) {
            if ((mask & (1u << i)) == 0)
                continue;
            if (!chains.link(group[i].src, group[i].dst))
                panic("try15: committing best mask failed");
        }
    }

    // Tidy pass: link remaining (mostly cold) edges when that cannot make
    // the modelled cost worse, to avoid needless jumps in cold code.
    for (std::uint32_t index : ordered) {
        const Edge &edge = proc.edge(index);
        if (!chains.canLink(edge.src, edge.dst))
            continue;
        const double unlinked = objective_->blockCost(
            proc, edge.src, chains.next(edge.src), oracle,
            chains.prev(edge.src));
        const double linked = objective_->blockCost(
            proc, edge.src, edge.dst, oracle, chains.prev(edge.src));
        if (linked <= unlinked)
            chains.link(edge.src, edge.dst);
    }

    return chains;
}

}  // namespace balign
