/**
 * @file
 * The Pettis–Hansen bottom-up ("greedy") branch alignment algorithm
 * (paper §4).
 *
 * Edges are visited in decreasing execution-weight order. For the edge
 * S -> D, D is made the layout fall-through of S when S has no fall-through
 * yet and D heads its chain; otherwise the blocks cannot be linked. Chains
 * merge as links form. The algorithm ignores the underlying branch
 * architecture entirely — it is the baseline the cost-aware algorithms are
 * compared against.
 */

#ifndef BALIGN_CORE_GREEDY_H
#define BALIGN_CORE_GREEDY_H

#include "core/aligner.h"

namespace balign {

class GreedyAligner : public Aligner
{
  public:
    std::string name() const override { return "greedy"; }
    using Aligner::alignProc;
    ChainSet alignProc(const Procedure &proc,
                       const DirOracle &oracle) const override;
    bool wantsCostModelMaterialization() const override { return false; }
};

/**
 * The shared edge ordering: alignable (Taken / FallThrough) edges sorted by
 * decreasing weight, ties broken by ascending edge index for determinism.
 * Returns edge indices.
 */
std::vector<std::uint32_t> alignableEdgesByWeight(const Procedure &proc);

}  // namespace balign

#endif  // BALIGN_CORE_GREEDY_H
