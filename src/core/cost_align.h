/**
 * @file
 * The Cost alignment algorithm (paper §4).
 *
 * Like the Greedy algorithm, edges are visited in decreasing weight order,
 * but before linking S -> D the active alignment objective is consulted
 * (the paper's Table-1 architecture cost model by default):
 *
 *  - the three possible realizations of a conditional source block are
 *    compared (link this edge, link the sibling edge, or link neither and
 *    let the materializer insert a jump — the loop transformation);
 *  - every other predecessor of D is examined to see whether connecting D
 *    to it instead would save more cycles, in which case the link is left
 *    for that predecessor's edge;
 *  - the link is made only when it is locally profitable.
 */

#ifndef BALIGN_CORE_COST_ALIGN_H
#define BALIGN_CORE_COST_ALIGN_H

#include "core/aligner.h"

namespace balign {

class CostAligner : public Aligner
{
  public:
    /// Aligns under the paper's Table-1 objective for @p model (which must
    /// outlive the aligner).
    explicit CostAligner(const CostModel &model);

    /// Aligns under an arbitrary objective, taking ownership.
    explicit CostAligner(std::unique_ptr<AlignmentObjective> objective);

    std::string name() const override { return "cost"; }
    using Aligner::alignProc;
    ChainSet alignProc(const Procedure &proc,
                       const DirOracle &oracle) const override;
    bool
    wantsCostModelMaterialization() const override
    {
        return objective_->materializationModel() != nullptr;
    }
    bool objectiveGuided() const override { return true; }

    const AlignmentObjective &objective() const { return *objective_; }

  private:
    std::unique_ptr<AlignmentObjective> objective_;
};

}  // namespace balign

#endif  // BALIGN_CORE_COST_ALIGN_H
