/**
 * @file
 * The TryN ("Try15") alignment algorithm (paper §4).
 *
 * Exhaustive search balanced against time: the N most frequently executed
 * alignable edges are taken as a group and every consistent combination of
 * "realize this edge as a fall-through link" decisions is evaluated under
 * the active alignment objective (the paper's Table-1 architecture cost
 * model by default); the minimum-cost combination is committed, then the
 * next N edges are processed, and so on. Per-node possibilities match the
 * paper: a single-exit block's edge may become a fall-through or stay a
 * taken jump; a conditional block may align either out-edge or neither
 * (branch plus inserted jump — the loop transformation).
 *
 * Edges executed fewer than minEdgeWeight times are ignored (paper §4), and
 * an optional cumulative-coverage cut (99% is suggested in the paper)
 * bounds the search on enormous procedures. A final greedy tidy pass links
 * the remaining cold edges when doing so cannot increase the modelled cost.
 *
 * The search backtracks over an undoable ChainSet with an incrementally
 * maintained cost sum, so each search node costs O(1) beyond the link
 * itself.
 */

#ifndef BALIGN_CORE_TRY15_H
#define BALIGN_CORE_TRY15_H

#include "core/aligner.h"

namespace balign {

class Try15Aligner : public Aligner
{
  public:
    /// Aligns under the paper's Table-1 objective for @p model (which must
    /// outlive the aligner).
    Try15Aligner(const CostModel &model, const AlignOptions &options);

    /// Aligns under an arbitrary objective, taking ownership.
    Try15Aligner(std::unique_ptr<AlignmentObjective> objective,
                 const AlignOptions &options);

    std::string
    name() const override
    {
        return "try" + std::to_string(options_.groupSize);
    }

    using Aligner::alignProc;
    ChainSet alignProc(const Procedure &proc,
                       const DirOracle &oracle) const override;
    bool
    wantsCostModelMaterialization() const override
    {
        return objective_->materializationModel() != nullptr;
    }
    bool objectiveGuided() const override { return true; }

    const AlignOptions &options() const { return options_; }
    const AlignmentObjective &objective() const { return *objective_; }

  private:
    std::unique_ptr<AlignmentObjective> objective_;
    AlignOptions options_;
};

}  // namespace balign

#endif  // BALIGN_CORE_TRY15_H
