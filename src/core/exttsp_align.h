/**
 * @file
 * ExtTSP chain-merging aligner (Newell & Pupyrev, arXiv:1809.04676, §3).
 *
 * Bottom-up chain merging in the style of Pettis-Hansen, but ranked by the
 * ExtTSP gain of each merge instead of raw edge weight: concatenating
 * chain B after chain A realizes the seeding edge tail(A) -> head(B) as a
 * fallthrough AND fixes the relative distance of every other CFG edge
 * crossing the two chains, whose short-jump bonuses are credited to the
 * merge. Merges are committed greedily by decreasing gain until no
 * alignable edge can seed a further merge; since intra-chain distances are
 * unchanged by concatenation, each merge's gain is exactly the cross-edge
 * score it creates.
 *
 * Two deterministic tie-breaks keep layouts reproducible: equal-gain
 * merges commit in the shared alignableEdgesByWeight order, and a
 * conditional block whose BOTH out-edges could seed a merge only offers
 * its heavier edge (the lighter one stays available if the heavier
 * becomes infeasible) — the fallthrough term dominates the ExtTSP score,
 * so the hot side of every branch is laid out adjacent first, exactly as
 * the Greedy baseline would.
 */

#ifndef BALIGN_CORE_EXTTSP_ALIGN_H
#define BALIGN_CORE_EXTTSP_ALIGN_H

#include "core/aligner.h"
#include "objective/exttsp.h"

namespace balign {

class ExtTspAligner : public Aligner
{
  public:
    ExtTspAligner() = default;
    explicit ExtTspAligner(const ExtTspParams &params) : params_(params) {}

    std::string name() const override { return "exttsp"; }
    using Aligner::alignProc;
    ChainSet alignProc(const Procedure &proc,
                       const DirOracle &oracle) const override;
    /// Classic (cost-blind) materialization, like Greedy: ExtTSP knows
    /// nothing about Table-1 realization costs.
    bool wantsCostModelMaterialization() const override { return false; }
    bool objectiveGuided() const override { return true; }

    const ExtTspParams &params() const { return params_; }

  private:
    ExtTspParams params_;
};

}  // namespace balign

#endif  // BALIGN_CORE_EXTTSP_ALIGN_H
