/**
 * @file
 * Branch-alignment algorithm interface (paper §4) and the shared
 * cost-estimation helper all cost-aware aligners use.
 *
 * An aligner decides, per procedure, which CFG edges become realized
 * fall-throughs (the chain structure). Chain ordering and binary
 * materialization are separate stages (layout/chain_order.h,
 * layout/materialize.h); the program-level driver in align_program.h wires
 * everything together.
 */

#ifndef BALIGN_CORE_ALIGNER_H
#define BALIGN_CORE_ALIGNER_H

#include <memory>
#include <string>

#include "bpred/cost_model.h"
#include "cfg/procedure.h"
#include "layout/chain.h"
#include "layout/chain_order.h"

namespace balign {

/// The alignment algorithms studied in the paper.
enum class AlignerKind : std::uint8_t {
    Original,  ///< identity layout (no reordering)
    Greedy,    ///< Pettis & Hansen bottom-up chaining
    Cost,      ///< greedy chaining guided by the architecture cost model
    Try15,     ///< group-exhaustive search over the hottest edges
};

/// Printable kind name.
const char *alignerKindName(AlignerKind kind);

/// Options shared by the aligners and the program driver.
struct AlignOptions
{
    /// Chain concatenation policy (paper §6.1; hot-first is the default
    /// used for all simulations except the dedicated BT/FNT ordering).
    ChainOrderPolicy chainOrder = ChainOrderPolicy::HotFirst;

    /// Group size for the TryN search (paper: 15; 10 is slightly worse but
    /// faster).
    std::size_t groupSize = 15;

    /// TryN ignores edges executed fewer than this many times (paper §4:
    /// "we only examined edges that were executed more than once").
    Weight minEdgeWeight = 2;

    /// TryN considers at most this cumulative weight fraction of the
    /// considered edges (paper §4 suggests 99% as a further speedup; 1.0
    /// disables the cut).
    double coverageFraction = 1.0;

    /// Safety valve for enormous procedures: maximum number of TryN groups
    /// per procedure (0 = unlimited).
    std::size_t maxGroups = 0;

    /**
     * Direction-refinement iterations for cost-aware aligners (>= 1).
     * BT/FNT costs depend on branch direction, which is circular: it is
     * only known after placement (paper §6). With more than one
     * iteration, alignment is repeated using the previous iteration's
     * layout positions as direction hints, which recovers rotations the
     * id-based hints undervalue.
     */
    unsigned directionIterations = 1;
};

/**
 * Direction oracle for alignment-time cost estimation. Without a position
 * table it falls back to original block ids (approximate source order); a
 * position table from a previous layout iteration gives exact hints for
 * that layout.
 */
class DirOracle
{
  public:
    DirOracle() = default;
    explicit DirOracle(const std::vector<std::uint32_t> *positions)
        : positions_(positions)
    {
    }

    DirHint
    dir(BlockId target, BlockId src) const
    {
        if (positions_ == nullptr)
            return target <= src ? DirHint::Backward : DirHint::Forward;
        return (*positions_)[target] <= (*positions_)[src]
                   ? DirHint::Backward
                   : DirHint::Forward;
    }

  private:
    const std::vector<std::uint32_t> *positions_ = nullptr;
};

/**
 * Estimated branch cost (cycles) of block @p id under the cost model, given
 * its current chain successor @p next (kNoBlock when unlinked) and chain
 * predecessor @p prev.
 *
 * Direction hints come from @p oracle (original block ids by default,
 * approximating source order), except that a successor equal to @p prev is
 * known to be BACKWARD — the key signal that makes loop rotations (chain
 * [.., latch, head]) attractive under BT/FNT, where the inverted head
 * branch to the latch is predicted taken. An unlinked conditional block is
 * priced at its best branch-plus-jump realization, which is what the
 * cost-model-aware materializer will emit.
 */
double blockAlignCost(const Procedure &proc, const CostModel &model,
                      BlockId id, BlockId next,
                      const DirOracle &oracle = DirOracle(),
                      BlockId prev = kNoBlock);

/// Alignment algorithm interface: produces the chain structure of one
/// procedure.
class Aligner
{
  public:
    virtual ~Aligner() = default;

    /// Human-readable name ("greedy", "cost", "try15").
    virtual std::string name() const = 0;

    /// Builds chains for @p proc from its edge profile, with direction
    /// hints from @p oracle (cost-aware aligners only).
    virtual ChainSet alignProc(const Procedure &proc,
                               const DirOracle &oracle) const = 0;

    /// Convenience: id-based direction hints.
    ChainSet
    alignProc(const Procedure &proc) const
    {
        return alignProc(proc, DirOracle());
    }

    /// True when the materializer should use the architecture cost model
    /// (Cost and TryN; the Greedy baseline is cost-blind).
    virtual bool wantsCostModelMaterialization() const = 0;
};

/**
 * Creates an aligner. @p model may be null only for Original/Greedy.
 * The model must outlive the aligner.
 */
std::unique_ptr<Aligner> makeAligner(AlignerKind kind, const CostModel *model,
                                     const AlignOptions &options = {});

}  // namespace balign

#endif  // BALIGN_CORE_ALIGNER_H
