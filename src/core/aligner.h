/**
 * @file
 * Branch-alignment algorithm interface (paper §4).
 *
 * An aligner decides, per procedure, which CFG edges become realized
 * fall-throughs (the chain structure). What makes one chain better than
 * another is the pluggable AlignmentObjective (objective/objective.h):
 * the paper's Table-1 cost model by default, or the ExtTSP score. Chain
 * ordering and binary materialization are separate stages
 * (layout/chain_order.h, layout/materialize.h); the program-level driver
 * in align_program.h wires everything together.
 */

#ifndef BALIGN_CORE_ALIGNER_H
#define BALIGN_CORE_ALIGNER_H

#include <memory>
#include <string>

#include "bpred/cost_model.h"
#include "cfg/procedure.h"
#include "layout/chain.h"
#include "layout/chain_order.h"
#include "objective/objective.h"

namespace balign {

/// The alignment algorithms studied in the paper, plus the modern ExtTSP
/// chain merger they are compared against.
enum class AlignerKind : std::uint8_t {
    Original,  ///< identity layout (no reordering)
    Greedy,    ///< Pettis & Hansen bottom-up chaining
    Cost,      ///< greedy chaining guided by the active objective
    Try15,     ///< group-exhaustive search over the hottest edges
    ExtTsp,    ///< chain merging by ExtTSP gain (arXiv:1809.04676)
};

/// Printable kind name.
const char *alignerKindName(AlignerKind kind);

/**
 * Which profile the aligners consume. Measured uses whatever edge
 * weights the program carries (the walker's true profile, or a degraded
 * one the driver prepared — degradation is a program transform, not an
 * alignment-time choice). Estimated discards the carried weights and
 * aligns against the static profile synthesized by estimate/estimate.h:
 * profile-free alignment, the `none` endpoint of the robustness axis.
 */
enum class ProfileSource : std::uint8_t {
    Measured,
    Estimated,
};

/// Printable source name ("measured" / "estimated").
const char *profileSourceName(ProfileSource source);

/// Options shared by the aligners and the program driver.
struct AlignOptions
{
    /// Objective the Cost/TryN chain searches and the per-procedure
    /// fallback splice price decisions under (objective/objective.h).
    ObjectiveKind objective = ObjectiveKind::TableCost;

    /// Chain concatenation policy (paper §6.1; hot-first is the default
    /// used for all simulations except the dedicated BT/FNT ordering).
    ChainOrderPolicy chainOrder = ChainOrderPolicy::HotFirst;

    /// Group size for the TryN search (paper: 15; 10 is slightly worse but
    /// faster).
    std::size_t groupSize = 15;

    /// TryN ignores edges executed fewer than this many times (paper §4:
    /// "we only examined edges that were executed more than once").
    Weight minEdgeWeight = 2;

    /// TryN considers at most this cumulative weight fraction of the
    /// considered edges (paper §4 suggests 99% as a further speedup; 1.0
    /// disables the cut).
    double coverageFraction = 1.0;

    /// Safety valve for enormous procedures: maximum number of TryN groups
    /// per procedure (0 = unlimited).
    std::size_t maxGroups = 0;

    /**
     * Direction-refinement iterations for cost-aware aligners (>= 1).
     * BT/FNT costs depend on branch direction, which is circular: it is
     * only known after placement (paper §6). With more than one
     * iteration, alignment is repeated using the previous iteration's
     * layout positions as direction hints, which recovers rotations the
     * id-based hints undervalue.
     */
    unsigned directionIterations = 1;

    /**
     * Profile the alignment consumes. Under Estimated the program driver
     * re-profiles a copy of the program with the static estimator before
     * aligning, so the caller's measured weights are never consulted.
     */
    ProfileSource profileSource = ProfileSource::Measured;

    /**
     * Prove every produced layout semantically equivalent to the source
     * program before returning it (verify/verify.h). The check is linear
     * in program size and panics naming the first violated obligation, so
     * an aligner bug can never silently reach a simulation. Tools that
     * want failures as findings instead of crashes (the differ, lint, the
     * verify sweep itself) turn it off.
     */
    bool verify = true;
};

/**
 * Estimated Table-1 branch cost (cycles) of block @p id given its current
 * chain successor @p next (kNoBlock when unlinked) and chain predecessor
 * @p prev. Compatibility shim for TableCostObjective::blockCost — see
 * objective/table_cost.h for the semantics.
 */
double blockAlignCost(const Procedure &proc, const CostModel &model,
                      BlockId id, BlockId next,
                      const DirOracle &oracle = DirOracle(),
                      BlockId prev = kNoBlock);

/// Alignment algorithm interface: produces the chain structure of one
/// procedure.
class Aligner
{
  public:
    virtual ~Aligner() = default;

    /// Human-readable name ("greedy", "cost", "try15", "exttsp").
    virtual std::string name() const = 0;

    /// Builds chains for @p proc from its edge profile, with direction
    /// hints from @p oracle (cost-aware aligners only).
    virtual ChainSet alignProc(const Procedure &proc,
                               const DirOracle &oracle) const = 0;

    /// Convenience: id-based direction hints.
    ChainSet
    alignProc(const Procedure &proc) const
    {
        return alignProc(proc, DirOracle());
    }

    /// True when the materializer should use the architecture cost model
    /// (Cost and TryN under the Table-1 objective; Greedy, ExtTSP and any
    /// arch-independent objective are cost-blind).
    virtual bool wantsCostModelMaterialization() const = 0;

    /// True when this aligner optimizes an objective, so the driver's
    /// per-procedure fallback splice applies (never-worse-than-Greedy
    /// under the active objective).
    virtual bool objectiveGuided() const
    {
        return wantsCostModelMaterialization();
    }
};

/**
 * Creates an aligner. The objective selected by @p options.objective
 * guides Cost and TryN; @p model may be null except under the Table-1
 * objective for those kinds. The model must outlive the aligner.
 */
std::unique_ptr<Aligner> makeAligner(AlignerKind kind, const CostModel *model,
                                     const AlignOptions &options = {});

}  // namespace balign

#endif  // BALIGN_CORE_ALIGNER_H
