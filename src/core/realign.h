/**
 * @file
 * Incremental realignment: when a program's profile moves, re-lay-out only
 * the procedures whose profile actually changed, and splice the fresh
 * procedure layouts into the existing program layout.
 *
 * Soundness rests on two properties the rest of the codebase already
 * relies on: every alignment stage is per-procedure (aligners chain one
 * procedure at a time, the materializer's realization decisions read only
 * intra-procedure order positions, and every AlignmentObjective prices
 * intra-procedurally), and procedure layouts are position-independent
 * modulo a uniform address shift (the same re-basing the fallback splice
 * in align_program.cc performs). So realigning a subset and re-basing the
 * rest contiguously reproduces, byte for byte, what a full alignProgram
 * would have produced for the realigned procedures — and every splice is
 * still discharged through the translation validator (verify/verify.h).
 */

#ifndef BALIGN_CORE_REALIGN_H
#define BALIGN_CORE_REALIGN_H

#include <cstddef>
#include <limits>

#include "cfg/program.h"
#include "core/aligner.h"
#include "layout/layout_result.h"

namespace balign {

/**
 * L1 distance between two procedures' normalized edge-weight
 * distributions, in [0, 2]. Zero-total profiles count as distance 0 to
 * each other and 2 to any profile with weight (maximally diverged: one
 * side has no information at all). The procedures must be structurally
 * identical (same edge list); only the weights may differ.
 */
double profileDivergence(const Procedure &old_proc,
                         const Procedure &new_proc);

/// What realignProgram did, for cost accounting and curves.
struct RealignStats
{
    std::size_t procsTotal = 0;      ///< procedures examined
    std::size_t procsRealigned = 0;  ///< procedures re-laid-out
    double maxDivergence = 0.0;      ///< largest per-procedure divergence
};

/// Threshold that keeps every procedure (nothing ever diverges this far).
inline constexpr double kNeverRealign =
    std::numeric_limits<double>::infinity();

/**
 * Re-lays-out the procedures of @p new_program whose profile diverged
 * from @p old_program by at least @p threshold (profileDivergence), and
 * splices the new procedure layouts into @p old_layout, re-basing all
 * procedures contiguously in id order.
 *
 * The two programs must be structurally identical — same procedures,
 * blocks, and edges — differing only in profile weights (the degradation
 * transforms in profile/degrade.h guarantee this). @p old_layout must be
 * a layout of @p old_program with procedures in contiguous id order (any
 * alignProgram result qualifies).
 *
 * Threshold semantics: a procedure is realigned iff its divergence is
 * >= threshold. Hence threshold 0 realigns everything and is byte-
 * identical to alignProgram(new_program, kind, model, options), and
 * kNeverRealign keeps every old procedure layout verbatim (re-based).
 * When options.verify is set the spliced result is translation-validated
 * against @p new_program before being returned.
 */
ProgramLayout realignProgram(const Program &old_program,
                             const ProgramLayout &old_layout,
                             const Program &new_program, AlignerKind kind,
                             const CostModel *model,
                             const AlignOptions &options, double threshold,
                             RealignStats *stats = nullptr);

}  // namespace balign

#endif  // BALIGN_CORE_REALIGN_H
