#include "core/align_program.h"

#include <algorithm>
#include <utility>

#include "estimate/estimate.h"
#include "layout/materialize.h"
#include "support/log.h"
#include "verify/verify.h"

namespace balign {

namespace {

/**
 * Per-procedure monotone fallback: keeps whichever of the candidate and
 * baseline procedure layouts has the lower objective price, then re-bases
 * the spliced procedures contiguously. Every AlignmentObjective is purely
 * intra-procedural (Table-1 conditional direction compares same-procedure
 * addresses and jump costs are weight constants; ExtTSP reads only
 * intra-procedural distances), so procedure prices are invariant under the
 * re-basing and the splice's total price is the sum of the per-procedure
 * minima — never above the baseline's. DESIGN.md §9 spells out this
 * contract.
 */
ProgramLayout
cheaperPerProc(const Program &program, ProgramLayout candidate,
               ProgramLayout baseline, const AlignmentObjective &objective)
{
    Addr base = 0;
    for (const auto &proc : program.procs()) {
        const ProcId id = proc.id();
        const double candidate_cost =
            objective.layoutCost(proc, candidate.procs[id]);
        const double baseline_cost =
            objective.layoutCost(proc, baseline.procs[id]);
        if (baseline_cost < candidate_cost)
            candidate.procs[id] = std::move(baseline.procs[id]);
        rebaseProcLayout(candidate.procs[id], base);
        base += candidate.procs[id].totalInstrs;
    }
    candidate.totalInstrs = base;
    return candidate;
}

}  // namespace

ProgramLayout
alignProgram(const Program &program, const Aligner &aligner,
             const CostModel *model, const AlignOptions &options)
{
    MaterializeOptions mat;
    if (aligner.wantsCostModelMaterialization()) {
        if (model == nullptr)
            panic("alignProgram: aligner %s needs a cost model",
                  aligner.name().c_str());
        mat.costModel = model;
    }

    const unsigned iterations =
        aligner.wantsCostModelMaterialization()
            ? std::max(1u, options.directionIterations)
            : 1;

    ProgramLayout layout;
    for (unsigned iter = 0; iter < iterations; ++iter) {
        std::vector<std::vector<BlockId>> orders;
        orders.reserve(program.numProcs());
        for (const auto &proc : program.procs()) {
            // Later iterations refine the direction hints with the
            // previous layout's block positions (paper §6: branch
            // directions are unknowable until chains are placed).
            std::vector<std::uint32_t> positions;
            DirOracle oracle;
            if (iter > 0) {
                const ProcLayout &prev = layout.procs[proc.id()];
                positions.resize(proc.numBlocks());
                for (BlockId b = 0; b < proc.numBlocks(); ++b)
                    positions[b] = prev.blocks[b].orderIndex;
                oracle = DirOracle(&positions);
            }
            const ChainSet chains = aligner.alignProc(proc, oracle);
            orders.push_back(
                orderChains(proc, chains, options.chainOrder));
        }
        layout = materializeProgram(program, orders, mat);
    }
    return layout;
}

ProgramLayout
alignProgram(const Program &program, AlignerKind kind, const CostModel *model,
             const AlignOptions &options)
{
    if (kind == AlignerKind::Original)
        return originalLayout(program);
    if (options.profileSource == ProfileSource::Estimated) {
        // Profile-free alignment: discard the carried weights and align
        // against the static estimate. The copy's CFG is identical, so
        // the layout (and its verification) transfers to the original.
        Program estimated = program;
        estimateProfile(estimated);
        AlignOptions inner = options;
        inner.profileSource = ProfileSource::Measured;
        return alignProgram(estimated, kind, model, inner);
    }
    const auto aligner = makeAligner(kind, model, options);
    ProgramLayout layout = alignProgram(program, *aligner, model, options);
    // Objective-guided aligners place chains from incomplete information
    // (direction *hints* for Table-1, merge-time distances for ExtTSP);
    // once the true addresses are fixed a decision can turn out wrong and
    // leave the result marginally pricier than the plain greedy chains.
    // Fall back per procedure so the objective price is never worse than
    // greedy's — the invariant lint's cost.monotone rule enforces.
    const bool can_price =
        !objectiveArchDependent(options.objective) || model != nullptr;
    if (kind != AlignerKind::Greedy && aligner->objectiveGuided() &&
        can_price) {
        const auto objective = makeObjective(options.objective, model);
        ProgramLayout greedy =
            alignProgram(program, AlignerKind::Greedy, model, options);
        layout = cheaperPerProc(program, std::move(layout),
                                std::move(greedy), *objective);
    }
    // Post-condition: the layout is a proof-checked semantic equivalent of
    // the source program. Translation validation (verify/verify.h) rather
    // than trusting the aligner/materializer pipeline.
    if (options.verify) {
        const VerifyResult proof = verifyLayout(program, layout);
        if (!proof.verified())
            panic("alignProgram: %s layout failed verification: %s",
                  alignerKindName(kind),
                  formatVerifyFailure(proof.failures.front()).c_str());
    }
    return layout;
}

}  // namespace balign
