#include "core/align_program.h"

#include <algorithm>

#include "layout/materialize.h"
#include "support/log.h"

namespace balign {

ProgramLayout
alignProgram(const Program &program, const Aligner &aligner,
             const CostModel *model, const AlignOptions &options)
{
    MaterializeOptions mat;
    if (aligner.wantsCostModelMaterialization()) {
        if (model == nullptr)
            panic("alignProgram: aligner %s needs a cost model",
                  aligner.name().c_str());
        mat.costModel = model;
    }

    const unsigned iterations =
        aligner.wantsCostModelMaterialization()
            ? std::max(1u, options.directionIterations)
            : 1;

    ProgramLayout layout;
    for (unsigned iter = 0; iter < iterations; ++iter) {
        std::vector<std::vector<BlockId>> orders;
        orders.reserve(program.numProcs());
        for (const auto &proc : program.procs()) {
            // Later iterations refine the direction hints with the
            // previous layout's block positions (paper §6: branch
            // directions are unknowable until chains are placed).
            std::vector<std::uint32_t> positions;
            DirOracle oracle;
            if (iter > 0) {
                const ProcLayout &prev = layout.procs[proc.id()];
                positions.resize(proc.numBlocks());
                for (BlockId b = 0; b < proc.numBlocks(); ++b)
                    positions[b] = prev.blocks[b].orderIndex;
                oracle = DirOracle(&positions);
            }
            const ChainSet chains = aligner.alignProc(proc, oracle);
            orders.push_back(
                orderChains(proc, chains, options.chainOrder));
        }
        layout = materializeProgram(program, orders, mat);
    }
    return layout;
}

ProgramLayout
alignProgram(const Program &program, AlignerKind kind, const CostModel *model,
             const AlignOptions &options)
{
    if (kind == AlignerKind::Original)
        return originalLayout(program);
    const auto aligner = makeAligner(kind, model, options);
    return alignProgram(program, *aligner, model, options);
}

}  // namespace balign
