#include "core/unroll.h"

#include <algorithm>

#include "support/log.h"

namespace balign {

namespace {

/// Probability of staying in the loop, from the best available source.
double
continueProbability(const Procedure &proc, const BasicBlock &block)
{
    if (block.patternLength > 0) {
        const unsigned ones = static_cast<unsigned>(
            __builtin_popcount(block.patternMask &
                               ((block.patternLength >= 32
                                     ? ~0u
                                     : (1u << block.patternLength) - 1u))));
        return static_cast<double>(ones) /
               static_cast<double>(block.patternLength);
    }
    const Edge &taken =
        proc.edge(static_cast<std::uint32_t>(proc.takenEdge(block.id)));
    const Edge &fall = proc.edge(
        static_cast<std::uint32_t>(proc.fallThroughEdge(block.id)));
    if (taken.weight + fall.weight > 0) {
        return static_cast<double>(taken.weight) /
               static_cast<double>(taken.weight + fall.weight);
    }
    const double total = taken.bias + fall.bias;
    return total > 0.0 ? taken.bias / total : 0.5;
}

}  // namespace

unsigned
unrollSelfLoops(Procedure &proc, const UnrollOptions &options)
{
    if (options.factor < 2)
        return 0;

    // Collect eligible self loops, hottest first.
    struct Target
    {
        BlockId id;
        Weight weight;
        double continueProb;
    };
    std::vector<Target> targets;
    for (const auto &block : proc.blocks()) {
        if (block.term != Terminator::CondBranch)
            continue;
        const std::int64_t taken_index = proc.takenEdge(block.id);
        if (taken_index < 0 ||
            proc.edge(static_cast<std::uint32_t>(taken_index)).dst !=
                block.id)
            continue;  // not a self loop
        if (proc.fallThroughEdge(block.id) < 0)
            continue;  // no exit: cannot restructure
        if (block.numInstrs > options.maxBlockInstrs)
            continue;
        const Weight weight =
            proc.edge(static_cast<std::uint32_t>(taken_index)).weight;
        if (weight < options.minWeight)
            continue;
        targets.push_back(
            Target{block.id, weight, continueProbability(proc, block)});
    }
    if (targets.empty())
        return 0;
    std::stable_sort(targets.begin(), targets.end(),
                     [](const Target &a, const Target &b) {
                         return a.weight > b.weight;
                     });
    if (options.maxLoopsPerProc != 0 &&
        targets.size() > options.maxLoopsPerProc)
        targets.resize(options.maxLoopsPerProc);
    std::sort(targets.begin(), targets.end(),
              [](const Target &a, const Target &b) { return a.id < b.id; });

    const unsigned extra = options.factor - 1;
    auto is_target = [&](BlockId id) {
        return std::binary_search(
            targets.begin(), targets.end(), Target{id, 0, 0},
            [](const Target &a, const Target &b) { return a.id < b.id; });
    };
    // Old -> new id mapping (each target expands in place).
    std::vector<BlockId> new_id(proc.numBlocks());
    BlockId next = 0;
    for (BlockId old = 0; old < proc.numBlocks(); ++old) {
        new_id[old] = next;
        next += is_target(old) ? options.factor : 1;
    }

    // Rebuild the procedure.
    Procedure rebuilt(proc.id(), proc.name());
    rebuilt.setEntry(new_id[proc.entry()]);
    for (BlockId old = 0; old < proc.numBlocks(); ++old) {
        const BasicBlock &block = proc.block(old);
        const unsigned copies = is_target(old) ? options.factor : 1;
        for (unsigned c = 0; c < copies; ++c) {
            const BlockId id =
                rebuilt.addBlock(block.numInstrs, block.term);
            BasicBlock &fresh = rebuilt.block(id);
            fresh.calls = block.calls;
            if (copies == 1) {
                fresh.patternLength = block.patternLength;
                fresh.patternMask = block.patternMask;
                if (block.correlatedWith != kNoBlock &&
                    !is_target(block.correlatedWith)) {
                    fresh.correlatedWith = new_id[block.correlatedWith];
                    fresh.correlatedInvert = block.correlatedInvert;
                }
            }
            // Unrolled copies: patterns/correlation replaced by the bias
            // (the copies partition the original iteration stream).
        }
    }

    // Recreate edges. Out-edges of targets are replaced by the chain.
    for (const auto &edge : proc.edges()) {
        if (is_target(edge.src))
            continue;
        rebuilt.addEdge(new_id[edge.src], new_id[edge.dst], edge.kind, 0,
                        edge.bias);
    }
    for (const auto &target : targets) {
        const auto fall_index =
            static_cast<std::uint32_t>(proc.fallThroughEdge(target.id));
        const BlockId exit_new = new_id[proc.edge(fall_index).dst];
        const BlockId first = new_id[target.id];
        const double p = target.continueProb;
        for (unsigned c = 0; c + 1 < options.factor; ++c) {
            // Continue by falling into the next copy; exit jumps forward.
            rebuilt.addEdge(first + c, first + c + 1,
                            EdgeKind::FallThrough, 0, p);
            rebuilt.addEdge(first + c, exit_new, EdgeKind::Taken, 0,
                            1.0 - p);
        }
        // Final copy: backward taken to the head, exit falls through.
        rebuilt.addEdge(first + extra, first, EdgeKind::Taken, 0, p);
        rebuilt.addEdge(first + extra, exit_new, EdgeKind::FallThrough, 0,
                        1.0 - p);
    }

    const auto count = static_cast<unsigned>(targets.size());
    proc = std::move(rebuilt);
    return count;
}

unsigned
unrollSelfLoops(Program &program, const UnrollOptions &options)
{
    unsigned total = 0;
    for (auto &proc : program.procs())
        total += unrollSelfLoops(proc, options);
    program.clearWeights();
    return total;
}

}  // namespace balign
