#include "core/greedy.h"

#include <algorithm>

namespace balign {

std::vector<std::uint32_t>
alignableEdgesByWeight(const Procedure &proc)
{
    std::vector<std::uint32_t> edges;
    edges.reserve(proc.numEdges());
    for (std::uint32_t i = 0; i < proc.numEdges(); ++i) {
        const EdgeKind kind = proc.edge(i).kind;
        if (kind == EdgeKind::Taken || kind == EdgeKind::FallThrough)
            edges.push_back(i);
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return proc.edge(a).weight > proc.edge(b).weight;
                     });
    return edges;
}

ChainSet
GreedyAligner::alignProc(const Procedure &proc, const DirOracle &) const
{
    ChainSet chains(proc.numBlocks(), proc.entry());
    for (std::uint32_t index : alignableEdgesByWeight(proc)) {
        const Edge &edge = proc.edge(index);
        chains.link(edge.src, edge.dst);  // no-op when not linkable
    }
    return chains;
}

}  // namespace balign
