#include "verify/driver.h"

#include <ostream>
#include <sstream>

#include "bpred/arch.h"
#include "check/differ.h"
#include "emit/relax.h"
#include "layout/chain_order.h"
#include "objective/objective.h"

namespace balign {

std::size_t
VerifyRunReport::totalChecks() const
{
    std::size_t n = 0;
    for (const VerifyCertificate &certificate : certificates)
        n += certificate.result.totalChecks();
    return n;
}

VerifyRunReport
verifyProgramLayouts(const Program &program, const VerifyRunOptions &options)
{
    VerifyRunReport report;
    const std::vector<Arch> &archs =
        options.archs.empty() ? allArchs() : options.archs;
    const std::vector<AlignerKind> &kinds =
        options.kinds.empty() ? allAlignerKinds() : options.kinds;
    const std::vector<ObjectiveKind> objectives =
        options.objectives.empty()
            ? std::vector<ObjectiveKind>{options.align.objective}
            : options.objectives;

    for (const ObjectiveKind objective : objectives) {
        // Layouts under an arch-independent objective only vary with the
        // BT/FNT chain-ordering override: verify one representative
        // (empty arch context) plus BT/FNT instead of all eight copies.
        const bool arch_dependent = objectiveArchDependent(objective);
        bool representative_done = false;
        for (const Arch arch : archs) {
            const bool btfnt = arch == Arch::BtFnt;
            if (!arch_dependent && !btfnt && representative_done)
                continue;
            if (!arch_dependent && !btfnt)
                representative_done = true;

            const CostModel model(arch);
            AlignOptions align = options.align;
            align.objective = objective;
            align.verify = false;  // this sweep IS the verification
            if (btfnt)
                align.chainOrder = ChainOrderPolicy::BtFntPrecedence;

            for (const AlignerKind kind : kinds) {
                ProgramLayout layout =
                    alignProgram(program, kind, &model, align);
                if (options.mutate)
                    options.mutate(layout, arch, kind, objective);

                VerifyCertificate certificate;
                certificate.program = program.name();
                certificate.arch =
                    arch_dependent || btfnt ? archName(arch)
                                            : std::string();
                certificate.aligner = alignerKindName(kind);
                certificate.objective = objectiveKindName(objective);
                certificate.result = verifyLayout(program, layout);

                // Relaxed byte-layout obligations ride in the same
                // certificate, but only over a layout whose word-model
                // proof holds: a corrupted layout has no meaningful byte
                // rendition (relaxation assumes a walkable order).
                if (certificate.result.verified()) {
                    const std::vector<EncodingModelKind> &encodings =
                        options.encodings.empty() ? allEncodingModelKinds()
                                                  : options.encodings;
                    for (const EncodingModelKind encoding : encodings) {
                        const EncodingModel &em = encodingModel(encoding);
                        const RelaxedLayout relaxed =
                            relaxLayout(program, layout, em);
                        const VerifyResult result = verifyRelaxedLayout(
                            program, layout, relaxed, em);
                        for (std::size_t i = 0; i < kNumObligations; ++i) {
                            certificate.result.obligations[i].checks +=
                                result.obligations[i].checks;
                            certificate.result.obligations[i].failures +=
                                result.obligations[i].failures;
                        }
                        certificate.result.failures.insert(
                            certificate.result.failures.end(),
                            result.failures.begin(), result.failures.end());
                    }
                }

                ++report.layoutsVerified;
                if (!certificate.result.verified())
                    ++report.failedLayouts;
                report.certificates.push_back(std::move(certificate));
            }
        }
    }
    return report;
}

std::string
formatVerifyReport(const VerifyRunReport &report,
                   const std::string &programName)
{
    std::ostringstream out;
    for (const VerifyCertificate &certificate : report.certificates) {
        for (const VerifyFailure &failure : certificate.result.failures) {
            out << formatVerifyFailure(failure) << " ("
                << (certificate.arch.empty() ? "any-arch"
                                             : certificate.arch.c_str())
                << "/" << certificate.aligner << " under "
                << certificate.objective << ")\n";
        }
    }
    out << "verify: " << programName << ": " << report.layoutsVerified
        << " layout(s) proven, " << report.failedLayouts
        << " failed, " << report.totalChecks()
        << " obligation check(s) discharged\n";
    return out.str();
}

void
writeVerifyReportJson(const VerifyRunReport &report,
                      const std::string &programName, std::ostream &os)
{
    os << "{\"schema_version\":" << kVerifySchemaVersion
       << ",\"program\":\"";
    for (const char c : programName) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << "\",\"verified\":" << (report.verified() ? "true" : "false")
       << ",\"layoutsVerified\":" << report.layoutsVerified
       << ",\"failedLayouts\":" << report.failedLayouts
       << ",\"checks\":" << report.totalChecks()
       << ",\"certificates\":[";
    for (std::size_t i = 0; i < report.certificates.size(); ++i) {
        if (i > 0)
            os << ',';
        writeCertificateJson(report.certificates[i], os);
    }
    os << "]}";
}

}  // namespace balign
