/**
 * @file
 * Translation-validating layout verifier.
 *
 * For one (Program, ProgramLayout) pair this module statically proves
 * that the laid-out binary is semantically equivalent to the source CFG —
 * the Pnueli-style translation-validation stance: instead of trusting the
 * aligner + materializer, every produced layout carries a proof. The
 * proof is split into named obligations, each discharged by exhaustive
 * per-procedure / per-block checks:
 *
 *  - proc-bijection      one ProcLayout per procedure, in id order
 *  - block-bijection     the order is a permutation of the blocks and the
 *                        cached positions agree with it
 *  - entry-first         the entry block keeps the procedure's first
 *                        address (callers jump there)
 *  - address-contiguity  addresses are gap-free in layout order and
 *                        procedures are placed contiguously
 *  - size-accounting     block sizes and branch/jump addresses follow
 *                        from the CFG size plus the transformation flags
 *  - succ-preservation   each block's realized successor map equals its
 *                        CFG successor map, modulo condition reversal and
 *                        the inserted/removed unconditional jumps: no
 *                        edge is dropped, duplicated or retargeted
 *  - jump-targets        every inserted jump trails its block and targets
 *                        exactly the successor the realization displaced
 *
 * Two further obligations cover the emit backend's relaxed byte layout
 * (verifyRelaxedLayout, discharged against a RelaxedLayout produced by
 * emit/relax.h):
 *
 *  - relax-contiguity    relaxed byte addresses are gap-free in
 *                        instruction order, block/procedure byte bounds
 *                        agree with their slots, and every slot's size
 *                        is the model's size for its chosen form
 *  - displacement-range  every branch's displacement equals target minus
 *                        end-of-instruction and fits its chosen form;
 *                        forms are Short/Near exactly for relaxable
 *                        classes (and byte = 4x word addresses under the
 *                        fixed-word model)
 *
 * Verification is total: malformed input produces failures, never a
 * panic. A failure names its obligation — that exact name is what the
 * alignProgram post-condition reports and what the certificate (see
 * certificate.h) records. The verifier intentionally proves SEMANTIC
 * equivalence, which is slightly weaker than the materializer's canonical
 * form that lint's layout.* rules pin (e.g. a redundant kept jump to an
 * adjacent target is a lint error but not a verification failure — the
 * binary still transfers control correctly).
 */

#ifndef BALIGN_VERIFY_VERIFY_H
#define BALIGN_VERIFY_VERIFY_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cfg/program.h"
#include "layout/layout_result.h"

namespace balign {

/// One proof obligation the verifier discharges.
enum class Obligation : std::uint8_t {
    ProcBijection,
    BlockBijection,
    EntryFirst,
    AddressContiguity,
    SizeAccounting,
    SuccPreservation,
    JumpTargets,
    RelaxContiguity,
    DisplacementRange,
};

inline constexpr std::size_t kNumObligations = 9;

/// Stable kebab-case obligation name (certificate schema).
const char *obligationName(Obligation obligation);

/// One-line statement of what the obligation proves.
const char *obligationSummary(Obligation obligation);

/// One unproven obligation instance.
struct VerifyFailure
{
    Obligation obligation = Obligation::ProcBijection;
    ProcId proc = kNoProc;
    BlockId block = kNoBlock;
    std::string detail;
};

/// Check/failure tally for one obligation.
struct ObligationRecord
{
    std::size_t checks = 0;
    std::size_t failures = 0;
};

/// Outcome of verifying one (Program, ProgramLayout) pair.
struct VerifyResult
{
    /// Indexed by Obligation.
    std::array<ObligationRecord, kNumObligations> obligations{};
    /// Every failed obligation instance, in discovery order.
    std::vector<VerifyFailure> failures;

    bool verified() const { return failures.empty(); }
    std::size_t totalChecks() const;
    std::size_t totalFailures() const { return failures.size(); }
};

/// One-line rendering:
/// `verify[succ-preservation] proc=0 block=2: detail`
std::string formatVerifyFailure(const VerifyFailure &failure);

/// Statically proves @p layout semantically equivalent to @p program.
VerifyResult verifyLayout(const Program &program,
                          const ProgramLayout &layout);

class EncodingModel;
struct RelaxedLayout;

/**
 * Statically proves @p relaxed a faithful byte rendition of @p layout
 * under @p model: relax-contiguity and displacement-range (see the file
 * comment). Only those two obligations accrue checks; the result can be
 * merged check-wise with a verifyLayout result for the same layout.
 */
VerifyResult verifyRelaxedLayout(const Program &program,
                                 const ProgramLayout &layout,
                                 const RelaxedLayout &relaxed,
                                 const EncodingModel &model);

}  // namespace balign

#endif  // BALIGN_VERIFY_VERIFY_H
