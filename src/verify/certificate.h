/**
 * @file
 * Machine-checkable verification certificates.
 *
 * A certificate records, for one verified (Program, ProgramLayout) pair,
 * the configuration that produced the layout and every proof obligation
 * the verifier discharged — how many instances were checked and how many
 * failed, plus the full detail of each failure. An external checker can
 * consume the JSON without knowing anything about the library: the
 * obligation names are the stable strings from verify.h and the schema
 * carries its own `schema_version` (currently 1).
 *
 * Certificate JSON schema (one object per layout):
 *
 * {
 *   "schema_version": 1,
 *   "program": "gcc", "arch": "btfnt", "aligner": "cost",
 *   "objective": "table-cost",
 *   "verified": true,
 *   "checks": 1234, "failures": 0,
 *   "obligations": [
 *     {"obligation": "succ-preservation",
 *      "summary": "...", "checks": 321, "failures": 0}, ...
 *   ],
 *   "failure_details": [
 *     {"obligation": "...", "proc": 0, "block": 2, "detail": "..."}, ...
 *   ]
 * }
 */

#ifndef BALIGN_VERIFY_CERTIFICATE_H
#define BALIGN_VERIFY_CERTIFICATE_H

#include <iosfwd>
#include <string>

#include "verify/verify.h"

namespace balign {

/// Version of the certificate (and verify-report) JSON schema.
inline constexpr int kVerifySchemaVersion = 1;

/// One layout's verification outcome plus its provenance.
struct VerifyCertificate
{
    std::string program;
    std::string arch;       ///< empty for layout-independent context
    std::string aligner;
    std::string objective;
    VerifyResult result;
};

/// Writes @p certificate as one JSON object (schema above).
void writeCertificateJson(const VerifyCertificate &certificate,
                          std::ostream &os);

}  // namespace balign

#endif  // BALIGN_VERIFY_CERTIFICATE_H
