/**
 * @file
 * Verification sweep driver: proves every layout a program's experiment
 * matrix would produce.
 *
 * Mirrors lintProgram / runConfigs layout construction exactly — per-
 * architecture cost model, the BT/FNT chain-ordering override, the
 * objective sweep — so what gets proven is what the experiments evaluate.
 * Under an architecture-independent objective (ExtTSP) the layouts are
 * identical on every non-BT/FNT architecture, so one representative is
 * verified with an empty arch context instead of eight copies (BT/FNT
 * stays arch-specific through its chain ordering).
 *
 * The driver is also the injection point for the fuzzer's verify gate:
 * a LayoutMutator corrupts each layout after alignment and before
 * verification, which is how the tests prove the verifier catches every
 * obligation violation end to end.
 */

#ifndef BALIGN_VERIFY_DRIVER_H
#define BALIGN_VERIFY_DRIVER_H

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/align_program.h"
#include "emit/encoding.h"
#include "verify/certificate.h"

namespace balign {

/// Test hook: corrupts a freshly aligned layout before verification.
using LayoutMutator = std::function<void(
    ProgramLayout &, Arch, AlignerKind, ObjectiveKind)>;

/// Configuration for one verifyProgramLayouts sweep.
struct VerifyRunOptions
{
    /// Architectures whose layouts to prove (empty = all eight).
    std::vector<Arch> archs;
    /// Aligners whose layouts to prove (empty = Original, Greedy, Cost,
    /// Try15).
    std::vector<AlignerKind> kinds;
    /// Objectives to sweep (empty = just align.objective).
    std::vector<ObjectiveKind> objectives;
    /// Encoding models whose relaxed byte layouts to prove on top of each
    /// word-model layout (empty = all). Relaxed obligations are merged
    /// into the same certificate; they are skipped entirely when the
    /// word-model proof already failed (a corrupted layout has no
    /// meaningful byte rendition).
    std::vector<EncodingModelKind> encodings;
    /// Alignment options; the BT/FNT chain-order override is applied on
    /// top, exactly as the experiment runner does.
    AlignOptions align;
    /// Applied to each layout between alignment and verification.
    LayoutMutator mutate;
};

/// Outcome of one sweep: a certificate per proven layout.
struct VerifyRunReport
{
    std::vector<VerifyCertificate> certificates;
    std::size_t layoutsVerified = 0;
    std::size_t failedLayouts = 0;

    bool verified() const { return failedLayouts == 0; }
    std::size_t totalChecks() const;
};

/// Aligns @p program under every configured (objective, architecture,
/// aligner) combination and proves each layout semantically equivalent.
VerifyRunReport verifyProgramLayouts(const Program &program,
                                     const VerifyRunOptions &options = {});

/// Text rendering: one line per failure plus a summary line.
std::string formatVerifyReport(const VerifyRunReport &report,
                               const std::string &programName);

/// JSON rendering: per-program report wrapping the certificates
/// (schema_version kVerifySchemaVersion).
void writeVerifyReportJson(const VerifyRunReport &report,
                           const std::string &programName,
                           std::ostream &os);

}  // namespace balign

#endif  // BALIGN_VERIFY_DRIVER_H
