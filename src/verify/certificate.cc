#include "verify/certificate.h"

#include <cstdio>
#include <ostream>

namespace balign {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void
writeJsonString(const std::string &text, std::ostream &os)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeOptionalId(const char *key, std::uint64_t value, std::uint64_t sentinel,
                std::ostream &os)
{
    os << '"' << key << "\":";
    if (value == sentinel)
        os << "null";
    else
        os << value;
}

}  // namespace

void
writeCertificateJson(const VerifyCertificate &certificate, std::ostream &os)
{
    const VerifyResult &result = certificate.result;
    os << "{\"schema_version\":" << kVerifySchemaVersion
       << ",\"program\":";
    writeJsonString(certificate.program, os);
    os << ",\"arch\":";
    writeJsonString(certificate.arch, os);
    os << ",\"aligner\":";
    writeJsonString(certificate.aligner, os);
    os << ",\"objective\":";
    writeJsonString(certificate.objective, os);
    os << ",\"verified\":" << (result.verified() ? "true" : "false")
       << ",\"checks\":" << result.totalChecks()
       << ",\"failures\":" << result.totalFailures()
       << ",\"obligations\":[";
    for (std::size_t i = 0; i < kNumObligations; ++i) {
        const auto obligation = static_cast<Obligation>(i);
        if (i > 0)
            os << ',';
        os << "{\"obligation\":\"" << obligationName(obligation)
           << "\",\"summary\":";
        writeJsonString(obligationSummary(obligation), os);
        os << ",\"checks\":" << result.obligations[i].checks
           << ",\"failures\":" << result.obligations[i].failures << '}';
    }
    os << "],\"failure_details\":[";
    for (std::size_t i = 0; i < result.failures.size(); ++i) {
        const VerifyFailure &failure = result.failures[i];
        if (i > 0)
            os << ',';
        os << "{\"obligation\":\"" << obligationName(failure.obligation)
           << "\",";
        writeOptionalId("proc", failure.proc, kNoProc, os);
        os << ',';
        writeOptionalId("block", failure.block, kNoBlock, os);
        os << ",\"detail\":";
        writeJsonString(failure.detail, os);
        os << '}';
    }
    os << "]}";
}

}  // namespace balign
